//! Explore the §3.2 optical energy model (Equation 1) directly: per-path
//! cell counts, trim-vs-reconfiguration breakdown, the intra/inter energy
//! ratio that drives Figure 9, and the α sensitivity ablation.
//!
//! ```sh
//! cargo run --release --example power_study
//! ```

use risa::photonics::{benes, EnergyModel, PhotonicsConfig, SwitchPath};
use risa::sim::experiments;

fn main() {
    println!("=== Benes fabric geometry (paper switch sizes) ===");
    for ports in [64u16, 256, 512] {
        println!(
            "  {ports:>3}-port switch: {:>2} stages, {:>5} cells total, {:>2} cells per path",
            benes::stages(ports),
            benes::total_cells(ports),
            benes::path_cells(ports),
        );
    }

    let model = EnergyModel::new(PhotonicsConfig::paper());
    let intra = SwitchPath::intra_rack(64, 256);
    let inter = SwitchPath::inter_rack(64, 256, 512);
    println!("\n=== Equation (1) for one flow, by path type ===");
    for (label, path) in [("intra-rack", &intra), ("inter-rack", &inter)] {
        let cells = path.total_path_cells();
        let trim_w = model.trim_power_w(cells);
        let reconf = model.reconfiguration_energy_j(path);
        println!(
            "  {label}: {cells} MRR cells, steady trim {:.3} W, one-off reconfiguration {:.2} uJ",
            trim_w,
            reconf * 1e6,
        );
    }
    println!(
        "  inter/intra switch-energy ratio: {:.2}x (69 vs 37 cells) — the physics behind Fig 9",
        model.flow_switch_energy_j(&inter, 1000.0) / model.flow_switch_energy_j(&intra, 1000.0)
    );

    println!("\n=== Transceiver energy (22.5 pJ/bit) for a 40 Gb/s flow, 1 hour ===");
    for (label, hops) in [("intra-rack (2 hops)", 2), ("inter-rack (4 hops)", 4)] {
        println!(
            "  {label}: {:.1} kJ",
            model.transceiver_energy_j(40_000, 3600.0, hops) / 1000.0
        );
    }

    println!("\n=== α sensitivity (paper simulates α = 0.9) ===");
    let rep = experiments::ablation_alpha(7, &[0.5, 0.7, 0.9, 1.0]);
    println!("{rep}");
}
