//! Quickstart: build the paper's DDC, schedule a handful of VMs with RISA,
//! inspect the assignments, then run a full workload and print the report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use risa::prelude::*;
use risa::sched::ScheduleOutcome as Outcome;

fn main() {
    // --- Low-level API: drive the scheduler by hand. -------------------
    let mut cluster = Cluster::new(TopologyConfig::paper());
    let mut net = NetworkState::new(NetworkConfig::paper(), &cluster);
    let mut sched = Scheduler::new(Algorithm::Risa, &cluster);

    println!("Paper DDC (Table 1):");
    println!(
        "  {} racks x {} boxes, {} cores / {} GB RAM / {} GB storage total\n",
        cluster.num_racks(),
        cluster.num_boxes(),
        cluster.config().total_capacity_natural(ResourceKind::Cpu),
        cluster.config().total_capacity_natural(ResourceKind::Ram),
        cluster
            .config()
            .total_capacity_natural(ResourceKind::Storage),
    );

    // The paper's "typical VM": 8 cores, 16 GB RAM, 128 GB storage.
    let demand = UnitDemand::from_natural(&cluster.config().units, 8, 16, 128);
    println!("Scheduling five typical VMs ({demand}) with RISA:");
    let mut held = Vec::new();
    for i in 0..5 {
        match sched.schedule(&mut cluster, &mut net, &demand) {
            Outcome::Assigned(a) => {
                let cpu = a.placement.grant(ResourceKind::Cpu).box_id;
                println!(
                    "  vm{i}: {} in {} ({}, {} Mb/s reserved)",
                    cpu,
                    cluster.rack_of(cpu),
                    if a.intra_rack {
                        "intra-rack"
                    } else {
                        "inter-rack"
                    },
                    a.network.total_mbps(),
                );
                held.push(a);
            }
            Outcome::Dropped(r) => println!("  vm{i}: dropped ({r:?})"),
        }
    }
    println!(
        "  round-robin spread the VMs over {} distinct racks\n",
        held.iter()
            .map(|a| cluster.rack_of(a.placement.grant(ResourceKind::Cpu).box_id))
            .collect::<std::collections::HashSet<_>>()
            .len()
    );
    for a in &held {
        Scheduler::release(&mut cluster, &mut net, a);
    }

    // --- High-level API: a whole simulated workload. -------------------
    let report = SimulationBuilder::new()
        .algorithm(Algorithm::Risa)
        .workload(WorkloadSpec::synthetic(500, 42))
        .build()
        .run();
    println!("500-VM synthetic run under RISA:");
    println!("  admitted            {}", report.admitted);
    println!("  dropped             {}", report.dropped);
    println!("  inter-rack          {}", report.inter_rack_assignments);
    println!(
        "  CPU/RAM/STO util    {:.1}% / {:.1}% / {:.1}%",
        report.cpu_utilization * 100.0,
        report.ram_utilization * 100.0,
        report.storage_utilization * 100.0,
    );
    println!(
        "  optical power       {:.2} kW",
        report.optical_power_w / 1000.0
    );
    println!(
        "  mean CPU-RAM RTT    {:.0} ns",
        report.mean_cpu_ram_latency_ns
    );
}
