//! Quantify the "round-robin friendliness" that gives RISA its name: how
//! evenly each algorithm spreads load over racks and trunks at a frozen
//! mid-run instant. NULB's first-fit piles everything onto the lowest
//! racks; RISA's rotating cursor keeps the cluster level.
//!
//! ```sh
//! cargo run --release --example load_balance
//! ```

use risa::metrics::{Align, Quantiles, Table};
use risa::network::{stats, NetworkConfig, NetworkState};
use risa::prelude::*;
use risa::sched::ScheduleOutcome;
use risa::topology::display;
use risa::workload::SyntheticConfig;

fn main() {
    let workload = Workload::synthetic(&SyntheticConfig::small(600, 42));
    let mut table = Table::new(
        "Load balance after 600 back-to-back admissions (no departures)",
        &[
            "algorithm",
            "CPU rack imbalance",
            "box-trunk util CV",
            "box-trunk util p50/p95/p99/max",
        ],
    )
    .align(&[Align::Left, Align::Right, Align::Right, Align::Left]);

    for algo in Algorithm::ALL {
        let mut cluster = Cluster::new(TopologyConfig::paper());
        let mut net = NetworkState::new(NetworkConfig::paper(), &cluster);
        let mut sched = Scheduler::new(algo, &cluster);
        for vm in workload.vms() {
            let demand = vm.demand(cluster.config());
            match sched.schedule(&mut cluster, &mut net, &demand) {
                ScheduleOutcome::Assigned(_) | ScheduleOutcome::Dropped(_) => {}
            }
        }
        let imbalance = display::rack_imbalance(&cluster, ResourceKind::Cpu);
        let dist = stats::box_load_distribution(&net, &cluster);
        let mut q = Quantiles::new();
        q.extend(
            stats::box_trunk_loads(&net, &cluster)
                .iter()
                .map(|l| l.utilization()),
        );
        table.row(&[
            algo.to_string(),
            format!("{:.2}", imbalance),
            format!("{:.2}", dist.cv),
            q.summary().unwrap_or_default(),
        ]);

        if algo == Algorithm::Nulb || algo == Algorithm::Risa {
            println!("--- {algo} occupancy map (first 6 racks) ---");
            for line in display::occupancy_map(&cluster).lines().take(6) {
                println!("{line}");
            }
            println!();
        }
    }
    println!("{table}");
    println!("Reading: a rack imbalance of ~1.0 means some racks are full while others");
    println!("are empty (NULB/NALB first-fit); RISA/RISA-BF stay near 0 — uniform");
    println!("utilization, which is exactly the property §4.2 claims for round-robin.");
}
