//! Record a full utilization time series for one run and export it as CSV
//! — the raw data you would plot to visualize the paper's time-averaged
//! figures (arrivals ramp up, the staircase lifetimes hold load, then
//! departures drain the cluster).
//!
//! ```sh
//! cargo run --release --example timeline_export > timeline.csv
//! ```

use risa::prelude::*;

fn main() {
    let mut sim = SimulationBuilder::new()
        .algorithm(Algorithm::Risa)
        .workload(WorkloadSpec::synthetic(1500, 42))
        .record_timeline(500.0) // one sample every 500 time units
        .build();
    let report = sim.run();
    let timeline = sim.timeline().expect("timeline was enabled");

    // CSV to stdout; summary to stderr so redirection stays clean.
    print!("{}", timeline.to_csv());
    eprintln!(
        "run: {} admitted, {} dropped, peak {} resident VMs, {} samples",
        report.admitted,
        report.dropped,
        timeline.peak_resident(),
        timeline.points().len(),
    );
    eprintln!(
        "time-averaged utilization: cpu {:.1}%  ram {:.1}%  sto {:.1}%",
        report.cpu_utilization * 100.0,
        report.ram_utilization * 100.0,
        report.storage_utilization * 100.0,
    );
}
