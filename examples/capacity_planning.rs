//! A downstream use-case beyond the paper: capacity planning. Given the
//! Table 1 DDC, how hard can we push the arrival rate before each
//! algorithm starts dropping VMs, and what does that do to inter-rack
//! traffic? This is the kind of what-if a datacenter operator would run
//! with this library.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use risa::metrics::{Align, Table};
use risa::prelude::*;
use risa::workload::SyntheticConfig;

fn main() {
    let mut table = Table::new(
        "Capacity planning: drops and inter-rack traffic vs arrival rate (1500 VMs)",
        &[
            "interarrival",
            "algorithm",
            "admitted",
            "dropped",
            "inter-rack",
            "cpu util %",
        ],
    )
    .align(&[
        Align::Right,
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);

    // Faster arrivals = higher steady-state load (lifetime / interarrival).
    for interarrival in [12.0, 10.0, 8.0, 6.0] {
        for algo in [Algorithm::Nulb, Algorithm::Risa, Algorithm::RisaBf] {
            let cfg = SyntheticConfig {
                num_vms: 1500,
                interarrival_mean: interarrival,
                ..SyntheticConfig::paper(77)
            };
            let report = SimulationBuilder::new()
                .algorithm(algo)
                .workload(WorkloadSpec::Synthetic(cfg))
                .build()
                .run();
            table.row(&[
                format!("{interarrival:.0}"),
                algo.to_string(),
                report.admitted.to_string(),
                report.dropped.to_string(),
                report.inter_rack_assignments.to_string(),
                format!("{:.1}", report.cpu_utilization * 100.0),
            ]);
        }
    }
    println!("{table}");
    println!("Reading: RISA sustains higher arrival rates with fewer inter-rack");
    println!("assignments; once the cluster saturates, every algorithm drops, but");
    println!("RISA's round-robin keeps racks evenly loaded for longer.");
}
