//! The paper's §5.1 synthetic-workload study: Figure 5 (inter-rack VM
//! assignments + the average utilizations quoted in the text) and
//! Figure 11 (execution time).
//!
//! ```sh
//! cargo run --release --example synthetic_study
//! ```

use risa::sim::{experiments, host_info};

fn main() {
    let seed = 42;
    println!("{}\n", host_info());

    let fig5 = experiments::fig5(seed);
    println!("{fig5}");
    println!("paper: NULB 255, NALB 255, RISA 7, RISA-BF 2 inter-rack;");
    println!("       avg utilization CPU 64.66 %, RAM 65.11 %, storage 31.72 %\n");

    let fig11 = experiments::fig11(seed);
    println!("{fig11}");
    println!("paper: NALB 865 s > NULB 233 s > RISA-BF 112 s >= RISA 111 s");
    println!("(absolute times differ — ours is optimized Rust — the ordering is the result)");
}
