//! The paper's §5.2 practical-workload study end to end: characterize the
//! Azure-like workloads (Figure 6), then regenerate Figures 7–10 and 12.
//!
//! ```sh
//! cargo run --release --example azure_study
//! ```

use risa::sim::{experiments, host_info};

fn main() {
    let seed = 2023; // the paper's publication year, for flavour
    println!("{}\n", host_info());

    let fig6 = experiments::fig6(seed);
    println!("{fig6}");

    for rep in [
        experiments::fig7(seed),
        experiments::fig8(seed),
        experiments::fig9(seed),
        experiments::fig10(seed),
        experiments::fig12(seed),
    ] {
        println!("{rep}");
    }

    println!("paper reference points:");
    println!("  Fig 7 : NULB up to 52 %, NALB up to 48 %, RISA/RISA-BF 0 %");
    println!("  Fig 8 : intra 30.4 / 35.4 / 42.6 % (equal across algorithms); inter 0 for RISA");
    println!("  Fig 9 : Azure-3000 power 5.22 (NULB) / 5.27 (NALB) / 3.36 kW (RISA, -33 %)");
    println!("  Fig 10: Azure-3000 latency 226 / 216 / 110 / 110 ns");
    println!("  Fig 12: Azure-7500 exec time NULB 2.81x, NALB 4.33x of RISA");
}
