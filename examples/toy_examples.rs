//! Reproduces §4.3 of the paper: the Table 3 toy DDC, toy example 1
//! (NULB/NALB vs RISA on a typical VM) and toy example 2 / Table 4
//! (RISA vs RISA-BF packing of eight CPU-only VMs).
//!
//! ```sh
//! cargo run --release --example toy_examples
//! ```

use risa::network::{FlowDemands, NetworkConfig, NetworkState};
use risa::prelude::*;
use risa::sched::{toy, ScheduleOutcome as Outcome};

fn main() {
    toy_example_1();
    toy_example_2();
}

/// §4.3.1: on the Table 3 state, NULB/NALB pick boxes (2, 1, 2) spanning
/// racks; RISA picks (2, 2, 2), all in rack 1.
fn toy_example_1() {
    println!("=== Toy example 1 (paper §4.3.1, Table 3) ===");
    let ids = toy::table3_ids();
    for algo in [Algorithm::Nulb, Algorithm::Nalb, Algorithm::Risa] {
        let mut cluster = toy::table3_cluster();
        let mut net = NetworkState::new(NetworkConfig::paper(), &cluster);
        let mut sched = Scheduler::new(algo, &cluster);
        let demand = toy::typical_vm_demand(&cluster);
        match sched.schedule(&mut cluster, &mut net, &demand) {
            Outcome::Assigned(a) => {
                let table_id = |b: risa::topology::BoxId, list: &[risa::topology::BoxId; 4]| {
                    list.iter().position(|&x| x == b).unwrap()
                };
                let cpu = a.placement.grant(ResourceKind::Cpu).box_id;
                let ram = a.placement.grant(ResourceKind::Ram).box_id;
                let sto = a.placement.grant(ResourceKind::Storage).box_id;
                println!(
                    "  {algo:<7} -> CPU/RAM/STO table ids ({}, {}, {})  [{}]",
                    table_id(cpu, &ids.cpu),
                    table_id(ram, &ids.ram),
                    table_id(sto, &ids.sto),
                    if a.intra_rack {
                        "intra-rack"
                    } else {
                        "inter-rack"
                    },
                );
            }
            Outcome::Dropped(r) => println!("  {algo:<7} -> dropped ({r:?})"),
        }
    }
    println!("  (paper: NULB/NALB = (2,1,2) inter-rack; RISA = (2,2,2) intra-rack)\n");
}

/// §4.3.2 / Table 4: eight CPU-only VMs on rack 1 (64 + 32 cores free).
/// RISA's next-fit fills box 0 then box 1; RISA-BF alternates by best-fit.
/// Note: the paper's Table 4 RISA-BF column claims VM 6 (16 cores) fits,
/// but the eight VMs total 100 cores against 96 available — VM 6 is
/// unplaceable under any policy (see EXPERIMENTS.md).
fn toy_example_2() {
    println!("=== Toy example 2 (paper §4.3.2, Table 4) ===");
    println!("  VM:        {:?}", toy::TABLE4_CPU_REQUESTS);
    for (algo, label) in [(Algorithm::Risa, "RISA"), (Algorithm::RisaBf, "RISA-BF")] {
        let mut cluster = toy::table4_cluster();
        let mut net = NetworkState::new(NetworkConfig::paper(), &cluster);
        let mut sched = Scheduler::new(algo, &cluster);
        let ids = toy::table3_ids();
        let mut row = Vec::new();
        for cores in toy::TABLE4_CPU_REQUESTS {
            let demand = UnitDemand::from_natural(&cluster.config().units, cores, 0, 0);
            // §4.3: "assume there are enough network resources".
            let no_flows = FlowDemands {
                cpu_ram_mbps: 0,
                ram_sto_mbps: 0,
            };
            match sched.schedule_with_flows(&mut cluster, &mut net, &demand, &no_flows) {
                Outcome::Assigned(a) => {
                    let b = a.placement.grant(ResourceKind::Cpu).box_id;
                    row.push(if b == ids.cpu[3] { "1" } else { "0" }.to_string());
                }
                Outcome::Dropped(_) => row.push("NA".into()),
            }
        }
        println!("  {label:<8} rack-1 box: {row:?}");
    }
    println!("  (paper Table 4: RISA 0,0,0,1,1,1,NA,1; RISA-BF 1,1,0,0,1,0,[impossible],0)");
}
