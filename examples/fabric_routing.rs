//! Route traffic through an actual Beneš fabric (the looping algorithm)
//! and *measure* the cell-sharing factor α that §3.2 of the paper assumes
//! to be 0.9 — Figure 4's shared-cell picture, quantified.
//!
//! ```sh
//! cargo run --release --example fabric_routing
//! ```

use risa::metrics::BarChart;
use risa::photonics::fabric::Fabric;
use risa::photonics::{benes, EnergyModel, PhotonicsConfig};

fn main() {
    let ports = 64u16; // the paper's box switch size
    println!(
        "64-port Benes box switch: {} stages, {} cells, {} cells per path\n",
        benes::stages(ports),
        benes::total_cells(ports),
        benes::path_cells(ports),
    );

    // Sweep switch load: route k connections (a deterministic spread of
    // input/output pairs) and measure the sharing factor.
    let mut chart = BarChart::new("Measured cell-sharing factor vs switch load", "alpha");
    let mut measured = Vec::new();
    for &active in &[4usize, 8, 16, 32, 48, 64] {
        let mut perm = vec![None; ports as usize];
        let mut used_out = vec![false; ports as usize];
        let mut placed = 0usize;
        let mut k = 0usize;
        while placed < active && k < 4 * ports as usize {
            let i = (k * 7) % ports as usize;
            let o = (i * 37 + 11) % ports as usize;
            if perm[i].is_none() && !used_out[o] {
                perm[i] = Some(o as u16);
                used_out[o] = true;
                placed += 1;
            }
            k += 1;
        }
        let routing = Fabric::route(ports, &perm).expect("Benes is rearrangeably non-blocking");
        let alpha = routing.empirical_alpha();
        measured.push((placed, alpha));
        chart.bar(format!("{placed:>2} connections"), alpha);
    }
    println!("{chart}");
    println!(
        "paper assumption: alpha = 0.9 (between our light-load ~{:.2} and the",
        measured[0].1
    );
    println!("full-permutation bound 0.5 — every cell shared by exactly two paths)\n");

    // What the assumption is worth in energy terms:
    let model = EnergyModel::new(PhotonicsConfig::paper());
    let cells = benes::path_cells(64) + benes::path_cells(256) + benes::path_cells(64);
    println!("intra-rack flow trim power under different alpha:");
    for &(active, alpha) in &measured {
        let mut cfg = PhotonicsConfig::paper();
        cfg.alpha = alpha.clamp(0.5, 1.0);
        let w = EnergyModel::new(cfg).trim_power_w(cells);
        println!("  load {active:>2}: alpha {alpha:.2} -> {w:.3} W per flow");
    }
    println!(
        "  paper  : alpha 0.90 -> {:.3} W per flow",
        model.trim_power_w(cells)
    );
}
