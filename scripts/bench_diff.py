#!/usr/bin/env python3
"""Compare a fresh BENCH_des.json against the checked-in snapshot.

Usage: bench_diff.py <baseline.json> <current.json> [--threshold 0.20]

Prints an events/s comparison per (arrival mode x FEL backend) cell and
emits a GitHub Actions `::warning::` annotation for every cell that
dropped more than the threshold below the baseline. Always exits 0 on
well-formed input: machines and run sizes differ between the checked-in
snapshot and a CI smoke run, so this is a tripwire, not a gate.
"""

import argparse
import json
import sys


def cells(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "risa-bench-des/v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return {(r["arrival_mode"], r["fel"]): r["events_per_sec"] for r in doc["runs"]}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.20)
    args = ap.parse_args()

    base = cells(args.baseline)
    cur = cells(args.current)
    regressed = []
    print(f"DES events/s vs {args.baseline} (warn below -{args.threshold:.0%}):")
    for key in sorted(base):
        mode, fel = key
        b = base[key]
        c = cur.get(key)
        if c is None:
            regressed.append(f"{mode}/{fel}: cell missing from {args.current}")
            continue
        delta = c / b - 1.0
        flag = " <-- REGRESSION" if delta < -args.threshold else ""
        print(f"  {mode:>12}/{fel:<8} {b:>12.0f} -> {c:>12.0f}  ({delta:+7.1%}){flag}")
        if flag:
            regressed.append(f"{mode}/{fel}: {b:.0f} -> {c:.0f} events/s ({delta:+.1%})")
    for r in regressed:
        print(f"::warning::DES throughput regression: {r}")
    if not regressed:
        print("all cells within threshold")


if __name__ == "__main__":
    main()
