#!/usr/bin/env python3
"""Compare a fresh BENCH_*.json against the checked-in snapshot.

Usage: bench_diff.py <baseline.json> <current.json> [--threshold 0.20]

Understands the snapshot schemas the bench suite writes (current and
historical):

  risa-bench-des/v2    events/s per (exec x arrival mode x FEL backend) cell
  risa-bench-des/v1    events/s per (arrival mode x FEL backend) cell
  risa-bench-scale/v1  ops/s per (racks x algorithm) cell
  risa-bench-gen/v1    one VMs/s cell

Prints a throughput comparison per cell and emits a GitHub Actions
`::warning::` annotation for every cell that dropped more than the
threshold below the baseline. Always exits 0 on well-formed input:
machines and run sizes differ between the checked-in snapshot and a CI
smoke run, so this is a tripwire, not a gate. The two files must share
a schema.

Malformed input is a hard error (exit 1), never a silently-green run: a
missing or unreadable snapshot, an unknown schema, or an envelope with
zero cells all abort. An empty envelope used to sail through as "all
cells within threshold", which is exactly the failure mode a tripwire
must not have.
"""

import argparse
import json
import sys

# schema -> (display name, unit, cell extractor).
SCHEMAS = {
    "risa-bench-des/v2": (
        "DES",
        "events/s",
        lambda doc: {
            (f"{r.get('exec', 'sequential')}/{r['arrival_mode']}", r["fel"]): r[
                "events_per_sec"
            ]
            for r in doc["runs"]
        },
    ),
    "risa-bench-des/v1": (
        "DES",
        "events/s",
        lambda doc: {
            (r["arrival_mode"], r["fel"]): r["events_per_sec"] for r in doc["runs"]
        },
    ),
    "risa-bench-scale/v1": (
        "scheduling scale",
        "ops/s",
        lambda doc: {
            (str(r["racks"]), r["algorithm"]): r["ops_per_sec"] for r in doc["rows"]
        },
    ),
    "risa-bench-gen/v1": (
        "trace generation",
        "VMs/s",
        lambda doc: {("generate", "synthetic"): doc["vms_per_sec"]},
    ),
}


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        sys.exit(
            f"{path}: cannot read snapshot: {e.strerror or e} "
            "(regenerate with `risa-cli bench --json --out .`)"
        )
    except json.JSONDecodeError as e:
        sys.exit(f"{path}: not valid JSON: {e}")
    schema = doc.get("schema")
    if schema not in SCHEMAS:
        sys.exit(f"{path}: unexpected schema {schema!r}")
    name, unit, extract = SCHEMAS[schema]
    try:
        cells = extract(doc)
    except (KeyError, TypeError) as e:
        sys.exit(f"{path}: malformed {schema} envelope: {e!r}")
    if not cells:
        sys.exit(
            f"{path}: {schema} envelope has zero cells; an empty snapshot "
            "compares green against anything and defeats the tripwire"
        )
    return schema, name, unit, cells


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.20)
    args = ap.parse_args()

    bschema, name, unit, base = load(args.baseline)
    cschema, _, _, cur = load(args.current)
    if bschema != cschema:
        sys.exit(f"schema mismatch: {args.baseline} is {bschema}, {args.current} is {cschema}")

    regressed = []
    print(f"{name} {unit} vs {args.baseline} (warn below -{args.threshold:.0%}):")
    for key in sorted(base):
        a, b_label = key
        b = base[key]
        c = cur.get(key)
        if c is None:
            regressed.append(f"{a}/{b_label}: cell missing from {args.current}")
            continue
        delta = c / b - 1.0
        flag = " <-- REGRESSION" if delta < -args.threshold else ""
        print(f"  {a:>12}/{b_label:<8} {b:>12.0f} -> {c:>12.0f}  ({delta:+7.1%}){flag}")
        if flag:
            regressed.append(f"{a}/{b_label}: {b:.0f} -> {c:.0f} {unit} ({delta:+.1%})")
    for r in regressed:
        print(f"::warning::{name} throughput regression: {r}")
    if not regressed:
        print("all cells within threshold")


if __name__ == "__main__":
    main()
