//! `risa-lint` binary: lint the workspace for determinism/concurrency
//! contract violations.
//!
//! Exit codes: 0 clean, 1 active findings, 2 internal error.

use std::path::PathBuf;
use std::process::ExitCode;

use risa_lint::{exit_code, find_workspace_root, lint_workspace, render_json, render_text};

const USAGE: &str = "\
risa-lint — determinism/concurrency static analysis for the RISA workspace

USAGE:
    risa-lint [--json] [--deny-warnings] [--show-waived] [--root <dir>]

OPTIONS:
    --json            machine-readable report (schema risa-lint/v1)
    --deny-warnings   treat warnings (e.g. unused waivers) as failures
    --show-waived     include waived findings in the text report
    --root <dir>      lint this workspace root instead of auto-detecting
    -h, --help        print this help

EXIT CODES:
    0  clean          1  findings          2  internal error
";

fn main() -> ExitCode {
    let mut json = false;
    let mut deny_warnings = false;
    let mut show_waived = false;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--show-waived" => show_waived = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("risa-lint: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("risa-lint: unknown option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("risa-lint: cannot read current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("risa-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let findings = match lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("risa-lint: walk failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", render_json(&findings));
    } else {
        print!("{}", render_text(&findings, show_waived));
    }
    ExitCode::from(exit_code(&findings, deny_warnings))
}
