//! The determinism/concurrency rule set and the per-file rule engine.
//!
//! Rules are line-oriented and path-scoped; each can be suppressed by an
//! in-source waiver `// risa-lint: allow(rule, …) — reason` on the same
//! line or the line directly above. See the crate docs for the contract
//! each rule encodes.

use crate::lexer::{clean_source, is_ident_char};
use crate::{Finding, Severity};

/// Every rule id, for waiver validation and docs.
pub const RULE_IDS: [&str; 11] = [
    "wall_clock",
    "hash_state",
    "rng_seed",
    "thread_primitive",
    "safety_comment",
    "no_unsafe",
    "env_read",
    "checkpoint_purity",
    "speculation_purity",
    "bad_waiver",
    "unused_waiver",
];

/// How many lines above an `unsafe` token a `// SAFETY:` justification
/// (or a `# Safety` doc section) may sit.
const SAFETY_WINDOW: usize = 12;

/// How many lines below a comment-only waiver the waived code line may
/// sit (doc comments and blank lines in between are skipped).
const WAIVER_REACH: usize = 6;

/// Needle: an exact token (boundary-checked substring) or an identifier
/// prefix (`Atomic` → `AtomicUsize`, `AtomicBool`, …).
enum Needle {
    Exact(&'static str),
    Prefix(&'static str),
}

/// Find a boundary-checked occurrence of `needle` in `code`.
fn hit(code: &str, needle: &Needle) -> Option<&'static str> {
    let (pat, prefix) = match needle {
        Needle::Exact(p) => (*p, false),
        Needle::Prefix(p) => (*p, true),
    };
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(pat) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1] as char);
        let end = at + pat.len();
        let after_ok = if prefix {
            // A prefix needle must be continued by an identifier char
            // (`Atomic` alone is not a primitive).
            end < bytes.len() && is_ident_char(bytes[end] as char)
        } else {
            let last = pat.as_bytes()[pat.len() - 1] as char;
            !is_ident_char(last) || end >= bytes.len() || !is_ident_char(bytes[end] as char)
        };
        if before_ok && after_ok {
            return Some(pat);
        }
        start = at + pat.len().max(1);
    }
    None
}

/// True when any path component is `tests` or `benches` — whole-file
/// test/bench code, exempt from the engine-code rules.
fn is_test_path(path: &str) -> bool {
    path.split('/').any(|c| c == "tests" || c == "benches")
}

fn in_vendor_rayon(path: &str) -> bool {
    path.starts_with("vendor/rayon/")
}

/// Crates whose *state* must be hash-free (iteration order can reach a
/// report): the engine, the simulator driver, the schedulers, and the
/// workload generators.
fn in_hash_scope(path: &str) -> bool {
    [
        "crates/des/src/",
        "crates/sim/src/",
        "crates/core/src/",
        "crates/workload/src/",
    ]
    .iter()
    .any(|p| path.starts_with(p))
}

/// Crates where environment reads are forbidden (nothing env-dependent
/// may flow into a `RunReport`): every library crate plus the facade.
fn in_env_scope(path: &str) -> bool {
    if path.starts_with("src/") {
        return true;
    }
    ["bench", "cli", "lint"]
        .iter()
        .all(|exempt| !path.starts_with(&format!("crates/{exempt}/")))
        && path.starts_with("crates/")
}

/// Timing code that legitimately reads the wall clock.
fn wall_clock_exempt(path: &str) -> bool {
    path.starts_with("crates/bench/") || path.starts_with("crates/cli/")
}

/// Snapshot/restore code, where *no* ambient state may be read — not
/// even in crates the broader `wall_clock`/`env_read` scopes exempt. A
/// checkpoint that bakes in a clock reading, an env var, or fresh
/// entropy cannot resume byte-identically.
fn in_checkpoint_scope(path: &str) -> bool {
    path.contains("checkpoint")
}

/// Speculative-path code (`sim/src/parallel`, minus the commit layer),
/// where the real world may never be mutated directly: workers operate on
/// private clones through scheduler entry points, and every real-world
/// write goes through the serially-validated commit layer. A raw mutator
/// here could apply speculative state that conflict detection would have
/// rolled back — silently breaking byte-identity with the sequential
/// engine.
fn in_speculation_scope(path: &str) -> bool {
    path.contains("sim/src/parallel") && !path.contains("commit")
}

/// Files that *are* the sanctioned seed-derivation helpers.
fn rng_exempt(path: &str) -> bool {
    path == "crates/workload/src/shard.rs" || path == "crates/sim/src/faults.rs"
}

/// A parsed `risa-lint: allow(...)` waiver.
struct Waiver {
    line: usize,
    rules: Vec<String>,
    reason: String,
    /// Line the waiver suppresses findings on.
    target: Option<usize>,
    used: bool,
    malformed: Option<String>,
}

/// Extract a waiver from one line's comment text, if present.
fn parse_waiver(line: usize, comment: &str) -> Option<Waiver> {
    let marker = "risa-lint:";
    let at = comment.find(marker)?;
    // Quoted examples in docs are not waivers: skip when the marker sits
    // inside backticks or behind a nested `//` (a commented-out line or a
    // fenced code block inside a doc comment).
    let before = &comment[..at];
    if before.contains("//") || before.trim_end().ends_with('`') {
        return None;
    }
    let rest = comment[at + marker.len()..].trim_start();
    let mut w = Waiver {
        line,
        rules: Vec::new(),
        reason: String::new(),
        target: None,
        used: false,
        malformed: None,
    };
    let Some(args) = rest.strip_prefix("allow(") else {
        w.malformed = Some("expected `allow(rule, …)` after `risa-lint:`".into());
        return Some(w);
    };
    let Some(close) = args.find(')') else {
        w.malformed = Some("unclosed `allow(`".into());
        return Some(w);
    };
    for rule in args[..close].split(',') {
        let rule = rule.trim().to_string();
        if rule.is_empty() {
            continue;
        }
        if !RULE_IDS.contains(&rule.as_str()) {
            w.malformed = Some(format!("unknown rule `{rule}` in waiver"));
            return Some(w);
        }
        w.rules.push(rule);
    }
    if w.rules.is_empty() {
        w.malformed = Some("waiver allows no rules".into());
        return Some(w);
    }
    // Reason: everything after the close paren, minus a leading dash/colon.
    let reason = args[close + 1..]
        .trim_start()
        .trim_start_matches(['—', '–', '-', ':'])
        .trim();
    if reason.is_empty() {
        w.malformed =
            Some("waiver missing a reason: write `risa-lint: allow(rule) — <why>`".into());
        return Some(w);
    }
    w.reason = reason.to_string();
    Some(w)
}

/// Lint one file's source under its workspace-relative `path` (forward
/// slashes). Returns every finding, including waived ones (with their
/// reason attached); callers filter on [`Finding::is_active`].
pub fn lint_source(path: &str, source: &str) -> Vec<Finding> {
    let lines = clean_source(source);
    let test_file = is_test_path(path);

    // Pass 1: collect waivers and resolve their targets.
    let mut waivers: Vec<Waiver> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if let Some(mut w) = parse_waiver(idx, &line.comment) {
            if w.malformed.is_none() {
                w.target = if !line.code.trim().is_empty() {
                    Some(idx)
                } else {
                    lines
                        .iter()
                        .enumerate()
                        .skip(idx + 1)
                        .take(WAIVER_REACH)
                        .find(|(_, l)| !l.code.trim().is_empty())
                        .map(|(j, _)| j)
                };
            }
            waivers.push(w);
        }
    }

    // Pass 2: run the rules.
    let mut findings: Vec<Finding> = Vec::new();
    let mut raw: Vec<(usize, &'static str, String)> = Vec::new();

    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        if code.trim().is_empty() {
            continue;
        }
        let in_test = test_file || line.in_test;

        // D5: `unsafe` handling first — it applies to test code too.
        if hit(code, &Needle::Exact("unsafe")).is_some() {
            if in_vendor_rayon(path) {
                let lo = idx.saturating_sub(SAFETY_WINDOW);
                let justified = lines[lo..=idx]
                    .iter()
                    .any(|l| l.comment.contains("SAFETY:") || l.comment.contains("# Safety"));
                if !justified {
                    raw.push((
                        idx,
                        "safety_comment",
                        "`unsafe` without a `// SAFETY:` justification (or `# Safety` doc \
                         section) within the preceding lines"
                            .into(),
                    ));
                }
            } else {
                raw.push((
                    idx,
                    "no_unsafe",
                    "`unsafe` outside vendor/rayon: the workspace is unsafe-free by policy; \
                     new unsafe code belongs in the vendored pool or needs a waiver"
                        .into(),
                ));
            }
        }

        if in_test {
            continue; // the engine-code rules below exempt test code
        }

        // D1: wall-clock reads.
        if !wall_clock_exempt(path) {
            for n in [
                Needle::Exact("Instant::now"),
                Needle::Exact("SystemTime::now"),
            ] {
                if let Some(tok) = hit(code, &n) {
                    raw.push((
                        idx,
                        "wall_clock",
                        format!(
                            "wall-clock read (`{tok}`) outside sanctioned timing code \
                             (SchedTimer / risa-bench / risa-cli); engine code must derive \
                             time from SimTime only"
                        ),
                    ));
                }
            }
        }

        // D2: hash-ordered collections in engine state.
        if in_hash_scope(path) {
            for n in [Needle::Exact("HashMap"), Needle::Exact("HashSet")] {
                if let Some(tok) = hit(code, &n) {
                    raw.push((
                        idx,
                        "hash_state",
                        format!(
                            "`{tok}` in engine code: hash iteration order is nondeterministic \
                             and may reach a report path — use BTreeMap/BTreeSet, or waive \
                             with a reason proving no ordered iteration escapes"
                        ),
                    ));
                }
            }
        }

        // D3: ad-hoc RNG seeding.
        if !rng_exempt(path) && !in_vendor_rayon(path) {
            for n in [
                Needle::Exact("seed_from_u64"),
                Needle::Exact("from_seed"),
                Needle::Exact("from_entropy"),
                Needle::Exact("thread_rng"),
            ] {
                if let Some(tok) = hit(code, &n) {
                    raw.push((
                        idx,
                        "rng_seed",
                        format!(
                            "ad-hoc RNG construction (`{tok}`): seeds must come from the \
                             SplitMix derivation helpers (risa_workload::shard::stream_seed \
                             or the fault-chain chain_seed)"
                        ),
                    ));
                }
            }
        }

        // D4: concurrency primitives outside the vendored pool.
        if !in_vendor_rayon(path) {
            for n in [
                Needle::Exact("thread::spawn"),
                Needle::Exact("Mutex"),
                Needle::Exact("RwLock"),
                Needle::Exact("Condvar"),
                Needle::Exact("mpsc"),
                Needle::Prefix("Atomic"),
            ] {
                if let Some(tok) = hit(code, &n) {
                    raw.push((
                        idx,
                        "thread_primitive",
                        format!(
                            "concurrency primitive (`{tok}`) outside vendor/rayon: all \
                             parallelism must go through the resident pool so thread count \
                             can never change a result"
                        ),
                    ));
                }
            }
        }

        // D6: environment reads in engine crates.
        if in_env_scope(path) {
            for n in [
                Needle::Exact("env::var"),
                Needle::Exact("var_os"),
                Needle::Exact("env!("),
                Needle::Exact("option_env!("),
            ] {
                if let Some(tok) = hit(code, &n) {
                    raw.push((
                        idx,
                        "env_read",
                        format!(
                            "environment read (`{tok}`) in engine code: env-dependent values \
                             must never flow into RunReport fields — waive with a reason \
                             naming the config surface it selects"
                        ),
                    ));
                }
            }
        }
        // D8: raw world mutators in speculative-path code.
        if in_speculation_scope(path) {
            for n in [
                Needle::Exact("take_placement("),
                Needle::Exact("give_placement("),
                Needle::Exact("alloc_vm("),
                Needle::Exact("release_vm("),
                Needle::Exact("replay_vm("),
                Needle::Exact("replay_flow("),
                Needle::Exact("remove_box("),
                Needle::Exact("restore_box("),
                Needle::Exact("fail_link("),
                Needle::Exact("restore_link("),
                Needle::Exact("adopt_cursors("),
            ] {
                if let Some(tok) = hit(code, &n) {
                    raw.push((
                        idx,
                        "speculation_purity",
                        format!(
                            "raw world mutator (`{tok}`) in speculative-path code: workers \
                             may touch only their private clones through scheduler entry \
                             points; every real-world write belongs in the commit layer \
                             (sim/src/parallel/commit.rs), where it is validated against \
                             the window's dirty set first"
                        ),
                    ));
                }
            }
        }

        // D7: ambient state in checkpoint/restore code.
        if in_checkpoint_scope(path) {
            for n in [
                Needle::Exact("Instant::now"),
                Needle::Exact("SystemTime::now"),
                Needle::Exact("env::var"),
                Needle::Exact("var_os"),
                Needle::Exact("env!("),
                Needle::Exact("option_env!("),
                Needle::Exact("thread_rng"),
                Needle::Exact("from_entropy"),
            ] {
                if let Some(tok) = hit(code, &n) {
                    raw.push((
                        idx,
                        "checkpoint_purity",
                        format!(
                            "ambient-state read (`{tok}`) in checkpoint/restore code: a \
                             snapshot must be a pure function of simulation state and resume \
                             must not consult the clock, environment, or an entropy source, \
                             or the resumed run cannot be byte-identical"
                        ),
                    ));
                }
            }
        }
    }

    // Pass 3: apply waivers.
    for (line, rule, message) in raw {
        let mut reason = None;
        for w in waivers.iter_mut() {
            if w.malformed.is_none() && w.target == Some(line) && w.rules.iter().any(|r| r == rule)
            {
                reason = Some(w.reason.clone());
                w.used = true;
                break;
            }
        }
        findings.push(Finding {
            file: path.to_string(),
            line: line + 1,
            rule,
            message,
            severity: Severity::Error,
            waiver_reason: reason,
        });
    }

    // Pass 4: waiver hygiene.
    for w in &waivers {
        if let Some(why) = &w.malformed {
            findings.push(Finding {
                file: path.to_string(),
                line: w.line + 1,
                rule: "bad_waiver",
                message: why.clone(),
                severity: Severity::Error,
                waiver_reason: None,
            });
        } else if !w.used {
            findings.push(Finding {
                file: path.to_string(),
                line: w.line + 1,
                rule: "unused_waiver",
                message: format!(
                    "waiver for `{}` suppresses nothing on its target line",
                    w.rules.join(", ")
                ),
                severity: Severity::Warning,
                waiver_reason: None,
            });
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active(findings: &[Finding]) -> Vec<(&'static str, usize)> {
        findings
            .iter()
            .filter(|f| f.is_active())
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn boundary_checked_needles() {
        // `MyHashMapLike` must not fire; `HashMap` must (one finding per
        // needle per line).
        let f = lint_source(
            "crates/sim/src/x.rs",
            "struct MyHashMapLike;\nlet m: HashMap<u8, u8> = HashMap::new();\n",
        );
        assert_eq!(active(&f), vec![("hash_state", 2)]);
    }

    #[test]
    fn atomic_prefix_needs_continuation() {
        let f = lint_source("crates/sim/src/x.rs", "let a = AtomicUsize::new(0);\n");
        assert_eq!(active(&f), vec![("thread_primitive", 1)]);
        let f = lint_source("crates/sim/src/x.rs", "// Atomic\nlet atomic_ops = 3;\n");
        assert!(active(&f).is_empty(), "{f:?}");
    }

    #[test]
    fn same_line_waiver_consumes_and_is_used() {
        let src = "let m = HashMap::new(); // risa-lint: allow(hash_state) — keyed only\n";
        let f = lint_source("crates/sim/src/x.rs", src);
        assert!(active(&f).is_empty(), "{f:?}");
        let waived: Vec<_> = f.iter().filter(|x| !x.is_active()).collect();
        assert_eq!(waived.len(), 1);
        assert_eq!(waived[0].waiver_reason.as_deref(), Some("keyed only"));
    }

    #[test]
    fn waiver_above_reaches_next_code_line() {
        let src = "// risa-lint: allow(wall_clock) - sanctioned timer\n\
                   /// doc comment\n\
                   let t = Instant::now();\n";
        let f = lint_source("crates/sim/src/x.rs", src);
        assert!(active(&f).is_empty(), "{f:?}");
    }

    #[test]
    fn waiver_without_reason_is_an_error() {
        let src = "let m = HashMap::new(); // risa-lint: allow(hash_state)\n";
        let f = lint_source("crates/sim/src/x.rs", src);
        let rules = active(&f);
        assert!(rules.contains(&("bad_waiver", 1)), "{rules:?}");
        assert!(
            rules.contains(&("hash_state", 1)),
            "malformed waiver must not suppress"
        );
    }

    #[test]
    fn unknown_rule_in_waiver_is_an_error() {
        let src = "let x = 1; // risa-lint: allow(hash_stat) — typo\n";
        let f = lint_source("crates/sim/src/x.rs", src);
        assert_eq!(active(&f), vec![("bad_waiver", 1)]);
    }

    #[test]
    fn unused_waiver_is_a_warning() {
        let src = "// risa-lint: allow(hash_state) — nothing here\nlet x = 1;\n";
        let f = lint_source("crates/sim/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unused_waiver");
        assert_eq!(f[0].severity, Severity::Warning);
    }

    #[test]
    fn scopes_exempt_the_right_paths() {
        let clock = "let t = Instant::now();\n";
        assert!(active(&lint_source("crates/bench/benches/x.rs", clock)).is_empty());
        assert!(active(&lint_source("crates/cli/src/x.rs", clock)).is_empty());
        assert!(!active(&lint_source("crates/des/src/x.rs", clock)).is_empty());

        let hash = "let m = HashMap::new();\n";
        assert!(active(&lint_source("crates/metrics/src/x.rs", hash)).is_empty());
        assert!(!active(&lint_source("crates/workload/src/x.rs", hash)).is_empty());

        let seed = "let r = StdRng::seed_from_u64(42);\n";
        assert!(active(&lint_source("crates/workload/src/shard.rs", seed)).is_empty());
        assert!(!active(&lint_source("crates/workload/src/x.rs", seed)).is_empty());
    }

    #[test]
    fn test_code_is_exempt_from_engine_rules() {
        let src =
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let m = HashMap::new(); }\n}\n";
        assert!(active(&lint_source("crates/sim/src/x.rs", src)).is_empty());
        // Whole-file exemption for tests/ and benches/ paths.
        let clock = "let t = Instant::now();\n";
        assert!(active(&lint_source("crates/sim/tests/x.rs", clock)).is_empty());
        assert!(active(&lint_source("vendor/rayon/tests/x.rs", clock)).is_empty());
    }

    #[test]
    fn unsafe_rules_split_by_path() {
        let bare = "let x = unsafe { *p };\n";
        let f = lint_source("vendor/rayon/src/x.rs", bare);
        assert_eq!(active(&f), vec![("safety_comment", 1)]);
        let f = lint_source("crates/des/src/x.rs", bare);
        assert_eq!(active(&f), vec![("no_unsafe", 1)]);

        let justified =
            "// SAFETY: p is valid for reads, see caller contract.\nlet x = unsafe { *p };\n";
        assert!(active(&lint_source("vendor/rayon/src/x.rs", justified)).is_empty());
        // A `# Safety` doc section also counts.
        let doc = "/// # Safety\n/// `p` must be valid.\npub unsafe fn f(p: *const u8) {}\n";
        assert!(active(&lint_source("vendor/rayon/src/x.rs", doc)).is_empty());
        // `unsafe` applies inside test code too.
        let test_unsafe = "#[cfg(test)]\nmod tests {\n    fn t() { unsafe { core::hint::unreachable_unchecked() } }\n}\n";
        assert_eq!(
            active(&lint_source("vendor/rayon/src/x.rs", test_unsafe)),
            vec![("safety_comment", 3)]
        );
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "let s = \"Instant::now HashMap Mutex\"; // Instant::now\n/* seed_from_u64 */ let x = 1;\n";
        assert!(active(&lint_source("crates/sim/src/x.rs", src)).is_empty());
    }

    /// `checkpoint_purity` fires on checkpoint paths even where the
    /// broader scopes are exempt (the CLI may read clocks and env —
    /// its checkpoint-writing code still may not).
    #[test]
    fn checkpoint_paths_reject_ambient_state_everywhere() {
        let clock = "let t = Instant::now();\n";
        let f = lint_source("crates/cli/src/checkpoint.rs", clock);
        assert_eq!(active(&f), vec![("checkpoint_purity", 1)]);
        // Engine checkpoint code gets both the scope rule and this one.
        let env = "let v = std::env::var(\"RISA_FEL\");\n";
        let f = lint_source("crates/sim/src/checkpoint.rs", env);
        assert_eq!(active(&f), vec![("checkpoint_purity", 1), ("env_read", 1)]);
        // Non-checkpoint CLI code keeps its exemptions.
        assert!(active(&lint_source("crates/cli/src/commands.rs", clock)).is_empty());
    }

    /// `speculation_purity` fires on raw world mutators in
    /// `sim/src/parallel` — except the commit layer, which is the one
    /// sanctioned place that writes the real world.
    #[test]
    fn speculative_paths_reject_raw_mutators_outside_commit() {
        let mutate = "w.cluster.take_placement(&asg.placement)?;\n";
        let f = lint_source("crates/sim/src/parallel/view.rs", mutate);
        assert_eq!(active(&f), vec![("speculation_purity", 1)]);
        let f = lint_source("crates/sim/src/parallel/mod.rs", mutate);
        assert_eq!(active(&f), vec![("speculation_purity", 1)]);
        // The commit layer is exempt — it validates before writing.
        assert!(active(&lint_source("crates/sim/src/parallel/commit.rs", mutate)).is_empty());
        // Other crates' uses of the same names are out of scope.
        assert!(active(&lint_source("crates/sim/src/world.rs", mutate)).is_empty());
        // `Scheduler::release` on a private clone is not `release_vm` —
        // boundary-checked needles keep the undo path clean.
        let undo = "Scheduler::release(&mut cluster, &mut net, asg);\n";
        assert!(active(&lint_source("crates/sim/src/parallel/view.rs", undo)).is_empty());
        // Cursor adoption is a commit-layer-only operation too.
        let adopt = "w.scheduler.adopt_cursors(&sched);\n";
        let f = lint_source("crates/sim/src/parallel/view.rs", adopt);
        assert_eq!(active(&f), vec![("speculation_purity", 1)]);
    }

    #[test]
    fn env_reads_flagged_in_engine_crates_only() {
        let src = "let v = std::env::var(\"RISA_FEL\");\n";
        assert_eq!(
            active(&lint_source("crates/des/src/x.rs", src)),
            vec![("env_read", 1)]
        );
        assert!(active(&lint_source("crates/cli/src/x.rs", src)).is_empty());
        assert!(active(&lint_source("crates/lint/src/x.rs", src)).is_empty());
    }
}
