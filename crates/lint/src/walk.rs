//! Workspace file discovery and the whole-tree lint entry point.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::{lint_source, logical_path, sort_findings, Finding};

/// Directory names never descended into.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "fixtures"];

/// Top-level roots that are scanned. Everything under `vendor/` except
/// the work-stealing pool is an API-subset stand-in with no engine
/// logic, so only `vendor/rayon` is in scope.
const ROOTS: [&str; 5] = ["src", "crates", "tests", "examples", "vendor/rayon"];

/// Locate the workspace root by walking up from `start` until a
/// directory containing a `Cargo.toml` with a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Every `.rs` file in scope under `root`, sorted for deterministic
/// reports regardless of directory enumeration order.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            collect(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint the whole workspace under `root`. Findings come back sorted by
/// `(file, line, rule)` and include waived entries.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    if !root.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} is not a directory", root.display()),
        ));
    }
    let mut findings = Vec::new();
    for file in workspace_files(root)? {
        let source = fs::read_to_string(&file)?;
        findings.extend(lint_source(&logical_path(root, &file), &source));
    }
    sort_findings(&mut findings);
    Ok(findings)
}
