//! A hand-rolled Rust surface lexer.
//!
//! Splits a source file into per-line views where:
//!
//! * **`code`** is the line with comment text and string/char-literal
//!   *contents* blanked to spaces (delimiters kept), so rule needles like
//!   `HashMap` never fire inside a message or a doc string;
//! * **`comment`** is the concatenated comment text of the line (line
//!   comments, doc comments, and any block-comment text crossing it) —
//!   where `// SAFETY:` justifications and `risa-lint: allow(...)`
//!   waivers live;
//! * **`in_test`** marks `#[cfg(test)]` regions, tracked by brace depth,
//!   so test-only code is exempt from the engine-code rules.
//!
//! The lexer understands nested block comments, ordinary/byte/raw string
//! literals (`"…"`, `b"…"`, `r#"…"#`), char literals vs. lifetimes, and
//! escapes. It is a *surface* lexer: it does not parse items, which is
//! exactly enough for line-oriented rules and keeps the tool dependency-
//! free per the vendored-stand-in policy.

/// One lexed source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Line {
    /// Code with comments and literal contents blanked.
    pub code: String,
    /// Comment text carried by this line.
    pub comment: String,
    /// True inside a `#[cfg(test)]` region (or a test-path file; the
    /// caller ORs that in).
    pub in_test: bool,
}

/// Lexer mode, carried across lines.
enum Mode {
    Normal,
    LineComment,
    /// Nested block comments: depth.
    BlockComment(u32),
    /// Ordinary or byte string.
    Str,
    /// Raw string with `n` hashes (`r##"…"##`).
    RawStr(u32),
}

/// Lex `source` into per-line code/comment views and mark
/// `#[cfg(test)]` regions.
pub fn clean_source(source: &str) -> Vec<Line> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines: Vec<Line> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut mode = Mode::Normal;
    let mut i = 0;

    macro_rules! flush_line {
        () => {
            lines.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                in_test: false,
            });
            // A line comment never crosses a newline.
            if matches!(mode, Mode::LineComment) {
                mode = Mode::Normal;
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            flush_line!();
            i += 1;
            continue;
        }
        match mode {
            Mode::Normal => {
                let next = chars.get(i + 1).copied();
                match c {
                    '/' if next == Some('/') => {
                        mode = Mode::LineComment;
                        i += 2;
                    }
                    '/' if next == Some('*') => {
                        mode = Mode::BlockComment(1);
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                    }
                    '"' => {
                        mode = Mode::Str;
                        code.push('"');
                        i += 1;
                    }
                    'r' | 'b' => {
                        // Possible raw/byte string prefixes: r", r#", br", b".
                        let (hashes, quote_at) = raw_prefix(&chars, i);
                        if let Some(q) = quote_at {
                            for _ in i..=q {
                                code.push(' ');
                            }
                            code.push('"');
                            if hashes == 0 && chars[q] == '"' && c == 'b' && q == i + 1 {
                                mode = Mode::Str; // plain byte string b"…"
                            } else if hashes == 0 {
                                // r"…" has no hashes but no escapes either.
                                mode = Mode::RawStr(0);
                            } else {
                                mode = Mode::RawStr(hashes);
                            }
                            i = q + 1;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    }
                    '\'' => {
                        // Char literal vs lifetime. `'\…'` or `'x'` is a
                        // literal; `'ident` (no closing quote right after
                        // one char) is a lifetime.
                        if next == Some('\\') {
                            code.push('\'');
                            code.push(' ');
                            i += 2;
                            // Skip escape body until closing quote.
                            while i < chars.len() && chars[i] != '\'' && chars[i] != '\n' {
                                code.push(' ');
                                i += 1;
                            }
                            if chars.get(i) == Some(&'\'') {
                                code.push('\'');
                                i += 1;
                            }
                        } else if chars.get(i + 2) == Some(&'\'') && next != Some('\'') {
                            code.push('\'');
                            code.push(' ');
                            code.push('\'');
                            i += 3;
                        } else {
                            // Lifetime: keep the tick, keep the identifier
                            // (it is code, not literal content).
                            code.push('\'');
                            i += 1;
                        }
                    }
                    c => {
                        code.push(c);
                        i += 1;
                    }
                }
            }
            Mode::LineComment => {
                comment.push(c);
                i += 1;
            }
            Mode::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    mode = if depth == 1 {
                        Mode::Normal
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(depth + 1);
                    comment.push(' ');
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                let next = chars.get(i + 1).copied();
                if c == '\\' && next.is_some() {
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    mode = Mode::Normal;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    code.push('"');
                    for _ in 0..hashes {
                        code.push(' ');
                    }
                    i += 1 + hashes as usize;
                    mode = Mode::Normal;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    // Final line without trailing newline.
    if !code.is_empty() || !comment.is_empty() || lines.is_empty() {
        lines.push(Line {
            code,
            comment,
            in_test: false,
        });
    }

    mark_test_regions(&mut lines);
    lines
}

/// If `chars[start]` begins a raw/byte string prefix (`r`, `br`, `b`,
/// with optional hashes), return `(hashes, index_of_opening_quote)`.
fn raw_prefix(chars: &[char], start: usize) -> (u32, Option<usize>) {
    let mut j = start;
    // Must not be the tail of an identifier (e.g. `var` ending in `r`).
    if start > 0 && is_ident_char(chars[start - 1]) {
        return (0, None);
    }
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) == Some(&'"') {
            return (0, Some(j));
        }
        if chars.get(j) != Some(&'r') {
            return (0, None);
        }
    }
    if chars.get(j) != Some(&'r') {
        return (0, None);
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        (hashes, Some(j))
    } else {
        (0, None)
    }
}

/// Does the `"` at `i` close a raw string with `hashes` trailing hashes?
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Identifier-ish character (used for token boundaries).
pub(crate) fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Mark `#[cfg(test)]` regions: from the attribute to the close of the
/// brace block it gates (a `mod tests { … }` in practice). Tracked by
/// brace depth over the *code* view, so braces in strings or comments
/// cannot confuse it.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    // Depth the innermost active test region must drop below to end;
    // stack, to be safe under nested test mods.
    let mut region_stack: Vec<i64> = Vec::new();
    // Saw `#[cfg(test)]`, waiting for its block to open.
    let mut pending = false;

    for line in lines.iter_mut() {
        if line.code.replace(' ', "").contains("#[cfg(test)]") {
            pending = true;
        }
        if pending || !region_stack.is_empty() {
            line.in_test = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending {
                        region_stack.push(depth);
                        pending = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Some(&open) = region_stack.last() {
                        if depth <= open {
                            region_stack.pop();
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = r#"let x = "HashMap::new()"; // Instant::now in comment
/* block HashMap */ let y = 1;"#;
        let lines = clean_source(src);
        assert_eq!(lines.len(), 2);
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].comment.contains("Instant::now"));
        assert!(!lines[1].code.contains("HashMap"));
        assert!(lines[1].code.contains("let y = 1;"));
        assert!(lines[1].comment.contains("block HashMap"));
    }

    #[test]
    fn raw_strings_and_nesting() {
        let src = "let s = r#\"Mutex \"quoted\" HashSet\"#; let t = 2;\n/* a /* nested */ still comment */ let u = 3;";
        let lines = clean_source(src);
        assert!(!lines[0].code.contains("Mutex"));
        assert!(lines[0].code.contains("let t = 2;"));
        assert!(!lines[1].code.contains("still comment"));
        assert!(lines[1].code.contains("let u = 3;"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = '{'; let d = '\\n'; }";
        let lines = clean_source(src);
        // The brace inside the char literal must not count for depth; the
        // lifetime must survive as code.
        assert!(lines[0].code.contains("'a"));
        assert!(!lines[0].code.replace(['{', '}'], "").contains('{'));
    }

    #[test]
    fn multiline_strings_carry_over() {
        let src = "let s = \"line one HashMap\n  line two HashSet\"; let z = 9;";
        let lines = clean_source(src);
        assert!(!lines[0].code.contains("HashMap"));
        assert!(!lines[1].code.contains("HashSet"));
        assert!(lines[1].code.contains("let z = 9;"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}";
        let lines = clean_source(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test, "attribute line");
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(lines[4].in_test, "closing brace line");
        assert!(!lines[5].in_test, "code after the region");
    }

    #[test]
    fn byte_and_plain_raw_strings() {
        let src = "let a = b\"Condvar\"; let b = r\"AtomicUsize\"; let k = 1;";
        let lines = clean_source(src);
        assert!(!lines[0].code.contains("Condvar"));
        assert!(!lines[0].code.contains("AtomicUsize"));
        assert!(lines[0].code.contains("let k = 1;"));
    }
}
