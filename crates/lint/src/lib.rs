//! `risa-lint` — the workspace's determinism/concurrency static-analysis
//! pass: the correctness **control plane** for invariants that the
//! differential test batteries can only check dynamically.
//!
//! Every guarantee this reproduction trades on — byte-identical reports at
//! any thread count, FEL backend, arrival mode, or fault scenario — rests
//! on a handful of source-level invariants that used to live as prose in
//! README/ROADMAP. This crate encodes them as named, individually
//! suppressable rules and walks every workspace source file:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `wall_clock` | no `Instant::now`/`SystemTime::now` outside `SchedTimer`, `risa-bench`, `risa-cli` |
//! | `hash_state` | no `HashMap`/`HashSet` in engine-crate state or report paths |
//! | `rng_seed` | RNG seeds only via `stream_seed`/`chain_seed` derivation |
//! | `thread_primitive` | no threads/locks/atomics outside `vendor/rayon` |
//! | `safety_comment` | every `unsafe` in `vendor/rayon` carries a `// SAFETY:` justification |
//! | `no_unsafe` | no `unsafe` at all outside `vendor/rayon` |
//! | `env_read` | no environment reads in engine crates (nothing env-dependent may reach `RunReport`) |
//! | `checkpoint_purity` | checkpoint/restore code reads no ambient state (clock, env, entropy) — even in crates the scopes above exempt |
//! | `speculation_purity` | speculative-path code (`sim/src/parallel`, minus the commit layer) never mutates the real world through raw placement/flow/cursor mutators — workers touch private clones only |
//!
//! A finding is suppressed with an in-source **waiver** that must carry a
//! reason:
//!
//! ```text
//! // risa-lint: allow(hash_state) — keyed access only, never iterated onto a report
//! ```
//!
//! on the offending line or the line directly above it. A waiver without a
//! reason is itself an error (`bad_waiver`); a waiver that suppresses
//! nothing is a warning (`unused_waiver`, promoted to an error by
//! `--deny-warnings`).
//!
//! The analysis is deliberately a hand-rolled lexer plus a line-oriented
//! rule engine — no rustc plugin, no external dependency — consistent with
//! the workspace's vendored-stand-in policy. The lexer strips comments and
//! string/char-literal contents (so `"HashMap"` in a message never fires)
//! and tracks `#[cfg(test)]` regions by brace depth (test code may use
//! threads, clocks and ad-hoc seeds; the contract covers shipped engine
//! code). Files under `tests/` or `benches/` directories are test code
//! wholesale.
//!
//! Entry points: [`lint_source`] (one file, logical path), [`lint_workspace`]
//! (walk the tree), [`render_text`]/[`render_json`] (reports), and the
//! `risa-lint` binary / `risa-cli lint` subcommand with stable exit codes
//! (0 clean, 1 findings, 2 internal error).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

mod lexer;
mod rules;
mod walk;

pub use lexer::{clean_source, Line};
pub use rules::{lint_source, RULE_IDS};
pub use walk::{find_workspace_root, lint_workspace, workspace_files};

/// How bad a finding is. Errors always fail the run (exit 1); warnings
/// fail it only under `--deny-warnings`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Contract violation: fails the lint.
    Error,
    /// Hygiene problem (e.g. an unused waiver).
    Warning,
}

/// One lint finding, waived or not.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (see [`RULE_IDS`]).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
    /// Error or warning.
    pub severity: Severity,
    /// `Some(reason)` when an in-source waiver suppressed this finding;
    /// waived findings never affect the exit code.
    pub waiver_reason: Option<String>,
}

impl Finding {
    /// True when this finding counts against the exit code.
    pub fn is_active(&self) -> bool {
        self.waiver_reason.is_none()
    }
}

/// Exit code for a finding set: 0 clean, 1 active errors (or active
/// warnings under `deny_warnings`). Internal errors (exit 2) are handled
/// by the callers, not here.
pub fn exit_code(findings: &[Finding], deny_warnings: bool) -> u8 {
    let fails = findings
        .iter()
        .any(|f| f.is_active() && (f.severity == Severity::Error || deny_warnings));
    u8::from(fails)
}

/// Plain-text report: one `file:line: [rule] message` per active finding
/// (and, with `show_waived`, one `waived` line per suppressed one),
/// followed by a summary line.
pub fn render_text(findings: &[Finding], show_waived: bool) -> String {
    let mut out = String::new();
    let mut active = 0usize;
    let mut waived = 0usize;
    for f in findings {
        match &f.waiver_reason {
            None => {
                active += 1;
                let sev = match f.severity {
                    Severity::Error => "error",
                    Severity::Warning => "warning",
                };
                let _ = writeln!(
                    out,
                    "{}:{}: {sev}[{}] {}",
                    f.file, f.line, f.rule, f.message
                );
            }
            Some(reason) => {
                waived += 1;
                if show_waived {
                    let _ = writeln!(
                        out,
                        "{}:{}: waived[{}] {} (reason: {reason})",
                        f.file, f.line, f.rule, f.message
                    );
                }
            }
        }
    }
    let _ = writeln!(out, "risa-lint: {active} finding(s), {waived} waived");
    out
}

/// Machine-readable report: `{"schema":"risa-lint/v1","findings":[…],
/// "waived":[…]}` where every entry carries `file`, `line`, `rule`,
/// `severity`, `message` and (waived only) `waiver_reason`.
pub fn render_json(findings: &[Finding]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out
    }
    fn entry(f: &Finding) -> String {
        let sev = match f.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        let mut s = format!(
            "{{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"severity\": \"{sev}\", \"message\": \"{}\"",
            esc(&f.file),
            f.line,
            esc(f.rule),
            esc(&f.message)
        );
        if let Some(reason) = &f.waiver_reason {
            let _ = write!(s, ", \"waiver_reason\": \"{}\"", esc(reason));
        }
        s.push('}');
        s
    }
    let active: Vec<String> = findings
        .iter()
        .filter(|f| f.is_active())
        .map(entry)
        .collect();
    let waived: Vec<String> = findings
        .iter()
        .filter(|f| !f.is_active())
        .map(entry)
        .collect();
    format!(
        "{{\n  \"schema\": \"risa-lint/v1\",\n  \"findings\": [{}],\n  \"waived\": [{}]\n}}\n",
        if active.is_empty() {
            String::new()
        } else {
            format!("\n    {}\n  ", active.join(",\n    "))
        },
        if waived.is_empty() {
            String::new()
        } else {
            format!("\n    {}\n  ", waived.join(",\n    "))
        },
    )
}

/// Group findings per file for the workspace walk: deterministic
/// (BTreeMap) ordering regardless of directory enumeration order.
pub fn sort_findings(findings: &mut Vec<Finding>) {
    let mut grouped: BTreeMap<(String, usize, &'static str), Vec<Finding>> = BTreeMap::new();
    for f in findings.drain(..) {
        grouped
            .entry((f.file.clone(), f.line, f.rule))
            .or_default()
            .push(f);
    }
    *findings = grouped.into_values().flatten().collect();
}

/// Normalize a path for reports: workspace-relative, forward slashes.
pub fn logical_path(root: &Path, file: &Path) -> String {
    let rel: PathBuf = file.strip_prefix(root).unwrap_or(file).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}
