//! Exit-code contract of the `risa-lint` binary: 0 clean, 1 findings,
//! 2 internal error — exercised against throwaway mini-workspaces.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_risa-lint")
}

/// A throwaway workspace root with the given `src/lib.rs` contents.
fn mini_workspace(tag: &str, lib_rs: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("risa-lint-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(root.join("src")).unwrap();
    fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
    fs::write(root.join("src/lib.rs"), lib_rs).unwrap();
    root
}

fn run(root: &Path, extra: &[&str]) -> (Option<i32>, String) {
    let out = Command::new(bin())
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn risa-lint");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn clean_tree_exits_zero() {
    let root = mini_workspace("clean", "pub fn ok() -> u32 { 1 }\n");
    let (code, stdout) = run(&root, &[]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("0 finding(s)"), "{stdout}");
    fs::remove_dir_all(root).unwrap();
}

#[test]
fn findings_exit_one() {
    let root = mini_workspace(
        "dirty",
        "pub fn bad(p: *const u8) -> u8 { unsafe { *p } }\n",
    );
    let (code, stdout) = run(&root, &[]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("error[no_unsafe]"), "{stdout}");
    fs::remove_dir_all(root).unwrap();
}

#[test]
fn warnings_exit_zero_unless_denied() {
    let lib = "// risa-lint: allow(wall_clock) — suppresses nothing\npub fn ok() {}\n";
    let root = mini_workspace("warn", lib);
    let (code, stdout) = run(&root, &[]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("warning[unused_waiver]"), "{stdout}");
    let (code, _) = run(&root, &["--deny-warnings"]);
    assert_eq!(code, Some(1));
    fs::remove_dir_all(root).unwrap();
}

#[test]
fn waived_findings_exit_zero_and_render_in_json() {
    let lib = "pub mod state {\n    // risa-lint: allow(no_unsafe) — test fixture\n    pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n}\n";
    let root = mini_workspace("waived", lib);
    let (code, stdout) = run(&root, &["--json"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("\"schema\": \"risa-lint/v1\""), "{stdout}");
    assert!(
        stdout.contains("\"waiver_reason\": \"test fixture\""),
        "{stdout}"
    );
    fs::remove_dir_all(root).unwrap();
}

#[test]
fn internal_errors_exit_two() {
    let missing = std::env::temp_dir().join(format!("risa-lint-missing-{}", std::process::id()));
    let out = Command::new(bin())
        .arg("--root")
        .arg(&missing)
        .output()
        .expect("spawn risa-lint");
    assert_eq!(out.status.code(), Some(2));

    let out = Command::new(bin())
        .arg("--frobnicate")
        .output()
        .expect("spawn risa-lint");
    assert_eq!(out.status.code(), Some(2));
}
