//@ path: crates/workload/src/shard.rs
// True negative: the derivation-helper file itself may construct RNGs.
pub fn stream_rng(seed: u64, shard: u32, stream: u32) -> StdRng {
    StdRng::seed_from_u64(stream_seed(seed, shard, stream))
}
