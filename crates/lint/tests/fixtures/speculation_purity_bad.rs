//@ path: crates/sim/src/parallel/view.rs
// True positive: speculative-path code mutating the real world through
// raw mutators. Workers must touch only their private clones via
// scheduler entry points; real-world writes belong in the commit layer
// (sim/src/parallel/commit.rs), which validates against the dirty set
// first.
pub fn speculate_badly(w: &mut DdcWorld, asg: &Assignment) {
    w.cluster.take_placement(&asg.placement).unwrap(); //~ ERROR speculation_purity
    w.cluster.give_placement(&asg.placement); //~ ERROR speculation_purity
    w.net.replay_vm(&asg.network).unwrap(); //~ ERROR speculation_purity
    w.net.replay_flow(&asg.flow).unwrap(); //~ ERROR speculation_purity
    w.scheduler.adopt_cursors(&asg.sched); //~ ERROR speculation_purity
}

pub fn churn_badly(w: &mut DdcWorld, idx: u32) {
    w.cluster.remove_box(idx); //~ ERROR speculation_purity
    w.cluster.restore_box(idx); //~ ERROR speculation_purity
    w.net.fail_link(idx); //~ ERROR speculation_purity
    w.net.restore_link(idx); //~ ERROR speculation_purity
    w.audit.alloc_vm(idx); //~ ERROR speculation_purity
    w.audit.release_vm(idx); //~ ERROR speculation_purity
}
