//@ path: vendor/rayon/src/fixture.rs
// True negative: the vendored pool is the allowlisted home of these.
use std::sync::atomic::AtomicU64;
use std::sync::{Condvar, Mutex};

pub fn pool(counter: &AtomicU64, lock: &Mutex<u8>, cv: &Condvar) {
    let _ = (counter, lock, cv);
}
