//@ path: vendor/rayon/src/fixture.rs
// True positive: vendored unsafe without a SAFETY justification.
pub fn read(p: *const u8) -> u8 {
    unsafe { *p } //~ ERROR safety_comment
}
