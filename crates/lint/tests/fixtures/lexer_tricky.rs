//@ path: crates/des/src/fixture.rs
// Needles inside strings, raw strings, and comments must never fire.
pub fn tricky() -> String {
    let a = "HashMap and Instant::now and Mutex";
    let b = r#"HashSet "quoted" Condvar"#;
    let c = b"thread_rng AtomicUsize";
    /* seed_from_u64 inside a block comment
       unsafe inside a block comment */
    // std::env::var in a line comment
    let lifetime_not_char: &'static str = "x";
    let brace_char = '{';
    format!("{a}{b}{c:?}{lifetime_not_char}{brace_char}")
}
