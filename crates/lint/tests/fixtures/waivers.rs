//@ path: crates/sim/src/fixture.rs
// Waiver parsing: suppression, missing reasons, unknown rules, unused.
use std::collections::HashMap; // risa-lint: allow(hash_state) — fixture: keyed access only

pub struct Waived {
    // risa-lint: allow(hash_state) — fixture: waiver above the line reaches it
    slots: HashMap<u32, u8>,
}

pub fn bad() {
    let _m: HashMap<u8, u8> = HashMap::new(); // risa-lint: allow(hash_state)
    //~^ ERROR bad_waiver
    //~^^ ERROR hash_state
    let _x = 1; // risa-lint: allow(hash_stat) — typo in the rule name
    //~^ ERROR bad_waiver
}

// risa-lint: allow(wall_clock) — fixture: suppresses nothing below
pub fn idle() {}
//~^^ WARN unused_waiver
