//@ path: crates/workload/src/fixture.rs
// True positive: ad-hoc seeding outside the derivation helpers.
pub fn gen() {
    let _a = StdRng::seed_from_u64(1234); //~ ERROR rng_seed
    let _b = StdRng::from_entropy(); //~ ERROR rng_seed
    let _c = thread_rng(); //~ ERROR rng_seed
}
