//@ path: crates/sim/src/fixture.rs
// True positive: a wall-clock read in engine code.
pub fn measure() -> std::time::Instant {
    let t = std::time::Instant::now(); //~ ERROR wall_clock
    let _ = std::time::SystemTime::now(); //~ ERROR wall_clock
    t
}
