//@ path: crates/metrics/src/fixture.rs
// True positive: environment reads in a library crate.
pub fn configure() {
    let _v = std::env::var("RISA_SECRET"); //~ ERROR env_read
    let _o = std::env::var_os("RISA_SECRET"); //~ ERROR env_read
    let _c = option_env!("RISA_SECRET"); //~ ERROR env_read
}
