//@ path: crates/core/src/fixture.rs
// True positive: unsafe outside vendor/rayon, even with a SAFETY comment.
pub fn read(p: *const u8) -> u8 {
    // SAFETY: a justification does not make engine unsafe acceptable.
    unsafe { *p } //~ ERROR no_unsafe
}
