//@ path: vendor/rayon/src/fixture.rs
// True negative: justified unsafe in the vendored pool.
pub fn read(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads.
    unsafe { *p }
}

/// Doc-contract form.
///
/// # Safety
/// `p` must be valid for reads.
pub unsafe fn read_raw(p: *const u8) -> u8 {
    *p
}
