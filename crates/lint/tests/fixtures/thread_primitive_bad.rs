//@ path: crates/sim/src/fixture.rs
// True positive: concurrency primitives outside the vendored pool.
use std::sync::atomic::AtomicU64; //~ ERROR thread_primitive

pub fn go() {
    let _h = std::thread::spawn(|| 1); //~ ERROR thread_primitive
    let _m = std::sync::Mutex::new(0); //~ ERROR thread_primitive
    let _c = std::sync::Condvar::new(); //~ ERROR thread_primitive
    let (_tx, _rx) = std::sync::mpsc::channel::<u8>(); //~ ERROR thread_primitive
}
