//@ path: crates/core/src/fixture.rs
// True negative: safe engine code mentioning unsafe only in prose.
/// This function is entirely safe ("unsafe" appears only in this string:
/// "no unsafe here").
pub fn read(v: &[u8]) -> u8 {
    v[0]
}
