//@ path: crates/cli/src/checkpoint.rs
// True negative: snapshot/restore as a pure function of simulation
// state — serialize what the engine hands over, deserialize it back,
// no clock, env, or entropy anywhere.
pub fn snapshot(state: &str) -> String {
    format!("{{\"version\":1,\"state\":{state}}}")
}

pub fn restore(json: &str) -> Option<&str> {
    json.strip_prefix("{\"version\":1,\"state\":")?
        .strip_suffix('}')
}
