//@ path: crates/sim/src/fixture.rs
// Test code is exempt from the engine-code rules.
pub fn real() -> u32 {
    1
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn timing_and_hashing_are_fine_in_tests() {
        let t = std::time::Instant::now();
        let mut m = HashMap::new();
        let r = StdRng::seed_from_u64(7);
        let h = std::thread::spawn(|| 1);
        let v = std::env::var("RISA_ANYTHING");
        let _ = (t, m.insert(1, 2), r, h, v);
    }
}
