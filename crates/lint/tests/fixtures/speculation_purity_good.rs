//@ path: crates/sim/src/parallel/view.rs
// True negative: the sanctioned speculation shape — private clones of
// the window-start state, mutated only through scheduler entry points,
// with exact undo between arrivals. `Scheduler::release` is the undo
// entry point, not the `release_vm` ledger mutator; boundary-checked
// needles must not confuse them.
pub fn speculate(s0: &S0, chunk: &[ArrivalSpec]) -> Vec<Speculation> {
    let mut cluster = s0.cluster.clone();
    let mut net = s0.net.clone();
    chunk
        .iter()
        .map(|a| {
            let mut sched = s0.scheduler.speculative_clone();
            let outcome = sched.schedule(&mut cluster, &mut net, &a.demand);
            if let Some(asg) = outcome.assigned() {
                Scheduler::release(&mut cluster, &mut net, asg);
            }
            Speculation { outcome, sched }
        })
        .collect()
}
