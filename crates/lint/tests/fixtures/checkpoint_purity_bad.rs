//@ path: crates/cli/src/checkpoint.rs
// True positive: checkpoint/restore code reading ambient state. The CLI
// is exempt from `wall_clock` and `env_read`, so every finding here is
// the dedicated `checkpoint_purity` rule (except the RNG lines, where
// `rng_seed` composes with it).
pub fn snapshot() {
    let _stamp = std::time::Instant::now(); //~ ERROR checkpoint_purity
    let _wall = std::time::SystemTime::now(); //~ ERROR checkpoint_purity
    let _dir = std::env::var("RISA_CKPT_DIR"); //~ ERROR checkpoint_purity
    let _os = std::env::var_os("RISA_CKPT_DIR"); //~ ERROR checkpoint_purity
    let _built = option_env!("RISA_BUILD"); //~ ERROR checkpoint_purity
}

pub fn restore() {
    let _rng = rand::thread_rng(); //~ ERROR checkpoint_purity
    //~^ ERROR rng_seed
    let _fresh = SmallRng::from_entropy(); //~ ERROR checkpoint_purity
    //~^ ERROR rng_seed
}
