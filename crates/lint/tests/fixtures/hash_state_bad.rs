//@ path: crates/des/src/fixture.rs
// True positive: hash-ordered collections in engine state.
use std::collections::{HashMap, HashSet}; //~ ERROR hash_state

pub struct State {
    pending: HashMap<u32, u64>, //~ ERROR hash_state
    seen: HashSet<u32>,         //~ ERROR hash_state
}
