//@ path: crates/des/src/fixture.rs
// True negative: ordered collections in engine state.
use std::collections::{BTreeMap, BTreeSet};

pub struct State {
    pending: BTreeMap<u32, u64>,
    seen: BTreeSet<u32>,
}
