//@ path: crates/bench/src/fixture.rs
// True negative: bench code is sanctioned timing code.
pub fn measure() {
    let t = std::time::Instant::now();
    let _ = t.elapsed();
}
