//@ path: crates/cli/src/fixture.rs
// True negative: the CLI boundary may read the environment.
pub fn jobs() -> Option<usize> {
    std::env::var("RISA_THREADS").ok()?.parse().ok()
}
