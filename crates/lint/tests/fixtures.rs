//! Fixture battery: every file under `tests/fixtures/` carries a
//! `//@ path: <logical path>` header (so path-scoped rules see the path
//! the fixture impersonates) and rustc-UI-style expectation markers on
//! the lines the lint must flag:
//!
//! ```text
//! let t = Instant::now(); //~ ERROR wall_clock
//! //~^ ERROR bad_waiver      (one line up)
//! //~^^ WARN unused_waiver   (two lines up)
//! ```
//!
//! The harness runs [`risa_lint::lint_source`] on each fixture and
//! requires the *active* findings to match the markers exactly — no
//! missing findings, no extras — which checks one true positive and one
//! true negative per rule, waiver parsing, and the lexer edge cases.

use risa_lint::{lint_source, Severity};
use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// `(line, rule, severity)` triples expected by a fixture's markers.
fn expectations(source: &str) -> BTreeSet<(usize, String, &'static str)> {
    let mut out = BTreeSet::new();
    for (idx, line) in source.lines().enumerate() {
        let Some(at) = line.find("//~") else { continue };
        let rest = &line[at + 3..];
        let carets = rest.chars().take_while(|&c| c == '^').count();
        let rest = rest[carets..].trim_start();
        let (sev, rule) = if let Some(r) = rest.strip_prefix("ERROR ") {
            ("error", r)
        } else if let Some(r) = rest.strip_prefix("WARN ") {
            ("warning", r)
        } else {
            panic!("bad expectation marker: {line}");
        };
        out.insert((idx + 1 - carets, rule.trim().to_string(), sev));
    }
    out
}

/// The fixture's impersonated workspace path.
fn logical_path(source: &str) -> String {
    source
        .lines()
        .find_map(|l| l.strip_prefix("//@ path:"))
        .expect("fixture missing `//@ path:` header")
        .trim()
        .to_string()
}

#[test]
fn fixtures_match_their_markers() {
    let dir = fixtures_dir();
    let mut names: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("fixtures dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    names.sort();
    assert!(
        names.len() >= 21,
        "expected the full fixture battery, got {names:?}"
    );

    for path in names {
        let source = fs::read_to_string(&path).expect("read fixture");
        let expected = expectations(&source);
        let actual: BTreeSet<(usize, String, &'static str)> =
            lint_source(&logical_path(&source), &source)
                .into_iter()
                .filter(|f| f.is_active())
                .map(|f| {
                    let sev = match f.severity {
                        Severity::Error => "error",
                        Severity::Warning => "warning",
                    };
                    (f.line, f.rule.to_string(), sev)
                })
                .collect();
        assert_eq!(
            actual,
            expected,
            "fixture {} disagrees with its markers",
            path.display()
        );
    }
}

#[test]
fn waived_findings_carry_their_reason() {
    let source = fs::read_to_string(fixtures_dir().join("waivers.rs")).unwrap();
    let findings = lint_source(&logical_path(&source), &source);
    let waived: Vec<_> = findings.iter().filter(|f| !f.is_active()).collect();
    assert_eq!(waived.len(), 2, "{waived:?}");
    assert!(
        waived
            .iter()
            .all(|f| f.rule == "hash_state"
                && f.waiver_reason.as_deref().unwrap().contains("fixture"))
    );
}

#[test]
fn json_report_has_the_v1_schema() {
    let source = fs::read_to_string(fixtures_dir().join("waivers.rs")).unwrap();
    let findings = lint_source(&logical_path(&source), &source);
    let json = risa_lint::render_json(&findings);
    for needle in [
        "\"schema\": \"risa-lint/v1\"",
        "\"findings\": [",
        "\"waived\": [",
        "\"rule\": \"bad_waiver\"",
        "\"rule\": \"unused_waiver\"",
        "\"severity\": \"warning\"",
        "\"waiver_reason\": \"fixture: keyed access only\"",
        "\"file\": \"crates/sim/src/fixture.rs\"",
        "\"line\": 3",
    ] {
        assert!(json.contains(needle), "missing {needle} in:\n{json}");
    }
}
