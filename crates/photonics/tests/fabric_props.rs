//! Property tests for the Beneš routing fabric: every random partial
//! permutation routes, simulates to the requested outputs, crosses one
//! cell per stage, and yields a sharing factor in [0.5, 1].

use proptest::prelude::*;
use risa_photonics::benes;
use risa_photonics::fabric::Fabric;

/// Strategy: a random partial permutation on `ports` ports.
fn partial_perm(ports: u16) -> impl Strategy<Value = Vec<Option<u16>>> {
    let n = ports as usize;
    // Random permutation + random mask.
    (
        Just(ports),
        any::<u64>(),
        prop::collection::vec(any::<bool>(), n),
    )
        .prop_map(move |(ports, seed, mask)| {
            let n = ports as usize;
            let mut p: Vec<u16> = (0..ports).collect();
            let mut state = seed | 1;
            for i in (1..n).rev() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                p.swap(i, j);
            }
            p.into_iter()
                .zip(mask)
                .map(|(o, keep)| keep.then_some(o))
                .collect()
        })
}

fn check(ports: u16, perm: &[Option<u16>]) -> Result<(), TestCaseError> {
    let routing = Fabric::route(ports, perm)
        .map_err(|e| TestCaseError::fail(format!("routing failed: {e}")))?;
    let out = routing.simulate();
    let stages = benes::stages(ports) as usize;
    let mut crossings = 0usize;
    for (i, want) in perm.iter().enumerate() {
        prop_assert_eq!(out[i], *want, "input {} misrouted", i);
        match want {
            Some(_) => {
                let path = routing.path(i as u16).expect("routed input has a path");
                prop_assert_eq!(path.len(), stages, "one cell per stage");
                for (s, &(stage, idx)) in path.iter().enumerate() {
                    prop_assert_eq!(stage as usize, s);
                    prop_assert!(idx < ports as u32 / 2);
                }
                crossings += stages;
            }
            None => prop_assert!(routing.path(i as u16).is_none()),
        }
    }
    prop_assert_eq!(routing.total_crossings(), crossings);
    let alpha = routing.empirical_alpha();
    prop_assert!((0.5..=1.0).contains(&alpha), "alpha {} out of range", alpha);
    prop_assert!(routing.active_cells() as u64 <= benes::total_cells(ports));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn routes_random_partial_perms_8(perm in partial_perm(8)) {
        check(8, &perm)?;
    }

    #[test]
    fn routes_random_partial_perms_16(perm in partial_perm(16)) {
        check(16, &perm)?;
    }

    #[test]
    fn routes_random_partial_perms_64(perm in partial_perm(64)) {
        check(64, &perm)?;
    }

    /// The paper's box switch size under full permutations: α is exactly
    /// 0.5 and every cell is active.
    #[test]
    fn full_perms_saturate_64(seed in any::<u64>()) {
        let ports = 64u16;
        let n = ports as usize;
        let mut p: Vec<u16> = (0..ports).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            p.swap(i, j);
        }
        let perm: Vec<Option<u16>> = p.into_iter().map(Some).collect();
        let routing = Fabric::route(ports, &perm).unwrap();
        prop_assert_eq!(routing.active_cells() as u64, benes::total_cells(ports));
        prop_assert!((routing.empirical_alpha() - 0.5).abs() < 1e-12);
        check(ports, &perm)?;
    }
}
