//! Photonic device constants (§3.1–3.2 of the paper).

use serde::{Deserialize, Serialize};

/// Device-level constants of the optical data plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhotonicsConfig {
    /// MRR cell trimming (state-holding) power, mW. Paper/\[13\]: 22.67 mW.
    pub p_trim_mw: f64,
    /// MRR cell switching (reconfiguration) power, mW. Paper/\[13\]: 13.75 mW.
    pub p_sw_mw: f64,
    /// Cell-sharing factor α ∈ [0.5, 1]; the paper simulates with 0.9.
    pub alpha: f64,
    /// SiP transceiver energy per bit, pJ (paper/\[20\]: 22.5 pJ/bit).
    pub transceiver_pj_per_bit: f64,
    /// Per-stage MRR reconfiguration latency, ns. The paper cites \[6\] for
    /// size-dependent switching latency without printing values; thermal
    /// MRR tuning is O(µs), so we default to 1 µs per stage, making
    /// `lat_sw(N) = stages(N) µs`. The switching-energy term is ~9 orders
    /// of magnitude below trim energy for realistic lifetimes, so this
    /// choice cannot affect any reported figure's shape.
    pub switch_latency_ns_per_stage: f64,
}

impl PhotonicsConfig {
    /// The paper's constants.
    pub const fn paper() -> Self {
        PhotonicsConfig {
            p_trim_mw: 22.67,
            p_sw_mw: 13.75,
            alpha: 0.9,
            transceiver_pj_per_bit: 22.5,
            switch_latency_ns_per_stage: 1_000.0,
        }
    }

    /// Sanity-check the constants.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.5..=1.0).contains(&self.alpha) {
            return Err(format!(
                "alpha must lie in [0.5, 1] (paper §3.2), got {}",
                self.alpha
            ));
        }
        for (name, v) in [
            ("p_trim_mw", self.p_trim_mw),
            ("p_sw_mw", self.p_sw_mw),
            ("transceiver_pj_per_bit", self.transceiver_pj_per_bit),
            (
                "switch_latency_ns_per_stage",
                self.switch_latency_ns_per_stage,
            ),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} must be finite and non-negative, got {v}"));
            }
        }
        Ok(())
    }
}

impl Default for PhotonicsConfig {
    fn default() -> Self {
        PhotonicsConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let c = PhotonicsConfig::paper();
        assert_eq!(c.p_trim_mw, 22.67);
        assert_eq!(c.p_sw_mw, 13.75);
        assert_eq!(c.alpha, 0.9);
        assert_eq!(c.transceiver_pj_per_bit, 22.5);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn alpha_bounds_enforced() {
        let mut c = PhotonicsConfig::paper();
        c.alpha = 0.4; // below "every cell shared"
        assert!(c.validate().is_err());
        c.alpha = 1.01; // above "no cell shared"
        assert!(c.validate().is_err());
        c.alpha = 0.5;
        assert!(c.validate().is_ok());
        c.alpha = 1.0;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn negative_power_rejected() {
        let mut c = PhotonicsConfig::paper();
        c.p_trim_mw = -1.0;
        assert!(c.validate().is_err());
        let mut c = PhotonicsConfig::paper();
        c.transceiver_pj_per_bit = f64::NAN;
        assert!(c.validate().is_err());
    }
}
