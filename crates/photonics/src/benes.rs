//! Beneš switching-fabric combinatorics.
//!
//! An N×N Beneš network (N a power of two) is the canonical rearrangeably
//! non-blocking fabric the paper assumes (§3.2, citing Lee & Dupuis \[10\]).
//! It has `2·log2(N) − 1` stages of `N/2` 2×2 cells; any input→output path
//! crosses exactly one cell per stage.

/// log2 of the port count; panics unless `ports` is a power of two ≥ 2
/// (checked at configuration validation time).
fn log2_ports(ports: u16) -> u32 {
    assert!(
        ports.is_power_of_two() && ports >= 2,
        "Benes fabric needs a power-of-two port count >= 2, got {ports}"
    );
    ports.trailing_zeros()
}

/// Number of cell stages in an N-port Beneš network: `2·log2(N) − 1`.
pub fn stages(ports: u16) -> u32 {
    2 * log2_ports(ports) - 1
}

/// Total 2×2 cells in the fabric: `stages × N/2`.
pub fn total_cells(ports: u16) -> u64 {
    stages(ports) as u64 * (ports as u64 / 2)
}

/// Cells along one input→output path: one per stage.
pub fn path_cells(ports: u16) -> u32 {
    stages(ports)
}

/// Size-dependent switch reconfiguration latency in seconds:
/// `stages(N) × per-stage latency` (the \[6\]-style scaling; see
/// `PhotonicsConfig::switch_latency_ns_per_stage`).
pub fn switch_latency_s(ports: u16, ns_per_stage: f64) -> f64 {
    stages(ports) as f64 * ns_per_stage * 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The three switch sizes of the paper's evaluation (§5.2).
    #[test]
    fn paper_switch_sizes() {
        // Box switch: 64 ports.
        assert_eq!(stages(64), 11);
        assert_eq!(total_cells(64), 11 * 32);
        assert_eq!(path_cells(64), 11);
        // Intra-rack switch: 256 ports.
        assert_eq!(stages(256), 15);
        assert_eq!(total_cells(256), 15 * 128);
        // Inter-rack switch: 512 ports.
        assert_eq!(stages(512), 17);
        assert_eq!(total_cells(512), 17 * 256);
    }

    #[test]
    fn smallest_fabric() {
        // A 2-port Beneš degenerates to a single cell.
        assert_eq!(stages(2), 1);
        assert_eq!(total_cells(2), 1);
    }

    #[test]
    fn cells_grow_superlinearly_with_ports() {
        let mut last = 0;
        for p in [2u16, 4, 8, 16, 32, 64, 128, 256, 512] {
            let c = total_cells(p);
            assert!(c > last);
            last = c;
        }
    }

    #[test]
    fn latency_scales_with_stages() {
        let ns = 1_000.0;
        assert!((switch_latency_s(64, ns) - 11.0e-6).abs() < 1e-15);
        assert!(switch_latency_s(512, ns) > switch_latency_s(64, ns));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_pow2_panics() {
        stages(100);
    }
}
