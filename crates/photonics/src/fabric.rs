//! A routable Beneš fabric: the looping algorithm, per-path cell lists,
//! and an *empirical* cell-sharing factor α.
//!
//! Section 3.2 of the paper assumes a constant α = 0.9 in Equation (1) to
//! account for two VMs sharing an MRR cell (its Figure 4 shows two paths
//! `P1`/`P2` crossing the same cell). This module actually routes
//! connection sets through the Beneš network with the classic looping
//! algorithm, so the sharing factor can be **measured** for a given
//! traffic pattern instead of assumed — the `ablation` bench compares the
//! measured α against the paper's 0.9.
//!
//! ```
//! use risa_photonics::fabric::Fabric;
//!
//! // Route the reversal permutation through an 8-port Beneš.
//! let perm: Vec<Option<u16>> = (0..8).rev().map(Some).collect();
//! let routing = Fabric::route(8, &perm).unwrap();
//! // Every path crosses one cell per stage: 2*log2(8)-1 = 5.
//! for input in 0..8 {
//!     assert_eq!(routing.path(input).unwrap().len(), 5);
//! }
//! // A full permutation shares every cell between two paths: α = 0.5.
//! assert!((routing.empirical_alpha() - 0.5).abs() < 1e-12);
//! ```

use crate::benes;
use serde::{Deserialize, Serialize};

/// State of one 2×2 MRR cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellState {
    /// Unused by any routed connection.
    Idle,
    /// Pass-through: upper→upper, lower→lower.
    Bar,
    /// Exchange: upper→lower, lower→upper.
    Cross,
}

/// Cell coordinates: `(stage, index-within-stage)`.
pub type CellRef = (u32, u32);

/// Routing failures.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteError {
    /// `ports` is not a power of two ≥ 2.
    BadPortCount(u16),
    /// The connection list is not a partial permutation (an output is
    /// requested twice, or an index is out of range).
    NotAPartialPermutation,
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::BadPortCount(p) => write!(f, "bad Benes port count {p}"),
            RouteError::NotAPartialPermutation => {
                write!(f, "connection set is not a partial permutation")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// The result of routing a connection set: cell settings plus the exact
/// cell list of every routed input.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Routing {
    ports: u16,
    stages: u32,
    /// `cells[stage][idx]`.
    cells: Vec<Vec<CellState>>,
    /// Per input: the cells its signal crosses, or `None` if idle.
    paths: Vec<Option<Vec<CellRef>>>,
}

/// Namespace for fabric routing (constructed through [`Fabric::route`]).
pub struct Fabric;

impl Fabric {
    /// Route a partial permutation through an N-port Beneš network.
    ///
    /// `perm[i] = Some(o)` requests a connection from input `i` to output
    /// `o`; `None` leaves the input idle. Beneš networks are rearrangeably
    /// non-blocking, so every partial permutation routes successfully.
    pub fn route(ports: u16, perm: &[Option<u16>]) -> Result<Routing, RouteError> {
        if !ports.is_power_of_two() || ports < 2 {
            return Err(RouteError::BadPortCount(ports));
        }
        if perm.len() != ports as usize {
            return Err(RouteError::NotAPartialPermutation);
        }
        let mut seen = vec![false; ports as usize];
        for &p in perm {
            if let Some(o) = p {
                if o >= ports || std::mem::replace(&mut seen[o as usize], true) {
                    return Err(RouteError::NotAPartialPermutation);
                }
            }
        }
        let stages = benes::stages(ports);
        let mut routing = Routing {
            ports,
            stages,
            cells: (0..stages)
                .map(|_| vec![CellState::Idle; ports as usize / 2])
                .collect(),
            paths: vec![None; ports as usize],
        };
        for (i, &p) in perm.iter().enumerate() {
            if p.is_some() {
                routing.paths[i] = Some(Vec::with_capacity(stages as usize));
            }
        }
        let pairs: Vec<(u16, u16)> = perm
            .iter()
            .enumerate()
            .filter_map(|(i, &p)| p.map(|o| (i as u16, o)))
            .collect();
        route_recursive(ports, &pairs, 0, 0, &mut routing)?;
        // Paths are collected outer-first on both flanks; sort by stage so
        // callers see them in signal order.
        for p in routing.paths.iter_mut().flatten() {
            p.sort_unstable();
        }
        Ok(routing)
    }
}

/// Recursively route `pairs` through the sub-Beneš whose first stage is
/// `stage0` and whose cells start at row offset `row0` in every stage.
fn route_recursive(
    ports: u16,
    pairs: &[(u16, u16)],
    stage0: u32,
    row0: u32,
    routing: &mut Routing,
) -> Result<(), RouteError> {
    debug_assert!(ports.is_power_of_two());
    if pairs.is_empty() {
        return Ok(());
    }
    if ports == 2 {
        // Base case: one cell.
        let stage = stage0;
        let idx = row0;
        for &(i, o) in pairs {
            let want = if i == o {
                CellState::Bar
            } else {
                CellState::Cross
            };
            let cell = &mut routing.cells[stage as usize][idx as usize];
            debug_assert!(
                *cell == CellState::Idle || *cell == want,
                "base-cell conflict: permutation invariant violated"
            );
            *cell = want;
            record(routing, i, o, stage, idx, stage0, row0, ports);
        }
        return Ok(());
    }

    let half = ports / 2;
    let n_sw = half as usize; // outer switches per flank

    // Looping algorithm: 2-colour the connections so that the two
    // connections sharing an input switch take different subnets, and
    // likewise for output switches.
    //
    // `in_conn[s]` / `out_conn[t]`: up to two connection indices touching
    // input switch s / output switch t.
    let mut in_conn: Vec<Vec<usize>> = vec![Vec::with_capacity(2); n_sw];
    let mut out_conn: Vec<Vec<usize>> = vec![Vec::with_capacity(2); n_sw];
    for (c, &(i, o)) in pairs.iter().enumerate() {
        in_conn[(i / 2) as usize].push(c);
        out_conn[(o / 2) as usize].push(c);
    }
    // colour[c]: 0 = upper subnet, 1 = lower, usize::MAX = unset.
    let mut colour = vec![usize::MAX; pairs.len()];
    for start in 0..pairs.len() {
        if colour[start] != usize::MAX {
            continue;
        }
        // Walk the alternating chain starting from `start`.
        colour[start] = 0;
        let mut frontier = vec![start];
        while let Some(c) = frontier.pop() {
            let (i, o) = pairs[c];
            // Sibling on the same input switch must take the other subnet.
            for &c2 in &in_conn[(i / 2) as usize] {
                if c2 != c && colour[c2] == usize::MAX {
                    colour[c2] = 1 - colour[c];
                    frontier.push(c2);
                }
            }
            // Sibling on the same output switch likewise.
            for &c2 in &out_conn[(o / 2) as usize] {
                if c2 != c && colour[c2] == usize::MAX {
                    colour[c2] = 1 - colour[c];
                    frontier.push(c2);
                }
            }
        }
    }

    let last_stage = stage0 + 2 * (benes::stages(ports) - 1) / 2; // stage0 + stages-1
    let out_stage = stage0 + benes::stages(ports) - 1;
    debug_assert_eq!(last_stage, out_stage);

    // Set outer cells and build the two subnet pair lists.
    let mut upper: Vec<(u16, u16)> = Vec::new();
    let mut lower: Vec<(u16, u16)> = Vec::new();
    for (c, &(i, o)) in pairs.iter().enumerate() {
        let sub = colour[c] as u16; // 0 upper, 1 lower
        let in_sw = i / 2;
        let out_sw = o / 2;
        // Input cell: input port i is the (i % 2) leg; it must exit on leg
        // `sub` (upper leg feeds the upper subnet).
        let in_state = if i % 2 == sub {
            CellState::Bar
        } else {
            CellState::Cross
        };
        set_cell(routing, stage0, row0 + in_sw as u32, in_state)?;
        // Output cell: the signal arrives on leg `sub` and must leave on
        // leg (o % 2).
        let out_state = if o % 2 == sub {
            CellState::Bar
        } else {
            CellState::Cross
        };
        set_cell(routing, out_stage, row0 + out_sw as u32, out_state)?;
        record(
            routing,
            i,
            o,
            stage0,
            row0 + in_sw as u32,
            stage0,
            row0,
            ports,
        );
        record(
            routing,
            i,
            o,
            out_stage,
            row0 + out_sw as u32,
            stage0,
            row0,
            ports,
        );
        let pair = (in_sw, out_sw);
        if sub == 0 {
            upper.push(pair);
        } else {
            lower.push(pair);
        }
    }

    // Recurse. Upper subnet occupies rows [row0, row0 + half/2), lower the
    // next half/2 rows, in stages [stage0+1, out_stage-1].
    remap_and_recurse(half, &upper, stage0 + 1, row0, routing, pairs, &colour, 0)?;
    remap_and_recurse(
        half,
        &lower,
        stage0 + 1,
        row0 + half as u32 / 2,
        routing,
        pairs,
        &colour,
        1,
    )
}

/// Recurse into one subnet, translating sub-paths back onto the original
/// inputs so `paths` stays keyed by the outermost input index.
#[allow(clippy::too_many_arguments)]
fn remap_and_recurse(
    ports: u16,
    sub_pairs: &[(u16, u16)],
    stage0: u32,
    row0: u32,
    routing: &mut Routing,
    parent_pairs: &[(u16, u16)],
    colour: &[usize],
    want_colour: usize,
) -> Result<(), RouteError> {
    if sub_pairs.is_empty() {
        return Ok(());
    }
    // Route the subnet into a scratch Routing, then merge cells and remap
    // paths onto the parent's input indices.
    let stages = benes::stages(ports);
    let mut scratch = Routing {
        ports,
        stages,
        cells: (0..stages)
            .map(|_| vec![CellState::Idle; ports as usize / 2])
            .collect(),
        paths: vec![None; ports as usize],
    };
    for &(i, _) in sub_pairs {
        scratch.paths[i as usize] = Some(Vec::new());
    }
    route_recursive(ports, sub_pairs, 0, 0, &mut scratch)?;

    // Merge cells.
    for (s, stage_cells) in scratch.cells.iter().enumerate() {
        for (r, &state) in stage_cells.iter().enumerate() {
            if state != CellState::Idle {
                set_cell(routing, stage0 + s as u32, row0 + r as u32, state)?;
            }
        }
    }
    // Remap paths: the k-th connection of `sub_pairs` corresponds to the
    // k-th parent connection with this colour.
    let parents: Vec<usize> = (0..parent_pairs.len())
        .filter(|&c| colour[c] == want_colour)
        .collect();
    for (k, &(si, _)) in sub_pairs.iter().enumerate() {
        let parent_input = parent_pairs[parents[k]].0 as usize;
        let sub_path = scratch.paths[si as usize].clone().unwrap_or_default();
        if let Some(p) = routing.paths[parent_input].as_mut() {
            for (s, r) in sub_path {
                p.push((stage0 + s, row0 + r));
            }
        }
    }
    Ok(())
}

fn set_cell(
    routing: &mut Routing,
    stage: u32,
    idx: u32,
    want: CellState,
) -> Result<(), RouteError> {
    let cell = &mut routing.cells[stage as usize][idx as usize];
    debug_assert!(
        *cell == CellState::Idle || *cell == want,
        "cell ({stage},{idx}) conflict: looping algorithm invariant violated"
    );
    *cell = want;
    Ok(())
}

/// Append `cell` to input `i`'s path if this call belongs to the outermost
/// recursion level (paths for inner levels are remapped by the caller).
#[allow(clippy::too_many_arguments)]
fn record(
    routing: &mut Routing,
    i: u16,
    _o: u16,
    stage: u32,
    idx: u32,
    stage0: u32,
    _row0: u32,
    _ports: u16,
) {
    // Only the top-level call (stage0 == 0 at the outermost) owns `paths`
    // keyed by true inputs; inner calls run on scratch routings where the
    // local input indices ARE the path keys.
    let _ = stage0;
    if let Some(p) = routing.paths[i as usize].as_mut() {
        p.push((stage, idx));
    }
}

impl Routing {
    /// Port count of the routed fabric.
    pub fn ports(&self) -> u16 {
        self.ports
    }

    /// State of one cell.
    pub fn cell(&self, stage: u32, idx: u32) -> CellState {
        self.cells[stage as usize][idx as usize]
    }

    /// Cells crossed by input `i`'s signal, in stage order; `None` if idle.
    pub fn path(&self, input: u16) -> Option<&[CellRef]> {
        self.paths[input as usize].as_deref()
    }

    /// Number of distinct cells in use.
    pub fn active_cells(&self) -> usize {
        self.cells
            .iter()
            .flatten()
            .filter(|&&c| c != CellState::Idle)
            .count()
    }

    /// Total path-cell crossings (Σ per-path cells) — the `Σ n` of Eq. (1).
    pub fn total_crossings(&self) -> usize {
        self.paths.iter().flatten().map(|p| p.len()).sum()
    }

    /// Measured cell-sharing factor: `active cells / total crossings`.
    ///
    /// 1.0 = no sharing, 0.5 = every active cell carries two paths. The
    /// paper assumes 0.9; the ablation bench reports measured values.
    pub fn empirical_alpha(&self) -> f64 {
        let crossings = self.total_crossings();
        if crossings == 0 {
            1.0
        } else {
            self.active_cells() as f64 / crossings as f64
        }
    }

    /// Verify that every routed signal actually reaches its output when
    /// the cell settings are simulated stage by stage. Returns the routed
    /// input→output map.
    pub fn simulate(&self) -> Vec<Option<u16>> {
        let n = self.ports as usize;
        let mut at: Vec<Option<u16>> = (0..n).map(|i| Some(i as u16)).collect();
        // at[w] = which input's signal currently occupies wire w.
        let mut wires: Vec<Option<u16>> = (0..n).map(|i| Some(i as u16)).collect();
        for stage in 0..self.stages {
            let mut next: Vec<Option<u16>> = vec![None; n];
            for cell in 0..n / 2 {
                let a = wires[2 * cell];
                let b = wires[2 * cell + 1];
                match self.cells[stage as usize][cell] {
                    CellState::Cross => {
                        next[wire_after(self.ports, stage, (2 * cell + 1) as u16) as usize] = a;
                        next[wire_after(self.ports, stage, (2 * cell) as u16) as usize] = b;
                    }
                    _ => {
                        next[wire_after(self.ports, stage, (2 * cell) as u16) as usize] = a;
                        next[wire_after(self.ports, stage, (2 * cell + 1) as u16) as usize] = b;
                    }
                }
            }
            wires = next;
        }
        let mut out = vec![None; n];
        for (w, sig) in wires.iter().enumerate() {
            if let Some(input) = sig {
                if self.paths[*input as usize].is_some() {
                    out[*input as usize] = Some(w as u16);
                }
            }
        }
        at.truncate(0);
        drop(at);
        out
    }
}

/// The wire permutation between `stage` and `stage+1` of the recursive
/// Beneš layout used here.
fn wire_after(ports: u16, stage: u32, leg: u16) -> u16 {
    let total = benes::stages(ports); // 2k-1
    if stage + 1 == total {
        return leg; // after the last stage, wires go straight to outputs
    }
    // Boundary b sits after stage b. On the way in (b < k-1) it is the
    // butterfly of the sub-network of size N/2^b; on the way out it is the
    // inverse butterfly of size N/2^(total-2-b).
    let b = stage;
    let half_point = (total - 1) / 2; // k-1
    let going_in = b < half_point;
    let d = if going_in { b } else { total - 2 - b };
    let sub = ports >> d; // size of the Benes at this boundary
    let within = leg % sub;
    let base = leg - within;
    let mapped = if going_in {
        // Outer stage of `sub`: leg w goes to subnet (w%2), position w/2.
        let subnet = within % 2;
        let pos = within / 2;
        subnet * (sub / 2) + pos
    } else {
        // Leaving a subnet: inverse mapping.
        let subnet = within / (sub / 2);
        let pos = within % (sub / 2);
        2 * pos + subnet
    };
    base + mapped
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_perm(ports: u16, f: impl Fn(u16) -> u16) -> Vec<Option<u16>> {
        (0..ports).map(|i| Some(f(i))).collect()
    }

    fn assert_routes(ports: u16, perm: &[Option<u16>]) -> Routing {
        let r = Fabric::route(ports, perm).unwrap();
        let out = r.simulate();
        for (i, &want) in perm.iter().enumerate() {
            assert_eq!(
                out[i], want,
                "{ports}-port: input {i} should reach {want:?}, got {:?}",
                out[i]
            );
        }
        // Every routed path crosses exactly one cell per stage.
        let stages = benes::stages(ports) as usize;
        for (i, p) in perm.iter().enumerate() {
            if p.is_some() {
                let path = r.path(i as u16).unwrap();
                assert_eq!(path.len(), stages, "input {i} path length");
                // One cell per stage, in order.
                for (s, &(stage, _)) in path.iter().enumerate() {
                    assert_eq!(stage as usize, s);
                }
            } else {
                assert!(r.path(i as u16).is_none());
            }
        }
        r
    }

    #[test]
    fn identity_routes_all_bar_reachability() {
        for ports in [2u16, 4, 8, 16, 32, 64] {
            assert_routes(ports, &full_perm(ports, |i| i));
        }
    }

    #[test]
    fn reversal_routes() {
        for ports in [2u16, 4, 8, 16, 32, 64, 128] {
            assert_routes(ports, &full_perm(ports, |i| ports - 1 - i));
        }
    }

    #[test]
    fn rotation_routes() {
        for ports in [4u16, 8, 16, 64] {
            assert_routes(ports, &full_perm(ports, |i| (i + 1) % ports));
        }
    }

    #[test]
    fn pseudo_random_permutations_route() {
        // Deterministic LCG-shuffled permutations at several sizes.
        for ports in [8u16, 16, 32, 64, 256] {
            let mut p: Vec<u16> = (0..ports).collect();
            let mut state = 0x2545F4914F6CDD1Du64;
            for i in (1..p.len()).rev() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                p.swap(i, j);
            }
            let perm: Vec<Option<u16>> = p.into_iter().map(Some).collect();
            assert_routes(ports, &perm);
        }
    }

    #[test]
    fn partial_permutations_route() {
        // Only a quarter of the inputs active.
        let mut perm = vec![None; 16];
        perm[3] = Some(9);
        perm[7] = Some(0);
        perm[12] = Some(15);
        perm[13] = Some(1);
        let r = assert_routes(16, &perm);
        assert!(r.empirical_alpha() > 0.5);
        assert!(r.total_crossings() == 4 * 7); // 4 paths x 7 stages
    }

    #[test]
    fn full_permutation_shares_every_cell() {
        // With all N inputs active every cell carries exactly two paths.
        let r = assert_routes(16, &full_perm(16, |i| i));
        assert_eq!(r.active_cells(), benes::total_cells(16) as usize);
        assert!((r.empirical_alpha() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_connection_shares_nothing() {
        let mut perm = vec![None; 8];
        perm[5] = Some(2);
        let r = assert_routes(8, &perm);
        assert_eq!(r.active_cells(), 5);
        assert_eq!(r.empirical_alpha(), 1.0);
    }

    #[test]
    fn empty_routing_is_alpha_one() {
        let r = Fabric::route(8, &[None; 8]).unwrap();
        assert_eq!(r.total_crossings(), 0);
        assert_eq!(r.empirical_alpha(), 1.0);
        assert_eq!(r.active_cells(), 0);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(
            Fabric::route(6, &[None; 6]).unwrap_err(),
            RouteError::BadPortCount(6)
        );
        // Duplicate output.
        let mut perm = vec![None; 4];
        perm[0] = Some(1);
        perm[2] = Some(1);
        assert_eq!(
            Fabric::route(4, &perm).unwrap_err(),
            RouteError::NotAPartialPermutation
        );
        // Out-of-range output.
        let mut perm = vec![None; 4];
        perm[0] = Some(4);
        assert_eq!(
            Fabric::route(4, &perm).unwrap_err(),
            RouteError::NotAPartialPermutation
        );
        // Wrong length.
        assert_eq!(
            Fabric::route(4, &[None; 3]).unwrap_err(),
            RouteError::NotAPartialPermutation
        );
    }

    /// The paper's α = 0.9 sits between a lightly loaded switch (α → 1)
    /// and a fully loaded one (α = 0.5): measured α decreases with load.
    #[test]
    fn alpha_decreases_with_load() {
        let ports = 64u16;
        let mut alphas = vec![];
        for active in [8usize, 24, 48, 64] {
            let mut perm = vec![None; ports as usize];
            // Deterministic spread: input k -> output (k*37+11) % ports.
            for k in 0..active {
                let i = (k * (ports as usize / active)) % ports as usize;
                let o = ((i * 37 + 11) % ports as usize) as u16;
                // Avoid duplicate outputs.
                if perm.iter().all(|&p| p != Some(o)) {
                    perm[i] = Some(o);
                }
            }
            let r = Fabric::route(ports, &perm).unwrap();
            let out = r.simulate();
            for (i, want) in perm.iter().enumerate() {
                assert_eq!(out[i], *want);
            }
            alphas.push(r.empirical_alpha());
        }
        assert!(
            alphas.windows(2).all(|w| w[0] >= w[1] - 1e-9),
            "alpha should not increase with load: {alphas:?}"
        );
        // Light load shares little (α → 1), full load shares everything
        // (α = 0.5); the paper's assumed 0.9 corresponds to a lightly
        // loaded switch.
        assert!(alphas[0] > 0.7, "light load mostly share-free: {alphas:?}");
        assert_eq!(*alphas.last().unwrap(), 0.5);
    }
}
