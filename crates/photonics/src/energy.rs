//! Equation (1): per-flow optical switch energy, plus transceiver energy.

use crate::benes;
use crate::config::PhotonicsConfig;
use serde::{Deserialize, Serialize};

/// The ordered list of optical switches (by port count) a flow traverses.
///
/// From Figure 2 of the paper: an intra-rack flow goes
/// `box switch → rack switch → box switch`; an inter-rack flow goes
/// `box → rack → inter-rack → rack → box`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchPath {
    /// Port counts of the traversed switches, in order.
    pub switch_ports: Vec<u16>,
    /// Number of optical links traversed (each link = one transceiver pair).
    pub link_hops: u32,
}

impl SwitchPath {
    /// Intra-rack path: source box switch, rack switch, destination box
    /// switch; two link traversals.
    pub fn intra_rack(box_ports: u16, rack_ports: u16) -> Self {
        SwitchPath {
            switch_ports: vec![box_ports, rack_ports, box_ports],
            link_hops: 2,
        }
    }

    /// Inter-rack path: box, rack, inter-rack, rack, box; four link
    /// traversals (Figure 2's communication journey).
    pub fn inter_rack(box_ports: u16, rack_ports: u16, inter_ports: u16) -> Self {
        SwitchPath {
            switch_ports: vec![box_ports, rack_ports, inter_ports, rack_ports, box_ports],
            link_hops: 4,
        }
    }

    /// Total MRR cells along the whole path (Σ per-switch path cells) —
    /// the `n` of Equation (1).
    pub fn total_path_cells(&self) -> u32 {
        self.switch_ports
            .iter()
            .map(|&p| benes::path_cells(p))
            .sum()
    }
}

/// Evaluates Equation (1) and the transceiver model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EnergyModel {
    cfg: PhotonicsConfig,
}

impl EnergyModel {
    /// Build from validated constants.
    pub fn new(cfg: PhotonicsConfig) -> Self {
        cfg.validate().expect("invalid photonics configuration");
        EnergyModel { cfg }
    }

    /// The constants in force.
    pub fn config(&self) -> &PhotonicsConfig {
        &self.cfg
    }

    /// Steady trim power for `n` path cells: `α · n · P_trimcell`, watts.
    pub fn trim_power_w(&self, n_cells: u32) -> f64 {
        self.cfg.alpha * n_cells as f64 * self.cfg.p_trim_mw * 1e-3
    }

    /// One-off reconfiguration energy for a path, joules:
    /// `Σ_switch (n_sw / 2) · P_swcell · lat_sw(N_sw)`.
    pub fn reconfiguration_energy_j(&self, path: &SwitchPath) -> f64 {
        path.switch_ports
            .iter()
            .map(|&ports| {
                let n = benes::path_cells(ports) as f64;
                let lat = benes::switch_latency_s(ports, self.cfg.switch_latency_ns_per_stage);
                (n / 2.0) * self.cfg.p_sw_mw * 1e-3 * lat
            })
            .sum()
    }

    /// Equation (1) in full for one flow alive `lifetime_s` seconds.
    pub fn flow_switch_energy_j(&self, path: &SwitchPath, lifetime_s: f64) -> f64 {
        self.reconfiguration_energy_j(path)
            + self.trim_power_w(path.total_path_cells()) * lifetime_s
    }

    /// Transceiver energy for a flow of `mbps` alive `lifetime_s` seconds,
    /// crossing `link_hops` optical links: `pJ/bit × bits × hops`.
    pub fn transceiver_energy_j(&self, mbps: u64, lifetime_s: f64, link_hops: u32) -> f64 {
        let bits = mbps as f64 * 1e6 * lifetime_s;
        self.cfg.transceiver_pj_per_bit * 1e-12 * bits * link_hops as f64
    }

    /// Total optical energy for one flow: switches + transceivers.
    pub fn flow_total_energy_j(&self, path: &SwitchPath, mbps: u64, lifetime_s: f64) -> f64 {
        self.flow_switch_energy_j(path, lifetime_s)
            + self.transceiver_energy_j(mbps, lifetime_s, path.link_hops)
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::new(PhotonicsConfig::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        EnergyModel::default()
    }

    #[test]
    fn paper_path_cell_counts() {
        // Intra-rack: 11 + 15 + 11 = 37 cells.
        assert_eq!(SwitchPath::intra_rack(64, 256).total_path_cells(), 37);
        // Inter-rack: 11 + 15 + 17 + 15 + 11 = 69 cells.
        assert_eq!(SwitchPath::inter_rack(64, 256, 512).total_path_cells(), 69);
    }

    #[test]
    fn trim_power_matches_hand_calculation() {
        // α·n·P_trim = 0.9 × 37 × 22.67 mW = 754.911 mW.
        let w = model().trim_power_w(37);
        assert!((w - 0.754_911).abs() < 1e-9, "{w}");
    }

    /// The paper's observation that inter-rack paths burn ~1.9× the
    /// switch power of intra-rack paths (69 vs 37 cells).
    #[test]
    fn inter_rack_costs_more() {
        let m = model();
        let intra = SwitchPath::intra_rack(64, 256);
        let inter = SwitchPath::inter_rack(64, 256, 512);
        let t = 10_000.0;
        let ei = m.flow_switch_energy_j(&intra, t);
        let ex = m.flow_switch_energy_j(&inter, t);
        let ratio = ex / ei;
        assert!((ratio - 69.0 / 37.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn reconfiguration_energy_is_negligible_but_positive() {
        let m = model();
        let p = SwitchPath::intra_rack(64, 256);
        let reconf = m.reconfiguration_energy_j(&p);
        assert!(reconf > 0.0);
        // Micro-joules vs. hundreds of joules of trim for a 1000 s VM.
        assert!(reconf < 1e-3);
        assert!(m.flow_switch_energy_j(&p, 1000.0) > 700.0);
    }

    #[test]
    fn switch_energy_is_linear_in_lifetime() {
        let m = model();
        let p = SwitchPath::intra_rack(64, 256);
        let e1 = m.flow_switch_energy_j(&p, 100.0);
        let e2 = m.flow_switch_energy_j(&p, 200.0);
        let reconf = m.reconfiguration_energy_j(&p);
        assert!(((e2 - reconf) / (e1 - reconf) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn transceiver_energy_hand_check() {
        // 200 Gb/s for 1 s over 1 hop: 2e11 bits × 22.5 pJ = 4.5 J.
        let e = model().transceiver_energy_j(200_000, 1.0, 1);
        assert!((e - 4.5).abs() < 1e-9, "{e}");
        // Two hops double it.
        let e2 = model().transceiver_energy_j(200_000, 1.0, 2);
        assert!((e2 - 9.0).abs() < 1e-9);
    }

    #[test]
    fn total_is_sum_of_parts() {
        let m = model();
        let p = SwitchPath::inter_rack(64, 256, 512);
        let total = m.flow_total_energy_j(&p, 40_000, 500.0);
        let parts = m.flow_switch_energy_j(&p, 500.0) + m.transceiver_energy_j(40_000, 500.0, 4);
        assert!((total - parts).abs() < 1e-9);
    }

    #[test]
    fn zero_lifetime_leaves_only_reconfiguration() {
        let m = model();
        let p = SwitchPath::intra_rack(64, 256);
        let e = m.flow_total_energy_j(&p, 40_000, 0.0);
        assert!((e - m.reconfiguration_energy_j(&p)).abs() < 1e-15);
    }

    #[test]
    fn alpha_scales_trim_linearly() {
        let mut cfg = PhotonicsConfig::paper();
        cfg.alpha = 0.5;
        let half = EnergyModel::new(cfg).trim_power_w(100);
        cfg.alpha = 1.0;
        let full = EnergyModel::new(cfg).trim_power_w(100);
        assert!((full / half - 2.0).abs() < 1e-12);
    }
}
