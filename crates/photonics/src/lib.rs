//! # risa-photonics — optical switch and transceiver energy models
//!
//! Section 3.2 of the paper models each optical circuit switch as a
//! **Beneš network of microring-resonator (MRR) 2×2 cells**. A flow through
//! an N-port Beneš switch crosses one cell per stage, i.e.
//! `n = 2·log2(N) − 1` cells; setting the path up reconfigures about half
//! of them, and every crossed cell must be *trimmed* (thermally held at its
//! state) for the flow's whole lifetime. Equation (1):
//!
//! ```text
//! E_sw = (n/2 · P_swcell · lat_sw)  +  (α · n · P_trimcell · T)
//! ```
//!
//! with the paper's constants `P_trimcell = 22.67 mW`,
//! `P_swcell = 13.75 mW`, `α = 0.9` (cell sharing factor), and `lat_sw`
//! growing with switch size. Every electronic→photonic conversion goes
//! through a Luxtera-style SiP transceiver at **22.5 pJ/bit** (§3.1).
//!
//! ```
//! use risa_photonics::{benes, EnergyModel, PhotonicsConfig, SwitchPath};
//!
//! // A 64-port box switch: 2*log2(64)-1 = 11 stages, 32 cells each.
//! assert_eq!(benes::stages(64), 11);
//! assert_eq!(benes::total_cells(64), 11 * 32);
//! assert_eq!(benes::path_cells(64), 11);
//!
//! let model = EnergyModel::new(PhotonicsConfig::paper());
//! // An intra-rack flow crosses box(64) + rack(256) + box(64) switches.
//! let path = SwitchPath::intra_rack(64, 256);
//! assert_eq!(path.total_path_cells(), 11 + 15 + 11);
//!
//! // Trim power dominates for any realistic lifetime.
//! let e = model.flow_switch_energy_j(&path, 3600.0);
//! let trim_only = model.trim_power_w(path.total_path_cells()) * 3600.0;
//! assert!((e - trim_only) / e < 0.001);
//! ```

#![warn(missing_docs)]

pub mod benes;
mod config;
mod energy;
pub mod fabric;

pub use config::PhotonicsConfig;
pub use energy::{EnergyModel, SwitchPath};
