//! Plain-text table rendering for paper-style experiment reports.
//!
//! Every experiment binary and bench in this workspace ends by printing a
//! table whose rows mirror a table/figure of the paper (e.g. Figure 5's
//! four inter-rack-assignment counts). Keeping the renderer here means the
//! report format is identical everywhere and testable in one place.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Pad on the right.
    Left,
    /// Pad on the left (numbers).
    Right,
}

/// A simple monospace table builder.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given title and column headers. All columns are
    /// left-aligned until [`Table::align`] is called.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            aligns: vec![Align::Left; headers.len()],
            rows: Vec::new(),
        }
    }

    /// Set per-column alignment (panics if the arity differs from headers).
    pub fn align(mut self, aligns: &[Align]) -> Self {
        assert_eq!(aligns.len(), self.headers.len(), "alignment arity");
        self.aligns = aligns.to_vec();
        self
    }

    /// Append a row (panics if the arity differs from headers).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of displayable items.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a `String` with a title line, a rule, headers, and rows.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let total: usize = widths.iter().sum::<usize>() + 3 * ncols.saturating_sub(1);
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let _ = writeln!(out, "{}", "=".repeat(total.max(self.title.len())));
        let fmt_row = |cells: &[String], widths: &[usize], aligns: &[Align]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("   ");
                }
                match aligns[i] {
                    Align::Left => {
                        let _ = write!(line, "{:<w$}", cell, w = widths[i]);
                    }
                    Align::Right => {
                        let _ = write!(line, "{:>w$}", cell, w = widths[i]);
                    }
                }
            }
            // Right-pad is cosmetic; trim to keep diffs clean.
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths, &self.aligns));
        let _ = writeln!(out, "{}", "-".repeat(total.max(self.title.len())));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths, &self.aligns));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_fig5_style_table() {
        let mut t = Table::new(
            "Figure 5: inter-rack VM assignments (synthetic)",
            &["algorithm", "inter-rack"],
        )
        .align(&[Align::Left, Align::Right]);
        t.row_display(&["NULB", "255"]);
        t.row_display(&["NALB", "255"]);
        t.row_display(&["RISA", "7"]);
        t.row_display(&["RISA-BF", "2"]);
        let s = t.render();
        assert!(s.contains("RISA-BF"));
        assert!(s.contains("255"));
        // header + rule + column line + rule + 4 rows
        assert_eq!(s.lines().count(), 8);
        // Right-aligned number column: "7" is padded left.
        let risa_line = s.lines().find(|l| l.starts_with("RISA ")).unwrap();
        assert!(risa_line.ends_with('7'));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".to_string()]);
    }

    #[test]
    fn empty_and_len() {
        let mut t = Table::new("t", &["c"]);
        assert!(t.is_empty());
        t.row_display(&[1]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn display_matches_render() {
        let mut t = Table::new("t", &["c"]);
        t.row_display(&["v"]);
        assert_eq!(format!("{t}"), t.render());
    }

    #[test]
    fn column_width_tracks_longest_cell() {
        let mut t = Table::new("t", &["name", "v"]);
        t.row_display(&["a-very-long-algorithm-name", "1"]);
        t.row_display(&["x", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        // Both data rows align their second column at the same offset.
        let pos1 = lines[4].find('1').unwrap();
        let pos2 = lines[5].find('2').unwrap();
        assert_eq!(pos1, pos2);
    }
}
