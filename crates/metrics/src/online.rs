//! Streaming mean/variance/extrema via Welford's algorithm.

use serde::{Deserialize, Serialize};

/// Online accumulator for count, mean, variance, min and max.
///
/// Used for per-VM statistics such as the average CPU-RAM round-trip latency
/// of Figure 10 (where each admitted VM contributes one observation).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty, so reports never NaN).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn matches_closed_form() {
        let mut s = OnlineStats::new();
        let xs = [110.0, 330.0, 110.0, 110.0]; // a latency-like sample
        for &x in &xs {
            s.record(x);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 165.0).abs() < 1e-9);
        assert_eq!(s.min(), Some(110.0));
        assert_eq!(s.max(), Some(330.0));
        // population variance of [110,330,110,110]: mean 165, sq devs
        // (55^2*3 + 165^2)/4 = (9075 + 27225)/4 = 9075
        assert!((s.variance() - 9075.0).abs() < 1e-6);
        assert!((s.sum() - 660.0).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 50.0 + 100.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..317] {
            a.record(x);
        }
        for &x in &xs[317..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-6);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.record(5.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 5.0);
    }
}
