//! Streaming mean/variance/extrema via Welford's algorithm.

use serde::{Deserialize, Serialize};

/// Online accumulator for count, mean, variance, min and max.
///
/// Used for per-VM statistics such as the average CPU-RAM round-trip latency
/// of Figure 10 (where each admitted VM contributes one observation).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty, so reports never NaN).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Checkpoint encoding: `(n, mean, m2, min, max)` with every float as
    /// its IEEE-754 bit pattern. The empty accumulator's ±∞ sentinels are
    /// not JSON-representable as floats, so checkpoints carry bits and
    /// round-trip every state exactly.
    pub fn to_raw_bits(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.n,
            self.mean.to_bits(),
            self.m2.to_bits(),
            self.min.to_bits(),
            self.max.to_bits(),
        )
    }

    /// Rebuild an accumulator from [`OnlineStats::to_raw_bits`] output.
    pub fn from_raw_bits((n, mean, m2, min, max): (u64, u64, u64, u64, u64)) -> Self {
        OnlineStats {
            n,
            mean: f64::from_bits(mean),
            m2: f64::from_bits(m2),
            min: f64::from_bits(min),
            max: f64::from_bits(max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn matches_closed_form() {
        let mut s = OnlineStats::new();
        let xs = [110.0, 330.0, 110.0, 110.0]; // a latency-like sample
        for &x in &xs {
            s.record(x);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 165.0).abs() < 1e-9);
        assert_eq!(s.min(), Some(110.0));
        assert_eq!(s.max(), Some(330.0));
        // population variance of [110,330,110,110]: mean 165, sq devs
        // (55^2*3 + 165^2)/4 = (9075 + 27225)/4 = 9075
        assert!((s.variance() - 9075.0).abs() < 1e-6);
        assert!((s.sum() - 660.0).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 50.0 + 100.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..317] {
            a.record(x);
        }
        for &x in &xs[317..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-6);
    }

    #[test]
    fn raw_bits_round_trip_is_exact_even_when_empty() {
        // The empty accumulator's ±∞ min/max sentinels must survive; the
        // derived serde path cannot represent them in JSON.
        let mut samples = vec![OnlineStats::new()];
        let mut populated = OnlineStats::new();
        for x in [110.0, 330.0, 0.1 + 0.2] {
            populated.record(x);
        }
        samples.push(populated);
        for s in samples {
            let back = OnlineStats::from_raw_bits(s.to_raw_bits());
            assert_eq!(back.to_raw_bits(), s.to_raw_bits());
            assert_eq!(back.count(), s.count());
            assert_eq!(back.min(), s.min());
            assert_eq!(back.max(), s.max());
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.record(5.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 5.0);
    }
}
