//! Time-weighted averaging of a piecewise-constant signal.
//!
//! Utilization in the paper (Figure 8, and the §5.1 CPU/RAM/storage
//! utilizations) is an average **over time**, not over events: a VM that
//! holds 8 units for 10 000 time units contributes 100× more than one that
//! holds them for 100. `TimeWeighted` integrates the signal exactly between
//! change points.

use serde::{Deserialize, Serialize};

/// Integrates a piecewise-constant `f64` signal over simulated time.
///
/// The caller reports every change with [`TimeWeighted::set`]; queries close
/// the current segment implicitly. Times are plain `f64` time units so this
/// crate stays independent of `risa-des` (the sim driver converts).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeighted {
    start: f64,
    last_t: f64,
    value: f64,
    integral: f64,
    peak: f64,
}

impl TimeWeighted {
    /// Start tracking at time `t0` with initial value `v0`.
    pub fn new(t0: f64, v0: f64) -> Self {
        TimeWeighted {
            start: t0,
            last_t: t0,
            value: v0,
            integral: 0.0,
            peak: v0,
        }
    }

    /// Change the signal to `v` at time `t`. `t` must be ≥ the previous
    /// change point; the elapsed segment is accumulated at the old value.
    pub fn set(&mut self, t: f64, v: f64) {
        debug_assert!(
            t >= self.last_t,
            "time went backwards: {t} < {}",
            self.last_t
        );
        self.integral += self.value * (t - self.last_t).max(0.0);
        self.last_t = t;
        self.value = v;
        self.peak = self.peak.max(v);
    }

    /// Add `delta` to the current value at time `t` (convenience for
    /// counters like "units in use").
    pub fn add(&mut self, t: f64, delta: f64) {
        let v = self.value + delta;
        self.set(t, v);
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Greatest value the signal has reached.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Integral of the signal from start to `t_end`.
    pub fn integral_to(&self, t_end: f64) -> f64 {
        self.integral + self.value * (t_end - self.last_t).max(0.0)
    }

    /// Time-weighted mean over `[start, t_end]`; 0 for an empty interval.
    pub fn mean_to(&self, t_end: f64) -> f64 {
        let span = t_end - self.start;
        if span <= 0.0 {
            0.0
        } else {
            self.integral_to(t_end) / span
        }
    }
}

impl Default for TimeWeighted {
    fn default() -> Self {
        TimeWeighted::new(0.0, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal_means_itself() {
        let tw = TimeWeighted::new(0.0, 3.5);
        assert_eq!(tw.mean_to(10.0), 3.5);
        assert_eq!(tw.integral_to(10.0), 35.0);
        assert_eq!(tw.peak(), 3.5);
    }

    #[test]
    fn step_function_integrates_exactly() {
        // 0 for [0,10), 4 for [10,20), 2 for [20,40]
        let mut tw = TimeWeighted::new(0.0, 0.0);
        tw.set(10.0, 4.0);
        tw.set(20.0, 2.0);
        assert_eq!(tw.integral_to(40.0), 0.0 * 10.0 + 4.0 * 10.0 + 2.0 * 20.0);
        assert_eq!(tw.mean_to(40.0), 80.0 / 40.0);
        assert_eq!(tw.peak(), 4.0);
        assert_eq!(tw.current(), 2.0);
    }

    #[test]
    fn add_tracks_occupancy() {
        // VM arrives at t=0 holding 2 units, another at t=5 holding 3,
        // first departs at t=10. Occupancy: 2,5,3.
        let mut tw = TimeWeighted::new(0.0, 0.0);
        tw.add(0.0, 2.0);
        tw.add(5.0, 3.0);
        tw.add(10.0, -2.0);
        assert_eq!(tw.current(), 3.0);
        assert_eq!(tw.peak(), 5.0);
        // ∫ = 2*5 + 5*5 + 3*10 over [0,20]
        assert_eq!(tw.integral_to(20.0), 10.0 + 25.0 + 30.0);
    }

    #[test]
    fn empty_interval_is_zero_mean() {
        let tw = TimeWeighted::new(7.0, 9.9);
        assert_eq!(tw.mean_to(7.0), 0.0);
        assert_eq!(tw.mean_to(6.0), 0.0);
    }

    #[test]
    fn repeated_set_at_same_time_keeps_last() {
        let mut tw = TimeWeighted::new(0.0, 1.0);
        tw.set(5.0, 2.0);
        tw.set(5.0, 7.0); // zero-width segment at value 2
        assert_eq!(tw.integral_to(10.0), 1.0 * 5.0 + 7.0 * 5.0);
        assert_eq!(tw.peak(), 7.0);
    }
}
