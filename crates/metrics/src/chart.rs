//! ASCII bar charts, so experiment output visually mirrors the paper's
//! bar figures (Figures 5, 7, 9, 10, 11, 12).

use std::fmt::Write as _;

/// A horizontal bar chart with labelled bars, optionally grouped.
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    unit: String,
    width: usize,
    bars: Vec<(String, f64)>,
}

impl BarChart {
    /// New chart. `unit` is appended to each value label ("kW", "ns", …).
    pub fn new(title: impl Into<String>, unit: impl Into<String>) -> Self {
        BarChart {
            title: title.into(),
            unit: unit.into(),
            width: 48,
            bars: Vec::new(),
        }
    }

    /// Maximum bar width in characters (default 48).
    pub fn width(mut self, width: usize) -> Self {
        assert!(width >= 4, "bars need some room");
        self.width = width;
        self
    }

    /// Append one bar.
    pub fn bar(&mut self, label: impl Into<String>, value: f64) -> &mut Self {
        let value = if value.is_finite() { value } else { 0.0 };
        self.bars.push((label.into(), value.max(0.0)));
        self
    }

    /// Number of bars so far.
    pub fn len(&self) -> usize {
        self.bars.len()
    }

    /// True when no bars have been added.
    pub fn is_empty(&self) -> bool {
        self.bars.is_empty()
    }

    /// Render to a string. Bars scale linearly to the largest value; zero
    /// and all-zero charts render without dividing by zero.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let label_w = self.bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let max = self
            .bars
            .iter()
            .map(|&(_, v)| v)
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        for (label, value) in &self.bars {
            let n = ((value / max) * self.width as f64).round() as usize;
            let bar: String = "#".repeat(n);
            let _ = writeln!(
                out,
                "  {label:<label_w$} |{bar:<bar_w$} {value:.2} {unit}",
                bar_w = self.width,
                unit = self.unit,
            );
        }
        out
    }
}

impl std::fmt::Display for BarChart {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_fig5_style_bars() {
        let mut c = BarChart::new("Inter-rack VM assignments", "VMs").width(20);
        c.bar("NULB", 255.0);
        c.bar("NALB", 255.0);
        c.bar("RISA", 7.0);
        c.bar("RISA-BF", 2.0);
        let s = c.render();
        assert!(s.contains("NULB"));
        // The largest bars reach the full width.
        let nulb_line = s.lines().find(|l| l.contains("NULB ")).unwrap();
        assert!(nulb_line.contains(&"#".repeat(20)));
        // The small bars are visibly shorter (7/255*20 ≈ 1).
        let risa_line = s.lines().find(|l| l.contains("RISA ")).unwrap();
        assert!(!risa_line.contains("##"));
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
    }

    #[test]
    fn zero_and_empty_are_safe() {
        let mut c = BarChart::new("t", "x");
        assert!(c.is_empty());
        c.bar("a", 0.0);
        c.bar("b", 0.0);
        let s = c.render();
        assert!(s.contains("0.00 x"));
        assert!(!s.contains('#'));
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        let mut c = BarChart::new("t", "");
        c.bar("neg", -5.0);
        c.bar("nan", f64::NAN);
        c.bar("ok", 1.0);
        let s = c.render();
        let neg = s.lines().find(|l| l.contains("neg")).unwrap();
        assert!(!neg.contains('#'));
    }

    #[test]
    fn labels_align() {
        let mut c = BarChart::new("t", "u").width(8);
        c.bar("x", 1.0);
        c.bar("longer-label", 2.0);
        let s = c.render();
        let pipes: Vec<usize> = s.lines().skip(1).map(|l| l.find('|').unwrap()).collect();
        assert_eq!(pipes[0], pipes[1]);
    }

    #[test]
    fn display_matches_render() {
        let mut c = BarChart::new("t", "u");
        c.bar("a", 3.0);
        assert_eq!(format!("{c}"), c.render());
    }
}
