//! Fixed-bin histograms matching the paper's Figure 6 methodology.
//!
//! Figure 6 of the paper characterizes the Azure workloads with 10-bin
//! histograms over the observed range (matplotlib `hist` semantics: equal
//! width bins over `[min, max]`, right-inclusive last bin). We reproduce
//! those semantics exactly so our regenerated Figure 6 bin counts can be
//! compared 1:1 against the numbers printed in the paper.

use serde::{Deserialize, Serialize};

/// Bin layout: `bins` equal-width bins spanning `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramSpec {
    /// Inclusive lower bound of the first bin.
    pub lo: f64,
    /// Inclusive upper bound of the last bin.
    pub hi: f64,
    /// Number of equal-width bins (matplotlib default: 10).
    pub bins: usize,
}

impl HistogramSpec {
    /// The paper's Figure 6 layout: 10 bins over the data range.
    pub fn paper_fig6(lo: f64, hi: f64) -> Self {
        HistogramSpec { lo, hi, bins: 10 }
    }

    /// Infer the layout from data, like `plt.hist(x)` does.
    pub fn from_data(data: &[f64], bins: usize) -> Self {
        let lo = data.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let (lo, hi) = if data.is_empty() {
            (0.0, 1.0)
        } else {
            (lo, hi)
        };
        HistogramSpec { lo, hi, bins }
    }

    /// Width of each bin.
    pub fn width(&self) -> f64 {
        (self.hi - self.lo) / self.bins as f64
    }

    /// Bin index for `x`, or `None` when outside `[lo, hi]`.
    ///
    /// Matplotlib semantics: bins are half-open `[a, b)` except the last,
    /// which is closed `[a, b]`.
    pub fn bin_of(&self, x: f64) -> Option<usize> {
        if x < self.lo || x > self.hi {
            return None;
        }
        if x == self.hi {
            return Some(self.bins - 1);
        }
        let idx = ((x - self.lo) / self.width()) as usize;
        Some(idx.min(self.bins - 1))
    }

    /// `[start, end)` edges of bin `i` (last bin end is inclusive).
    pub fn edges(&self, i: usize) -> (f64, f64) {
        let w = self.width();
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }
}

/// A populated fixed-bin histogram.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BinnedHistogram {
    spec: HistogramSpec,
    counts: Vec<u64>,
    out_of_range: u64,
    total: u64,
}

impl BinnedHistogram {
    /// Empty histogram with the given layout.
    pub fn new(spec: HistogramSpec) -> Self {
        BinnedHistogram {
            counts: vec![0; spec.bins],
            spec,
            out_of_range: 0,
            total: 0,
        }
    }

    /// Build the paper-style 10-bin histogram straight from data.
    pub fn of_data(data: &[f64], bins: usize) -> Self {
        let mut h = BinnedHistogram::new(HistogramSpec::from_data(data, bins));
        for &x in data {
            h.record(x);
        }
        h
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        match self.spec.bin_of(x) {
            Some(i) => self.counts[i] += 1,
            None => self.out_of_range += 1,
        }
    }

    /// Per-bin counts, first to last.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Layout used by this histogram.
    pub fn spec(&self) -> &HistogramSpec {
        &self.spec
    }

    /// Observations that fell outside `[lo, hi]`.
    pub fn out_of_range(&self) -> u64 {
        self.out_of_range
    }

    /// Total observations recorded (in and out of range).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Render as `"[lo,hi) count"` lines, the format the Fig 6 bench prints.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let (a, b) = self.spec.edges(i);
            let close = if i + 1 == self.spec.bins { ']' } else { ')' };
            let _ = writeln!(s, "[{a:8.2}, {b:8.2}{close}  {c}");
        }
        if self.out_of_range > 0 {
            let _ = writeln!(s, "out-of-range      {}", self.out_of_range);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matplotlib_last_bin_is_inclusive() {
        let spec = HistogramSpec::paper_fig6(1.0, 8.0);
        assert_eq!(spec.bin_of(8.0), Some(9));
        assert_eq!(spec.bin_of(1.0), Some(0));
        assert_eq!(spec.bin_of(0.99), None);
        assert_eq!(spec.bin_of(8.01), None);
    }

    /// The decisive check: Azure-3000 CPU cores {1,2,4,8} with 10 bins over
    /// [1,8] must land in bins 0, 1, 4 and 9 — exactly where the paper's
    /// Figure 6(a) shows its four non-zero bars (1326/1269/316/89).
    #[test]
    fn azure_cpu_core_values_land_in_paper_bins() {
        let spec = HistogramSpec::paper_fig6(1.0, 8.0);
        assert_eq!(spec.bin_of(1.0), Some(0));
        assert_eq!(spec.bin_of(2.0), Some(1));
        assert_eq!(spec.bin_of(4.0), Some(4));
        assert_eq!(spec.bin_of(8.0), Some(9));
    }

    /// Likewise RAM values {1.75, 3.5, 7, 14, 28, 56} GB over [1.75, 56]
    /// produce non-zero bins 0, 0, 0, 1(?), 2, 4, 9 — the paper's Fig 6(a)
    /// RAM panel shows bars in bins 0,1,2,4,9.
    #[test]
    fn azure_ram_values_land_in_paper_bins() {
        let spec = HistogramSpec::paper_fig6(1.75, 56.0);
        assert_eq!(spec.bin_of(1.75), Some(0));
        assert_eq!(spec.bin_of(3.5), Some(0));
        assert_eq!(spec.bin_of(7.0), Some(0));
        assert_eq!(spec.bin_of(14.0), Some(2));
        assert_eq!(spec.bin_of(28.0), Some(4));
        assert_eq!(spec.bin_of(56.0), Some(9));
    }

    #[test]
    fn of_data_counts_everything() {
        let data = [1.0, 1.0, 2.0, 4.0, 8.0];
        let h = BinnedHistogram::of_data(&data, 10);
        assert_eq!(h.total(), 5);
        assert_eq!(h.out_of_range(), 0);
        assert_eq!(h.counts().iter().sum::<u64>(), 5);
        assert_eq!(h.counts()[0], 2);
    }

    #[test]
    fn out_of_range_is_tracked_not_dropped() {
        let mut h = BinnedHistogram::new(HistogramSpec::paper_fig6(0.0, 10.0));
        h.record(-1.0);
        h.record(11.0);
        h.record(5.0);
        assert_eq!(h.out_of_range(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn render_mentions_every_bin() {
        let h = BinnedHistogram::of_data(&[0.0, 1.0, 2.0], 10);
        let s = h.render();
        assert_eq!(s.lines().count(), 10);
    }

    #[test]
    fn empty_data_spec_is_sane() {
        let spec = HistogramSpec::from_data(&[], 10);
        assert_eq!(spec.lo, 0.0);
        assert_eq!(spec.hi, 1.0);
    }
}
