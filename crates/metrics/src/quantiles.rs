//! Exact sample quantiles over a retained sample set.
//!
//! The paper reports means; a production report also wants tails
//! (p95/p99 trunk utilization, latency percentiles). This is the exact
//! (store-everything) estimator — fine for the sample counts a simulation
//! produces; callers needing bounded memory should subsample upstream.

use serde::{Deserialize, Serialize};

/// An exact quantile estimator over retained `f64` samples.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Quantiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Quantiles {
    /// Empty estimator.
    pub fn new() -> Self {
        Quantiles {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Record one observation (NaN is ignored — it has no order).
    pub fn record(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.samples.push(x);
        self.sorted = false;
    }

    /// Record many observations.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.record(x);
        }
    }

    /// Number of retained samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) with linear interpolation between
    /// order statistics; `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        self.ensure_sorted();
        let n = self.samples.len();
        if n == 1 {
            return Some(self.samples[0]);
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac)
    }

    /// Median (p50).
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// A compact `p50/p95/p99/max` summary line.
    pub fn summary(&mut self) -> Option<String> {
        let p50 = self.quantile(0.5)?;
        let p95 = self.quantile(0.95)?;
        let p99 = self.quantile(0.99)?;
        let max = self.quantile(1.0)?;
        Some(format!(
            "p50 {p50:.3}  p95 {p95:.3}  p99 {p99:.3}  max {max:.3}"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        let mut q = Quantiles::new();
        assert_eq!(q.quantile(0.5), None);
        assert_eq!(q.summary(), None);
        q.record(7.0);
        assert_eq!(q.median(), Some(7.0));
        assert_eq!(q.quantile(0.0), Some(7.0));
        assert_eq!(q.quantile(1.0), Some(7.0));
    }

    #[test]
    fn known_quantiles_of_1_to_100() {
        let mut q = Quantiles::new();
        q.extend((1..=100).map(f64::from));
        assert_eq!(q.count(), 100);
        assert_eq!(q.quantile(0.0), Some(1.0));
        assert_eq!(q.quantile(1.0), Some(100.0));
        // p50 of 1..=100 with linear interpolation: 50.5.
        assert!((q.median().unwrap() - 50.5).abs() < 1e-12);
        // p95: pos = 0.95*99 = 94.05 → 95 + 0.05*(96-95) = 95.05.
        assert!((q.quantile(0.95).unwrap() - 95.05).abs() < 1e-9);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let mut q = Quantiles::new();
        q.extend([5.0, 1.0, 4.0, 2.0, 3.0]);
        assert_eq!(q.median(), Some(3.0));
        // Interleave more records after a query.
        q.record(0.0);
        assert_eq!(q.quantile(0.0), Some(0.0));
    }

    #[test]
    fn nan_ignored() {
        let mut q = Quantiles::new();
        q.record(f64::NAN);
        q.record(1.0);
        assert_eq!(q.count(), 1);
        assert_eq!(q.median(), Some(1.0));
    }

    #[test]
    fn summary_format() {
        let mut q = Quantiles::new();
        q.extend((0..1000).map(|i| i as f64 / 1000.0));
        let s = q.summary().unwrap();
        // p50 = 0.4995, which binary float rounds down at 3 decimals.
        assert!(s.contains("p50 0.499") || s.contains("p50 0.500"), "{s}");
        assert!(s.contains("max 0.999"), "{s}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_quantile_panics() {
        let mut q = Quantiles::new();
        q.record(1.0);
        q.quantile(1.5);
    }
}
