//! # risa-metrics — measurement substrate for the RISA reproduction
//!
//! Every number reported in the paper's evaluation (Figures 5–12) is a
//! statistic over a simulation run: counts of inter-rack assignments,
//! *time-weighted* average utilizations, mean latencies, integrated energy.
//! This crate provides those statistic kernels plus the fixed-bin histogram
//! used to characterize workloads (Figure 6) and a plain-text table renderer
//! so experiment binaries can print paper-style tables.
//!
//! Everything here is deterministic and allocation-light; the simulation
//! driver updates these accumulators millions of times per run.

#![warn(missing_docs)]

mod chart;
mod histogram;
mod online;
mod quantiles;
mod table;
mod timeweighted;

pub use chart::BarChart;
pub use histogram::{BinnedHistogram, HistogramSpec};
pub use online::OnlineStats;
pub use quantiles::Quantiles;
pub use table::{Align, Table};
pub use timeweighted::TimeWeighted;
