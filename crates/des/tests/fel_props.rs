//! Differential properties of the future-event-list backends.
//!
//! `BinaryHeapFel` is the oracle: every other backend must produce the
//! *identical* `(time, seq)` pop order under arbitrary push/pop
//! interleavings — including same-tick bursts, where only the sequence
//! number breaks ties — and the two-lane `EventQueue` must deliver a
//! preloaded sorted stream byte-identically to pushing the same events.

use proptest::prelude::*;
use risa_des::{
    BinaryHeapFel, CalendarFel, EventQueue, FelKind, FutureEventList, QueueEntry, SimTime,
};

/// One scripted operation against a FEL.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Push an entry at this many ticks.
    Push(u64),
    /// Pop the earliest entry.
    Pop,
}

/// Random scripts biased ~3:1 toward pushes, with times drawn from a small
/// range so same-tick collisions and dense buckets are common.
fn ops(max_ticks: u64) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0u32..4, 0u64..max_ticks).prop_map(|(sel, t)| if sel < 3 { Op::Push(t) } else { Op::Pop }),
        0..400,
    )
}

/// Run one script against a backend; returns every popped `(ticks, seq)`.
fn replay<F: FutureEventList<u32>>(fel: &mut F, script: &[Op]) -> Vec<(u64, u64)> {
    let mut popped = Vec::new();
    let mut seq = 0u64;
    for op in script {
        match *op {
            Op::Push(ticks) => {
                fel.push(QueueEntry {
                    at: SimTime::from_ticks(ticks),
                    seq,
                    event: seq as u32,
                });
                seq += 1;
            }
            Op::Pop => {
                // Exercise peek_key too: it must agree with the pop.
                let peeked = fel.peek_key();
                let entry = fel.pop();
                assert_eq!(peeked, entry.as_ref().map(|e| (e.at, e.seq)));
                if let Some(e) = entry {
                    assert_eq!(e.event as u64, e.seq, "payload follows its entry");
                    popped.push((e.at.ticks(), e.seq));
                }
            }
        }
    }
    // Drain the remainder: the tail order matters as much as the live one.
    while let Some(e) = fel.pop() {
        popped.push((e.at.ticks(), e.seq));
    }
    popped
}

proptest! {
    /// Calendar backend vs the heap oracle: identical pop order for any
    /// interleaving, times spanning many buckets.
    #[test]
    fn calendar_matches_heap_oracle(script in ops(4096)) {
        let mut heap = BinaryHeapFel::new();
        let mut calendar = CalendarFel::with_bucket_ticks(64);
        prop_assert_eq!(replay(&mut heap, &script), replay(&mut calendar, &script));
    }

    /// Same-tick-burst-heavy scripts (8 distinct times): the tie-breaking
    /// sequence order must survive bucketing.
    #[test]
    fn calendar_matches_heap_on_same_tick_bursts(script in ops(8)) {
        let mut heap = BinaryHeapFel::new();
        let mut calendar = CalendarFel::with_bucket_ticks(3);
        prop_assert_eq!(replay(&mut heap, &script), replay(&mut calendar, &script));
    }

    /// The default-width calendar behind a real `EventQueue` agrees with a
    /// heap-backed queue push-for-push.
    #[test]
    fn queue_backends_agree(script in ops(1_000_000)) {
        let run = |kind: FelKind| {
            let mut q = EventQueue::with_backend(kind);
            let mut popped = Vec::new();
            for op in &script {
                match *op {
                    Op::Push(ticks) => { q.push(SimTime::from_ticks(ticks), ticks as u32); }
                    Op::Pop => {
                        if let Some(e) = q.pop() {
                            popped.push((e.at.ticks(), e.seq, e.event));
                        }
                    }
                }
            }
            while let Some(e) = q.pop() {
                popped.push((e.at.ticks(), e.seq, e.event));
            }
            popped
        };
        prop_assert_eq!(run(FelKind::Heap), run(FelKind::Calendar));
    }

    /// Two-lane delivery: preloading a sorted prefix then pushing the rest
    /// is byte-identical to pushing everything, on both backends.
    #[test]
    fn preload_equals_push(
        sorted in prop::collection::vec(0u64..500, 0..100),
        pushed in prop::collection::vec(0u64..500, 0..100),
    ) {
        let mut sorted = sorted;
        sorted.sort_unstable();
        for kind in FelKind::ALL {
            let mut preloading = EventQueue::with_backend(kind);
            preloading.preload_sorted(
                sorted.iter().map(|&t| (SimTime::from_ticks(t), t as u32)).collect(),
            );
            let mut pushing = EventQueue::with_backend(kind);
            for &t in &sorted {
                pushing.push(SimTime::from_ticks(t), t as u32);
            }
            for q in [&mut preloading, &mut pushing] {
                for &t in &pushed {
                    q.push(SimTime::from_ticks(t), t as u32);
                }
            }
            let drain = |q: &mut EventQueue<u32>| -> Vec<(u64, u64, u32)> {
                std::iter::from_fn(|| q.pop().map(|e| (e.at.ticks(), e.seq, e.event))).collect()
            };
            prop_assert_eq!(drain(&mut preloading), drain(&mut pushing));
        }
    }
}
