//! The pending-event set: a binary min-heap ordered by `(time, sequence)`.
//!
//! Determinism requirement: when two events are scheduled for the same tick,
//! the one scheduled *first* is delivered first. `BinaryHeap` alone is not
//! stable, so every entry carries a monotonically increasing sequence number
//! that breaks ties.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled event: delivery time, tie-breaking sequence, payload.
#[derive(Debug, Clone)]
pub struct QueueEntry<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Global insertion sequence; earlier insertions fire first on ties.
    pub seq: u64,
    /// The event payload handed to the [`crate::World`] handler.
    pub event: E,
}

impl<E> PartialEq for QueueEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for QueueEntry<E> {}

impl<E> PartialOrd for QueueEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for QueueEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need the *earliest* entry
        // on top, and among equal times the *lowest* sequence.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<QueueEntry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Create an empty queue with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedule `event` for delivery at `at`. Returns the sequence number
    /// assigned to the entry (useful in tests asserting FIFO tie order).
    pub fn push(&mut self, at: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueueEntry { at, seq, event });
        seq
    }

    /// Remove and return the earliest entry, or `None` when empty.
    pub fn pop(&mut self) -> Option<QueueEntry<E>> {
        self.heap.pop()
    }

    /// Delivery time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Drop all pending events (sequence counter keeps advancing so replay
    /// determinism is preserved across a clear).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(u: f64) -> SimTime {
        SimTime::from_units(u)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(5.0), "c");
        q.push(t(1.0), "a");
        q.push(t(3.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(7.0), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        let expect: Vec<_> = (0..100).collect();
        assert_eq!(order, expect, "same-tick events must be FIFO");
    }

    #[test]
    fn interleaved_times_and_ties() {
        let mut q = EventQueue::new();
        q.push(t(2.0), "b1");
        q.push(t(1.0), "a");
        q.push(t(2.0), "b2");
        q.push(t(0.5), "start");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["start", "a", "b1", "b2"]);
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(t(9.0), ());
        q.push(t(4.0), ());
        assert_eq!(q.peek_time(), Some(t(4.0)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_preserves_sequence_counter() {
        let mut q = EventQueue::new();
        q.push(t(1.0), 1u32);
        q.push(t(2.0), 2);
        q.clear();
        assert!(q.is_empty());
        let seq = q.push(t(3.0), 3);
        assert_eq!(seq, 2, "sequence numbers keep increasing after clear");
        assert_eq!(q.scheduled_total(), 3);
    }
}
