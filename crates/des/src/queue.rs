//! The pending-event set: a **two-lane** queue ordered by `(time, seq)`.
//!
//! Lane 1 is an optional arrival lane — either a pre-sorted materialized
//! cursor ([`SortedStream`], loaded via [`EventQueue::preload_sorted`]) or
//! a lazy [`ArrivalSource`] (attached via
//! [`EventQueue::attach_arrivals`]) that produces arrivals on demand; lane
//! 2 is the dynamic future-event list (a pluggable [`FutureEventList`]
//! backend) that holds events scheduled during the run.
//! [`EventQueue::pop`] merges the lanes at `(time, seq)`, so delivery
//! order is exactly what pushing everything into one heap would produce —
//! but the FEL stays O(events in flight) instead of O(all events ever
//! known), the up-front heap build disappears, and with a lazy source the
//! arrivals themselves never need to exist all at once.
//!
//! Determinism requirement: when two events are scheduled for the same
//! tick, the one scheduled *first* is delivered first. No backend is
//! required to be stable, so every entry carries a monotonically increasing
//! sequence number that breaks ties; preloaded entries reserve the sequence
//! numbers they would have been pushed with, and an attached source
//! reserves [`ArrivalSource::remaining`] of them — which is why that count
//! must be exact.

use crate::arrivals::ArrivalSource;
use crate::fel::{EventKey, FelBackend, FelKind, FutureEventList};
use crate::stream::SortedStream;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::fmt;

/// One scheduled event: delivery time, tie-breaking sequence, payload.
#[derive(Debug, Clone)]
pub struct QueueEntry<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Global insertion sequence; earlier insertions fire first on ties.
    pub seq: u64,
    /// The event payload handed to the [`crate::World`] handler.
    pub event: E,
}

impl<E> PartialEq for QueueEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for QueueEntry<E> {}

impl<E> PartialOrd for QueueEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for QueueEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need the *earliest* entry
        // on top, and among equal times the *lowest* sequence.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The arrival lane: materialized cursor or lazy source.
enum ArrivalLane<E> {
    /// Every arrival sits in one sorted `Vec`; the stream assigns its own
    /// (reserved) sequence numbers.
    Sorted(SortedStream<E>),
    /// Arrivals are produced on demand; the queue assigns consecutive
    /// sequence numbers from the reserved base as they are popped.
    Streamed {
        source: Box<dyn ArrivalSource<E> + Send>,
        next_seq: u64,
        /// Last delivered time, for the debug monotonicity check.
        last: Option<SimTime>,
    },
}

impl<E> ArrivalLane<E> {
    fn remaining(&self) -> usize {
        match self {
            ArrivalLane::Sorted(s) => s.remaining(),
            ArrivalLane::Streamed { source, .. } => source.remaining(),
        }
    }
}

/// A deterministic two-lane event queue.
pub struct EventQueue<E> {
    arrivals: Option<ArrivalLane<E>>,
    fel: FelBackend<E>,
    backend: FelKind,
    next_seq: u64,
    peak_fel: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue on the default heap backend.
    pub fn new() -> Self {
        Self::with_capacity_and_backend(0, FelKind::Heap)
    }

    /// Create an empty heap-backed queue with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_capacity_and_backend(cap, FelKind::Heap)
    }

    /// Create an empty queue on the chosen [`FelKind`] backend.
    pub fn with_backend(backend: FelKind) -> Self {
        Self::with_capacity_and_backend(0, backend)
    }

    /// Create an empty queue on `backend`, pre-reserving `cap` entries
    /// where the backend supports it (the heap does; the calendar
    /// allocates per bucket).
    pub fn with_capacity_and_backend(cap: usize, backend: FelKind) -> Self {
        EventQueue {
            arrivals: None,
            fel: backend.instantiate(cap),
            backend,
            next_seq: 0,
            peak_fel: 0,
        }
    }

    /// The backend this queue's future-event list runs on.
    pub fn backend(&self) -> FelKind {
        self.backend
    }

    /// Load the static lane: `events`, sorted by time, are delivered
    /// merged against dynamically pushed events exactly as if they had all
    /// been pushed now (they reserve the next `events.len()` sequence
    /// numbers) — without ever entering the future-event list.
    ///
    /// # Panics
    /// If `events` is not sorted by time, or if a previous preload has not
    /// been fully delivered yet.
    pub fn preload_sorted(&mut self, events: Vec<(SimTime, E)>) {
        assert!(
            self.arrivals.as_ref().is_none_or(|a| a.remaining() == 0),
            "preload_sorted: a previous arrival lane is still being delivered"
        );
        let n = events.len() as u64;
        self.arrivals = Some(ArrivalLane::Sorted(SortedStream::new(
            events,
            self.next_seq,
        )));
        self.next_seq += n;
    }

    /// Load the static lane with a lazy [`ArrivalSource`]: the source's
    /// arrivals are delivered merged against dynamically pushed events
    /// exactly as if they had all been preloaded now — they reserve the
    /// next [`ArrivalSource::remaining`] sequence numbers — but are only
    /// produced when the merge reaches them.
    ///
    /// The source must yield non-decreasing times and an exact `remaining`
    /// count (see [`ArrivalSource`]); given those, delivery is
    /// byte-identical to [`EventQueue::preload_sorted`] of the
    /// materialized equivalent.
    ///
    /// # Panics
    /// If a previous arrival lane has not been fully delivered yet.
    pub fn attach_arrivals(&mut self, source: Box<dyn ArrivalSource<E> + Send>) {
        assert!(
            self.arrivals.as_ref().is_none_or(|a| a.remaining() == 0),
            "attach_arrivals: a previous arrival lane is still being delivered"
        );
        let n = source.remaining() as u64;
        self.arrivals = Some(ArrivalLane::Streamed {
            source,
            next_seq: self.next_seq,
            last: None,
        });
        self.next_seq += n;
    }

    /// Schedule `event` for delivery at `at`. Returns the sequence number
    /// assigned to the entry (useful in tests asserting FIFO tie order).
    pub fn push(&mut self, at: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.fel.push(QueueEntry { at, seq, event });
        self.peak_fel = self.peak_fel.max(self.fel.len());
        seq
    }

    /// Remove and return the earliest entry across both lanes, or `None`
    /// when empty.
    pub fn pop(&mut self) -> Option<QueueEntry<E>> {
        match (self.arrival_key(), self.fel.peek_key()) {
            (None, None) => None,
            (Some(_), None) => self.pop_arrival(),
            (None, Some(_)) => self.fel.pop(),
            (Some(s), Some(f)) => {
                if s < f {
                    self.pop_arrival()
                } else {
                    self.fel.pop()
                }
            }
        }
    }

    /// Delivery time of the earliest pending event. Takes `&mut self` so
    /// lazily-organized backends (and lazy arrival sources) may fault in
    /// their next buffer internally.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.peek_key().map(|(t, _)| t)
    }

    /// Full `(time, seq)` key of the earliest pending event across both
    /// lanes — the canonical dispatch-order key. Windowed drivers (the
    /// speculative executor in `risa-sim`) compare this against buffered
    /// entries to decide whether a handler-scheduled event must commit
    /// before the buffer's front.
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        match (self.arrival_key(), self.fel.peek_key()) {
            (None, None) => None,
            (Some(k), None) | (None, Some(k)) => Some(k),
            (Some(s), Some(f)) => Some(s.min(f)),
        }
    }

    fn arrival_key(&mut self) -> Option<EventKey> {
        match self.arrivals.as_mut()? {
            ArrivalLane::Sorted(s) => s.peek_key(),
            ArrivalLane::Streamed {
                source, next_seq, ..
            } => source.peek_time().map(|t| (t, *next_seq)),
        }
    }

    fn pop_arrival(&mut self) -> Option<QueueEntry<E>> {
        match self.arrivals.as_mut()? {
            ArrivalLane::Sorted(s) => s.pop(),
            ArrivalLane::Streamed {
                source,
                next_seq,
                last,
            } => {
                let (at, event) = source.next()?;
                debug_assert!(
                    last.is_none_or(|prev| prev <= at),
                    "ArrivalSource yielded out-of-order time {at:?} after {last:?}"
                );
                *last = Some(at);
                let seq = *next_seq;
                *next_seq += 1;
                Some(QueueEntry { at, seq, event })
            }
        }
    }

    /// Number of pending events across both lanes.
    pub fn len(&self) -> usize {
        self.stream_remaining() + self.fel.len()
    }

    /// True when no events are pending in either lane.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events still waiting in the arrival lane (preloaded or streamed).
    pub fn stream_remaining(&self) -> usize {
        self.arrivals.as_ref().map_or(0, ArrivalLane::remaining)
    }

    /// Events currently in the future-event list (the dynamic lane).
    pub fn fel_len(&self) -> usize {
        self.fel.len()
    }

    /// High-water mark of the future-event list. With a preloaded arrival
    /// lane this is O(events in flight) — the two-lane design's win — and
    /// tests assert it stays far below the total event count.
    pub fn peak_fel_len(&self) -> usize {
        self.peak_fel
    }

    /// Total number of events ever scheduled on this queue (pushed or
    /// preloaded).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Drop all pending events in both lanes (sequence counter keeps
    /// advancing so replay determinism is preserved across a clear).
    pub fn clear(&mut self) {
        self.arrivals = None;
        self.fel.clear();
    }

    /// Capture the queue's dynamic state for a checkpoint.
    ///
    /// The future-event list is drained and immediately re-filled with the
    /// same entries; since every backend pops in exact `(time, seq)` order
    /// and accepts entries carrying their original sequence numbers, the
    /// queue's observable behaviour is unchanged by taking a snapshot. The
    /// arrival lane is recorded only by its `remaining` count — a restore
    /// rebuilds the lane from the workload spec and fast-forwards it (see
    /// [`EventQueue::fast_forward_arrivals`]), which re-executes the exact
    /// accumulation the original run performed and therefore reproduces
    /// the cursor bit-for-bit.
    pub fn snapshot(&mut self) -> QueueSnapshot<E>
    where
        E: Clone,
    {
        let mut fel = Vec::with_capacity(self.fel.len());
        while let Some(entry) = self.fel.pop() {
            fel.push(entry);
        }
        for entry in &fel {
            self.fel.push(entry.clone());
        }
        QueueSnapshot {
            fel,
            next_seq: self.next_seq,
            peak_fel: self.peak_fel,
            arrivals_remaining: self.stream_remaining(),
        }
    }

    /// Discard arrivals from the static lane until exactly `remaining`
    /// are left undelivered (restore path: the lane re-derives the same
    /// times the original run consumed, so the cursor state afterwards is
    /// bit-identical to the checkpointed run's).
    ///
    /// # Panics
    /// If the lane holds fewer than `remaining` arrivals.
    pub fn fast_forward_arrivals(&mut self, remaining: usize) {
        assert!(
            remaining <= self.stream_remaining(),
            "fast_forward_arrivals: lane has {} arrivals, cannot leave {remaining}",
            self.stream_remaining(),
        );
        while self.stream_remaining() > remaining {
            self.pop_arrival()
                .expect("arrival lane remaining() over-reported");
        }
    }

    /// Replace the future-event list and counters with checkpointed state
    /// (see [`EventQueue::snapshot`]). Entries keep the sequence numbers
    /// they carried when first scheduled, so tie-breaking after the
    /// restore matches the uninterrupted run exactly.
    pub fn restore_fel(&mut self, entries: Vec<QueueEntry<E>>, next_seq: u64, peak_fel: usize) {
        self.fel.clear();
        for entry in entries {
            debug_assert!(
                entry.seq < next_seq,
                "restored entry seq {} not covered by next_seq {next_seq}",
                entry.seq
            );
            self.fel.push(entry);
        }
        self.next_seq = next_seq;
        self.peak_fel = peak_fel;
    }
}

/// Dynamic queue state captured by [`EventQueue::snapshot`]: the full
/// future-event list (in pop order) plus the counters a restored queue
/// must resume from. The arrival lane is represented only by its
/// remaining count; restores rebuild it from the workload spec.
pub struct QueueSnapshot<E> {
    /// Future-event-list entries in exact `(time, seq)` pop order.
    pub fel: Vec<QueueEntry<E>>,
    /// Sequence counter the next scheduled event will receive.
    pub next_seq: u64,
    /// High-water mark of the future-event list so far.
    pub peak_fel: usize,
    /// Arrivals not yet delivered from the static lane.
    pub arrivals_remaining: usize,
}

// Payload-opaque `Debug` (no `E: Debug` bound): summarizes both lanes.
impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let lane = match &self.arrivals {
            None => "none",
            Some(ArrivalLane::Sorted(_)) => "sorted",
            Some(ArrivalLane::Streamed { .. }) => "streamed",
        };
        f.debug_struct("EventQueue")
            .field("backend", &self.backend)
            .field("arrival_lane", &lane)
            .field("stream_remaining", &self.stream_remaining())
            .field("fel", &self.fel)
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(u: f64) -> SimTime {
        SimTime::from_units(u)
    }

    fn drain<E>(q: &mut EventQueue<E>) -> Vec<E> {
        std::iter::from_fn(|| q.pop().map(|e| e.event)).collect()
    }

    #[test]
    fn pops_in_time_order() {
        for backend in FelKind::ALL {
            let mut q = EventQueue::with_backend(backend);
            q.push(t(5.0), "c");
            q.push(t(1.0), "a");
            q.push(t(3.0), "b");
            assert_eq!(drain(&mut q), vec!["a", "b", "c"]);
        }
    }

    #[test]
    fn ties_break_by_insertion_order() {
        for backend in FelKind::ALL {
            let mut q = EventQueue::with_backend(backend);
            for i in 0..100 {
                q.push(t(7.0), i);
            }
            let expect: Vec<_> = (0..100).collect();
            assert_eq!(drain(&mut q), expect, "same-tick events must be FIFO");
        }
    }

    #[test]
    fn interleaved_times_and_ties() {
        let mut q = EventQueue::new();
        q.push(t(2.0), "b1");
        q.push(t(1.0), "a");
        q.push(t(2.0), "b2");
        q.push(t(0.5), "start");
        assert_eq!(drain(&mut q), vec!["start", "a", "b1", "b2"]);
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(t(9.0), ());
        q.push(t(4.0), ());
        assert_eq!(q.peek_time(), Some(t(4.0)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_preserves_sequence_counter() {
        let mut q = EventQueue::new();
        q.push(t(1.0), 1u32);
        q.push(t(2.0), 2);
        q.clear();
        assert!(q.is_empty());
        let seq = q.push(t(3.0), 3);
        assert_eq!(seq, 2, "sequence numbers keep increasing after clear");
        assert_eq!(q.scheduled_total(), 3);
    }

    #[test]
    fn preload_merges_byte_identically_with_push_path() {
        let arrivals = vec![(t(1.0), 0u32), (t(2.0), 1), (t(2.0), 2), (t(8.0), 3)];
        for backend in FelKind::ALL {
            // Oracle: everything pushed through the FEL.
            let mut oracle = EventQueue::with_backend(backend);
            for &(at, ev) in &arrivals {
                oracle.push(at, ev);
            }
            // Two-lane: arrivals preloaded, nothing in the FEL.
            let mut lanes = EventQueue::with_backend(backend);
            lanes.preload_sorted(arrivals.clone());
            assert_eq!(lanes.fel_len(), 0);
            assert_eq!(lanes.len(), oracle.len());
            // Interleave identical dynamic pushes (same-tick collisions
            // with the preloaded entries included) on both queues.
            let mut log = Vec::new();
            for queue in [&mut oracle, &mut lanes] {
                let mut order = Vec::new();
                for round in 0..3 {
                    let e = queue.pop().unwrap();
                    order.push((e.at, e.seq, e.event));
                    queue.push(e.at, 100 + round); // same-tick as the popped entry
                }
                while let Some(e) = queue.pop() {
                    order.push((e.at, e.seq, e.event));
                }
                log.push(order);
            }
            assert_eq!(log[0], log[1], "backend {backend}: lanes diverged");
        }
    }

    #[test]
    fn preload_tracks_lengths_and_seq() {
        let mut q = EventQueue::new();
        q.push(t(5.0), 99u32);
        q.preload_sorted(vec![(t(1.0), 1), (t(2.0), 2)]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.stream_remaining(), 2);
        assert_eq!(q.fel_len(), 1);
        assert_eq!(q.scheduled_total(), 3);
        // Preloaded entries carry seqs 1 and 2 (after the push's 0)… but
        // deliver first because their *times* are earlier.
        let popped: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| (e.seq, e.event))).collect();
        assert_eq!(popped, vec![(1, 1), (2, 2), (0, 99)]);
        // A fully-drained stream allows a fresh preload.
        q.preload_sorted(vec![(t(9.0), 7)]);
        assert_eq!(q.pop().map(|e| (e.seq, e.event)), Some((3, 7)));
    }

    #[test]
    #[should_panic(expected = "still being delivered")]
    fn double_preload_rejected() {
        let mut q = EventQueue::new();
        q.preload_sorted(vec![(t(1.0), 1u32)]);
        q.preload_sorted(vec![(t(2.0), 2)]);
    }

    #[test]
    fn peak_fel_len_counts_only_the_dynamic_lane() {
        let mut q = EventQueue::new();
        q.preload_sorted((0..100).map(|i| (t(i as f64), i)).collect());
        assert_eq!(q.peak_fel_len(), 0);
        q.push(t(50.0), 1000);
        q.push(t(60.0), 1001);
        q.pop();
        assert_eq!(q.peak_fel_len(), 2);
    }
}
