//! Pluggable producers for the static arrival lane.
//!
//! [`crate::SortedStream`] is the materialized oracle: every arrival sits
//! in one `Vec`, sorted, before the first event fires — simple, fast, and
//! O(trace) memory. An [`ArrivalSource`] generalizes that lane the same
//! way [`crate::FutureEventList`] generalized the dynamic lane: the queue
//! asks the source for the next arrival *when the merge needs it*, so a
//! source may generate arrivals lazily (e.g. one workload shard at a
//! time) and the engine's peak memory drops from O(trace) to O(whatever
//! the source buffers).
//!
//! ## Contract
//!
//! Implementations must uphold two invariants the queue's determinism
//! rests on:
//!
//! 1. **Monotone times** — each yielded time is ≥ its predecessor
//!    (checked by a `debug_assert` in the queue's pop path). The merge
//!    against the future-event list assumes the arrival lane is sorted.
//! 2. **Exact `remaining`** — [`ArrivalSource::remaining`] must return
//!    precisely the number of events the source will still yield. At
//!    attach time the queue reserves that many sequence numbers for the
//!    lane, exactly as [`crate::EventQueue::preload_sorted`] reserves
//!    `events.len()`; an inexact count would shift every later sequence
//!    number and change same-tick tie-breaking versus the materialized
//!    path.
//!
//! `peek_time` takes `&mut self` (like
//! [`crate::EventQueue::peek_time`]) so a source may fault in its next
//! buffer — swap to the next shard — to learn the next time.
//!
//! Under this contract a lazy source that generates the *same* `(time,
//! event)` pairs as a materialized `Vec` is delivered **byte-identically**
//! to preloading that `Vec`: same times, same payloads, same sequence
//! numbers, same merge decisions (`crates/sim/tests/hot_path_differential.rs`
//! pins this end to end for the streaming workload cursor).

use crate::time::SimTime;
use std::fmt;

/// A lazy, time-ordered producer of arrival events for the static lane of
/// [`crate::EventQueue`]; attach one with
/// [`crate::EventQueue::attach_arrivals`].
///
/// See the module docs for the monotonicity and exact-`remaining`
/// contract implementations must uphold.
pub trait ArrivalSource<E>: fmt::Debug {
    /// Delivery time of the next arrival, without consuming it, or `None`
    /// when the source is exhausted. `&mut self` so lazy sources may fault
    /// in their next buffer here.
    fn peek_time(&mut self) -> Option<SimTime>;

    /// Produce the next arrival, or `None` when exhausted. Times must be
    /// non-decreasing across calls and consistent with `peek_time`.
    fn next(&mut self) -> Option<(SimTime, E)>;

    /// Exactly how many arrivals remain (total minus already yielded).
    /// The queue trusts this for sequence-number reservation; see the
    /// module docs.
    fn remaining(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::EventQueue;

    /// A minimal lazy source: computes arrivals on demand from a counter.
    #[derive(Debug)]
    struct Countdown {
        next: u32,
        total: u32,
    }

    impl ArrivalSource<u32> for Countdown {
        fn peek_time(&mut self) -> Option<SimTime> {
            (self.next < self.total).then(|| SimTime::from_units(f64::from(self.next)))
        }
        fn next(&mut self) -> Option<(SimTime, u32)> {
            let i = self.next;
            if i >= self.total {
                return None;
            }
            self.next += 1;
            Some((SimTime::from_units(f64::from(i)), i))
        }
        fn remaining(&self) -> usize {
            (self.total - self.next) as usize
        }
    }

    #[test]
    fn lazy_source_is_delivered_like_a_preload() {
        let total = 50u32;
        let materialized: Vec<_> = (0..total)
            .map(|i| (SimTime::from_units(f64::from(i)), i))
            .collect();

        let mut oracle = EventQueue::new();
        oracle.preload_sorted(materialized);
        let mut lazy = EventQueue::new();
        lazy.attach_arrivals(Box::new(Countdown { next: 0, total }));
        assert_eq!(lazy.len(), oracle.len());

        // Interleave identical same-tick pushes on both queues so stream
        // vs FEL tie-breaks are exercised, then compare full drains.
        let mut logs = Vec::new();
        for q in [&mut oracle, &mut lazy] {
            let mut log = Vec::new();
            for round in 0..5 {
                let e = q.pop().unwrap();
                q.push(e.at, 1000 + round);
                log.push((e.at, e.seq, e.event));
            }
            while let Some(e) = q.pop() {
                log.push((e.at, e.seq, e.event));
            }
            logs.push(log);
        }
        assert_eq!(logs[0], logs[1], "lazy arrival lane diverged from preload");
    }
}
