//! Fixed-point simulation time.
//!
//! The paper's workloads are specified in abstract "time units" (a Poisson
//! interarrival mean of 10 time units, a VM lifetime staircase starting at
//! 6300 time units, …). For the energy model (Eq. 1 of the paper) the
//! simulation maps 1 time unit ≡ 1 second. Internally we store time as an
//! integer count of **micro-units** so that the event queue has a total
//! order with no floating-point tie ambiguity: determinism of the whole
//! simulation rests on this type.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Number of integer ticks per paper "time unit" (1 tick = 1 µ-unit).
pub const TICKS_PER_UNIT: u64 = 1_000_000;

/// A point in simulated time, in integer ticks since simulation start.
///
/// `SimTime` is totally ordered and hashable; arithmetic with
/// [`SimDuration`] saturates rather than wrapping so that a malformed
/// workload cannot silently warp the clock backwards.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time, in integer ticks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable time; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw ticks.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Construct from fractional paper time units (rounded to nearest tick).
    #[inline]
    pub fn from_units(units: f64) -> Self {
        debug_assert!(units >= 0.0, "SimTime cannot be negative: {units}");
        SimTime((units.max(0.0) * TICKS_PER_UNIT as f64).round() as u64)
    }

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Time expressed in paper time units.
    #[inline]
    pub fn as_units(self) -> f64 {
        self.0 as f64 / TICKS_PER_UNIT as f64
    }

    /// Duration elapsed since `earlier`; zero if `earlier` is in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw ticks.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// Construct from fractional paper time units (rounded to nearest tick).
    #[inline]
    pub fn from_units(units: f64) -> Self {
        debug_assert!(units >= 0.0, "SimDuration cannot be negative: {units}");
        SimDuration((units.max(0.0) * TICKS_PER_UNIT as f64).round() as u64)
    }

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Duration expressed in paper time units.
    #[inline]
    pub fn as_units(self) -> f64 {
        self.0 as f64 / TICKS_PER_UNIT as f64
    }

    /// Duration in seconds under the paper mapping 1 time unit ≡ 1 s.
    #[inline]
    pub fn as_seconds(self) -> f64 {
        self.as_units()
    }

    /// True when the duration is zero ticks long.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}u", self.as_units())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.as_units())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Δ{:.6}u", self.as_units())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.as_units())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_roundtrip_is_exact_for_integers() {
        for u in [0.0, 1.0, 10.0, 6300.0, 15300.0] {
            assert_eq!(SimTime::from_units(u).as_units(), u);
            assert_eq!(SimDuration::from_units(u).as_units(), u);
        }
    }

    #[test]
    fn fractional_units_round_to_nearest_tick() {
        let t = SimTime::from_units(1.000_000_4);
        assert_eq!(t.ticks(), TICKS_PER_UNIT); // rounds down
        let t = SimTime::from_units(1.000_000_6);
        assert_eq!(t.ticks(), TICKS_PER_UNIT + 1); // rounds up
    }

    #[test]
    fn ordering_matches_tick_values() {
        let a = SimTime::from_units(3.0);
        let b = SimTime::from_units(3.5);
        assert!(a < b);
        assert_eq!(b.since(a), SimDuration::from_units(0.5));
        // `since` saturates: asking "how long since a future instant" is 0.
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn add_assign_advances_clock() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_units(10.0);
        t += SimDuration::from_units(2.5);
        assert_eq!(t, SimTime::from_units(12.5));
        assert_eq!(t - SimTime::ZERO, SimDuration::from_units(12.5));
    }

    #[test]
    fn saturating_add_never_wraps() {
        let t = SimTime::MAX + SimDuration::from_ticks(100);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn seconds_mapping_is_one_to_one() {
        assert_eq!(SimDuration::from_units(360.0).as_seconds(), 360.0);
    }

    #[test]
    fn display_formats_units() {
        assert_eq!(format!("{}", SimTime::from_units(6300.0)), "6300.000");
        assert_eq!(format!("{:?}", SimDuration::from_units(1.5)), "Δ1.500000u");
    }
}
