//! The simulation loop: pops events in `(time, seq)` order and dispatches
//! them to a user-supplied [`World`], which may schedule further events
//! through an [`EventCtx`].

use crate::arrivals::ArrivalSource;
use crate::queue::{EventQueue, QueueEntry};
use crate::time::{SimDuration, SimTime};
use crate::trace::EventTrace;

#[cfg(doc)]
use crate::fel::FelKind;

/// The model being simulated. Implementors own all mutable simulation state
/// (the datacenter, the scheduler, the metrics) and react to events.
pub trait World {
    /// Event payload type delivered by the engine.
    type Event;

    /// Handle one event at `ctx.now()`. New events may be scheduled with
    /// [`EventCtx::schedule_at`] / [`EventCtx::schedule_in`]; scheduling in
    /// the past is clamped to "now" (and counted, so tests can assert it
    /// never happens).
    fn handle(&mut self, ctx: &mut EventCtx<'_, Self::Event>, event: Self::Event);
}

/// Handle given to [`World::handle`] for scheduling follow-up events.
pub struct EventCtx<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    clamped: &'a mut u64,
    stop_requested: &'a mut bool,
}

impl<E> EventCtx<'_, E> {
    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at` (clamped to `now` if in the
    /// past, which increments the clamp counter).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = if at < self.now {
            *self.clamped += 1;
            self.now
        } else {
            at
        };
        self.queue.push(at, event);
    }

    /// Schedule `event` after a relative delay from now.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Ask the engine to stop after this handler returns, leaving any
    /// remaining events in the queue (used by "run until condition" logic).
    pub fn request_stop(&mut self) {
        *self.stop_requested = true;
    }

    /// Number of events currently pending (not counting the one in flight).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// Result of driving the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Exhausted,
    /// The run hit the supplied horizon; later events remain queued.
    HorizonReached,
    /// A handler called [`EventCtx::request_stop`].
    Stopped,
    /// The step/event budget was consumed.
    BudgetExhausted,
}

/// Result of a single [`Simulation::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// One event was dispatched.
    Dispatched,
    /// No events were pending.
    Empty,
}

/// The discrete-event engine: a clock, a queue, and a [`World`].
#[derive(Debug)]
pub struct Simulation<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    now: SimTime,
    dispatched: u64,
    clamped: u64,
    stop_requested: bool,
    trace: Option<TraceSlot<W::Event>>,
}

/// Trace buffer plus the renderer captured when tracing was enabled (the
/// `Debug` bound exists only at that call site).
type TraceSlot<E> = (EventTrace, fn(&E) -> String);

impl<W: World> Simulation<W> {
    /// Wrap `world` with an empty queue at t = 0.
    pub fn new(world: W) -> Self {
        Self::with_queue(world, EventQueue::new())
    }

    /// Wrap `world` with a caller-built queue (e.g. one on a non-default
    /// [`FelKind`] backend or with pre-reserved capacity). The queue may
    /// already hold events.
    pub fn with_queue(world: W, queue: EventQueue<W::Event>) -> Self {
        Simulation {
            world,
            queue,
            now: SimTime::ZERO,
            dispatched: 0,
            clamped: 0,
            stop_requested: false,
            trace: None,
        }
    }

    /// Keep a ring buffer of the last `capacity` dispatched events for
    /// post-mortem inspection (requires `Event: Debug`; see
    /// [`Simulation::trace`]).
    pub fn enable_trace(&mut self, capacity: usize)
    where
        W::Event: std::fmt::Debug,
    {
        fn render<E: std::fmt::Debug>(e: &E) -> String {
            format!("{e:?}")
        }
        // Seed the trace's sequence counter with the events already
        // dispatched, so a trace enabled on a restored simulation numbers
        // its entries exactly as the uninterrupted run would have.
        self.trace = Some((
            EventTrace::with_base(capacity, self.dispatched),
            render::<W::Event>,
        ));
    }

    /// The event trace, when enabled.
    pub fn trace(&self) -> Option<&EventTrace> {
        self.trace.as_ref().map(|(t, _)| t)
    }

    /// Schedule an event before (or during) the run.
    pub fn schedule(&mut self, at: SimTime, event: W::Event) {
        self.queue.push(at, event);
    }

    /// Load a time-sorted batch of events into the queue's static lane
    /// (see [`EventQueue::preload_sorted`]). Delivery order is exactly as
    /// if every event had been [`Simulation::schedule`]d here — but the
    /// future-event list never holds them, so it stays sized to the events
    /// the world schedules *during* the run.
    ///
    /// # Panics
    /// If `events` is not sorted by time, or a previous preload is still
    /// being delivered.
    pub fn preload_sorted(&mut self, events: Vec<(SimTime, W::Event)>) {
        self.queue.preload_sorted(events);
    }

    /// Load the queue's static lane with a lazy [`ArrivalSource`] instead
    /// of a materialized batch (see [`EventQueue::attach_arrivals`]):
    /// arrivals are produced as the merge reaches them, so peak memory is
    /// whatever the source buffers rather than the whole trace. Delivery
    /// is byte-identical to preloading the source's materialized
    /// equivalent.
    ///
    /// # Panics
    /// If a previous arrival lane is still being delivered.
    pub fn attach_arrivals(&mut self, source: Box<dyn ArrivalSource<W::Event> + Send>) {
        self.queue.attach_arrivals(source);
    }

    /// Shared view of the two-lane event queue (lengths, peak FEL size,
    /// backend kind).
    pub fn queue(&self) -> &EventQueue<W::Event> {
        &self.queue
    }

    /// Mutable access to the queue, for checkpoint capture and restore
    /// (see [`EventQueue::snapshot`] / [`EventQueue::restore_fel`]).
    pub fn queue_mut(&mut self) -> &mut EventQueue<W::Event> {
        &mut self.queue
    }

    /// Engine clock state for a checkpoint: `(now, dispatched, clamped)`.
    pub fn clock_state(&self) -> (SimTime, u64, u64) {
        (self.now, self.dispatched, self.clamped)
    }

    /// Restore engine clock state previously captured with
    /// [`Simulation::clock_state`]. The next dispatched event continues
    /// the original run's clock and dispatch count exactly.
    pub fn restore_clock(&mut self, now: SimTime, dispatched: u64, clamped: u64) {
        self.now = now;
        self.dispatched = dispatched;
        self.clamped = clamped;
    }

    /// Current simulation clock. Advances only when events are dispatched.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared view of the model.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable view of the model (e.g. to extract metrics after a run).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consume the engine, returning the model.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Total events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// How many schedule-in-the-past requests were clamped to "now".
    /// A correct model keeps this at zero; tests assert on it.
    pub fn clamped_schedules(&self) -> u64 {
        self.clamped
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Dispatch the single earliest event, advancing the clock to it.
    pub fn step(&mut self) -> StepOutcome {
        let Some(entry) = self.queue.pop() else {
            return StepOutcome::Empty;
        };
        self.dispatch_entry(entry);
        StepOutcome::Dispatched
    }

    /// Canonical `(time, seq)` key of the earliest pending event, or
    /// `None` when the queue is empty (see [`EventQueue::peek_key`]).
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        self.queue.peek_key()
    }

    /// Remove and return the earliest pending entry **without dispatching
    /// it** — no clock advance, no trace record, no dispatch count.
    ///
    /// This is the drain half of the windowed-execution protocol used by
    /// the speculative executor in `risa-sim`: entries popped here *must*
    /// eventually be handed back to [`Simulation::dispatch_entry`] (or
    /// [`Simulation::dispatch_with`]) in exact `(time, seq)` order, merged
    /// against [`Simulation::peek_key`] so that events scheduled by
    /// handlers in between still commit in canonical order. Entries must
    /// never be re-pushed through [`Simulation::schedule`] — that would
    /// assign fresh sequence numbers and perturb tie-breaking.
    pub fn pop_entry(&mut self) -> Option<QueueEntry<W::Event>> {
        self.queue.pop()
    }

    /// Dispatch an entry previously popped with
    /// [`Simulation::pop_entry`], with bookkeeping identical to
    /// [`Simulation::step`]: the clock advances to `entry.at`, the
    /// dispatch counter increments, the trace records the event, and the
    /// world handles it under a normal [`EventCtx`].
    pub fn dispatch_entry(&mut self, entry: QueueEntry<W::Event>) {
        self.dispatch_with(entry, |world, ctx, event| world.handle(ctx, event));
    }

    /// Like [`Simulation::dispatch_entry`], but `commit` runs in place of
    /// [`World::handle`]. The engine bookkeeping (clock, dispatch count,
    /// trace record) is identical; the closure is responsible for leaving
    /// the world in exactly the state `World::handle` would have — this is
    /// the hook the speculative executor uses to apply a pre-validated
    /// scheduling decision without re-running the search.
    pub fn dispatch_with(
        &mut self,
        entry: QueueEntry<W::Event>,
        commit: impl FnOnce(&mut W, &mut EventCtx<'_, W::Event>, W::Event),
    ) {
        debug_assert!(entry.at >= self.now, "event queue went back in time");
        self.now = entry.at;
        self.dispatched += 1;
        if let Some((trace, render)) = &mut self.trace {
            trace.record_rendered(entry.at, render(&entry.event));
        }
        let mut ctx = EventCtx {
            now: self.now,
            queue: &mut self.queue,
            clamped: &mut self.clamped,
            stop_requested: &mut self.stop_requested,
        };
        commit(&mut self.world, &mut ctx, entry.event);
    }

    /// True when a handler has requested a stop that no run loop has
    /// consumed yet. External drivers replicating [`Simulation::run_until`]
    /// (the speculative executor) poll this between dispatches.
    pub fn stop_requested(&self) -> bool {
        self.stop_requested
    }

    /// Reset the stop-request flag, as [`Simulation::run_until`] does on
    /// entry. External drivers call this once at the start of their loop.
    pub fn clear_stop_request(&mut self) {
        self.stop_requested = false;
    }

    /// Run until the queue drains or a handler requests a stop.
    pub fn run_to_completion(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX, u64::MAX)
    }

    /// Run while `peek_time <= horizon`, at most `max_events` dispatches.
    ///
    /// Events scheduled exactly at the horizon *are* dispatched; the first
    /// event strictly beyond it ends the run with
    /// [`RunOutcome::HorizonReached`] and stays queued.
    ///
    /// Outcome precedence: queue-state outcomes win over the budget. An
    /// empty queue reports [`RunOutcome::Exhausted`] and a
    /// horizon-crossing head event reports [`RunOutcome::HorizonReached`]
    /// even when `max_events` is 0 (or was consumed exactly);
    /// [`RunOutcome::BudgetExhausted`] means *undispatched work at or
    /// before the horizon remains*.
    pub fn run_until(&mut self, horizon: SimTime, max_events: u64) -> RunOutcome {
        self.stop_requested = false;
        let mut budget = max_events;
        loop {
            if self.stop_requested {
                return RunOutcome::Stopped;
            }
            match self.queue.peek_time() {
                None => return RunOutcome::Exhausted,
                Some(t) if t > horizon => return RunOutcome::HorizonReached,
                Some(_) => {
                    if budget == 0 {
                        return RunOutcome::BudgetExhausted;
                    }
                    self.step();
                    budget -= 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An M/D/∞-style toy world: arrivals spawn departures; we count both.
    struct Toy {
        arrivals: u32,
        departures: u32,
        log: Vec<(f64, ToyEvent)>,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum ToyEvent {
        Arrive(u32),
        Depart(u32),
    }

    impl World for Toy {
        type Event = ToyEvent;
        fn handle(&mut self, ctx: &mut EventCtx<'_, ToyEvent>, ev: ToyEvent) {
            self.log.push((ctx.now().as_units(), ev));
            match ev {
                ToyEvent::Arrive(id) => {
                    self.arrivals += 1;
                    ctx.schedule_in(SimDuration::from_units(5.0), ToyEvent::Depart(id));
                }
                ToyEvent::Depart(_) => self.departures += 1,
            }
        }
    }

    fn toy() -> Toy {
        Toy {
            arrivals: 0,
            departures: 0,
            log: vec![],
        }
    }

    #[test]
    fn arrivals_spawn_departures() {
        let mut sim = Simulation::new(toy());
        for i in 0..4 {
            sim.schedule(SimTime::from_units(i as f64 * 2.0), ToyEvent::Arrive(i));
        }
        assert_eq!(sim.run_to_completion(), RunOutcome::Exhausted);
        let w = sim.world();
        assert_eq!(w.arrivals, 4);
        assert_eq!(w.departures, 4);
        // Last departure: arrival at t=6 departs at t=11.
        assert_eq!(sim.now(), SimTime::from_units(11.0));
        assert_eq!(sim.dispatched(), 8);
        assert_eq!(sim.clamped_schedules(), 0);
    }

    #[test]
    fn horizon_is_inclusive() {
        let mut sim = Simulation::new(toy());
        sim.schedule(SimTime::from_units(1.0), ToyEvent::Arrive(0));
        // Departure lands at t=6.0; horizon exactly 6.0 must include it.
        assert_eq!(
            sim.run_until(SimTime::from_units(6.0), u64::MAX),
            RunOutcome::Exhausted
        );
        assert_eq!(sim.world().departures, 1);

        let mut sim = Simulation::new(toy());
        sim.schedule(SimTime::from_units(1.0), ToyEvent::Arrive(0));
        assert_eq!(
            sim.run_until(SimTime::from_units(5.9), u64::MAX),
            RunOutcome::HorizonReached
        );
        assert_eq!(sim.world().departures, 0);
        assert_eq!(sim.pending(), 1, "the departure stays queued");
    }

    #[test]
    fn event_budget_is_respected() {
        let mut sim = Simulation::new(toy());
        for i in 0..10 {
            sim.schedule(SimTime::from_units(i as f64), ToyEvent::Arrive(i));
        }
        assert_eq!(sim.run_until(SimTime::MAX, 3), RunOutcome::BudgetExhausted);
        assert_eq!(sim.dispatched(), 3);
    }

    /// Regression: queue-state outcomes take precedence over the budget.
    /// An empty queue used to report `BudgetExhausted` when
    /// `max_events == 0` because the budget was checked before the peek.
    #[test]
    fn budget_outcome_only_when_dispatchable_work_remains() {
        // Empty queue + zero budget: nothing to dispatch ⇒ Exhausted.
        let mut sim = Simulation::new(toy());
        assert_eq!(sim.run_until(SimTime::MAX, 0), RunOutcome::Exhausted);

        // Draining on exactly the last budget unit ⇒ Exhausted, not
        // BudgetExhausted (the queue state is the more informative fact).
        let mut sim = Simulation::new(toy());
        sim.schedule(SimTime::from_units(1.0), ToyEvent::Arrive(0));
        assert_eq!(sim.run_until(SimTime::MAX, 2), RunOutcome::Exhausted);
        assert_eq!(sim.dispatched(), 2);

        // Head event beyond the horizon + zero budget ⇒ HorizonReached.
        let mut sim = Simulation::new(toy());
        sim.schedule(SimTime::from_units(9.0), ToyEvent::Arrive(0));
        assert_eq!(
            sim.run_until(SimTime::from_units(5.0), 0),
            RunOutcome::HorizonReached
        );

        // Pending work within the horizon + zero budget ⇒ BudgetExhausted.
        let mut sim = Simulation::new(toy());
        sim.schedule(SimTime::from_units(1.0), ToyEvent::Arrive(0));
        assert_eq!(sim.run_until(SimTime::MAX, 0), RunOutcome::BudgetExhausted);
        assert_eq!(sim.dispatched(), 0);
    }

    /// The preloaded arrival lane is observationally identical to
    /// scheduling every arrival up front — same event order, same world
    /// state — while the FEL holds only the dynamically scheduled
    /// departures.
    #[test]
    fn preloaded_arrivals_match_scheduled_arrivals() {
        // Arrivals 1 unit apart, departures 5 units later ⇒ at most ~6
        // events are ever genuinely "in flight".
        let arrivals: Vec<(SimTime, ToyEvent)> = (0..50)
            .map(|i| (SimTime::from_units(i as f64), ToyEvent::Arrive(i)))
            .collect();

        let mut pushed = Simulation::new(toy());
        for &(at, ev) in &arrivals {
            pushed.schedule(at, ev);
        }
        pushed.run_to_completion();

        let mut preloaded = Simulation::new(toy());
        preloaded.preload_sorted(arrivals);
        assert_eq!(preloaded.pending(), 50, "pending counts the static lane");
        preloaded.run_to_completion();

        assert_eq!(pushed.world().log, preloaded.world().log);
        assert_eq!(pushed.dispatched(), preloaded.dispatched());
        // Arrivals bypassed the FEL: it only ever held in-flight
        // departures, not the whole trace as on the push path.
        assert!(preloaded.queue().peak_fel_len() <= 6);
        assert_eq!(pushed.queue().peak_fel_len(), 50);
    }

    #[test]
    fn stop_request_halts_immediately() {
        struct Stopper(u32);
        impl World for Stopper {
            type Event = u32;
            fn handle(&mut self, ctx: &mut EventCtx<'_, u32>, ev: u32) {
                self.0 += 1;
                if ev == 2 {
                    ctx.request_stop();
                }
            }
        }
        let mut sim = Simulation::new(Stopper(0));
        for i in 0..10 {
            sim.schedule(SimTime::from_units(i as f64), i);
        }
        assert_eq!(sim.run_to_completion(), RunOutcome::Stopped);
        assert_eq!(sim.world().0, 3, "events 0,1,2 ran; 3.. remained");
        assert_eq!(sim.pending(), 7);
    }

    #[test]
    fn past_schedules_are_clamped_and_counted() {
        struct PastScheduler;
        impl World for PastScheduler {
            type Event = bool;
            fn handle(&mut self, ctx: &mut EventCtx<'_, bool>, first: bool) {
                if first {
                    // Deliberately schedule "yesterday".
                    ctx.schedule_at(SimTime::ZERO, false);
                }
            }
        }
        let mut sim = Simulation::new(PastScheduler);
        sim.schedule(SimTime::from_units(10.0), true);
        sim.run_to_completion();
        assert_eq!(sim.clamped_schedules(), 1);
        assert_eq!(sim.now(), SimTime::from_units(10.0));
    }

    #[test]
    fn trace_records_dispatched_events() {
        let mut sim = Simulation::new(toy());
        sim.enable_trace(4);
        for i in 0..3 {
            sim.schedule(SimTime::from_units(i as f64), ToyEvent::Arrive(i));
        }
        sim.run_to_completion();
        let trace = sim.trace().unwrap();
        // 3 arrivals + 3 departures dispatched; ring keeps the last 4.
        assert_eq!(trace.recorded(), 6);
        assert_eq!(trace.len(), 4);
        assert!(trace.dump().contains("Depart(2)"));
        assert!(trace.dump().contains("earlier events evicted"));
    }

    /// Draining entries with `pop_entry` and dispatching them back through
    /// `dispatch_entry` — the windowed-execution protocol — is
    /// observationally identical to `step()`: same log, same clock, same
    /// dispatch count, same trace.
    #[test]
    fn pop_and_dispatch_entry_match_step() {
        let seed = |sim: &mut Simulation<Toy>| {
            sim.enable_trace(16);
            for i in 0..20 {
                sim.schedule(SimTime::from_units((i % 4) as f64), ToyEvent::Arrive(i));
            }
        };

        let mut stepped = Simulation::new(toy());
        seed(&mut stepped);
        stepped.run_to_completion();

        let mut windowed = Simulation::new(toy());
        seed(&mut windowed);
        windowed.clear_stop_request();
        // Drain in windows of up to 3 entries, then commit each window in
        // order, merging handler-scheduled events (departures) against the
        // buffered front exactly as the speculative executor does.
        loop {
            let mut window = Vec::new();
            while window.len() < 3 {
                match windowed.pop_entry() {
                    Some(e) => window.push(e),
                    None => break,
                }
            }
            if window.is_empty() {
                break;
            }
            let mut buf = window.into_iter().peekable();
            while let Some(front) = buf.peek() {
                let front_key = (front.at, front.seq);
                if windowed.peek_key().is_some_and(|k| k < front_key) {
                    let e = windowed.pop_entry().expect("peeked entry");
                    windowed.dispatch_entry(e);
                } else {
                    let e = buf.next().expect("peeked entry");
                    windowed.dispatch_entry(e);
                }
            }
        }

        assert_eq!(stepped.now(), windowed.now());
        assert_eq!(stepped.dispatched(), windowed.dispatched());
        assert_eq!(
            stepped.trace().unwrap().dump(),
            windowed.trace().unwrap().dump()
        );
        assert_eq!(stepped.into_world().log, windowed.into_world().log);
    }

    /// `peek_key` merges both lanes and agrees with what `pop_entry`
    /// actually returns.
    #[test]
    fn peek_key_merges_lanes_and_matches_pop() {
        let mut sim = Simulation::new(toy());
        // Static arrival lane at t=0,1,2 …
        sim.preload_sorted(
            (0..3)
                .map(|i| (SimTime::from_units(i as f64), ToyEvent::Arrive(i)))
                .collect::<Vec<_>>(),
        );
        // … and a dynamically scheduled event between them.
        sim.schedule(SimTime::from_units(0.5), ToyEvent::Depart(99));
        let mut keys = Vec::new();
        while let Some(k) = sim.peek_key() {
            let e = sim.pop_entry().expect("peek said non-empty");
            assert_eq!((e.at, e.seq), k);
            keys.push(k);
        }
        assert_eq!(keys.len(), 4);
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
        assert_eq!(keys[1].0, SimTime::from_units(0.5), "FEL lane merged in");
    }

    #[test]
    fn deterministic_replay_identical_logs() {
        let run = || {
            let mut sim = Simulation::new(toy());
            // Many same-tick arrivals stress the tie-break path.
            for i in 0..50 {
                sim.schedule(SimTime::from_units((i % 5) as f64), ToyEvent::Arrive(i));
            }
            sim.run_to_completion();
            sim.into_world().log
        };
        assert_eq!(run(), run());
    }
}
