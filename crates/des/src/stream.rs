//! The static lane of the two-lane event queue: a pre-sorted arrival
//! cursor.
//!
//! A DDC trace knows every VM arrival up front, already sorted by time.
//! Pushing a million arrivals through the future-event list just to pop
//! them back in the same order pays O(n log n) heap traffic and keeps the
//! FEL at O(total VMs). A [`SortedStream`] instead *walks* the sorted
//! arrivals with a cursor; [`crate::EventQueue`] merges it against the
//! dynamic FEL at `(time, seq)`, so the FEL only ever holds events
//! scheduled during the run — O(resident VMs) for the DDC model.
//!
//! Sequence numbers are assigned lazily from a base reserved at preload
//! time: entry *i* of the stream has `seq = base + i`, exactly the numbers
//! the entries would have carried had they been pushed up front. The merge
//! is therefore **byte-identical** to the push-everything path (pinned by
//! `crates/sim/tests/hot_path_differential.rs`).

use crate::fel::EventKey;
use crate::queue::QueueEntry;
use crate::time::SimTime;
use std::fmt;

/// A cursor over time-sorted `(time, event)` pairs, yielding
/// [`QueueEntry`]s with consecutive sequence numbers from a fixed base.
pub struct SortedStream<E> {
    iter: std::vec::IntoIter<(SimTime, E)>,
    next_seq: u64,
}

impl<E> SortedStream<E> {
    /// Wrap `entries`, which must be non-decreasing in time; `seq_base` is
    /// the sequence number of the first entry.
    ///
    /// # Panics
    /// If `entries` is not sorted by time.
    pub(crate) fn new(entries: Vec<(SimTime, E)>, seq_base: u64) -> Self {
        for (i, pair) in entries.windows(2).enumerate() {
            assert!(
                pair[0].0 <= pair[1].0,
                "preloaded events must be sorted by time: entry {} at {:?} precedes entry {} at {:?}",
                i + 1,
                pair[1].0,
                i,
                pair[0].0,
            );
        }
        SortedStream {
            iter: entries.into_iter(),
            next_seq: seq_base,
        }
    }

    /// `(time, seq)` of the next entry, without consuming it.
    #[inline]
    pub fn peek_key(&self) -> Option<EventKey> {
        self.iter
            .as_slice()
            .first()
            .map(|(t, _)| (*t, self.next_seq))
    }

    /// Consume and return the next entry.
    #[inline]
    pub(crate) fn pop(&mut self) -> Option<QueueEntry<E>> {
        let (at, event) = self.iter.next()?;
        let seq = self.next_seq;
        self.next_seq += 1;
        Some(QueueEntry { at, seq, event })
    }

    /// Entries not yet delivered.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.iter.len()
    }
}

// Payload-opaque `Debug` (no `E: Debug` bound).
impl<E> fmt::Debug for SortedStream<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SortedStream")
            .field("remaining", &self.remaining())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(u: f64) -> SimTime {
        SimTime::from_units(u)
    }

    #[test]
    fn yields_in_order_with_consecutive_seqs() {
        let mut s = SortedStream::new(vec![(t(1.0), "a"), (t(1.0), "b"), (t(4.0), "c")], 10);
        assert_eq!(s.remaining(), 3);
        assert_eq!(s.peek_key(), Some((t(1.0), 10)));
        let popped: Vec<_> =
            std::iter::from_fn(|| s.pop().map(|e| (e.at, e.seq, e.event))).collect();
        assert_eq!(
            popped,
            vec![(t(1.0), 10, "a"), (t(1.0), 11, "b"), (t(4.0), 12, "c")]
        );
        assert_eq!(s.peek_key(), None);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "sorted by time")]
    fn unsorted_input_panics() {
        let _ = SortedStream::new(vec![(t(2.0), ()), (t(1.0), ())], 0);
    }

    #[test]
    fn empty_stream_is_fine() {
        let mut s = SortedStream::<u8>::new(vec![], 0);
        assert_eq!(s.peek_key(), None);
        assert!(s.pop().is_none());
    }
}
