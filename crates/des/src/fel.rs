//! Pluggable future-event-list (FEL) backends.
//!
//! The FEL is the *dynamic* lane of the two-lane [`crate::EventQueue`]: it
//! holds events scheduled while the simulation runs (departures, in the DDC
//! model), while pre-known arrivals stream in from a sorted cursor
//! ([`crate::SortedStream`]). Every backend must pop in exact
//! `(time, seq)` order — the engine's determinism contract.
//!
//! Two implementations are provided:
//!
//! * [`BinaryHeapFel`] — the classic binary min-heap; the **oracle**
//!   implementation every other backend is differentially tested against
//!   (`tests/fel_props.rs`).
//! * [`CalendarFel`] — a bucketed calendar queue: events hash into
//!   fixed-width time buckets (a `BTreeMap` keyed by `time / width`), each
//!   bucket a sorted `Vec`. Pushes are O(log #buckets) + an in-bucket
//!   insert; pops and peeks touch only the earliest bucket, in O(1) past
//!   the tree descent. With the bucket width tuned to the trace's arrival
//!   granularity (the paper's mean interarrival is 10 time units) buckets
//!   stay small and the per-event constant factor beats the heap's
//!   sift-down on large resident sets.
//!
//! Backends are selected per run via [`FelKind`] (builder API,
//! `risa-cli run --fel`, or the `RISA_FEL` environment variable).

use crate::queue::QueueEntry;
use crate::time::{SimTime, TICKS_PER_UNIT};
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;
use std::str::FromStr;

/// The total-order key the engine dispatches by: `(time, seq)`.
pub type EventKey = (SimTime, u64);

#[inline]
fn key<E>(e: &QueueEntry<E>) -> EventKey {
    (e.at, e.seq)
}

/// A deterministic future-event list: the pending-event set of one
/// simulation run.
///
/// Implementations must return entries in strictly increasing
/// `(time, seq)` order from [`pop`](FutureEventList::pop), for *any*
/// interleaving of pushes and pops (sequence numbers are unique, so the
/// order is total). `peek_key` takes `&mut self` so backends are free to
/// reorganize lazily on access.
pub trait FutureEventList<E>: fmt::Debug {
    /// Insert one entry. Keys may arrive in any order.
    fn push(&mut self, entry: QueueEntry<E>);
    /// Remove and return the entry with the smallest `(time, seq)`.
    fn pop(&mut self) -> Option<QueueEntry<E>>;
    /// The smallest pending `(time, seq)`, without removing it.
    fn peek_key(&mut self) -> Option<EventKey>;
    /// Number of pending entries.
    fn len(&self) -> usize;
    /// True when no entries are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Drop all pending entries.
    fn clear(&mut self);
}

/// Which [`FutureEventList`] backend a queue uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FelKind {
    /// Binary min-heap ([`BinaryHeapFel`]) — the oracle implementation.
    Heap,
    /// Bucketed calendar queue ([`CalendarFel`]).
    Calendar,
}

impl FelKind {
    /// Every backend, for sweeps and differential tests.
    pub const ALL: [FelKind; 2] = [FelKind::Heap, FelKind::Calendar];

    /// Backend selected by the `RISA_FEL` environment variable
    /// (`heap` | `calendar`), defaulting to [`FelKind::Heap`]. Panics on an
    /// unrecognized value rather than silently benchmarking the wrong
    /// backend.
    pub fn from_env() -> FelKind {
        // risa-lint: allow(env_read) — selects which FEL backend runs; differential tests prove the choice never changes a report byte
        match std::env::var("RISA_FEL") {
            Err(_) => FelKind::Heap,
            Ok(v) => v.parse().unwrap_or_else(|e| panic!("RISA_FEL: {e}")),
        }
    }

    /// Instantiate the backend. `capacity` pre-reserves heap space (the
    /// calendar allocates per bucket and ignores it).
    pub(crate) fn instantiate<E>(self, capacity: usize) -> FelBackend<E> {
        match self {
            FelKind::Heap => FelBackend::Heap(BinaryHeapFel::with_capacity(capacity)),
            FelKind::Calendar => FelBackend::Calendar(CalendarFel::new()),
        }
    }
}

/// Statically dispatched backend holder used by [`crate::EventQueue`] (no
/// vtable in the hot loop; no `'static` bound on the payload).
pub(crate) enum FelBackend<E> {
    Heap(BinaryHeapFel<E>),
    Calendar(CalendarFel<E>),
}

// Payload-opaque `Debug`, delegating to the (bound-free) inner impls.
impl<E> fmt::Debug for FelBackend<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FelBackend::Heap(b) => b.fmt(f),
            FelBackend::Calendar(b) => b.fmt(f),
        }
    }
}

impl<E> FutureEventList<E> for FelBackend<E> {
    fn push(&mut self, entry: QueueEntry<E>) {
        match self {
            FelBackend::Heap(f) => f.push(entry),
            FelBackend::Calendar(f) => f.push(entry),
        }
    }

    fn pop(&mut self) -> Option<QueueEntry<E>> {
        match self {
            FelBackend::Heap(f) => f.pop(),
            FelBackend::Calendar(f) => f.pop(),
        }
    }

    fn peek_key(&mut self) -> Option<EventKey> {
        match self {
            FelBackend::Heap(f) => f.peek_key(),
            FelBackend::Calendar(f) => f.peek_key(),
        }
    }

    fn len(&self) -> usize {
        match self {
            FelBackend::Heap(f) => FutureEventList::len(f),
            FelBackend::Calendar(f) => FutureEventList::len(f),
        }
    }

    fn clear(&mut self) {
        match self {
            FelBackend::Heap(f) => f.clear(),
            FelBackend::Calendar(f) => f.clear(),
        }
    }
}

impl FromStr for FelKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "heap" => Ok(FelKind::Heap),
            "calendar" => Ok(FelKind::Calendar),
            other => Err(format!("unknown FEL backend '{other}' (heap|calendar)")),
        }
    }
}

impl fmt::Display for FelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FelKind::Heap => "heap",
            FelKind::Calendar => "calendar",
        })
    }
}

/// The oracle backend: `std::collections::BinaryHeap` over the reversed
/// `(time, seq)` order of [`QueueEntry`].
pub struct BinaryHeapFel<E> {
    heap: BinaryHeap<QueueEntry<E>>,
}

impl<E> BinaryHeapFel<E> {
    /// Empty heap.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Empty heap with space for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        BinaryHeapFel {
            heap: BinaryHeap::with_capacity(cap),
        }
    }
}

impl<E> Default for BinaryHeapFel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> FutureEventList<E> for BinaryHeapFel<E> {
    fn push(&mut self, entry: QueueEntry<E>) {
        self.heap.push(entry);
    }

    fn pop(&mut self) -> Option<QueueEntry<E>> {
        self.heap.pop()
    }

    fn peek_key(&mut self) -> Option<EventKey> {
        self.heap.peek().map(key)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> fmt::Debug for BinaryHeapFel<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BinaryHeapFel")
            .field("len", &self.heap.len())
            .finish()
    }
}

/// Default calendar bucket width: 8 paper time units. The synthetic trace's
/// mean interarrival is 10 units, so at steady state a bucket holds O(1)
/// departures and the in-bucket insert is effectively free.
pub const DEFAULT_BUCKET_TICKS: u64 = 8 * TICKS_PER_UNIT;

/// One calendar bucket: entries in *descending* `(time, seq)` order, so
/// the minimum is at the back and pops/peeks are O(1). Pushes
/// binary-insert to keep the invariant — an O(bucket) memmove at worst,
/// which the width tuning keeps small. (An earlier lazily-sorted variant
/// appended and re-sorted on front access; under the engine's natural
/// peek/pop/push interleaving that re-sorted the whole front bucket once
/// per push, so always-sorted is the better trade.)
struct Bucket<E> {
    entries: Vec<QueueEntry<E>>,
}

/// A bucketed calendar queue.
///
/// Entries land in the bucket `time / width`; non-empty buckets live in a
/// `BTreeMap`, so finding the earliest bucket is O(log #buckets) — and
/// #buckets is bounded by the *time span* of pending events over the
/// bucket width, not by the event count. Within the front bucket, entries
/// pop in exact `(time, seq)` order (same-tick bursts included), so the
/// global pop order is identical to [`BinaryHeapFel`]'s — pinned by the
/// proptest differential in `tests/fel_props.rs`.
pub struct CalendarFel<E> {
    width: u64,
    buckets: BTreeMap<u64, Bucket<E>>,
    len: usize,
}

impl<E> CalendarFel<E> {
    /// Calendar with the default bucket width ([`DEFAULT_BUCKET_TICKS`]).
    pub fn new() -> Self {
        Self::with_bucket_ticks(DEFAULT_BUCKET_TICKS)
    }

    /// Calendar with a custom bucket width in ticks (≥ 1).
    pub fn with_bucket_ticks(width: u64) -> Self {
        assert!(width >= 1, "calendar bucket width must be at least 1 tick");
        CalendarFel {
            width,
            buckets: BTreeMap::new(),
            len: 0,
        }
    }

    /// Number of currently non-empty buckets (white-box test hook).
    pub fn occupied_buckets(&self) -> usize {
        self.buckets.len()
    }
}

impl<E> Default for CalendarFel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> FutureEventList<E> for CalendarFel<E> {
    fn push(&mut self, entry: QueueEntry<E>) {
        let slot = entry.at.ticks() / self.width;
        let bucket = self.buckets.entry(slot).or_insert_with(|| Bucket {
            entries: Vec::new(),
        });
        let k = key(&entry);
        let idx = bucket.entries.partition_point(|e| key(e) > k);
        bucket.entries.insert(idx, entry);
        self.len += 1;
    }

    fn pop(&mut self) -> Option<QueueEntry<E>> {
        // One tree descent for lookup *and* removal.
        let mut front = self.buckets.first_entry()?;
        let entry = front
            .get_mut()
            .entries
            .pop()
            .expect("buckets are never empty");
        if front.get().entries.is_empty() {
            front.remove();
        }
        self.len -= 1;
        Some(entry)
    }

    fn peek_key(&mut self) -> Option<EventKey> {
        let (_, bucket) = self.buckets.first_key_value()?;
        bucket.entries.last().map(key)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        self.buckets.clear();
        self.len = 0;
    }
}

impl<E> fmt::Debug for CalendarFel<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CalendarFel")
            .field("width_ticks", &self.width)
            .field("buckets", &self.buckets.len())
            .field("len", &self.len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(at_ticks: u64, seq: u64) -> QueueEntry<u64> {
        QueueEntry {
            at: SimTime::from_ticks(at_ticks),
            seq,
            event: seq,
        }
    }

    fn drain<F: FutureEventList<u64>>(fel: &mut F) -> Vec<(u64, u64)> {
        std::iter::from_fn(|| fel.pop().map(|e| (e.at.ticks(), e.seq))).collect()
    }

    #[test]
    fn kind_parses_and_displays() {
        assert_eq!("heap".parse::<FelKind>().unwrap(), FelKind::Heap);
        assert_eq!("CALENDAR".parse::<FelKind>().unwrap(), FelKind::Calendar);
        assert!("fibonacci".parse::<FelKind>().is_err());
        assert_eq!(FelKind::Heap.to_string(), "heap");
        assert_eq!(FelKind::Calendar.to_string(), "calendar");
    }

    #[test]
    fn calendar_pops_across_buckets_in_key_order() {
        let mut c = CalendarFel::with_bucket_ticks(10);
        for (t, s) in [(25, 0), (3, 1), (14, 2), (3, 3), (99, 4), (10, 5)] {
            c.push(entry(t, s));
        }
        assert_eq!(c.len(), 6);
        assert!(c.occupied_buckets() >= 3);
        assert_eq!(
            drain(&mut c),
            vec![(3, 1), (3, 3), (10, 5), (14, 2), (25, 0), (99, 4)]
        );
        assert!(c.is_empty());
        assert_eq!(c.occupied_buckets(), 0);
    }

    #[test]
    fn calendar_same_tick_burst_is_fifo_by_seq() {
        let mut c = CalendarFel::with_bucket_ticks(1_000);
        for s in 0..200 {
            c.push(entry(7, s));
        }
        let popped = drain(&mut c);
        assert_eq!(popped, (0..200).map(|s| (7, s)).collect::<Vec<_>>());
    }

    #[test]
    fn calendar_interleaves_push_pop_including_front_bucket_inserts() {
        let mut c = CalendarFel::with_bucket_ticks(100);
        c.push(entry(50, 0));
        c.push(entry(150, 1));
        assert_eq!(c.peek_key(), Some((SimTime::from_ticks(50), 0)));
        // Push into the already-sorted front bucket after a peek.
        c.push(entry(20, 2));
        assert_eq!(c.pop().map(|e| e.seq), Some(2));
        assert_eq!(c.pop().map(|e| e.seq), Some(0));
        assert_eq!(c.pop().map(|e| e.seq), Some(1));
        assert_eq!(c.pop().map(|e| e.seq), None);
        assert_eq!(c.peek_key(), None);
    }

    #[test]
    fn calendar_large_single_bucket_stays_ordered() {
        let mut c = CalendarFel::with_bucket_ticks(u64::MAX);
        // Everything lands in one oversized bucket, pushed in descending
        // time order (every insert lands at the sorted Vec's back).
        let n = 500u64;
        for s in 0..n {
            c.push(entry(n - s, s));
        }
        let popped = drain(&mut c);
        let mut expect: Vec<(u64, u64)> = (0..n).map(|s| (n - s, s)).collect();
        expect.sort_unstable();
        assert_eq!(popped, expect);
    }

    #[test]
    fn clear_empties_both_backends() {
        for kind in FelKind::ALL {
            let mut fel = kind.instantiate::<u64>(16);
            fel.push(entry(5, 0));
            fel.push(entry(1, 1));
            assert_eq!(fel.len(), 2);
            fel.clear();
            assert!(fel.is_empty());
            assert_eq!(fel.peek_key(), None);
            assert_eq!(fel.pop().map(|e| e.seq), None);
        }
    }

    #[test]
    #[should_panic(expected = "at least 1 tick")]
    fn zero_width_rejected() {
        let _ = CalendarFel::<u64>::with_bucket_ticks(0);
    }
}
