//! # risa-des — a deterministic discrete-event simulation engine
//!
//! The RISA paper evaluates schedulers on a discrete-event simulation of VM
//! arrivals and departures. This crate provides the event-queue substrate
//! that the [`risa-sim`] driver builds on. It is deliberately generic: time
//! is a fixed-point tick counter, events are an arbitrary payload type, and
//! the engine guarantees **deterministic replay** — two runs with the same
//! initial events and the same handler logic produce identical event orders,
//! because ties in time are broken by insertion sequence number.
//!
//! ## The two-lane queue
//!
//! [`EventQueue`] merges two lanes at `(time, seq)`:
//!
//! 1. a **static lane** for events known (or derivable) up front and
//!    already sorted — a trace's arrivals. It comes in two flavours: a
//!    materialized [`SortedStream`] (loaded via
//!    [`Simulation::preload_sorted`]) holding every arrival in one `Vec`,
//!    or a lazy [`ArrivalSource`] (attached via
//!    [`Simulation::attach_arrivals`]) that produces arrivals on demand —
//!    e.g. regenerating one workload shard at a time — so the trace never
//!    needs to exist in memory all at once; and
//! 2. a dynamic **future-event list** for events scheduled during the run —
//!    departures, in the DDC model.
//!
//! Preloading (or attaching) reserves the sequence numbers the events
//! would have been pushed with, so delivery order is *byte-identical* to
//! pushing everything up front — but the FEL stays sized to the events in
//! flight (O(resident VMs) instead of O(all VMs)), the up-front
//! O(n log n) heap build disappears, and with a lazy source peak memory
//! drops from O(trace) to O(source buffer).
//!
//! The FEL itself is pluggable ([`FutureEventList`], selected by
//! [`FelKind`] / the `RISA_FEL` env var): [`BinaryHeapFel`] is the oracle
//! implementation, and [`CalendarFel`] is a bucketed calendar queue for
//! large in-flight sets. A proptest differential (`tests/fel_props.rs`)
//! pins identical pop order across backends; the arrival lane has the
//! same oracle/differential structure, with [`SortedStream`] as the
//! oracle (see [`arrivals`](crate::ArrivalSource) for the contract lazy
//! sources must uphold).
//!
//! ```
//! use risa_des::{Simulation, SimDuration, SimTime, World, EventCtx};
//!
//! struct Counter { fired: Vec<u64> }
//! impl World for Counter {
//!     type Event = u64;
//!     fn handle(&mut self, ctx: &mut EventCtx<'_, u64>, ev: u64) {
//!         self.fired.push(ev);
//!         if ev < 3 {
//!             ctx.schedule_in(SimDuration::from_units(1.0), ev + 1);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Counter { fired: vec![] });
//! sim.schedule(SimTime::ZERO, 0);
//! sim.run_to_completion();
//! assert_eq!(sim.world().fired, vec![0, 1, 2, 3]);
//! assert_eq!(sim.now(), SimTime::from_units(3.0));
//! ```
//!
//! [`risa-sim`]: ../risa_sim/index.html

#![warn(missing_docs)]

mod arrivals;
mod engine;
mod fel;
mod queue;
mod stream;
mod time;
mod trace;

pub use arrivals::ArrivalSource;
pub use engine::{EventCtx, RunOutcome, Simulation, StepOutcome, World};
pub use fel::{
    BinaryHeapFel, CalendarFel, EventKey, FelKind, FutureEventList, DEFAULT_BUCKET_TICKS,
};
pub use queue::{EventQueue, QueueEntry, QueueSnapshot};
pub use stream::SortedStream;
pub use time::{SimDuration, SimTime, TICKS_PER_UNIT};
pub use trace::{EventTrace, TraceEntry};
