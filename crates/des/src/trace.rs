//! Event tracing: an optional ring buffer of recently dispatched events,
//! for post-mortem debugging of simulation logic ("what happened right
//! before the drop spike?").

use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// One dispatched event, rendered eagerly so the recorder does not hold
/// onto the event type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Dispatch time.
    pub at: SimTime,
    /// Dispatch sequence (0-based count of dispatched events).
    pub seq: u64,
    /// `Debug` rendering of the event.
    pub rendered: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>12}] #{:<8} {}", self.at, self.seq, self.rendered)
    }
}

/// A bounded ring buffer of trace entries.
#[derive(Debug, Clone, Default)]
pub struct EventTrace {
    capacity: usize,
    entries: VecDeque<TraceEntry>,
    recorded: u64,
}

impl EventTrace {
    /// Keep the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self::with_base(capacity, 0)
    }

    /// Keep the most recent `capacity` events, numbering the first entry
    /// `base` instead of 0 — used when tracing resumes mid-run (e.g. on a
    /// simulation restored from a checkpoint) so entry sequence numbers
    /// stay aligned with the global dispatch count.
    pub fn with_base(capacity: usize, base: u64) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        EventTrace {
            capacity,
            entries: VecDeque::with_capacity(capacity),
            recorded: base,
        }
    }

    /// Record one dispatched event.
    pub fn record<E: fmt::Debug>(&mut self, at: SimTime, event: &E) {
        self.record_rendered(at, format!("{event:?}"));
    }

    /// Record an already-rendered event (used by the engine, whose event
    /// type is only known to be `Debug` at trace-enable time).
    pub fn record_rendered(&mut self, at: SimTime, rendered: String) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(TraceEntry {
            at,
            seq: self.recorded,
            rendered,
        });
        self.recorded += 1;
    }

    /// Retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Render the retained tail as text.
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.recorded > self.entries.len() as u64 {
            let _ = writeln!(
                out,
                "... {} earlier events evicted ...",
                self.recorded - self.entries.len() as u64
            );
        }
        for e in &self.entries {
            let _ = writeln!(out, "{e}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[derive(Debug)]
    #[allow(dead_code)] // fields exist to show up in Debug renderings
    enum Ev {
        Arrive(u32),
        Depart(u32),
    }

    #[test]
    fn records_in_order() {
        let mut t = EventTrace::new(10);
        assert!(t.is_empty());
        t.record(SimTime::from_units(1.0), &Ev::Arrive(0));
        t.record(SimTime::from_units(2.0), &Ev::Depart(0));
        assert_eq!(t.len(), 2);
        assert_eq!(t.recorded(), 2);
        let seqs: Vec<u64> = t.entries().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
        assert!(t.entries().next().unwrap().rendered.contains("Arrive(0)"));
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = EventTrace::new(3);
        for i in 0..10u32 {
            t.record(SimTime::from_units(i as f64), &Ev::Arrive(i));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.recorded(), 10);
        let seqs: Vec<u64> = t.entries().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
        assert!(t.dump().starts_with("... 7 earlier events evicted ..."));
    }

    #[test]
    fn dump_renders_each_entry() {
        let mut t = EventTrace::new(5);
        t.record(SimTime::from_units(3.5), &Ev::Depart(7));
        let s = t.dump();
        assert!(s.contains("Depart(7)"));
        assert!(s.contains("3.500"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        EventTrace::new(0);
    }
}
