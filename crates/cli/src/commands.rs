//! Command execution.
//!
//! Commands that fan work out (`run`'s sharded generation, `experiment`,
//! `bench`, `generate`) use the process-wide **resident** `rayon` pool;
//! `--jobs` (applied here via [`rayon::set_num_threads`]) or the
//! `RISA_THREADS` env var size it, and [`apply_jobs`] pre-warms it
//! ([`rayon::warm_up`]) so the workers are spawned once up front rather
//! than inside the first timed cell of a sweep. Simulation *reports* are
//! byte-identical at any thread count; wall-clock measurements (`bench`'s
//! ops/s, the fig11/fig12 timings) are not, which is why those stay
//! sequential or warn about contention. A panic inside a worker (e.g. a
//! workload that fails validation) propagates to the command and aborts
//! it, exactly as the sequential loop would.

use crate::args::{Command, WorkloadArg};
use rayon::prelude::*;
use risa_metrics::{Align, Table};
use risa_network::NetworkConfig;
use risa_sched::cycle::ScheduleCycle;
use risa_sched::Algorithm;
use risa_sim::{experiments, host_info, Checkpoint, RunReport, SimulationBuilder, WorkloadSpec};
use risa_topology::TopologyConfig;
use risa_workload::{SyntheticConfig, Workload};

/// Execute a parsed command.
pub fn execute(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Info => info(),
        Command::Run {
            algo,
            workload,
            seed,
            scale,
            fel,
            arrivals,
            exec,
            faults,
            json,
            jobs,
            checkpoint,
            checkpoint_every,
            resume,
        } => {
            apply_jobs(jobs);
            let mut sim = if let Some(path) = resume {
                // The checkpoint embeds the fully-resolved run recipe:
                // nothing is re-read from flags or the environment.
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read checkpoint {path}: {e}"))?;
                let cp = Checkpoint::from_json(&text)
                    .map_err(|e| format!("bad checkpoint {path}: {e}"))?;
                eprintln!(
                    "resuming at t={} ({} events dispatched, {} pending, {} arrivals left)",
                    cp.at(),
                    cp.events_dispatched(),
                    cp.pending_events(),
                    cp.arrivals_remaining()
                );
                cp.resume()
            } else {
                let paper = TopologyConfig::paper();
                if u32::from(paper.racks) * u32::from(scale) > u32::from(u16::MAX) {
                    return Err(format!(
                        "--scale {scale} exceeds the {} rack limit ({} racks per paper cluster)",
                        u16::MAX,
                        paper.racks
                    ));
                }
                let spec = spec_of(workload, seed);
                let mut builder = SimulationBuilder::new()
                    .algorithm(algo)
                    .workload(spec)
                    .topology(paper.scaled(scale));
                if let Some(kind) = fel {
                    builder = builder.fel(kind);
                }
                if let Some(mode) = arrivals {
                    builder = builder.arrivals(mode);
                }
                if let Some(mode) = exec {
                    builder = builder.exec(mode);
                }
                if faults {
                    builder = builder.faults(risa_sim::FaultSpec::canonical());
                }
                if let Some(every) = checkpoint_every {
                    builder = builder.checkpoint_every(every);
                }
                builder.try_build().map_err(|e| e.to_string())?
            };
            // One resolved-config line on stderr: what the run actually
            // uses after flag-vs-env precedence (flags win; see
            // tests/precedence.rs).
            eprintln!(
                "resolved: fel={} arrivals={} exec={} faults={} jobs={}",
                sim.fel_backend(),
                sim.arrival_mode(),
                sim.exec_mode(),
                if sim.world().fault_report().is_some() {
                    "on"
                } else {
                    "off"
                },
                rayon::current_num_threads()
            );
            let report = match checkpoint {
                Some(path) => {
                    let mut written = 0u32;
                    let report = sim.run_checkpointed(|cp| {
                        write_checkpoint(&path, cp);
                        written += 1;
                    });
                    eprintln!("wrote {written} checkpoint(s) to {path}");
                    report
                }
                None => sim.run(),
            };
            emit(&report, json)
        }
        Command::Bench {
            racks,
            vms,
            jobs,
            json,
            des_vms,
            gen_vms,
            out,
        } => {
            apply_jobs(jobs);
            if json {
                crate::benchjson::write_snapshots(&out, &racks, vms, des_vms, gen_vms)?;
            }
            bench(&racks, vms)
        }
        Command::Experiment { id, seed, jobs } => {
            apply_jobs(jobs);
            experiment(&id, seed)
        }
        Command::Generate {
            workload,
            seed,
            out,
            jobs,
        } => {
            apply_jobs(jobs);
            generate(workload, seed, out)
        }
        Command::Replay { trace, algo, json } => {
            let text =
                std::fs::read_to_string(&trace).map_err(|e| format!("cannot read {trace}: {e}"))?;
            let w = Workload::from_json(&text).map_err(|e| format!("bad trace: {e}"))?;
            let report = SimulationBuilder::new()
                .algorithm(algo)
                .workload(WorkloadSpec::Trace(w))
                .build()
                .run();
            emit(&report, json)
        }
        Command::Lint {
            json,
            deny_warnings,
        } => lint(json, deny_warnings),
    }
}

/// `lint`: run the determinism/concurrency static analysis over the
/// workspace this binary was built from (found by walking up from the
/// current directory to a `[workspace]` manifest).
fn lint(json: bool, deny_warnings: bool) -> Result<(), String> {
    let cwd = std::env::current_dir().map_err(|e| format!("cannot read current dir: {e}"))?;
    let root = risa_lint::find_workspace_root(&cwd)
        .ok_or_else(|| format!("no workspace root found above {}", cwd.display()))?;
    let findings = risa_lint::lint_workspace(&root)
        .map_err(|e| format!("lint walk failed under {}: {e}", root.display()))?;
    if json {
        print!("{}", risa_lint::render_json(&findings));
    } else {
        print!("{}", risa_lint::render_text(&findings, false));
    }
    match risa_lint::exit_code(&findings, deny_warnings) {
        0 => Ok(()),
        _ => Err("lint findings (see report above)".into()),
    }
}

/// `--jobs` wins over `RISA_THREADS` and the core-count default, then
/// the resident pool is spawned eagerly at the resolved width so no
/// command pays the one-off thread-spawn cost mid-measurement.
fn apply_jobs(jobs: Option<usize>) {
    if let Some(n) = jobs {
        rayon::set_num_threads(n);
    }
    rayon::warm_up();
}

fn spec_of(workload: WorkloadArg, seed: u64) -> WorkloadSpec {
    match workload {
        WorkloadArg::Synthetic { n } => WorkloadSpec::Synthetic(SyntheticConfig::small(n, seed)),
        WorkloadArg::Azure(subset) => WorkloadSpec::azure(subset, seed),
        WorkloadArg::TraceCsv { path } => {
            let name = std::path::Path::new(&path)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "trace".into());
            WorkloadSpec::TraceCsv { name, path }
        }
    }
}

/// Write one checkpoint atomically: serialize to a sibling temp file,
/// then rename over the target so an interrupted write never leaves a
/// truncated (unresumable) checkpoint behind.
fn write_checkpoint(path: &str, cp: &Checkpoint) {
    let tmp = format!("{path}.tmp");
    let json = cp.to_json();
    if let Err(e) = std::fs::write(&tmp, json).and_then(|()| std::fs::rename(&tmp, path)) {
        panic!("cannot write checkpoint {path}: {e}");
    }
}

fn emit(report: &RunReport, json: bool) -> Result<(), String> {
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(report).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    let mut t = Table::new(
        format!("{} on {}", report.algorithm, report.workload),
        &["metric", "value"],
    )
    .align(&[Align::Left, Align::Right]);
    t.row_display(&["VMs", &report.total_vms.to_string()]);
    t.row_display(&["admitted", &report.admitted.to_string()]);
    t.row_display(&[
        "dropped (compute/network)",
        &format!(
            "{} ({}/{})",
            report.dropped, report.dropped_compute, report.dropped_network
        ),
    ]);
    t.row_display(&[
        "inter-rack assignments",
        &format!(
            "{} ({:.1}%)",
            report.inter_rack_assignments,
            report.inter_rack_percent()
        ),
    ]);
    t.row_display(&[
        "utilization cpu/ram/sto",
        &format!(
            "{:.1}% / {:.1}% / {:.1}%",
            report.cpu_utilization * 100.0,
            report.ram_utilization * 100.0,
            report.storage_utilization * 100.0
        ),
    ]);
    t.row_display(&[
        "network util intra/inter",
        &format!(
            "{:.1}% / {:.2}%",
            report.intra_net_utilization * 100.0,
            report.inter_net_utilization * 100.0
        ),
    ]);
    t.row_display(&[
        "optical power",
        &format!("{:.2} kW", report.optical_power_w / 1000.0),
    ]);
    t.row_display(&[
        "mean CPU-RAM latency",
        &format!("{:.0} ns", report.mean_cpu_ram_latency_ns),
    ]);
    t.row_display(&[
        "scheduler time / ops per VM",
        &format!(
            "{:.2} ms / {:.0}",
            report.sched_seconds * 1e3,
            report.work.ops_per_call()
        ),
    ]);
    if let Some(s) = &report.speculation {
        t.row_display(&[
            "speculation fast/rollback/serial",
            &format!("{} / {} / {}", s.fast_commits, s.rollbacks, s.serial_events),
        ]);
    }
    if let Some(f) = &report.faults {
        t.row_display(&[
            "rack failures / link flaps",
            &format!(
                "{} / {} trunk + {} xcvr",
                f.rack_failures, f.trunk_link_downs, f.xcvr_downs
            ),
        ]);
        t.row_display(&[
            "evacuated (replaced/dropped/departed)",
            &format!(
                "{} ({}/{}/{})",
                f.evacuated, f.evac_replaced, f.dropped_churn, f.evac_departed
            ),
        ]);
        t.row_display(&[
            "mean evac latency / recovery",
            &format!("{:.1} / {:.1} s", f.mean_evac_latency, f.mean_recovery_time),
        ]);
        t.row_display(&[
            "mean stranded units / bw",
            &format!(
                "{:.1} / {:.1} Mb/s",
                f.mean_stranded_units, f.mean_stranded_mbps
            ),
        ]);
    }
    println!("{t}");
    Ok(())
}

fn info() -> Result<(), String> {
    let cfg = TopologyConfig::paper();
    let net = NetworkConfig::paper();
    println!("{}", host_info());
    let mut t = Table::new(
        "Paper configuration (Tables 1 and 2, §3.1/§5.2)",
        &["parameter", "value"],
    )
    .align(&[Align::Left, Align::Right]);
    t.row_display(&["racks", &cfg.racks.to_string()]);
    t.row_display(&[
        "boxes per rack (cpu/ram/sto)",
        &format!(
            "{}/{}/{}",
            cfg.box_mix.cpu, cfg.box_mix.ram, cfg.box_mix.storage
        ),
    ]);
    t.row_display(&["bricks per box", &cfg.bricks_per_box.to_string()]);
    t.row_display(&["units per brick", &cfg.units_per_brick.to_string()]);
    t.row_display(&[
        "unit sizes",
        &format!(
            "{} cores / {} GB / {} GB",
            cfg.units.cpu_cores_per_unit, cfg.units.ram_gb_per_unit, cfg.units.storage_gb_per_unit
        ),
    ]);
    t.row_display(&["link rate", &format!("{} Gb/s", net.link_mbps / 1000)]);
    t.row_display(&[
        "flow rates cpu-ram / ram-sto",
        &format!(
            "{} / {} Gb/s/unit",
            net.cpu_ram_mbps_per_unit / 1000,
            net.ram_sto_mbps_per_unit / 1000
        ),
    ]);
    t.row_display(&[
        "switch ports box/rack/inter",
        &format!(
            "{}/{}/{}",
            net.box_switch_ports, net.rack_switch_ports, net.inter_rack_switch_ports
        ),
    ]);
    println!("{t}");
    Ok(())
}

/// Time `vms` schedule/release cycles per (cluster size × algorithm) and
/// report schedule operations per second — the Figure 11/12 scaling story
/// at beyond-paper cluster sizes. With the placement index, throughput
/// stays near-flat as racks grow; the seed's linear scans degraded.
///
/// The (racks × algorithm) cells are independent, so they run concurrently
/// on the `rayon` pool and the sweep's wall-clock time scales with
/// `--jobs`. Per-cell `µs/op` figures are then contended by siblings; pass
/// `--jobs 1` (or `RISA_THREADS=1`) when the per-op numbers, not the
/// sweep time, are the measurement.
fn bench(racks: &[u16], vms: u32) -> Result<(), String> {
    println!("{}", host_info());
    let threads = rayon::current_num_threads();
    let cells: Vec<(u16, Algorithm)> = racks
        .iter()
        .flat_map(|&n| Algorithm::ALL.iter().map(move |&a| (n, a)))
        .collect();
    let rows: Vec<Vec<String>> = cells
        .par_iter()
        .map(|&(n, algo)| {
            let mut cycle = ScheduleCycle::new(n, algo);
            let t0 = std::time::Instant::now();
            for _ in 0..vms {
                cycle.step();
            }
            let secs = t0.elapsed().as_secs_f64();
            let ops = vms as f64 / secs.max(1e-9);
            vec![
                n.to_string(),
                algo.to_string(),
                format!("{ops:.0}"),
                format!("{:.2}", 1e6 / ops),
            ]
        })
        .collect();
    let mut t = Table::new(
        format!("Scheduling throughput vs cluster size ({vms} schedule/release cycles)"),
        &["racks", "algorithm", "sched ops/s", "µs/op"],
    )
    .align(&[Align::Right, Align::Left, Align::Right, Align::Right]);
    for row in &rows {
        t.row(row);
    }
    println!("{t}");
    if threads > 1 {
        println!("(cells timed concurrently on {threads} threads; use --jobs 1 for uncontended per-op numbers)");
    }
    Ok(())
}

fn experiment(id: &str, seed: Option<u64>) -> Result<(), String> {
    let run_one = |id: &str, seed: Option<u64>| -> Result<(), String> {
        let rep = match id {
            "fig5" => experiments::fig5(seed.unwrap_or(42)),
            "fig6" => experiments::fig6(seed.unwrap_or(2023)),
            "fig7" => experiments::fig7(seed.unwrap_or(2023)),
            "fig8" => experiments::fig8(seed.unwrap_or(2023)),
            "fig9" => experiments::fig9(seed.unwrap_or(2023)),
            "fig10" => experiments::fig10(seed.unwrap_or(2023)),
            "fig11" => experiments::fig11(seed.unwrap_or(42)),
            "fig12" => experiments::fig12(seed.unwrap_or(2023)),
            "ablation" => {
                println!(
                    "{}",
                    experiments::ablation_trunk_width(seed.unwrap_or(7), &[1, 2, 4, 8])
                );
                println!(
                    "{}",
                    experiments::ablation_alpha(seed.unwrap_or(7), &[0.5, 0.7, 0.9, 1.0])
                );
                return Ok(());
            }
            other => return Err(format!("unknown experiment '{other}'")),
        };
        println!("{rep}");
        Ok(())
    };
    if id == "all" {
        for id in [
            "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "ablation",
        ] {
            run_one(id, seed)?;
        }
        Ok(())
    } else {
        run_one(id, seed)
    }
}

fn generate(workload: WorkloadArg, seed: u64, out: Option<String>) -> Result<(), String> {
    // Generation is sharded over the pool (risa_workload::shard); the
    // trace is byte-identical at any --jobs value.
    let w = spec_of(workload, seed).materialize();
    let json = w.to_json();
    match out {
        None => {
            println!("{json}");
            Ok(())
        }
        Some(path) => {
            std::fs::write(&path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {} VMs to {path}", w.len());
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use risa_sched::Algorithm;

    #[test]
    fn info_runs() {
        assert!(execute(Command::Info).is_ok());
    }

    #[test]
    fn run_small_synthetic() {
        let cmd = Command::Run {
            algo: Algorithm::Risa,
            workload: WorkloadArg::Synthetic { n: 50 },
            seed: 1,
            scale: 1,
            fel: None,
            arrivals: Some(risa_sim::ArrivalMode::Streaming),
            exec: None,
            faults: false,
            json: false,
            jobs: None,
            checkpoint: None,
            checkpoint_every: None,
            resume: None,
        };
        assert!(execute(cmd).is_ok());
    }

    #[test]
    fn run_emits_json() {
        let cmd = Command::Run {
            algo: Algorithm::Nulb,
            workload: WorkloadArg::Synthetic { n: 20 },
            seed: 1,
            scale: 1,
            fel: None,
            arrivals: None,
            exec: None,
            faults: false,
            json: true,
            jobs: None,
            checkpoint: None,
            checkpoint_every: None,
            resume: None,
        };
        assert!(execute(cmd).is_ok());
    }

    #[test]
    fn generate_and_replay_roundtrip() {
        let dir = std::env::temp_dir().join("risa-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json").to_string_lossy().to_string();
        execute(Command::Generate {
            workload: WorkloadArg::Synthetic { n: 30 },
            seed: 5,
            out: Some(path.clone()),
            jobs: None,
        })
        .unwrap();
        execute(Command::Replay {
            trace: path.clone(),
            algo: Algorithm::RisaBf,
            json: true,
        })
        .unwrap();
        std::fs::remove_file(path).unwrap();
    }

    /// `generate --jobs` sizes the sharded-generation pool — and the trace
    /// written is byte-identical at any thread count.
    #[test]
    fn generate_jobs_is_thread_count_invariant() {
        let dir = std::env::temp_dir().join("risa-cli-test-jobs");
        std::fs::create_dir_all(&dir).unwrap();
        let gen_with = |jobs: Option<usize>, name: &str| {
            let path = dir.join(name).to_string_lossy().to_string();
            execute(Command::Generate {
                workload: WorkloadArg::Synthetic { n: 5000 },
                seed: 9,
                out: Some(path.clone()),
                jobs,
            })
            .unwrap();
            let json = std::fs::read_to_string(&path).unwrap();
            std::fs::remove_file(path).unwrap();
            json
        };
        // --jobs lands in the process-global pool size; restore the
        // pre-test width afterwards so sibling tests (and the CI
        // RISA_THREADS=8 pass, which the global would shadow) keep their
        // configured pool.
        let prev = rayon::current_num_threads();
        let two = gen_with(Some(2), "t2.json");
        let one = gen_with(Some(1), "t1.json");
        rayon::set_num_threads(prev);
        assert_eq!(one, two, "trace must not depend on --jobs");
        assert!(Workload::from_json(&one).is_ok());
    }

    #[test]
    fn run_scaled_cluster() {
        let cmd = Command::Run {
            algo: Algorithm::Risa,
            workload: WorkloadArg::Synthetic { n: 40 },
            seed: 2,
            scale: 10,
            fel: Some(risa_sim::FelKind::Calendar),
            arrivals: None,
            exec: None,
            faults: false,
            json: false,
            jobs: None,
            checkpoint: None,
            checkpoint_every: None,
            resume: None,
        };
        assert!(execute(cmd).is_ok());
    }

    /// `run --faults` injects the canonical scenario and the text report
    /// grows the resilience rows (JSON mode grows the `faults` block —
    /// covered by `risa-sim`'s serde tests).
    #[test]
    fn run_with_faults() {
        let cmd = Command::Run {
            algo: Algorithm::Risa,
            workload: WorkloadArg::Synthetic { n: 400 },
            seed: 3,
            scale: 1,
            fel: None,
            arrivals: None,
            exec: None,
            faults: true,
            json: false,
            jobs: None,
            checkpoint: None,
            checkpoint_every: None,
            resume: None,
        };
        assert!(execute(cmd).is_ok());
    }

    /// `run --exec speculative` drives the windowed optimistic engine end
    /// to end through the CLI path (byte-identity with sequential is
    /// pinned by `risa-sim`'s differential tests).
    #[test]
    fn run_speculative_exec() {
        let cmd = Command::Run {
            algo: Algorithm::Risa,
            workload: WorkloadArg::Synthetic { n: 300 },
            seed: 6,
            scale: 1,
            fel: None,
            arrivals: None,
            exec: Some(risa_sim::ExecMode::Speculative),
            faults: false,
            json: false,
            jobs: None,
            checkpoint: None,
            checkpoint_every: None,
            resume: None,
        };
        assert!(execute(cmd).is_ok());
    }

    #[test]
    fn bench_smoke() {
        assert!(execute(Command::Bench {
            racks: vec![12, 24],
            vms: 200,
            jobs: Some(2),
            json: false,
            des_vms: 100_000,
            gen_vms: 1_000_000,
            out: ".".into(),
        })
        .is_ok());
    }

    /// `bench --json` writes the three snapshot envelopes with their
    /// schema tags; tiny sizes keep this a smoke test.
    #[test]
    fn bench_json_writes_snapshots() {
        let dir = std::env::temp_dir().join("risa-cli-bench-json");
        std::fs::create_dir_all(&dir).unwrap();
        execute(Command::Bench {
            racks: vec![12],
            vms: 50,
            jobs: None,
            json: true,
            des_vms: 1000,
            gen_vms: 5000,
            out: dir.to_string_lossy().to_string(),
        })
        .unwrap();
        for (name, schema) in [
            ("BENCH_des.json", "risa-bench-des/v2"),
            ("BENCH_scale.json", "risa-bench-scale/v1"),
            ("BENCH_gen.json", "risa-bench-gen/v1"),
        ] {
            let path = dir.join(name);
            let text = std::fs::read_to_string(&path).unwrap();
            assert!(text.contains(schema), "{name} missing schema tag");
            std::fs::remove_file(path).unwrap();
        }
    }

    /// `run --checkpoint/--checkpoint-every` leaves a resumable snapshot
    /// behind, and `run --resume` replays it to completion using only the
    /// embedded recipe (no workload/seed/fel flags on the resume side).
    #[test]
    fn run_checkpoint_then_resume() {
        let dir = std::env::temp_dir().join("risa-cli-checkpoint");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt").to_string_lossy().to_string();
        execute(Command::Run {
            algo: Algorithm::Risa,
            workload: WorkloadArg::Synthetic { n: 400 },
            seed: 3,
            scale: 1,
            fel: None,
            arrivals: None,
            exec: None,
            faults: false,
            json: true,
            jobs: None,
            checkpoint: Some(path.clone()),
            checkpoint_every: Some(2000.0),
            resume: None,
        })
        .unwrap();
        // The temp file must have been renamed away, not left behind.
        assert!(!std::path::Path::new(&format!("{path}.tmp")).exists());
        execute(Command::Run {
            algo: Algorithm::Risa,
            workload: WorkloadArg::Synthetic { n: 50 },
            seed: 1,
            scale: 1,
            fel: None,
            arrivals: None,
            exec: None,
            faults: false,
            json: true,
            jobs: None,
            checkpoint: None,
            checkpoint_every: None,
            resume: Some(path.clone()),
        })
        .unwrap();
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn resume_missing_or_corrupt_checkpoint_fails() {
        let cmd = |resume: String| Command::Run {
            algo: Algorithm::Risa,
            workload: WorkloadArg::Synthetic { n: 50 },
            seed: 1,
            scale: 1,
            fel: None,
            arrivals: None,
            exec: None,
            faults: false,
            json: false,
            jobs: None,
            checkpoint: None,
            checkpoint_every: None,
            resume: Some(resume),
        };
        assert!(execute(cmd("/nonexistent/run.ckpt".into()))
            .unwrap_err()
            .contains("cannot read checkpoint"));
        let dir = std::env::temp_dir().join("risa-cli-checkpoint-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.ckpt").to_string_lossy().to_string();
        std::fs::write(&path, "{not a checkpoint").unwrap();
        assert!(execute(cmd(path.clone()))
            .unwrap_err()
            .contains("bad checkpoint"));
        std::fs::remove_file(path).unwrap();
    }

    /// `run --workload <file>.csv` streams the trace file chunk-by-chunk
    /// through the same pipeline as the generator workloads.
    #[test]
    fn run_csv_trace_workload() {
        let dir = std::env::temp_dir().join("risa-cli-csv");
        std::fs::create_dir_all(&dir).unwrap();
        let csv =
            risa_workload::csv::to_csv(&spec_of(WorkloadArg::Synthetic { n: 60 }, 4).materialize());
        let path = dir.join("mini.csv").to_string_lossy().to_string();
        std::fs::write(&path, csv).unwrap();
        execute(Command::Run {
            algo: Algorithm::Risa,
            workload: WorkloadArg::TraceCsv { path: path.clone() },
            seed: 1,
            scale: 1,
            fel: None,
            arrivals: None,
            exec: None,
            faults: false,
            json: true,
            jobs: None,
            checkpoint: None,
            checkpoint_every: None,
            resume: None,
        })
        .unwrap();
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn replay_missing_file_fails() {
        let cmd = Command::Replay {
            trace: "/nonexistent/trace.json".into(),
            algo: Algorithm::Risa,
            json: false,
        };
        assert!(execute(cmd).is_err());
    }

    #[test]
    fn unknown_experiment_fails() {
        assert!(experiment("fig99", None).is_err());
    }
}
