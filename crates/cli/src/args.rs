//! Hand-rolled argument parsing (no CLI dependency; the grammar is tiny).

use risa_sched::Algorithm;
use risa_sim::FelKind;
use risa_workload::AzureSubset;

/// Top-level usage text.
pub const USAGE: &str = "\
usage: risa-cli <command> [options]

commands:
  info                       print the paper's configuration tables and host info
  run                        run one simulation and print (or emit JSON) its report
      --algo <NULB|NALB|RISA|RISA-BF>      (default RISA)
      --workload <synthetic|azure-3000|azure-5000|azure-7500>  (default synthetic)
      --n <count>            synthetic VM count (default 2500)
      --seed <u64>           (default 42)
      --scale <mult>         run on a mult x paper cluster (default 1)
      --fel <heap|calendar>  future-event-list backend (default: RISA_FEL
                             env var, else heap; reports are identical)
      --json                 emit the RunReport as JSON
      --jobs <n>             thread-pool size for parallel sections
  experiment <id>            regenerate a paper artifact
      <id> ∈ fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 ablation all
      --seed <u64>           (default 42 for fig5/fig11, 2023 otherwise)
      --jobs <n>             threads for the experiment matrix (default: all cores)
  bench                      scheduling-throughput sweep over cluster sizes
      --racks <a,b,c>        rack counts to sweep (default 12,48,192,768)
      --vms <count>          schedule/release cycles per point (default 2000)
      --jobs <n>             threads timing cells concurrently (1 = uncontended)
  generate                   write a workload trace as JSON
      --workload <...>       as for run
      --n <count> --seed <u64>
      --out <path>           output file (default: stdout)
      --jobs <n>             threads for sharded trace generation
  replay                     run a saved trace
      --trace <path> --algo <...> [--json]

--jobs (or the RISA_THREADS env var; the flag wins) sizes the global
thread pool. Simulation reports are identical at any thread count;
only wall-clock timings (bench's ops/s, fig11/fig12 times) vary.
";

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `info`
    Info,
    /// `run`
    Run {
        /// Scheduling algorithm.
        algo: Algorithm,
        /// Workload selector.
        workload: WorkloadArg,
        /// Seed.
        seed: u64,
        /// Cluster-size multiplier over the paper topology.
        scale: u16,
        /// Future-event-list backend (`None` = `RISA_FEL` or heap).
        fel: Option<FelKind>,
        /// Emit JSON instead of the text report.
        json: bool,
        /// Thread-pool size (`None` = `RISA_THREADS` or all cores).
        jobs: Option<usize>,
    },
    /// `bench`
    Bench {
        /// Rack counts to sweep.
        racks: Vec<u16>,
        /// Schedule/release cycles measured per point.
        vms: u32,
        /// Thread-pool size (`None` = `RISA_THREADS` or all cores).
        jobs: Option<usize>,
    },
    /// `experiment <id>`
    Experiment {
        /// Artifact id (fig5…fig12, ablation, all).
        id: String,
        /// Seed, if overridden.
        seed: Option<u64>,
        /// Thread-pool size (`None` = `RISA_THREADS` or all cores).
        jobs: Option<usize>,
    },
    /// `generate`
    Generate {
        /// Workload selector.
        workload: WorkloadArg,
        /// Seed.
        seed: u64,
        /// Output path (None = stdout).
        out: Option<String>,
        /// Thread-pool size for sharded generation (`None` =
        /// `RISA_THREADS` or all cores).
        jobs: Option<usize>,
    },
    /// `replay`
    Replay {
        /// Trace path.
        trace: String,
        /// Scheduling algorithm.
        algo: Algorithm,
        /// Emit JSON instead of the text report.
        json: bool,
    },
}

/// Workload selection shared by `run` and `generate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadArg {
    /// §5.1 synthetic with `n` VMs.
    Synthetic {
        /// VM count.
        n: u32,
    },
    /// An Azure-like slice.
    Azure(AzureSubset),
}

fn parse_workload(s: &str, n: u32) -> Result<WorkloadArg, String> {
    match s.to_ascii_lowercase().as_str() {
        "synthetic" => Ok(WorkloadArg::Synthetic { n }),
        "azure-3000" => Ok(WorkloadArg::Azure(AzureSubset::N3000)),
        "azure-5000" => Ok(WorkloadArg::Azure(AzureSubset::N5000)),
        "azure-7500" => Ok(WorkloadArg::Azure(AzureSubset::N7500)),
        other => Err(format!("unknown workload '{other}'")),
    }
}

/// Leftover positionals plus parsed `(key, value)` option pairs.
type SplitArgs = (Vec<String>, Vec<(String, String)>);

/// Pull `--key value` style options out of `argv`, returning leftover
/// positionals. `flags` lists boolean options that take no value.
fn split_options(argv: &[String], flags: &[&str]) -> Result<SplitArgs, String> {
    let mut positionals = Vec::new();
    let mut options = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        let a = &argv[i];
        if let Some(key) = a.strip_prefix("--") {
            if flags.contains(&key) {
                options.push((key.to_string(), "true".to_string()));
                i += 1;
            } else {
                let value = argv
                    .get(i + 1)
                    .ok_or_else(|| format!("--{key} expects a value"))?;
                options.push((key.to_string(), value.clone()));
                i += 2;
            }
        } else {
            positionals.push(a.clone());
            i += 1;
        }
    }
    Ok((positionals, options))
}

fn opt<'a>(options: &'a [(String, String)], key: &str) -> Option<&'a str> {
    options
        .iter()
        .rev()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

fn opt_u64(options: &[(String, String)], key: &str, default: u64) -> Result<u64, String> {
    match opt(options, key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key}: bad number '{v}'")),
    }
}

/// As [`opt_u64`] but range-checked into a narrower integer type, so
/// oversized values error instead of silently truncating.
fn opt_int<T: TryFrom<u64>>(
    options: &[(String, String)],
    key: &str,
    default: T,
) -> Result<T, String> {
    match opt(options, key) {
        None => Ok(default),
        Some(v) => v
            .parse::<u64>()
            .ok()
            .and_then(|n| T::try_from(n).ok())
            .ok_or_else(|| format!("--{key}: number out of range '{v}'")),
    }
}

/// `--jobs`: an optional thread-pool size, at least 1.
fn opt_jobs(options: &[(String, String)]) -> Result<Option<usize>, String> {
    match opt(options, "jobs") {
        None => Ok(None),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(format!("--jobs: need a positive thread count, got '{v}'")),
        },
    }
}

/// Parse an argument vector (excluding the program name).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let Some(cmd) = argv.first() else {
        return Err("missing command".into());
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "info" => {
            if !rest.is_empty() {
                return Err("info takes no arguments".into());
            }
            Ok(Command::Info)
        }
        "run" => {
            let (pos, options) = split_options(rest, &["json"])?;
            if !pos.is_empty() {
                return Err(format!("unexpected argument '{}'", pos[0]));
            }
            let n = opt_int::<u32>(&options, "n", 2500)?;
            let scale = opt_int::<u16>(&options, "scale", 1)?;
            if scale == 0 {
                return Err("--scale must be at least 1".into());
            }
            Ok(Command::Run {
                algo: opt(&options, "algo").unwrap_or("RISA").parse()?,
                workload: parse_workload(opt(&options, "workload").unwrap_or("synthetic"), n)?,
                seed: opt_u64(&options, "seed", 42)?,
                scale,
                fel: opt(&options, "fel").map(str::parse).transpose()?,
                json: opt(&options, "json").is_some(),
                jobs: opt_jobs(&options)?,
            })
        }
        "bench" => {
            let (pos, options) = split_options(rest, &[])?;
            if !pos.is_empty() {
                return Err(format!("unexpected argument '{}'", pos[0]));
            }
            let racks = match opt(&options, "racks") {
                None => vec![12, 48, 192, 768],
                Some(list) => list
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<u16>()
                            .map_err(|_| format!("--racks: bad rack count '{s}'"))
                    })
                    .collect::<Result<Vec<u16>, String>>()?,
            };
            if racks.is_empty() || racks.contains(&0) {
                return Err("--racks needs positive rack counts".into());
            }
            Ok(Command::Bench {
                racks,
                vms: opt_int::<u32>(&options, "vms", 2000)?,
                jobs: opt_jobs(&options)?,
            })
        }
        "experiment" => {
            let (pos, options) = split_options(rest, &[])?;
            let id = pos.first().ok_or("experiment needs an id")?.clone();
            const KNOWN: [&str; 10] = [
                "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "ablation",
                "all",
            ];
            if !KNOWN.contains(&id.as_str()) {
                return Err(format!("unknown experiment '{id}'"));
            }
            let seed = match opt(&options, "seed") {
                None => None,
                Some(v) => Some(v.parse().map_err(|_| format!("--seed: bad number '{v}'"))?),
            };
            Ok(Command::Experiment {
                id,
                seed,
                jobs: opt_jobs(&options)?,
            })
        }
        "generate" => {
            let (pos, options) = split_options(rest, &[])?;
            if !pos.is_empty() {
                return Err(format!("unexpected argument '{}'", pos[0]));
            }
            let n = opt_int::<u32>(&options, "n", 2500)?;
            Ok(Command::Generate {
                workload: parse_workload(opt(&options, "workload").unwrap_or("synthetic"), n)?,
                seed: opt_u64(&options, "seed", 42)?,
                out: opt(&options, "out").map(str::to_string),
                jobs: opt_jobs(&options)?,
            })
        }
        "replay" => {
            let (pos, options) = split_options(rest, &["json"])?;
            if !pos.is_empty() {
                return Err(format!("unexpected argument '{}'", pos[0]));
            }
            Ok(Command::Replay {
                trace: opt(&options, "trace")
                    .ok_or("replay needs --trace <path>")?
                    .to_string(),
                algo: opt(&options, "algo").unwrap_or("RISA").parse()?,
                json: opt(&options, "json").is_some(),
            })
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_info() {
        assert_eq!(parse(&v(&["info"])).unwrap(), Command::Info);
        assert!(parse(&v(&["info", "x"])).is_err());
    }

    #[test]
    fn parses_run_defaults() {
        let c = parse(&v(&["run"])).unwrap();
        assert_eq!(
            c,
            Command::Run {
                algo: Algorithm::Risa,
                workload: WorkloadArg::Synthetic { n: 2500 },
                seed: 42,
                scale: 1,
                fel: None,
                json: false,
                jobs: None,
            }
        );
    }

    #[test]
    fn parses_run_full() {
        let c = parse(&v(&[
            "run",
            "--algo",
            "nalb",
            "--workload",
            "azure-5000",
            "--seed",
            "7",
            "--scale",
            "10",
            "--fel",
            "calendar",
            "--json",
            "--jobs",
            "4",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Run {
                algo: Algorithm::Nalb,
                workload: WorkloadArg::Azure(AzureSubset::N5000),
                seed: 7,
                scale: 10,
                fel: Some(FelKind::Calendar),
                json: true,
                jobs: Some(4),
            }
        );
        assert!(parse(&v(&["run", "--scale", "0"])).is_err());
        assert!(parse(&v(&["run", "--fel", "fibonacci"])).is_err());
        assert!(parse(&v(&["run", "--jobs", "0"])).is_err());
        assert!(parse(&v(&["run", "--jobs", "lots"])).is_err());
        // Out-of-range values error instead of silently truncating.
        assert!(parse(&v(&["run", "--scale", "65536"])).is_err());
        assert!(parse(&v(&["run", "--n", "4294967296"])).is_err());
        assert!(parse(&v(&["bench", "--vms", "4294967296"])).is_err());
    }

    #[test]
    fn parses_bench() {
        let c = parse(&v(&["bench"])).unwrap();
        assert_eq!(
            c,
            Command::Bench {
                racks: vec![12, 48, 192, 768],
                vms: 2000,
                jobs: None,
            }
        );
        let c = parse(&v(&[
            "bench", "--racks", "18,36", "--vms", "500", "--jobs", "1",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Bench {
                racks: vec![18, 36],
                vms: 500,
                jobs: Some(1),
            }
        );
        assert!(parse(&v(&["bench", "--racks", "12,x"])).is_err());
        assert!(parse(&v(&["bench", "--racks", "0"])).is_err());
    }

    #[test]
    fn parses_experiment() {
        let c = parse(&v(&["experiment", "fig9", "--seed", "1"])).unwrap();
        assert_eq!(
            c,
            Command::Experiment {
                id: "fig9".into(),
                seed: Some(1),
                jobs: None,
            }
        );
        assert!(parse(&v(&["experiment", "fig99"])).is_err());
        assert!(parse(&v(&["experiment"])).is_err());
    }

    #[test]
    fn parses_generate_and_replay() {
        let c = parse(&v(&[
            "generate",
            "--workload",
            "synthetic",
            "--n",
            "100",
            "--out",
            "t.json",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Generate {
                workload: WorkloadArg::Synthetic { n: 100 },
                seed: 42,
                out: Some("t.json".into()),
                jobs: None,
            }
        );
        // --jobs sizes the sharded-generation pool.
        let c = parse(&v(&["generate", "--jobs", "8"])).unwrap();
        assert_eq!(
            c,
            Command::Generate {
                workload: WorkloadArg::Synthetic { n: 2500 },
                seed: 42,
                out: None,
                jobs: Some(8),
            }
        );
        assert!(parse(&v(&["generate", "--jobs", "0"])).is_err());
        let c = parse(&v(&["replay", "--trace", "t.json", "--algo", "risa-bf"])).unwrap();
        assert_eq!(
            c,
            Command::Replay {
                trace: "t.json".into(),
                algo: Algorithm::RisaBf,
                json: false,
            }
        );
        assert!(parse(&v(&["replay"])).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse(&v(&[])).is_err());
        assert!(parse(&v(&["frobnicate"])).is_err());
        assert!(parse(&v(&["run", "--algo"])).is_err());
        assert!(parse(&v(&["run", "--seed", "NaN"])).is_err());
        assert!(parse(&v(&["run", "--workload", "gcp"])).is_err());
        assert!(parse(&v(&["run", "stray"])).is_err());
    }

    #[test]
    fn last_option_wins() {
        let c = parse(&v(&["run", "--seed", "1", "--seed", "2"])).unwrap();
        match c {
            Command::Run { seed, .. } => assert_eq!(seed, 2),
            _ => panic!(),
        }
    }
}
