//! Machine-readable benchmark artifacts: `risa-cli bench --json` writes
//! `BENCH_des.json`, `BENCH_scale.json`, and `BENCH_gen.json` so the perf
//! trajectory of the three hot paths — the DES event loop, the scheduler
//! at scale, and sharded trace generation — can be tracked commit over
//! commit instead of eyeballed from bench printouts. Snapshots are
//! checked in at the repo root; regenerate with
//! `risa-cli bench --json --out .`.
//!
//! Every envelope carries a `schema` tag (bump on breaking shape
//! changes), the git revision, and the thread count, so a snapshot is
//! interpretable on its own.

use rayon::prelude::*;
use risa_sched::cycle::ScheduleCycle;
use risa_sched::Algorithm;
use risa_sim::{
    ArrivalMode, ExecMode, FelKind, SimulationBuilder, SpeculationReport, WorkloadSpec,
};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// `BENCH_des.json`: single-run DES throughput per (exec mode × arrival
/// mode × FEL backend) on the saturating synthetic trace — the
/// des_hot_loop bench's artifact, machine-readable. Speculative rows
/// carry the conflict/rollback counters, so the snapshot doubles as the
/// checked-in record of where optimistic execution pays off (and where
/// the shared round-robin cursor serializes it).
#[derive(Debug, Serialize, Deserialize)]
pub struct DesBench {
    /// Envelope shape tag.
    pub schema: String,
    /// `git rev-parse --short HEAD`, or `"unknown"`.
    pub git_rev: String,
    /// Pool threads during the measurement.
    pub threads: usize,
    /// VMs in the measured trace.
    pub vms: u32,
    /// One row per engine configuration.
    pub runs: Vec<DesRun>,
}

/// One DES measurement row.
#[derive(Debug, Serialize, Deserialize)]
pub struct DesRun {
    /// `sequential` or `speculative`.
    pub exec: String,
    /// `materialized` or `streaming`.
    pub arrival_mode: String,
    /// FEL backend.
    pub fel: String,
    /// Events dispatched (arrivals + departures).
    pub events: u64,
    /// Wall-clock seconds of the run (excludes trace generation on the
    /// materialized path; *includes* overlapped generation when
    /// streaming — that is the pipeline's claim).
    pub seconds: f64,
    /// `events / seconds`.
    pub events_per_sec: f64,
    /// High-water mark of the future-event list.
    pub peak_fel: usize,
    /// High-water mark of resident VMs.
    pub peak_resident: u32,
    /// Streaming only: high-water mark of VMs buffered by the workload
    /// cursor (≤ 2 shards by construction).
    pub peak_buffered_arrivals: Option<usize>,
    /// Speculative rows only: window/conflict/rollback counters — the
    /// quantified conflict economics of the optimistic executor on this
    /// workload.
    pub speculation: Option<SpeculationReport>,
}

/// `BENCH_scale.json`: scheduler ops/s over cluster sizes (the `bench`
/// table, machine-readable).
#[derive(Debug, Serialize, Deserialize)]
pub struct ScaleBench {
    /// Envelope shape tag.
    pub schema: String,
    /// `git rev-parse --short HEAD`, or `"unknown"`.
    pub git_rev: String,
    /// Pool threads during the measurement (cells time concurrently;
    /// prefer `--jobs 1` snapshots for uncontended per-op numbers).
    pub threads: usize,
    /// Schedule/release cycles per cell.
    pub vms_per_cell: u32,
    /// One row per (racks × algorithm) cell.
    pub rows: Vec<ScaleRow>,
}

/// One (cluster size × algorithm) throughput cell.
#[derive(Debug, Serialize, Deserialize)]
pub struct ScaleRow {
    /// Racks in the scaled cluster.
    pub racks: u16,
    /// Scheduling algorithm.
    pub algorithm: String,
    /// Schedule/release cycles per second.
    pub ops_per_sec: f64,
    /// Microseconds per cycle.
    pub us_per_op: f64,
}

/// `BENCH_gen.json`: sharded trace-generation throughput.
#[derive(Debug, Serialize, Deserialize)]
pub struct GenBench {
    /// Envelope shape tag.
    pub schema: String,
    /// `git rev-parse --short HEAD`, or `"unknown"`.
    pub git_rev: String,
    /// Pool threads during the measurement.
    pub threads: usize,
    /// VMs generated.
    pub vms: u32,
    /// Wall-clock seconds to materialize the trace.
    pub seconds: f64,
    /// `vms / seconds`.
    pub vms_per_sec: f64,
}

/// Short git revision of the working tree, `"unknown"` outside a repo.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Measure the DES event loop: one full run per (exec mode × arrival
/// mode × FEL backend) on a saturating `vms`-VM synthetic trace (seed 42,
/// the des_hot_loop configuration, so numbers are comparable across
/// commits).
pub fn des_bench(vms: u32) -> DesBench {
    let mut runs = Vec::new();
    for exec in ExecMode::ALL {
        for mode in ArrivalMode::ALL {
            for fel in FelKind::ALL {
                let mut sim = SimulationBuilder::new()
                    .algorithm(Algorithm::Risa)
                    .workload(WorkloadSpec::synthetic(vms, 42))
                    .arrivals(mode)
                    .fel(fel)
                    .exec(exec)
                    .faults_off() // comparable across commits and env toggles
                    .build();
                let t0 = Instant::now();
                let report = sim.run();
                let seconds = t0.elapsed().as_secs_f64();
                let events = sim.events_dispatched();
                runs.push(DesRun {
                    exec: exec.to_string(),
                    arrival_mode: mode.to_string(),
                    fel: fel.to_string(),
                    events,
                    seconds,
                    events_per_sec: events as f64 / seconds.max(1e-9),
                    peak_fel: sim.peak_fel_len(),
                    peak_resident: sim.world().peak_resident(),
                    peak_buffered_arrivals: sim.peak_buffered_arrivals(),
                    speculation: report.speculation,
                });
            }
        }
    }
    DesBench {
        schema: "risa-bench-des/v2".into(),
        git_rev: git_rev(),
        threads: rayon::current_num_threads(),
        vms,
        runs,
    }
}

/// Measure scheduler throughput cells (shared with the `bench` text
/// table); cells run concurrently on the pool.
pub fn scale_rows(racks: &[u16], vms: u32) -> Vec<ScaleRow> {
    let cells: Vec<(u16, Algorithm)> = racks
        .iter()
        .flat_map(|&n| Algorithm::ALL.iter().map(move |&a| (n, a)))
        .collect();
    cells
        .par_iter()
        .map(|&(n, algo)| {
            let mut cycle = ScheduleCycle::new(n, algo);
            let t0 = Instant::now();
            for _ in 0..vms {
                cycle.step();
            }
            let secs = t0.elapsed().as_secs_f64();
            let ops = vms as f64 / secs.max(1e-9);
            ScaleRow {
                racks: n,
                algorithm: algo.to_string(),
                ops_per_sec: ops,
                us_per_op: 1e6 / ops,
            }
        })
        .collect()
}

/// Wrap scale rows in the snapshot envelope.
pub fn scale_bench(racks: &[u16], vms: u32) -> ScaleBench {
    ScaleBench {
        schema: "risa-bench-scale/v1".into(),
        git_rev: git_rev(),
        threads: rayon::current_num_threads(),
        vms_per_cell: vms,
        rows: scale_rows(racks, vms),
    }
}

/// Measure sharded trace generation: materialize a `vms`-VM synthetic
/// trace on the pool.
pub fn gen_bench(vms: u32) -> GenBench {
    let spec = WorkloadSpec::synthetic(vms, 42);
    let t0 = Instant::now();
    let w = spec.materialize();
    let seconds = t0.elapsed().as_secs_f64();
    assert_eq!(w.len(), vms as usize);
    GenBench {
        schema: "risa-bench-gen/v1".into(),
        git_rev: git_rev(),
        threads: rayon::current_num_threads(),
        vms,
        seconds,
        vms_per_sec: vms as f64 / seconds.max(1e-9),
    }
}

/// Run all three suites and write `BENCH_des.json` / `BENCH_scale.json` /
/// `BENCH_gen.json` under `out_dir`, printing one summary line per file.
pub fn write_snapshots(
    out_dir: &str,
    racks: &[u16],
    scale_vms: u32,
    des_vms: u32,
    gen_vms: u32,
) -> Result<(), String> {
    std::fs::create_dir_all(out_dir).map_err(|e| format!("cannot create {out_dir}: {e}"))?;
    let write = |name: &str, json: String| -> Result<(), String> {
        let path = std::path::Path::new(out_dir).join(name);
        std::fs::write(&path, json + "\n")
            .map_err(|e| format!("cannot write {}: {e}", path.display()))
    };
    let des = des_bench(des_vms);
    for r in &des.runs {
        println!(
            "des: {}/{}/{} {:.0} events/s (peak FEL {}, peak buffered {:?})",
            r.exec, r.arrival_mode, r.fel, r.events_per_sec, r.peak_fel, r.peak_buffered_arrivals
        );
        if let Some(s) = &r.speculation {
            println!(
                "des:   speculation: {} windows, {} fast / {} rollback / {} serial",
                s.windows, s.fast_commits, s.rollbacks, s.serial_events
            );
        }
    }
    write(
        "BENCH_des.json",
        serde_json::to_string_pretty(&des).map_err(|e| e.to_string())?,
    )?;
    let scale = scale_bench(racks, scale_vms);
    println!(
        "scale: {} cells, {} cycles each on {} threads",
        scale.rows.len(),
        scale.vms_per_cell,
        scale.threads
    );
    write(
        "BENCH_scale.json",
        serde_json::to_string_pretty(&scale).map_err(|e| e.to_string())?,
    )?;
    let gen = gen_bench(gen_vms);
    println!("gen: {:.0} VMs/s over {} VMs", gen.vms_per_sec, gen.vms);
    write(
        "BENCH_gen.json",
        serde_json::to_string_pretty(&gen).map_err(|e| e.to_string())?,
    )?;
    println!("wrote BENCH_des.json, BENCH_scale.json, BENCH_gen.json to {out_dir}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Envelope snapshots must round-trip and carry the schema, rev and
    /// thread fields a consumer keys on (the CI smoke step greps these).
    #[test]
    fn des_envelope_roundtrips_with_schema() {
        let b = des_bench(2000);
        assert_eq!(b.schema, "risa-bench-des/v2");
        assert_eq!(
            b.runs.len(),
            ExecMode::ALL.len() * ArrivalMode::ALL.len() * FelKind::ALL.len()
        );
        assert!(b.threads >= 1);
        for r in &b.runs {
            assert!(r.events >= 2 * 2000 - 2000); // ≥ arrivals
            assert!(r.events_per_sec > 0.0);
            let streaming = r.arrival_mode == "streaming";
            assert_eq!(r.peak_buffered_arrivals.is_some(), streaming);
            // Counters ride exactly on the speculative rows, and their
            // identity must hold: every speculated arrival either
            // fast-committed or rolled back.
            let speculative = r.exec == "speculative";
            assert_eq!(r.speculation.is_some(), speculative);
            if let Some(s) = &r.speculation {
                assert_eq!(s.fast_commits + s.rollbacks, s.speculated);
            }
        }
        // Same engine (and byte-identical speculative engine) ⇒ identical
        // event counts across all rows.
        assert!(b.runs.iter().all(|r| r.events == b.runs[0].events));
        let json = serde_json::to_string(&b).unwrap();
        let back: DesBench = serde_json::from_str(&json).unwrap();
        assert_eq!(back.vms, 2000);
        assert_eq!(back.runs.len(), b.runs.len());
        assert_eq!(
            back.runs[0].speculation.is_some(),
            b.runs[0].speculation.is_some()
        );
    }

    #[test]
    fn scale_envelope_covers_all_cells() {
        let b = scale_bench(&[12], 50);
        assert_eq!(b.schema, "risa-bench-scale/v1");
        assert_eq!(b.rows.len(), Algorithm::ALL.len());
        assert!(b.rows.iter().all(|r| r.ops_per_sec > 0.0 && r.racks == 12));
        let back: ScaleBench = serde_json::from_str(&serde_json::to_string(&b).unwrap()).unwrap();
        assert_eq!(back.vms_per_cell, 50);
    }

    #[test]
    fn gen_envelope_measures_throughput() {
        let b = gen_bench(10_000);
        assert_eq!(b.schema, "risa-bench-gen/v1");
        assert!(b.vms_per_sec > 0.0);
        let back: GenBench = serde_json::from_str(&serde_json::to_string(&b).unwrap()).unwrap();
        assert_eq!(back.vms, 10_000);
    }

    #[test]
    fn git_rev_is_nonempty() {
        assert!(!git_rev().is_empty());
    }
}
