//! `risa-cli` — drive the RISA reproduction from the command line.
//!
//! ```text
//! risa-cli info                                   # Tables 1/2 + host
//! risa-cli run --algo RISA --workload azure-3000  # one simulation
//! risa-cli experiment fig5 [--seed 42]            # regenerate a figure
//! risa-cli experiment all --jobs 8                # every figure, 8 threads
//! risa-cli bench --racks 12,768 --jobs 1          # throughput sweep, uncontended
//! risa-cli generate --workload synthetic --n 2500 --seed 42 --out trace.json
//! risa-cli replay --trace trace.json --algo NALB  # run a saved trace
//! risa-cli lint --deny-warnings                   # determinism static analysis
//! ```
//!
//! `experiment` and `bench` fan out over the `rayon` thread pool; `--jobs`
//! (or `RISA_THREADS`) sizes it, and results are byte-identical at any
//! thread count. Entry points: `args::parse` → `commands::execute`.

mod args;
mod benchjson;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cmd) => match commands::execute(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
            ExitCode::FAILURE
        }
    }
}
