//! Flag-vs-env precedence matrix for the `run` command.
//!
//! Every run knob has a flag and an environment fallback: `--fel` /
//! `RISA_FEL`, `--arrivals` / `RISA_ARRIVALS`, `--exec` / `RISA_EXEC`,
//! `--faults` / `RISA_FAULTS`,
//! `--jobs` / `RISA_THREADS`. The contract is that an explicit flag
//! always beats a conflicting env var. Before PR 9 that contract was only
//! documented; here it is observed end-to-end by spawning the real binary
//! with deliberately contradictory env + flags and reading the one
//! `resolved: fel=… arrivals=… faults=… jobs=…` line the run prints to
//! stderr. Spawning (rather than calling `execute`) matters because
//! `RISA_THREADS` is read once per process when the resident pool first
//! spins up — in-process tests would see a stale cached value.

use std::collections::HashMap;
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_risa-cli");

/// Run `risa-cli run --workload synthetic --n 30 --seed 1 --json <extra>`
/// with the given env vars; return (resolved map, stdout JSON).
fn run_with(env: &[(&str, &str)], extra: &[&str]) -> (HashMap<String, String>, String) {
    let mut cmd = Command::new(BIN);
    cmd.args([
        "run",
        "--workload",
        "synthetic",
        "--n",
        "30",
        "--seed",
        "1",
        "--json",
    ])
    .args(extra)
    // Start from a known-clean slate: the test runner's own env
    // (e.g. CI's RISA_FEL matrix) must not leak into the child.
    .env_remove("RISA_FEL")
    .env_remove("RISA_ARRIVALS")
    .env_remove("RISA_EXEC")
    .env_remove("RISA_FAULTS")
    .env_remove("RISA_THREADS");
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn risa-cli");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        out.status.success(),
        "run failed (env {env:?}, flags {extra:?}):\n{stderr}"
    );
    let line = stderr
        .lines()
        .find(|l| l.starts_with("resolved: "))
        .unwrap_or_else(|| panic!("no resolved-config line in stderr:\n{stderr}"));
    let resolved = line["resolved: ".len()..]
        .split_whitespace()
        .map(|kv| {
            let (k, v) = kv.split_once('=').expect("key=value");
            (k.to_string(), v.to_string())
        })
        .collect();
    (resolved, String::from_utf8(out.stdout).unwrap())
}

/// With no flags, the env vars drive every knob — the fallback half of
/// the contract, and the baseline the flag runs below must override.
#[test]
fn env_vars_drive_unflagged_runs() {
    let (resolved, _) = run_with(
        &[
            ("RISA_FEL", "calendar"),
            ("RISA_ARRIVALS", "streaming"),
            ("RISA_EXEC", "speculative"),
            ("RISA_FAULTS", "1"),
            ("RISA_THREADS", "3"),
        ],
        &[],
    );
    assert_eq!(resolved["fel"], "calendar");
    assert_eq!(resolved["arrivals"], "streaming");
    assert_eq!(resolved["exec"], "speculative");
    assert_eq!(resolved["faults"], "on");
    assert_eq!(resolved["jobs"], "3");
}

#[test]
fn fel_flag_beats_env() {
    let (resolved, _) = run_with(&[("RISA_FEL", "calendar")], &["--fel", "heap"]);
    assert_eq!(resolved["fel"], "heap");
}

#[test]
fn arrivals_flag_beats_env() {
    let (resolved, _) = run_with(
        &[("RISA_ARRIVALS", "streaming")],
        &["--arrivals", "materialized"],
    );
    assert_eq!(resolved["arrivals"], "materialized");
}

#[test]
fn exec_flag_beats_env() {
    let (resolved, _) = run_with(&[("RISA_EXEC", "speculative")], &["--exec", "sequential"]);
    assert_eq!(resolved["exec"], "sequential");
}

/// A speculative run's report differs from a sequential one only by the
/// `speculation` counter block (and wall-clock `sched_seconds`).
#[test]
fn speculative_run_output_matches_sequential_modulo_counters() {
    // Normalize pretty JSON to comparable key lines: trim structure-only
    // lines and trailing commas, then drop the wall-clock field and the
    // speculation block's key/counter lines.
    let stable = |json: String| -> String {
        json.lines()
            .map(|l| l.trim().trim_end_matches(',').to_string())
            .filter(|l| !l.is_empty() && l != "}" && l != "{")
            .filter(|l| !l.contains("sched_seconds") && !l.contains("\"speculation\""))
            .filter(|l| {
                ![
                    "\"windows\"",
                    "\"window_events\"",
                    "\"speculated\"",
                    "\"fast_commits\"",
                    "\"rollbacks\"",
                    "\"serial_events\"",
                ]
                .iter()
                .any(|k| l.starts_with(*k))
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    let (_, seq) = run_with(&[], &["--exec", "sequential"]);
    let (resolved, spec) = run_with(&[], &["--exec", "speculative"]);
    assert_eq!(resolved["exec"], "speculative");
    assert!(spec.contains("\"speculation\""), "counter block present");
    assert!(
        !seq.contains("\"speculation\""),
        "absent on sequential runs"
    );
    assert_eq!(stable(seq), stable(spec));
}

#[test]
fn faults_flag_beats_env() {
    let (resolved, _) = run_with(&[("RISA_FAULTS", "off")], &["--faults"]);
    assert_eq!(resolved["faults"], "on");
}

#[test]
fn jobs_flag_beats_env() {
    let (resolved, _) = run_with(&[("RISA_THREADS", "3")], &["--jobs", "2"]);
    assert_eq!(resolved["jobs"], "2");
}

/// The resolved line is not just cosmetic: a flag-configured run and an
/// env-configured run of the same resolved config produce byte-identical
/// report JSON, and the conflicting env var demonstrably does not bleed
/// into the flagged run's output.
#[test]
fn flagged_run_output_matches_env_run_of_same_config() {
    // `sched_seconds` is wall-clock; everything else in the report is
    // deterministic and must match byte-for-byte.
    let stable = |json: String| -> String {
        json.lines()
            .filter(|l| !l.contains("sched_seconds"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let (_, via_env) = run_with(&[("RISA_FEL", "calendar")], &[]);
    let (_, via_flag) = run_with(&[("RISA_FEL", "heap")], &["--fel", "calendar"]);
    assert_eq!(
        stable(via_env),
        stable(via_flag),
        "calendar-FEL report must not depend on how calendar was selected"
    );
}
