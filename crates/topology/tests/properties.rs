//! Property tests for the cluster resource ledger: allocation and release
//! are exact inverses, caches never go stale, and capacity is never
//! exceeded, under arbitrary interleavings of operations.

use proptest::prelude::*;
use risa_topology::{AllocError, BoxId, Cluster, ResourceKind, TopologyConfig};

#[derive(Debug, Clone)]
enum Op {
    Take { box_idx: u8, units: u32 },
    Give { box_idx: u8, units: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..108, 0u32..200).prop_map(|(box_idx, units)| Op::Take { box_idx, units }),
        (0u8..108, 0u32..200).prop_map(|(box_idx, units)| Op::Give { box_idx, units }),
    ]
}

proptest! {
    /// Fuzz the ledger with random takes/gives; after every op the cluster
    /// invariants hold, and failed ops leave the state untouched.
    #[test]
    fn ledger_invariants_under_random_ops(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut c = Cluster::new(TopologyConfig::paper());
        for op in ops {
            let before_cpu = c.total_available(ResourceKind::Cpu);
            match op {
                Op::Take { box_idx, units } => {
                    let id = BoxId(box_idx as u32);
                    let avail = c.available(id);
                    match c.take(id, units) {
                        Ok(()) => prop_assert!(units <= avail),
                        Err(AllocError::Insufficient { .. }) => {
                            prop_assert!(units > avail);
                            prop_assert_eq!(c.available(id), avail, "failed take mutated state");
                            if c.kind_of(id) == ResourceKind::Cpu {
                                prop_assert_eq!(c.total_available(ResourceKind::Cpu), before_cpu);
                            }
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e:?}"))),
                    }
                }
                Op::Give { box_idx, units } => {
                    let id = BoxId(box_idx as u32);
                    let avail = c.available(id);
                    let cap = c.box_state(id).capacity;
                    match c.give(id, units) {
                        Ok(()) => prop_assert!(avail + units <= cap),
                        Err(AllocError::OverRelease { .. }) => {
                            prop_assert!(avail + units > cap);
                            prop_assert_eq!(c.available(id), avail, "failed give mutated state");
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e:?}"))),
                    }
                }
            }
            c.check_invariants().map_err(TestCaseError::fail)?;
        }
    }

    /// take(x); give(x) restores the exact prior state for any valid x.
    #[test]
    fn take_give_is_identity(box_idx in 0u8..108, units in 0u32..=128) {
        let mut c = Cluster::new(TopologyConfig::paper());
        let id = BoxId(box_idx as u32);
        let kind = c.kind_of(id);
        let before_avail = c.available(id);
        let before_total = c.total_available(kind);
        let before_rack = c.rack_max_available(c.rack_of(id), kind);

        c.take(id, units).unwrap();
        c.give(id, units).unwrap();

        prop_assert_eq!(c.available(id), before_avail);
        prop_assert_eq!(c.total_available(kind), before_total);
        prop_assert_eq!(c.rack_max_available(c.rack_of(id), kind), before_rack);
        c.check_invariants().map_err(TestCaseError::fail)?;
    }

    /// rack_fits agrees with a brute-force scan of the rack's boxes.
    #[test]
    fn rack_fits_matches_bruteforce(
        takes in prop::collection::vec((0u8..108, 0u32..=128), 0..50),
        cpu in 0u32..=130, ram in 0u32..=130, sto in 0u32..=130,
    ) {
        let mut c = Cluster::new(TopologyConfig::paper());
        for (b, u) in takes {
            let _ = c.take(BoxId(b as u32), u);
        }
        let demand = risa_topology::UnitDemand::new(cpu, ram, sto);
        for rack in 0..c.num_racks() {
            let rack = risa_topology::RackId(rack);
            let brute = [ResourceKind::Cpu, ResourceKind::Ram, ResourceKind::Storage]
                .iter()
                .all(|&k| {
                    c.boxes_in_rack(rack, k)
                        .iter()
                        .any(|&b| c.available(b) >= demand.get(k))
                });
            prop_assert_eq!(c.rack_fits(rack, &demand), brute);
        }
    }
}
