//! Property tests for the cluster resource ledger: allocation and release
//! are exact inverses, caches never go stale, and capacity is never
//! exceeded, under arbitrary interleavings of operations.

use proptest::prelude::*;
use risa_topology::{
    AllocError, BoxId, Cluster, RackId, ResourceKind, TopologyConfig, UnitDemand, ALL_RESOURCES,
};

#[derive(Debug, Clone)]
enum Op {
    Take { box_idx: u8, units: u32 },
    Give { box_idx: u8, units: u32 },
}

/// PR 7 battery: capacity *removal* interleaved with the ledger ops.
#[derive(Debug, Clone)]
enum ChurnOp {
    Take { box_idx: u8, units: u32 },
    Give { box_idx: u8, units: u32 },
    Remove { box_idx: u8 },
    Restore { box_idx: u8 },
}

fn churn_op_strategy() -> impl Strategy<Value = ChurnOp> {
    prop_oneof![
        (0u8..108, 0u32..200).prop_map(|(box_idx, units)| ChurnOp::Take { box_idx, units }),
        (0u8..108, 0u32..200).prop_map(|(box_idx, units)| ChurnOp::Give { box_idx, units }),
        (0u8..108).prop_map(|box_idx| ChurnOp::Remove { box_idx }),
        (0u8..108).prop_map(|box_idx| ChurnOp::Restore { box_idx }),
    ]
}

/// Linear-scan reference for `next_rack_with_fit`: first rack ≥ `from`
/// holding a live box of `kind` with ≥ `units` free.
fn next_rack_scan(c: &Cluster, kind: ResourceKind, units: u32, from: u16) -> Option<RackId> {
    (from..c.num_racks()).map(RackId).find(|&r| {
        c.boxes_in_rack(r, kind)
            .iter()
            .any(|&b| !c.is_failed(b) && c.available(b) >= units)
    })
}

/// Linear-scan reference for `best_fit_in_rack`: the live box with the
/// least availability that still fits, ties to the lower id.
fn best_fit_scan(c: &Cluster, rack: RackId, kind: ResourceKind, units: u32) -> Option<BoxId> {
    c.boxes_in_rack(rack, kind)
        .iter()
        .copied()
        .filter(|&b| !c.is_failed(b) && c.available(b) >= units)
        .min_by_key(|&b| (c.available(b), b))
}

/// Every index query the schedulers use, checked against linear scans over
/// the live (non-failed) box table.
fn assert_queries_match_scans(c: &Cluster, probe: u32) -> Result<(), TestCaseError> {
    for kind in ALL_RESOURCES {
        for from in [0u16, 5, c.num_racks() - 1] {
            prop_assert_eq!(
                c.next_rack_with_fit(kind, probe, from),
                next_rack_scan(c, kind, probe, from),
                "next_rack_with_fit({:?}, {}, {}) diverged",
                kind,
                probe,
                from
            );
        }
        for r in 0..c.num_racks() {
            let rack = RackId(r);
            prop_assert_eq!(
                c.best_fit_in_rack(rack, kind, probe),
                best_fit_scan(c, rack, kind, probe),
                "best_fit_in_rack({}, {:?}, {}) diverged",
                r,
                kind,
                probe
            );
            let total: u64 = c
                .boxes_in_rack(rack, kind)
                .iter()
                .filter(|&&b| !c.is_failed(b))
                .map(|&b| c.available(b) as u64)
                .sum();
            prop_assert_eq!(c.rack_total_available(rack, kind), total);
        }
    }
    Ok(())
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..108, 0u32..200).prop_map(|(box_idx, units)| Op::Take { box_idx, units }),
        (0u8..108, 0u32..200).prop_map(|(box_idx, units)| Op::Give { box_idx, units }),
    ]
}

proptest! {
    /// Fuzz the ledger with random takes/gives; after every op the cluster
    /// invariants hold, and failed ops leave the state untouched.
    #[test]
    fn ledger_invariants_under_random_ops(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut c = Cluster::new(TopologyConfig::paper());
        for op in ops {
            let before_cpu = c.total_available(ResourceKind::Cpu);
            match op {
                Op::Take { box_idx, units } => {
                    let id = BoxId(box_idx as u32);
                    let avail = c.available(id);
                    match c.take(id, units) {
                        Ok(()) => prop_assert!(units <= avail),
                        Err(AllocError::Insufficient { .. }) => {
                            prop_assert!(units > avail);
                            prop_assert_eq!(c.available(id), avail, "failed take mutated state");
                            if c.kind_of(id) == ResourceKind::Cpu {
                                prop_assert_eq!(c.total_available(ResourceKind::Cpu), before_cpu);
                            }
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e:?}"))),
                    }
                }
                Op::Give { box_idx, units } => {
                    let id = BoxId(box_idx as u32);
                    let avail = c.available(id);
                    let cap = c.box_state(id).capacity;
                    match c.give(id, units) {
                        Ok(()) => prop_assert!(avail + units <= cap),
                        Err(AllocError::OverRelease { .. }) => {
                            prop_assert!(avail + units > cap);
                            prop_assert_eq!(c.available(id), avail, "failed give mutated state");
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e:?}"))),
                    }
                }
            }
            c.check_invariants().map_err(TestCaseError::fail)?;
        }
    }

    /// take(x); give(x) restores the exact prior state for any valid x.
    #[test]
    fn take_give_is_identity(box_idx in 0u8..108, units in 0u32..=128) {
        let mut c = Cluster::new(TopologyConfig::paper());
        let id = BoxId(box_idx as u32);
        let kind = c.kind_of(id);
        let before_avail = c.available(id);
        let before_total = c.total_available(kind);
        let before_rack = c.rack_max_available(c.rack_of(id), kind);

        c.take(id, units).unwrap();
        c.give(id, units).unwrap();

        prop_assert_eq!(c.available(id), before_avail);
        prop_assert_eq!(c.total_available(kind), before_total);
        prop_assert_eq!(c.rack_max_available(c.rack_of(id), kind), before_rack);
        c.check_invariants().map_err(TestCaseError::fail)?;
    }

    /// rack_fits agrees with a brute-force scan of the rack's boxes.
    #[test]
    fn rack_fits_matches_bruteforce(
        takes in prop::collection::vec((0u8..108, 0u32..=128), 0..50),
        cpu in 0u32..=130, ram in 0u32..=130, sto in 0u32..=130,
    ) {
        let mut c = Cluster::new(TopologyConfig::paper());
        for (b, u) in takes {
            let _ = c.take(BoxId(b as u32), u);
        }
        let demand = risa_topology::UnitDemand::new(cpu, ram, sto);
        for rack in 0..c.num_racks() {
            let rack = risa_topology::RackId(rack);
            let brute = [ResourceKind::Cpu, ResourceKind::Ram, ResourceKind::Storage]
                .iter()
                .all(|&k| {
                    c.boxes_in_rack(rack, k)
                        .iter()
                        .any(|&b| c.available(b) >= demand.get(k))
                });
            prop_assert_eq!(c.rack_fits(rack, &demand), brute);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10_000))]

    /// PR 7 acceptance battery (10k cases): under interleaved
    /// `take`/`give`/`remove_box`/`restore_box` sequences, the sorted
    /// availability sets, per-rack totals, and segment-tree maxima always
    /// equal a naive full recount (`check_invariants` rebuilds the index
    /// from scratch and compares all three), and `next_rack_with_fit` /
    /// `best_fit_in_rack` agree with linear scans over the live box table.
    #[test]
    fn removal_battery_matches_naive_recount(
        ops in prop::collection::vec(churn_op_strategy(), 1..14),
        probe in 0u32..=130,
    ) {
        let mut c = Cluster::new(TopologyConfig::paper());
        for op in ops {
            match op {
                ChurnOp::Take { box_idx, units } => {
                    let id = BoxId(box_idx as u32);
                    let before = c.available(id);
                    match c.take(id, units) {
                        Ok(()) => prop_assert!(!c.is_failed(id) && units <= before),
                        Err(AllocError::BoxFailed) => {
                            prop_assert!(c.is_failed(id));
                            prop_assert_eq!(c.available(id), before, "failed-box take mutated");
                        }
                        Err(AllocError::Insufficient { .. }) => prop_assert!(units > before),
                        Err(e) => return Err(TestCaseError::fail(format!("unexpected {e:?}"))),
                    }
                }
                ChurnOp::Give { box_idx, units } => {
                    let id = BoxId(box_idx as u32);
                    let before = c.available(id);
                    let cap = c.box_state(id).capacity;
                    match c.give(id, units) {
                        Ok(()) => prop_assert!(!c.is_failed(id) && before + units <= cap),
                        Err(AllocError::BoxFailed) => {
                            prop_assert!(c.is_failed(id));
                            prop_assert_eq!(c.available(id), before, "failed-box give mutated");
                        }
                        Err(AllocError::OverRelease { .. }) => prop_assert!(before + units > cap),
                        Err(e) => return Err(TestCaseError::fail(format!("unexpected {e:?}"))),
                    }
                }
                ChurnOp::Remove { box_idx } => {
                    let id = BoxId(box_idx as u32);
                    let kind = c.kind_of(id);
                    let was_failed = c.is_failed(id);
                    let (avail, cap) = (c.available(id), c.box_state(id).capacity);
                    let (tot_a, tot_c) = (c.total_available(kind), c.total_capacity(kind));
                    match c.remove_box(id) {
                        Ok(()) => {
                            prop_assert!(!was_failed);
                            prop_assert_eq!(c.total_available(kind), tot_a - avail as u64);
                            prop_assert_eq!(c.total_capacity(kind), tot_c - cap as u64);
                            prop_assert_eq!(c.available(id), avail, "failure must freeze state");
                        }
                        Err(AllocError::BoxFailed) => prop_assert!(was_failed),
                        Err(e) => return Err(TestCaseError::fail(format!("unexpected {e:?}"))),
                    }
                }
                ChurnOp::Restore { box_idx } => {
                    let id = BoxId(box_idx as u32);
                    let kind = c.kind_of(id);
                    let was_failed = c.is_failed(id);
                    let avail = c.available(id);
                    let tot_a = c.total_available(kind);
                    match c.restore_box(id) {
                        Ok(()) => {
                            prop_assert!(was_failed);
                            prop_assert_eq!(c.total_available(kind), tot_a + avail as u64);
                            prop_assert_eq!(c.available(id), avail, "repair keeps frozen units");
                        }
                        Err(AllocError::BoxNotFailed) => prop_assert!(!was_failed),
                        Err(e) => return Err(TestCaseError::fail(format!("unexpected {e:?}"))),
                    }
                }
            }
            c.check_invariants().map_err(TestCaseError::fail)?;
            assert_queries_match_scans(&c, probe)?;
        }
    }

    /// remove_box(x); restore_box(x) is an exact identity on every
    /// aggregate, regardless of the box's load at failure time.
    #[test]
    fn remove_restore_is_identity(
        box_idx in 0u8..108,
        taken in 0u32..=128,
        pool in prop::collection::vec((0u8..108, 0u32..=128), 0..20),
    ) {
        let mut c = Cluster::new(TopologyConfig::paper());
        for (b, u) in pool {
            let _ = c.take(BoxId(b as u32), u);
        }
        let id = BoxId(box_idx as u32);
        let _ = c.take(id, taken);
        let kind = c.kind_of(id);
        let rack = c.rack_of(id);
        let before = (
            c.available(id),
            c.total_available(kind),
            c.total_capacity(kind),
            c.rack_max_available(rack, kind),
            c.rack_total_available(rack, kind),
        );
        c.remove_box(id).unwrap();
        c.check_invariants().map_err(TestCaseError::fail)?;
        c.restore_box(id).unwrap();
        let after = (
            c.available(id),
            c.total_available(kind),
            c.total_capacity(kind),
            c.rack_max_available(rack, kind),
            c.rack_total_available(rack, kind),
        );
        prop_assert_eq!(before, after);
        c.check_invariants().map_err(TestCaseError::fail)?;
        assert_queries_match_scans(&c, taken)?;
    }

    /// A whole-rack outage and repair: the rack disappears from every
    /// successor/pool query while down and returns exactly as it was.
    #[test]
    fn rack_outage_roundtrip(
        rack in 0u16..18,
        takes in prop::collection::vec((0u8..108, 0u32..=128), 0..30),
        cpu in 0u32..=130, ram in 0u32..=130, sto in 0u32..=130,
    ) {
        let mut c = Cluster::new(TopologyConfig::paper());
        for (b, u) in takes {
            let _ = c.take(BoxId(b as u32), u);
        }
        let rack = RackId(rack);
        let demand = UnitDemand::new(cpu, ram, sto);
        let fits_before = c.rack_fits(rack, &demand);
        let ids: Vec<BoxId> = ALL_RESOURCES
            .iter()
            .flat_map(|&k| c.boxes_in_rack(rack, k).to_vec())
            .collect();
        for &b in &ids {
            c.remove_box(b).unwrap();
        }
        c.check_invariants().map_err(TestCaseError::fail)?;
        for kind in ALL_RESOURCES {
            prop_assert_eq!(c.rack_max_available(rack, kind), 0);
        }
        if cpu.max(ram).max(sto) > 0 {
            prop_assert!(!c.rack_fits(rack, &demand));
        }
        assert_queries_match_scans(&c, cpu)?;
        for &b in &ids {
            c.restore_box(b).unwrap();
        }
        prop_assert_eq!(c.rack_fits(rack, &demand), fits_before);
        c.check_invariants().map_err(TestCaseError::fail)?;
    }
}
