//! Topology configuration reproducing Table 1 of the paper.

use crate::resources::ResourceKind;
use serde::{Deserialize, Serialize};

/// Natural size of one brick unit per resource kind (Table 1, right column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnitSizes {
    /// Cores per CPU unit (paper: 4).
    pub cpu_cores_per_unit: u32,
    /// GB per RAM unit (paper: 4).
    pub ram_gb_per_unit: u32,
    /// GB per storage unit (paper: 64).
    pub storage_gb_per_unit: u32,
}

impl UnitSizes {
    /// Table 1 unit sizes.
    pub const fn paper() -> Self {
        UnitSizes {
            cpu_cores_per_unit: 4,
            ram_gb_per_unit: 4,
            storage_gb_per_unit: 64,
        }
    }

    /// Natural size (cores or GB) of one unit of `kind`.
    pub const fn natural_per_unit(&self, kind: ResourceKind) -> u32 {
        match kind {
            ResourceKind::Cpu => self.cpu_cores_per_unit,
            ResourceKind::Ram => self.ram_gb_per_unit,
            ResourceKind::Storage => self.storage_gb_per_unit,
        }
    }
}

impl Default for UnitSizes {
    fn default() -> Self {
        UnitSizes::paper()
    }
}

/// How many boxes of each resource kind a rack holds.
///
/// Table 1 says "rack size = 6 boxes" without stating the mix; the paper's
/// reported utilizations (§5.1: CPU 64.66%, RAM 65.11%, storage 31.72%) are
/// consistent only with a balanced 2+2+2 mix — see DESIGN.md §3 and the
/// calibration test in `risa-sim`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoxMix {
    /// CPU boxes per rack.
    pub cpu: u16,
    /// RAM boxes per rack.
    pub ram: u16,
    /// Storage boxes per rack.
    pub storage: u16,
}

impl BoxMix {
    /// The inferred paper mix: 2 CPU + 2 RAM + 2 storage boxes per rack.
    pub const fn paper() -> Self {
        BoxMix {
            cpu: 2,
            ram: 2,
            storage: 2,
        }
    }

    /// Boxes of `kind` per rack.
    pub const fn of(&self, kind: ResourceKind) -> u16 {
        match kind {
            ResourceKind::Cpu => self.cpu,
            ResourceKind::Ram => self.ram,
            ResourceKind::Storage => self.storage,
        }
    }

    /// Total boxes per rack.
    pub const fn total(&self) -> u16 {
        self.cpu + self.ram + self.storage
    }
}

impl Default for BoxMix {
    fn default() -> Self {
        BoxMix::paper()
    }
}

/// Full topology configuration (Table 1 plus the inferred box mix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// Racks per cluster (paper: 18).
    pub racks: u16,
    /// Per-rack box mix (paper: 6 boxes; inferred 2/2/2).
    pub box_mix: BoxMix,
    /// Bricks per box (paper: 8).
    pub bricks_per_box: u16,
    /// Units per brick (paper: 16).
    pub units_per_brick: u16,
    /// Natural size of a unit per kind (paper: 4 cores / 4 GB / 64 GB).
    pub units: UnitSizes,
}

impl TopologyConfig {
    /// The exact Table 1 configuration used in the paper's evaluation.
    pub const fn paper() -> Self {
        TopologyConfig {
            racks: 18,
            box_mix: BoxMix::paper(),
            bricks_per_box: 8,
            units_per_brick: 16,
            units: UnitSizes::paper(),
        }
    }

    /// A small 2-rack configuration handy for tests and toy examples.
    pub const fn tiny() -> Self {
        TopologyConfig {
            racks: 2,
            box_mix: BoxMix {
                cpu: 2,
                ram: 2,
                storage: 2,
            },
            bricks_per_box: 1,
            units_per_brick: 16,
            units: UnitSizes::paper(),
        }
    }

    /// The same per-rack shape with `multiplier ×` as many racks — the
    /// `--scale` knob for beyond-paper cluster sizes (10×/100× studies).
    /// Panics when the rack count would overflow `u16`.
    pub fn scaled(&self, multiplier: u16) -> Self {
        assert!(multiplier > 0, "scale multiplier must be positive");
        let racks = self
            .racks
            .checked_mul(multiplier)
            .expect("scaled rack count exceeds u16");
        TopologyConfig { racks, ..*self }
    }

    /// Units of capacity in one box (bricks × units-per-brick).
    pub const fn box_capacity_units(&self) -> u32 {
        self.bricks_per_box as u32 * self.units_per_brick as u32
    }

    /// Boxes of `kind` in the whole cluster.
    pub const fn boxes_of_kind(&self, kind: ResourceKind) -> u32 {
        self.racks as u32 * self.box_mix.of(kind) as u32
    }

    /// Total boxes in the cluster.
    pub const fn total_boxes(&self) -> u32 {
        self.racks as u32 * self.box_mix.total() as u32
    }

    /// Cluster-wide capacity of `kind`, in units.
    pub const fn total_capacity_units(&self, kind: ResourceKind) -> u32 {
        self.boxes_of_kind(kind) * self.box_capacity_units()
    }

    /// Cluster-wide capacity of `kind`, in natural amounts (cores/GB).
    pub const fn total_capacity_natural(&self, kind: ResourceKind) -> u64 {
        self.total_capacity_units(kind) as u64 * self.units.natural_per_unit(kind) as u64
    }

    /// Validate internal consistency; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.racks == 0 {
            return Err("cluster must have at least one rack".into());
        }
        if self.box_mix.total() == 0 {
            return Err("racks must hold at least one box".into());
        }
        if self.box_mix.cpu == 0 || self.box_mix.ram == 0 || self.box_mix.storage == 0 {
            return Err("every rack needs at least one box of each kind (paper §3.1)".into());
        }
        if self.box_capacity_units() == 0 {
            return Err("boxes must have non-zero capacity".into());
        }
        if self.units.cpu_cores_per_unit == 0
            || self.units.ram_gb_per_unit == 0
            || self.units.storage_gb_per_unit == 0
        {
            return Err("unit sizes must be non-zero".into());
        }
        Ok(())
    }
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ALL_RESOURCES;

    /// Table 1, row by row.
    #[test]
    fn table1_constants() {
        let c = TopologyConfig::paper();
        assert_eq!(c.racks, 18); // cluster size: 18 racks
        assert_eq!(c.box_mix.total(), 6); // rack size: 6 boxes
        assert_eq!(c.bricks_per_box, 8); // box size: 8 bricks
        assert_eq!(c.units_per_brick, 16); // brick size: 16 units
        assert_eq!(c.units.cpu_cores_per_unit, 4); // CPU unit: 4 cores
        assert_eq!(c.units.ram_gb_per_unit, 4); // RAM unit: 4 GB
        assert_eq!(c.units.storage_gb_per_unit, 64); // storage unit: 64 GB
        assert!(c.validate().is_ok());
    }

    #[test]
    fn derived_capacities() {
        let c = TopologyConfig::paper();
        assert_eq!(c.box_capacity_units(), 128);
        assert_eq!(c.total_boxes(), 108);
        // 18 racks × 2 boxes × 128 units.
        assert_eq!(c.total_capacity_units(ResourceKind::Cpu), 4608);
        // …× 4 cores/unit = 18 432 cores.
        assert_eq!(c.total_capacity_natural(ResourceKind::Cpu), 18_432);
        assert_eq!(c.total_capacity_natural(ResourceKind::Ram), 18_432);
        // storage: 4608 units × 64 GB = 294 912 GB.
        assert_eq!(c.total_capacity_natural(ResourceKind::Storage), 294_912);
    }

    #[test]
    fn validation_catches_degenerate_configs() {
        let mut c = TopologyConfig::paper();
        c.racks = 0;
        assert!(c.validate().is_err());

        let mut c = TopologyConfig::paper();
        c.box_mix.ram = 0;
        assert!(c.validate().is_err());

        let mut c = TopologyConfig::paper();
        c.bricks_per_box = 0;
        assert!(c.validate().is_err());

        let mut c = TopologyConfig::paper();
        c.units.storage_gb_per_unit = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn box_mix_accessors() {
        let m = BoxMix::paper();
        for kind in ALL_RESOURCES {
            assert_eq!(m.of(kind), 2);
        }
    }

    #[test]
    fn scaled_multiplies_racks_only() {
        let c = TopologyConfig::paper().scaled(10);
        assert_eq!(c.racks, 180);
        assert_eq!(c.box_mix, BoxMix::paper());
        assert_eq!(c.box_capacity_units(), 128);
        assert!(c.validate().is_ok());
        assert_eq!(TopologyConfig::paper().scaled(1), TopologyConfig::paper());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaled_rejects_zero() {
        TopologyConfig::paper().scaled(0);
    }

    #[test]
    fn tiny_config_is_valid() {
        assert!(TopologyConfig::tiny().validate().is_ok());
        assert_eq!(TopologyConfig::tiny().box_capacity_units(), 16);
    }

    #[test]
    fn serde_roundtrip() {
        let c = TopologyConfig::paper();
        let json = serde_json::to_string(&c).unwrap();
        let back: TopologyConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
