//! Mutable cluster state: unit-granular box accounting backed by the
//! incremental [`PlacementIndex`], which keeps every per-rack and
//! cross-rack aggregate (maxima, totals, sorted availability, rack
//! successor queries) coherent on each `take`/`give` without rescans.

use crate::config::TopologyConfig;
use crate::index::PlacementIndex;
use crate::resources::{BoxId, RackId, ResourceKind, UnitDemand, ALL_RESOURCES};
use serde::{Deserialize, Serialize};

/// Why an allocation or release was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocError {
    /// The box does not have `requested` free units (`available` is what it
    /// had at the time).
    Insufficient {
        /// Units asked for.
        requested: u32,
        /// Units actually free.
        available: u32,
    },
    /// A release would push a box above its capacity — always a caller bug.
    OverRelease {
        /// Units being returned.
        returned: u32,
        /// Units currently free.
        available: u32,
        /// Box capacity.
        capacity: u32,
    },
    /// The box id is out of range for this cluster.
    NoSuchBox,
    /// The box is marked failed (offline): it can neither grant nor accept
    /// units until [`Cluster::restore_box`] brings it back.
    BoxFailed,
    /// [`Cluster::restore_box`] was asked to repair a box that is not
    /// failed — always a caller bug.
    BoxNotFailed,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::Insufficient {
                requested,
                available,
            } => write!(f, "requested {requested}u but only {available}u free"),
            AllocError::OverRelease {
                returned,
                available,
                capacity,
            } => write!(
                f,
                "release of {returned}u would exceed capacity ({available}u free of {capacity}u)"
            ),
            AllocError::NoSuchBox => write!(f, "no such box"),
            AllocError::BoxFailed => write!(f, "box is failed (offline)"),
            AllocError::BoxNotFailed => write!(f, "box is not failed"),
        }
    }
}

impl std::error::Error for AllocError {}

/// State of one single-resource box.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoxState {
    /// Global box id (index into the cluster's box table).
    pub id: BoxId,
    /// Rack this box lives in.
    pub rack: RackId,
    /// The single resource kind this box provides.
    pub kind: ResourceKind,
    /// Capacity in units.
    pub capacity: u32,
    /// Currently free units.
    pub available: u32,
}

impl BoxState {
    /// Units currently allocated.
    pub fn used(&self) -> u32 {
        self.capacity - self.available
    }
}

/// One box-level grant: `units` taken from `box_id`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoxAllocation {
    /// The granting box.
    pub box_id: BoxId,
    /// Units granted.
    pub units: u32,
}

/// A complete compute placement for one VM: one box per resource kind
/// (the paper guarantees VM demands fit within a single box, §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmPlacement {
    /// Grants in canonical kind order (CPU, RAM, storage).
    pub grants: [BoxAllocation; 3],
}

impl VmPlacement {
    /// Grant for `kind`.
    pub fn grant(&self, kind: ResourceKind) -> BoxAllocation {
        self.grants[kind.index()]
    }

    /// Racks touched by this placement, deduplicated, in kind order.
    pub fn racks(&self, cluster: &Cluster) -> Vec<RackId> {
        let mut racks: Vec<RackId> = self
            .grants
            .iter()
            .map(|g| cluster.rack_of(g.box_id))
            .collect();
        racks.dedup();
        racks.sort_unstable();
        racks.dedup();
        racks
    }

    /// True when all three grants sit in the same rack — the property RISA
    /// maximizes (an "intra-rack VM assignment" in Figures 5 and 7).
    pub fn is_intra_rack(&self, cluster: &Cluster) -> bool {
        let r0 = cluster.rack_of(self.grants[0].box_id);
        self.grants[1..]
            .iter()
            .all(|g| cluster.rack_of(g.box_id) == r0)
    }
}

/// The whole disaggregated cluster: box table, per-rack indexes, and the
/// incremental [`PlacementIndex`] serving every aggregate query.
#[derive(Debug, Clone)]
pub struct Cluster {
    cfg: TopologyConfig,
    boxes: Vec<BoxState>,
    /// Per rack, per kind: the global ids of that rack's boxes, ascending.
    rack_boxes: Vec<[Vec<BoxId>; 3]>,
    /// Incremental aggregates: per-rack maxima/totals, sorted availability
    /// sets, and the rack segment tree (derived state, rebuilt on load).
    /// Failed boxes carry no index entries.
    index: PlacementIndex,
    /// Per box: true while the box is failed (offline). Failed boxes stay
    /// in the box table and rack lists — scans still *visit* them, so the
    /// seed's cost model is unchanged — but they are retracted from every
    /// aggregate and can never grant or accept units.
    failed: Vec<bool>,
    totals_avail: [u64; 3],
    totals_cap: [u64; 3],
}

impl Cluster {
    /// Build a pristine uniform cluster from a validated configuration.
    ///
    /// Box ids are assigned rack-major and, within a rack, in CPU → RAM →
    /// storage order; NULB's "first box" scan follows this order.
    pub fn new(cfg: TopologyConfig) -> Self {
        cfg.validate().expect("invalid topology configuration");
        let cap = cfg.box_capacity_units();
        let mut boxes = Vec::with_capacity(cfg.total_boxes() as usize);
        for rack in 0..cfg.racks {
            for kind in ALL_RESOURCES {
                for _ in 0..cfg.box_mix.of(kind) {
                    let id = BoxId(boxes.len() as u32);
                    boxes.push(BoxState {
                        id,
                        rack: RackId(rack),
                        kind,
                        capacity: cap,
                        available: cap,
                    });
                }
            }
        }
        let n = boxes.len();
        Cluster::from_parts(cfg, boxes, vec![false; n])
    }

    /// Assemble a cluster around an explicit box table, rebuilding every
    /// derived structure (per-rack id lists, totals, the placement index).
    /// Failed boxes contribute to none of the aggregates. Shared by
    /// [`Cluster::new`] and deserialization.
    fn from_parts(cfg: TopologyConfig, boxes: Vec<BoxState>, failed: Vec<bool>) -> Self {
        debug_assert_eq!(boxes.len(), failed.len());
        let mut rack_boxes: Vec<[Vec<BoxId>; 3]> =
            (0..cfg.racks).map(|_| Default::default()).collect();
        let mut totals_avail = [0u64; 3];
        let mut totals_cap = [0u64; 3];
        for b in &boxes {
            rack_boxes[b.rack.0 as usize][b.kind.index()].push(b.id);
            if !failed[b.id.0 as usize] {
                totals_avail[b.kind.index()] += b.available as u64;
                totals_cap[b.kind.index()] += b.capacity as u64;
            }
        }
        let index = PlacementIndex::build(
            cfg.racks,
            boxes
                .iter()
                .filter(|b| !failed[b.id.0 as usize])
                .map(|b| (b.rack, b.kind, b.id, b.available)),
        );
        Cluster {
            cfg,
            boxes,
            rack_boxes,
            index,
            failed,
            totals_avail,
            totals_cap,
        }
    }

    /// The configuration this cluster was built from.
    pub fn config(&self) -> &TopologyConfig {
        &self.cfg
    }

    /// Number of racks.
    pub fn num_racks(&self) -> u16 {
        self.cfg.racks
    }

    /// Number of boxes.
    pub fn num_boxes(&self) -> usize {
        self.boxes.len()
    }

    /// State of one box.
    pub fn box_state(&self, id: BoxId) -> &BoxState {
        &self.boxes[id.0 as usize]
    }

    /// Rack of a box.
    #[inline]
    pub fn rack_of(&self, id: BoxId) -> RackId {
        self.boxes[id.0 as usize].rack
    }

    /// Resource kind of a box.
    #[inline]
    pub fn kind_of(&self, id: BoxId) -> ResourceKind {
        self.boxes[id.0 as usize].kind
    }

    /// Free units in a box. For a failed box this is the availability
    /// frozen at failure time; failed boxes are never eligible for grants
    /// (check [`Cluster::is_failed`] in any scan that reads this).
    #[inline]
    pub fn available(&self, id: BoxId) -> u32 {
        self.boxes[id.0 as usize].available
    }

    /// True while `id` is failed (offline). See [`Cluster::remove_box`].
    #[inline]
    pub fn is_failed(&self, id: BoxId) -> bool {
        self.failed[id.0 as usize]
    }

    /// All boxes in global id order.
    pub fn boxes(&self) -> impl Iterator<Item = &BoxState> {
        self.boxes.iter()
    }

    /// All boxes of `kind`, in global id order (NULB's scan order).
    pub fn boxes_of_kind(&self, kind: ResourceKind) -> impl Iterator<Item = &BoxState> {
        self.boxes.iter().filter(move |b| b.kind == kind)
    }

    /// Box ids of `kind` within `rack`, ascending.
    pub fn boxes_in_rack(&self, rack: RackId, kind: ResourceKind) -> &[BoxId] {
        &self.rack_boxes[rack.0 as usize][kind.index()]
    }

    /// Largest free-unit count among `rack`'s boxes of `kind` — RISA's
    /// per-rack max-available table (§4.2: "RISA keeps track of the boxes
    /// with the maximum amount of each resource for each rack"). O(1) from
    /// the placement index.
    #[inline]
    pub fn rack_max_available(&self, rack: RackId, kind: ResourceKind) -> u32 {
        self.index.rack_max(rack, kind)
    }

    /// Total free units of `kind` within `rack`. O(1) from the placement
    /// index (the restricted contention-ratio denominator).
    #[inline]
    pub fn rack_total_available(&self, rack: RackId, kind: ResourceKind) -> u64 {
        self.index.rack_total(rack, kind)
    }

    /// First rack with id ≥ `from` holding a single box of `kind` with
    /// `units` free. Exact, O(log racks).
    pub fn next_rack_with_fit(&self, kind: ResourceKind, units: u32, from: u16) -> Option<RackId> {
        self.index.next_rack_with_fit(kind, units, from)
    }

    /// First rack with id ≥ `from` whose per-kind max-available boxes can
    /// each host the whole `demand` (RISA's `INTRA_RACK_POOL` membership),
    /// or `None`. O(log racks) on homogeneous state.
    pub fn next_pool_rack(&self, demand: &UnitDemand, from: u16) -> Option<RackId> {
        let d = [
            demand.get(ResourceKind::Cpu),
            demand.get(ResourceKind::Ram),
            demand.get(ResourceKind::Storage),
        ];
        self.index.next_pool_rack(&d, from)
    }

    /// The lowest-id box of `kind` in `rack` with at least `units` free
    /// (the id-order first-fit used by NULB's scans). O(boxes-per-rack),
    /// which the uniform box mix makes a small constant.
    pub fn first_fit_in_rack(&self, rack: RackId, kind: ResourceKind, units: u32) -> Option<BoxId> {
        self.boxes_in_rack(rack, kind)
            .iter()
            .copied()
            .find(|&b| !self.is_failed(b) && self.available(b) >= units)
    }

    /// The fullest box of `kind` in `rack` that still fits `units`
    /// (RISA-BF's best-fit; ties to the lower id). O(log boxes-per-rack).
    pub fn best_fit_in_rack(&self, rack: RackId, kind: ResourceKind, units: u32) -> Option<BoxId> {
        self.index.best_fit(rack, kind, units)
    }

    /// Position of `box_id` within the id-ordered sequence of its kind's
    /// boxes — how many boxes a naive `boxes_of_kind` scan visits before
    /// reaching it. O(boxes-per-rack).
    pub fn kind_position(&self, box_id: BoxId) -> u64 {
        let b = self.box_state(box_id);
        let per_rack = self.cfg.box_mix.of(b.kind) as u64;
        let offset = self.rack_boxes[b.rack.0 as usize][b.kind.index()]
            .iter()
            .position(|&x| x == box_id)
            .expect("box listed in its rack") as u64;
        b.rack.0 as u64 * per_rack + offset
    }

    /// Whether `rack` holds a live box of `kind` with at least `units`
    /// free. Unlike comparing against [`Cluster::rack_max_available`],
    /// this stays correct for zero-unit demands after every box of `kind`
    /// in the rack has failed. O(1).
    #[inline]
    pub fn rack_admits(&self, rack: RackId, kind: ResourceKind, units: u32) -> bool {
        self.index.rack_admits(rack, kind, units)
    }

    /// True when every per-kind demand fits in *some single live box* of
    /// `rack`.
    pub fn rack_fits(&self, rack: RackId, demand: &UnitDemand) -> bool {
        ALL_RESOURCES
            .iter()
            .all(|&k| self.rack_admits(rack, k, demand.get(k)))
    }

    /// Cluster-wide free units of `kind`.
    pub fn total_available(&self, kind: ResourceKind) -> u64 {
        self.totals_avail[kind.index()]
    }

    /// Cluster-wide capacity of `kind`, in units.
    pub fn total_capacity(&self, kind: ResourceKind) -> u64 {
        self.totals_cap[kind.index()]
    }

    /// Fraction of `kind` currently allocated, in `[0, 1]`.
    pub fn utilization(&self, kind: ResourceKind) -> f64 {
        let cap = self.totals_cap[kind.index()];
        if cap == 0 {
            0.0
        } else {
            1.0 - self.totals_avail[kind.index()] as f64 / cap as f64
        }
    }

    /// Take `units` from `box_id`. O(log racks) via the incremental
    /// placement index (no rack rescans).
    pub fn take(&mut self, box_id: BoxId, units: u32) -> Result<(), AllocError> {
        let b = self
            .boxes
            .get_mut(box_id.0 as usize)
            .ok_or(AllocError::NoSuchBox)?;
        if self.failed[box_id.0 as usize] {
            return Err(AllocError::BoxFailed);
        }
        if units > b.available {
            return Err(AllocError::Insufficient {
                requested: units,
                available: b.available,
            });
        }
        let old = b.available;
        b.available -= units;
        let (rack, kind, new) = (b.rack, b.kind, b.available);
        self.totals_avail[kind.index()] -= units as u64;
        self.index.update(rack, kind, box_id, old, new);
        Ok(())
    }

    /// Return `units` to `box_id`. O(log racks).
    pub fn give(&mut self, box_id: BoxId, units: u32) -> Result<(), AllocError> {
        let b = self
            .boxes
            .get_mut(box_id.0 as usize)
            .ok_or(AllocError::NoSuchBox)?;
        if self.failed[box_id.0 as usize] {
            return Err(AllocError::BoxFailed);
        }
        if b.available + units > b.capacity {
            return Err(AllocError::OverRelease {
                returned: units,
                available: b.available,
                capacity: b.capacity,
            });
        }
        let old = b.available;
        b.available += units;
        let (rack, kind, new) = (b.rack, b.kind, b.available);
        self.totals_avail[kind.index()] += units as u64;
        self.index.update(rack, kind, box_id, old, new);
        Ok(())
    }

    /// Atomically take all three grants of `placement`; on any failure the
    /// earlier grants are rolled back and the cluster is unchanged.
    pub fn take_placement(&mut self, placement: &VmPlacement) -> Result<(), AllocError> {
        for i in 0..3 {
            let g = placement.grants[i];
            if let Err(e) = self.take(g.box_id, g.units) {
                for g in &placement.grants[..i] {
                    self.give(g.box_id, g.units)
                        .expect("rollback of a grant we just took cannot fail");
                }
                return Err(e);
            }
        }
        Ok(())
    }

    /// Release all three grants of `placement`.
    pub fn give_placement(&mut self, placement: &VmPlacement) -> Result<(), AllocError> {
        for g in &placement.grants {
            self.give(g.box_id, g.units)?;
        }
        Ok(())
    }

    /// Mark `box_id` failed, incrementally retracting it from every
    /// aggregate the schedulers consult: its availability leaves the
    /// per-rack sorted sets, totals, maxima, and the rack segment tree,
    /// and its capacity leaves the cluster-wide capacity totals (the
    /// retracted capacity is what the resilience metrics call *stranded*).
    ///
    /// The box stays in the box table and rack lists with its availability
    /// frozen — naive scans still visit it (the seed's cost model is
    /// unchanged) but must skip it via [`Cluster::is_failed`]. `take` and
    /// `give` on a failed box return [`AllocError::BoxFailed`]; callers
    /// are expected to evacuate (release) any placements touching the box
    /// *before* failing it.
    ///
    /// Errors with [`AllocError::BoxFailed`] if the box is already failed.
    pub fn remove_box(&mut self, box_id: BoxId) -> Result<(), AllocError> {
        let b = *self
            .boxes
            .get(box_id.0 as usize)
            .ok_or(AllocError::NoSuchBox)?;
        if self.failed[box_id.0 as usize] {
            return Err(AllocError::BoxFailed);
        }
        self.failed[box_id.0 as usize] = true;
        self.totals_avail[b.kind.index()] -= b.available as u64;
        self.totals_cap[b.kind.index()] -= b.capacity as u64;
        self.index.remove(b.rack, b.kind, b.id, b.available);
        Ok(())
    }

    /// Repair a box failed by [`Cluster::remove_box`]: its frozen
    /// availability re-enters every aggregate and the box becomes eligible
    /// for grants again. The availability is restored exactly as frozen,
    /// keeping the take/give ledger coherent across a fail/repair cycle.
    ///
    /// Errors with [`AllocError::BoxNotFailed`] if the box is not failed.
    pub fn restore_box(&mut self, box_id: BoxId) -> Result<(), AllocError> {
        let b = *self
            .boxes
            .get(box_id.0 as usize)
            .ok_or(AllocError::NoSuchBox)?;
        if !self.failed[box_id.0 as usize] {
            return Err(AllocError::BoxNotFailed);
        }
        self.failed[box_id.0 as usize] = false;
        self.totals_avail[b.kind.index()] += b.available as u64;
        self.totals_cap[b.kind.index()] += b.capacity as u64;
        self.index.insert(b.rack, b.kind, b.id, b.available);
        Ok(())
    }

    /// Fixture hook: override one box's capacity, resetting it to fully
    /// free. Used to build the paper's Table 3 toy state and ablations.
    pub fn set_box_capacity(&mut self, box_id: BoxId, capacity_units: u32) {
        assert!(
            !self.failed[box_id.0 as usize],
            "fixture hook on failed box"
        );
        let b = &mut self.boxes[box_id.0 as usize];
        let (rack, kind, old) = (b.rack, b.kind, b.available);
        self.totals_cap[kind.index()] -= b.capacity as u64;
        self.totals_avail[kind.index()] -= b.available as u64;
        b.capacity = capacity_units;
        b.available = capacity_units;
        self.totals_cap[kind.index()] += capacity_units as u64;
        self.totals_avail[kind.index()] += capacity_units as u64;
        self.index.update(rack, kind, box_id, old, capacity_units);
    }

    /// Fixture hook: force one box's free units (≤ capacity). Used to load
    /// the exact availability column of the paper's Table 3.
    pub fn force_available(&mut self, box_id: BoxId, available_units: u32) {
        assert!(
            !self.failed[box_id.0 as usize],
            "fixture hook on failed box"
        );
        let b = &mut self.boxes[box_id.0 as usize];
        assert!(available_units <= b.capacity, "availability above capacity");
        let (rack, kind, old) = (b.rack, b.kind, b.available);
        self.totals_avail[kind.index()] -= b.available as u64;
        b.available = available_units;
        self.totals_avail[kind.index()] += available_units as u64;
        self.index.update(rack, kind, box_id, old, available_units);
    }

    /// Debug invariant check: cached tables agree with the box table.
    /// Cheap enough for tests; not called on hot paths.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.failed.len() != self.boxes.len() {
            return Err("failed mask length diverges from the box table".into());
        }
        let mut avail = [0u64; 3];
        let mut cap = [0u64; 3];
        for b in &self.boxes {
            if b.available > b.capacity {
                return Err(format!("{}: available exceeds capacity", b.id));
            }
            if !self.failed[b.id.0 as usize] {
                avail[b.kind.index()] += b.available as u64;
                cap[b.kind.index()] += b.capacity as u64;
            }
        }
        if avail != self.totals_avail {
            return Err(format!(
                "total-available cache stale: {:?} vs {:?}",
                self.totals_avail, avail
            ));
        }
        if cap != self.totals_cap {
            return Err("total-capacity cache stale".into());
        }
        for rack in 0..self.cfg.racks {
            for kind in ALL_RESOURCES {
                let expect = self.rack_boxes[rack as usize][kind.index()]
                    .iter()
                    .filter(|&&b| !self.failed[b.0 as usize])
                    .map(|&b| self.boxes[b.0 as usize].available)
                    .max()
                    .unwrap_or(0);
                if self.rack_max_available(RackId(rack), kind) != expect {
                    return Err(format!("rack max stale for rack{rack}/{kind}"));
                }
            }
        }
        self.index.check_against(
            self.cfg.racks,
            self.boxes
                .iter()
                .filter(|b| !self.failed[b.id.0 as usize])
                .map(|b| (b.rack, b.kind, b.id, b.available)),
        )
    }
}

/// Clusters serialize as configuration plus box table; every derived
/// structure (per-rack id lists, totals, the placement index) is rebuilt
/// on load, so serialized state can never go stale against the index.
impl Serialize for Cluster {
    fn to_value(&self) -> serde::Value {
        let failed_ids: Vec<u32> = self
            .boxes
            .iter()
            .filter(|b| self.failed[b.id.0 as usize])
            .map(|b| b.id.0)
            .collect();
        serde::Value::Map(vec![
            ("cfg".to_string(), self.cfg.to_value()),
            ("boxes".to_string(), self.boxes.to_value()),
            ("failed".to_string(), failed_ids.to_value()),
        ])
    }
}

impl Deserialize for Cluster {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let cfg = TopologyConfig::from_value(serde::value::field(v, "cfg")?)?;
        let boxes = Vec::<BoxState>::from_value(serde::value::field(v, "boxes")?)?;
        let failed_ids = Vec::<u32>::from_value(serde::value::field(v, "failed")?)?;
        // Reject malformed box tables up front so corruption surfaces as a
        // deserialization error instead of a panic or silently broken
        // aggregates.
        cfg.validate().map_err(serde::Error::new)?;
        for (i, b) in boxes.iter().enumerate() {
            if b.id.0 as usize != i {
                return Err(serde::Error::new(format!(
                    "box table entry {i} carries id {}",
                    b.id
                )));
            }
            if b.rack.0 >= cfg.racks {
                return Err(serde::Error::new(format!(
                    "{} names {} outside the {}-rack configuration",
                    b.id, b.rack, cfg.racks
                )));
            }
            if b.available > b.capacity {
                return Err(serde::Error::new(format!(
                    "{} has {}u available of {}u capacity",
                    b.id, b.available, b.capacity
                )));
            }
        }
        // The schedulers assume the uniform rack-major layout Cluster::new
        // produces (kind_position strides by box_mix, pick_box indexes
        // non-empty lists); enforce it here too.
        let mut counts = vec![[0u16; 3]; cfg.racks as usize];
        for b in &boxes {
            counts[b.rack.0 as usize][b.kind.index()] += 1;
        }
        for (r, per_kind) in counts.iter().enumerate() {
            for kind in ALL_RESOURCES {
                if per_kind[kind.index()] != cfg.box_mix.of(kind) {
                    return Err(serde::Error::new(format!(
                        "rack{r} holds {} {kind} boxes; the configuration says {}",
                        per_kind[kind.index()],
                        cfg.box_mix.of(kind)
                    )));
                }
            }
        }
        let mut failed = vec![false; boxes.len()];
        for id in failed_ids {
            let slot = failed
                .get_mut(id as usize)
                .ok_or_else(|| serde::Error::new(format!("failed id {id} out of range")))?;
            if *slot {
                return Err(serde::Error::new(format!("failed id {id} listed twice")));
            }
            *slot = true;
        }
        Ok(Cluster::from_parts(cfg, boxes, failed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_cluster() -> Cluster {
        Cluster::new(TopologyConfig::paper())
    }

    #[test]
    fn construction_matches_table1() {
        let c = paper_cluster();
        assert_eq!(c.num_boxes(), 108);
        assert_eq!(c.num_racks(), 18);
        assert_eq!(c.total_capacity(ResourceKind::Cpu), 4608);
        assert_eq!(c.total_available(ResourceKind::Cpu), 4608);
        assert_eq!(c.utilization(ResourceKind::Cpu), 0.0);
        c.check_invariants().unwrap();
    }

    #[test]
    fn box_id_order_is_rack_major_kind_minor() {
        let c = paper_cluster();
        // Rack 0: boxes 0..6 = [CPU, CPU, RAM, RAM, STO, STO].
        assert_eq!(c.kind_of(BoxId(0)), ResourceKind::Cpu);
        assert_eq!(c.kind_of(BoxId(1)), ResourceKind::Cpu);
        assert_eq!(c.kind_of(BoxId(2)), ResourceKind::Ram);
        assert_eq!(c.kind_of(BoxId(3)), ResourceKind::Ram);
        assert_eq!(c.kind_of(BoxId(4)), ResourceKind::Storage);
        assert_eq!(c.kind_of(BoxId(5)), ResourceKind::Storage);
        assert_eq!(c.rack_of(BoxId(5)), RackId(0));
        assert_eq!(c.rack_of(BoxId(6)), RackId(1));
        // boxes_in_rack returns ascending ids.
        assert_eq!(
            c.boxes_in_rack(RackId(1), ResourceKind::Ram),
            &[BoxId(8), BoxId(9)]
        );
    }

    #[test]
    fn take_and_give_roundtrip() {
        let mut c = paper_cluster();
        c.take(BoxId(0), 100).unwrap();
        assert_eq!(c.available(BoxId(0)), 28);
        assert_eq!(c.total_available(ResourceKind::Cpu), 4508);
        assert_eq!(c.rack_max_available(RackId(0), ResourceKind::Cpu), 128);
        c.take(BoxId(1), 120).unwrap();
        assert_eq!(c.rack_max_available(RackId(0), ResourceKind::Cpu), 28);
        c.give(BoxId(0), 100).unwrap();
        c.give(BoxId(1), 120).unwrap();
        assert_eq!(c.total_available(ResourceKind::Cpu), 4608);
        c.check_invariants().unwrap();
    }

    #[test]
    fn take_refuses_oversubscription() {
        let mut c = paper_cluster();
        let err = c.take(BoxId(0), 129).unwrap_err();
        assert_eq!(
            err,
            AllocError::Insufficient {
                requested: 129,
                available: 128
            }
        );
        // Nothing changed.
        assert_eq!(c.available(BoxId(0)), 128);
        c.check_invariants().unwrap();
    }

    #[test]
    fn give_refuses_over_release() {
        let mut c = paper_cluster();
        c.take(BoxId(0), 10).unwrap();
        let err = c.give(BoxId(0), 11).unwrap_err();
        assert!(matches!(err, AllocError::OverRelease { .. }));
        c.check_invariants().unwrap();
    }

    #[test]
    fn no_such_box() {
        let mut c = paper_cluster();
        assert_eq!(c.take(BoxId(9999), 1).unwrap_err(), AllocError::NoSuchBox);
    }

    #[test]
    fn placement_is_atomic_with_rollback() {
        let mut c = paper_cluster();
        // Make the storage grant impossible.
        c.force_available(BoxId(4), 0);
        c.force_available(BoxId(5), 0);
        let p = VmPlacement {
            grants: [
                BoxAllocation {
                    box_id: BoxId(0),
                    units: 2,
                },
                BoxAllocation {
                    box_id: BoxId(2),
                    units: 4,
                },
                BoxAllocation {
                    box_id: BoxId(4),
                    units: 2,
                },
            ],
        };
        assert!(c.take_placement(&p).is_err());
        // CPU and RAM grants rolled back.
        assert_eq!(c.available(BoxId(0)), 128);
        assert_eq!(c.available(BoxId(2)), 128);
        c.check_invariants().unwrap();

        // Restore storage and the same placement succeeds, then releases.
        c.force_available(BoxId(4), 8);
        c.take_placement(&p).unwrap();
        assert_eq!(c.available(BoxId(4)), 6);
        assert!(p.is_intra_rack(&c));
        c.give_placement(&p).unwrap();
        c.check_invariants().unwrap();
    }

    #[test]
    fn rack_fits_uses_single_box_maxima() {
        let mut c = paper_cluster();
        // Split CPU so no single rack-0 box has 100 free, though the rack
        // has 156 free in total: rack_fits must say no.
        c.take(BoxId(0), 50).unwrap();
        c.take(BoxId(1), 50).unwrap();
        let d = UnitDemand::new(100, 1, 1);
        assert!(!c.rack_fits(RackId(0), &d));
        assert!(c.rack_fits(RackId(1), &d));
        let d_ok = UnitDemand::new(78, 1, 1);
        assert!(c.rack_fits(RackId(0), &d_ok));
    }

    #[test]
    fn inter_rack_placement_detected() {
        let c = paper_cluster();
        let p = VmPlacement {
            grants: [
                BoxAllocation {
                    box_id: BoxId(0),
                    units: 1,
                }, // rack 0
                BoxAllocation {
                    box_id: BoxId(8),
                    units: 1,
                }, // rack 1
                BoxAllocation {
                    box_id: BoxId(4),
                    units: 1,
                }, // rack 0
            ],
        };
        assert!(!p.is_intra_rack(&c));
        assert_eq!(p.racks(&c), vec![RackId(0), RackId(1)]);
    }

    #[test]
    fn fixture_hooks_update_all_caches() {
        let mut c = paper_cluster();
        c.set_box_capacity(BoxId(4), 8); // paper Table 3 storage box: 512 GB
        assert_eq!(c.box_state(BoxId(4)).capacity, 8);
        assert_eq!(c.total_capacity(ResourceKind::Storage), 4608 - 128 + 8);
        c.force_available(BoxId(4), 0);
        assert_eq!(c.rack_max_available(RackId(0), ResourceKind::Storage), 128);
        c.force_available(BoxId(5), 3);
        assert_eq!(c.rack_max_available(RackId(0), ResourceKind::Storage), 3);
        c.check_invariants().unwrap();
    }

    #[test]
    fn remove_box_retracts_every_aggregate() {
        let mut c = paper_cluster();
        c.take(BoxId(0), 100).unwrap(); // box 0: 28 free of 128
        c.remove_box(BoxId(0)).unwrap();
        assert!(c.is_failed(BoxId(0)));
        // Availability and capacity leave the totals; the frozen state stays
        // on the box itself.
        assert_eq!(c.total_available(ResourceKind::Cpu), 4608 - 100 - 28);
        assert_eq!(c.total_capacity(ResourceKind::Cpu), 4608 - 128);
        assert_eq!(c.available(BoxId(0)), 28);
        // The rack max is now the surviving box; queries never name box 0.
        assert_eq!(c.rack_max_available(RackId(0), ResourceKind::Cpu), 128);
        assert_eq!(
            c.first_fit_in_rack(RackId(0), ResourceKind::Cpu, 1),
            Some(BoxId(1))
        );
        assert_eq!(
            c.best_fit_in_rack(RackId(0), ResourceKind::Cpu, 1),
            Some(BoxId(1))
        );
        c.check_invariants().unwrap();
    }

    #[test]
    fn restore_box_reenters_with_frozen_availability() {
        let mut c = paper_cluster();
        c.take(BoxId(0), 100).unwrap();
        c.remove_box(BoxId(0)).unwrap();
        c.restore_box(BoxId(0)).unwrap();
        assert!(!c.is_failed(BoxId(0)));
        assert_eq!(c.available(BoxId(0)), 28);
        assert_eq!(c.total_available(ResourceKind::Cpu), 4608 - 100);
        assert_eq!(c.total_capacity(ResourceKind::Cpu), 4608);
        // The outstanding 100 units release cleanly after the repair cycle.
        c.give(BoxId(0), 100).unwrap();
        assert_eq!(c.total_available(ResourceKind::Cpu), 4608);
        c.check_invariants().unwrap();
    }

    #[test]
    fn failed_boxes_refuse_take_give_and_double_transitions() {
        let mut c = paper_cluster();
        c.remove_box(BoxId(4)).unwrap();
        assert_eq!(c.take(BoxId(4), 1).unwrap_err(), AllocError::BoxFailed);
        assert_eq!(c.give(BoxId(4), 1).unwrap_err(), AllocError::BoxFailed);
        assert_eq!(c.remove_box(BoxId(4)).unwrap_err(), AllocError::BoxFailed);
        assert_eq!(
            c.restore_box(BoxId(5)).unwrap_err(),
            AllocError::BoxNotFailed
        );
        assert_eq!(
            c.remove_box(BoxId(9999)).unwrap_err(),
            AllocError::NoSuchBox
        );
        c.check_invariants().unwrap();
        c.restore_box(BoxId(4)).unwrap();
        c.check_invariants().unwrap();
    }

    #[test]
    fn whole_rack_removal_zeroes_rack_queries() {
        let mut c = paper_cluster();
        for kind in ALL_RESOURCES {
            for b in c.boxes_in_rack(RackId(3), kind).to_vec() {
                c.remove_box(b).unwrap();
            }
        }
        for kind in ALL_RESOURCES {
            assert_eq!(c.rack_max_available(RackId(3), kind), 0);
            assert_eq!(c.rack_total_available(RackId(3), kind), 0);
            assert_eq!(c.first_fit_in_rack(RackId(3), kind, 1), None);
            assert_eq!(c.best_fit_in_rack(RackId(3), kind, 0), None);
        }
        assert!(!c.rack_fits(RackId(3), &UnitDemand::new(1, 1, 1)));
        // Successor queries route around the dead rack.
        assert_eq!(
            c.next_rack_with_fit(ResourceKind::Cpu, 1, 3),
            Some(RackId(4))
        );
        c.check_invariants().unwrap();
    }

    #[test]
    fn failed_boxes_roundtrip_through_serde() {
        let mut c = paper_cluster();
        c.take(BoxId(0), 100).unwrap();
        c.remove_box(BoxId(0)).unwrap();
        c.remove_box(BoxId(17)).unwrap();
        let json = serde_json::to_string(&c).unwrap();
        let back: Cluster = serde_json::from_str(&json).unwrap();
        assert!(back.is_failed(BoxId(0)));
        assert!(back.is_failed(BoxId(17)));
        assert_eq!(back.available(BoxId(0)), 28);
        assert_eq!(
            back.total_available(ResourceKind::Cpu),
            c.total_available(ResourceKind::Cpu)
        );
        back.check_invariants().unwrap();
        // Malformed failed lists are rejected, not absorbed.
        let bad = json.replace("\"failed\":[0,17]", "\"failed\":[0,99999]");
        assert!(serde_json::from_str::<Cluster>(&bad).is_err());
        let dup = json.replace("\"failed\":[0,17]", "\"failed\":[0,0]");
        assert!(serde_json::from_str::<Cluster>(&dup).is_err());
    }

    #[test]
    fn serde_roundtrip_rebuilds_derived_state() {
        let mut c = paper_cluster();
        c.take(BoxId(0), 100).unwrap();
        c.take(BoxId(7), 3).unwrap();
        let json = serde_json::to_string(&c).unwrap();
        let back: Cluster = serde_json::from_str(&json).unwrap();
        assert_eq!(back.available(BoxId(0)), 28);
        assert_eq!(back.rack_max_available(RackId(0), ResourceKind::Cpu), 128);
        back.check_invariants().unwrap();
    }

    #[test]
    fn deserialize_rejects_malformed_box_tables() {
        let json = serde_json::to_string(&paper_cluster()).unwrap();
        // A box naming a rack outside the configuration must error (not
        // panic), as must availability above capacity.
        let bad_rack = json.replace("\"rack\":17", "\"rack\":99");
        assert!(serde_json::from_str::<Cluster>(&bad_rack).is_err());
        let over = json.replace("\"available\":128", "\"available\":999");
        assert!(serde_json::from_str::<Cluster>(&over).is_err());
    }

    #[test]
    fn utilization_tracks_allocations() {
        let mut c = paper_cluster();
        c.take(BoxId(0), 128).unwrap();
        let u = c.utilization(ResourceKind::Cpu);
        assert!((u - 128.0 / 4608.0).abs() < 1e-12);
    }
}
