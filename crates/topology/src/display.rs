//! Human-readable cluster state rendering: a per-rack occupancy map and
//! per-rack summaries, for debugging schedulers and for the CLI.

use crate::cluster::Cluster;
use crate::resources::{RackId, ResourceKind, ALL_RESOURCES};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Per-rack utilization summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RackSummary {
    /// The rack.
    pub rack: RackId,
    /// Used fraction of each resource kind (CPU, RAM, storage order).
    pub used_fraction: [f64; 3],
    /// Largest single-box availability per kind, in units (the quantity
    /// RISA's pool construction reads).
    pub max_available: [u32; 3],
}

/// Summarize every rack.
pub fn rack_summaries(cluster: &Cluster) -> Vec<RackSummary> {
    (0..cluster.num_racks())
        .map(RackId)
        .map(|rack| {
            let mut used_fraction = [0.0; 3];
            let mut max_available = [0u32; 3];
            for kind in ALL_RESOURCES {
                let boxes = cluster.boxes_in_rack(rack, kind);
                let cap: u64 = boxes
                    .iter()
                    .map(|&b| cluster.box_state(b).capacity as u64)
                    .sum();
                let avail: u64 = boxes.iter().map(|&b| cluster.available(b) as u64).sum();
                used_fraction[kind.index()] = if cap == 0 {
                    0.0
                } else {
                    1.0 - avail as f64 / cap as f64
                };
                max_available[kind.index()] = cluster.rack_max_available(rack, kind);
            }
            RackSummary {
                rack,
                used_fraction,
                max_available,
            }
        })
        .collect()
}

/// Character for a utilization level: `.` empty → `#` full (tenths).
fn gauge(frac: f64) -> char {
    match (frac * 10.0) as u32 {
        0 => '.',
        1..=2 => ':',
        3..=5 => '+',
        6..=8 => '*',
        _ => '#',
    }
}

/// Render a one-line-per-rack occupancy map:
///
/// ```text
/// rack  0  CPU [*] 64%  RAM [+] 41%  STO [:] 18%   max-avail 12/33/102
/// ```
pub fn occupancy_map(cluster: &Cluster) -> String {
    let mut out = String::new();
    for s in rack_summaries(cluster) {
        let _ = write!(out, "rack {:>2} ", s.rack.0);
        for kind in ALL_RESOURCES {
            let f = s.used_fraction[kind.index()];
            let _ = write!(out, " {} [{}] {:>3.0}% ", kind.label(), gauge(f), f * 100.0);
        }
        let _ = writeln!(
            out,
            "  max-avail {}/{}/{}u",
            s.max_available[0], s.max_available[1], s.max_available[2]
        );
    }
    out
}

/// The imbalance of `kind` across racks: max used-fraction minus min.
/// 0 = perfectly even (what RISA's round-robin drives toward).
pub fn rack_imbalance(cluster: &Cluster, kind: ResourceKind) -> f64 {
    let sums = rack_summaries(cluster);
    let fr = |s: &RackSummary| s.used_fraction[kind.index()];
    let max = sums.iter().map(fr).fold(f64::NEG_INFINITY, f64::max);
    let min = sums.iter().map(fr).fold(f64::INFINITY, f64::min);
    if sums.is_empty() {
        0.0
    } else {
        max - min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TopologyConfig;
    use crate::resources::BoxId;

    #[test]
    fn pristine_cluster_summaries() {
        let c = Cluster::new(TopologyConfig::paper());
        let sums = rack_summaries(&c);
        assert_eq!(sums.len(), 18);
        for s in &sums {
            assert_eq!(s.used_fraction, [0.0; 3]);
            assert_eq!(s.max_available, [128; 3]);
        }
        assert_eq!(rack_imbalance(&c, ResourceKind::Cpu), 0.0);
    }

    #[test]
    fn occupancy_map_reflects_allocations() {
        let mut c = Cluster::new(TopologyConfig::paper());
        c.take(BoxId(0), 128).unwrap(); // rack 0 CPU box 0 full
        c.take(BoxId(1), 64).unwrap(); // rack 0 CPU box 1 half
        let map = occupancy_map(&c);
        let rack0 = map.lines().next().unwrap();
        assert!(rack0.contains("CPU [*]  75%"), "line: {rack0}");
        assert_eq!(map.lines().count(), 18);
        // Imbalance: rack 0 at 75 % CPU, everyone else 0.
        assert!((rack_imbalance(&c, ResourceKind::Cpu) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn gauge_levels() {
        assert_eq!(gauge(0.0), '.');
        assert_eq!(gauge(0.15), ':');
        assert_eq!(gauge(0.45), '+');
        assert_eq!(gauge(0.7), '*');
        assert_eq!(gauge(1.0), '#');
    }

    #[test]
    fn max_available_tracks_fixture_overrides() {
        let mut c = Cluster::new(TopologyConfig::paper());
        c.force_available(BoxId(4), 3);
        c.force_available(BoxId(5), 7);
        let s = &rack_summaries(&c)[0];
        assert_eq!(s.max_available[ResourceKind::Storage.index()], 7);
    }
}
