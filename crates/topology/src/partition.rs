//! Rack-granular partition primitives for the speculative executor.
//!
//! The optimistic parallel engine in `risa-sim` reasons about which racks
//! an event *read* (the scheduler's candidate scan) and which racks prior
//! commits in the same window *wrote*. Both sides are cheap bitsets over
//! rack indices ([`RackSet`]), and the RISA round-robin read set is a
//! wrapping interval of racks starting at the cursor ([`RackInterval`]).
//! A speculated decision stays valid exactly when its read interval is
//! disjoint from the window's dirty set.

use crate::resources::RackId;

/// A set of rack indices, packed 64 racks per word.
///
/// Sized once for a fixed topology; all operations are branch-light and
/// allocation-free after construction, since the conflict detector calls
/// them once per committed event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RackSet {
    words: Vec<u64>,
    num_racks: u16,
}

impl RackSet {
    /// Empty set over a topology with `num_racks` racks.
    pub fn new(num_racks: u16) -> Self {
        RackSet {
            words: vec![0; usize::from(num_racks).div_ceil(64)],
            num_racks,
        }
    }

    /// Number of racks this set is sized for.
    pub fn num_racks(&self) -> u16 {
        self.num_racks
    }

    /// Insert one rack.
    pub fn insert(&mut self, rack: RackId) {
        debug_assert!(rack.0 < self.num_racks, "rack out of range");
        let i = usize::from(rack.0);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Membership test.
    pub fn contains(&self, rack: RackId) -> bool {
        let i = usize::from(rack.0);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// True when no rack is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of racks present.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Remove every rack, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Merge `other` into `self`.
    pub fn union_with(&mut self, other: &RackSet) {
        debug_assert_eq!(self.num_racks, other.num_racks);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// True when any rack of `interval` is present in `self`.
    pub fn intersects_interval(&self, interval: RackInterval) -> bool {
        interval.iter(self.num_racks).any(|r| self.contains(r))
    }
}

/// A wrapping, inclusive interval of rack indices `[start, end]` modulo
/// the rack count — the exact shape of the RISA round-robin read set: the
/// scheduler probes racks `start, start+1, …` (wrapping at the topology
/// edge) and stops at the first rack that admits the VM, so the racks it
/// *observed* are precisely `[cursor, chosen]`.
///
/// `start == end` is the single-rack interval; wrapping intervals
/// (`end < start`) cover `[start, n) ∪ [0, end]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RackInterval {
    /// First rack probed (the round-robin cursor at speculation time).
    pub start: RackId,
    /// Last rack probed (the rack that admitted the VM).
    pub end: RackId,
}

impl RackInterval {
    /// Inclusive wrapping interval from `start` to `end`.
    pub fn new(start: RackId, end: RackId) -> Self {
        RackInterval { start, end }
    }

    /// True when `rack` lies inside the wrapping interval.
    pub fn contains(&self, rack: RackId) -> bool {
        if self.start.0 <= self.end.0 {
            self.start.0 <= rack.0 && rack.0 <= self.end.0
        } else {
            rack.0 >= self.start.0 || rack.0 <= self.end.0
        }
    }

    /// Number of racks covered, given the topology's rack count.
    pub fn len(&self, num_racks: u16) -> usize {
        if self.start.0 <= self.end.0 {
            usize::from(self.end.0 - self.start.0) + 1
        } else {
            usize::from(num_racks - self.start.0) + usize::from(self.end.0) + 1
        }
    }

    /// Iterate the covered racks in probe order.
    pub fn iter(&self, num_racks: u16) -> impl Iterator<Item = RackId> + '_ {
        let n = self.len(num_racks);
        let start = self.start.0;
        (0..n).map(move |i| RackId((start + i as u16) % num_racks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rack_set_basics() {
        let mut s = RackSet::new(130);
        assert!(s.is_empty());
        s.insert(RackId(0));
        s.insert(RackId(63));
        s.insert(RackId(64));
        s.insert(RackId(129));
        assert_eq!(s.len(), 4);
        assert!(s.contains(RackId(64)));
        assert!(!s.contains(RackId(65)));
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn rack_set_union() {
        let mut a = RackSet::new(16);
        let mut b = RackSet::new(16);
        a.insert(RackId(1));
        b.insert(RackId(9));
        a.union_with(&b);
        assert!(a.contains(RackId(1)) && a.contains(RackId(9)));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn interval_non_wrapping() {
        let iv = RackInterval::new(RackId(2), RackId(5));
        assert!(iv.contains(RackId(2)) && iv.contains(RackId(5)));
        assert!(!iv.contains(RackId(1)) && !iv.contains(RackId(6)));
        assert_eq!(iv.len(8), 4);
        let racks: Vec<u16> = iv.iter(8).map(|r| r.0).collect();
        assert_eq!(racks, [2, 3, 4, 5]);
    }

    #[test]
    fn interval_wrapping() {
        let iv = RackInterval::new(RackId(6), RackId(1));
        assert!(iv.contains(RackId(6)) && iv.contains(RackId(7)));
        assert!(iv.contains(RackId(0)) && iv.contains(RackId(1)));
        assert!(!iv.contains(RackId(2)) && !iv.contains(RackId(5)));
        assert_eq!(iv.len(8), 4);
        let racks: Vec<u16> = iv.iter(8).map(|r| r.0).collect();
        assert_eq!(racks, [6, 7, 0, 1]);
    }

    #[test]
    fn interval_single_rack_and_full_circle() {
        let single = RackInterval::new(RackId(3), RackId(3));
        assert_eq!(single.len(8), 1);
        assert!(single.contains(RackId(3)) && !single.contains(RackId(4)));

        // start = end+1 wraps all the way around: every rack was probed.
        let full = RackInterval::new(RackId(4), RackId(3));
        assert_eq!(full.len(8), 8);
        assert!((0..8).all(|r| full.contains(RackId(r))));
    }

    #[test]
    fn set_interval_intersection() {
        let mut dirty = RackSet::new(8);
        dirty.insert(RackId(0));
        assert!(dirty.intersects_interval(RackInterval::new(RackId(6), RackId(1))));
        assert!(!dirty.intersects_interval(RackInterval::new(RackId(2), RackId(5))));
        assert!(RackSet::new(8)
            .intersects_interval(RackInterval::new(RackId(0), RackId(7)))
            .eq(&false));
    }
}
