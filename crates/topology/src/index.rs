//! The incremental placement index: the cross-rack data structures that
//! make every scheduler hot path scan-free.
//!
//! The seed implementation rebuilt per-rack aggregates by rescanning a
//! rack's boxes on every `take`/`give` and answered cross-rack questions
//! ("first box that fits", "next rack that can host this VM") with linear
//! scans over the whole cluster. That is fine at the paper's 18 racks and
//! hopeless at 768. [`PlacementIndex`] maintains, incrementally on every
//! availability change:
//!
//! * per rack × resource kind, a **sorted availability set**
//!   `BTreeSet<(avail, BoxId)>` — giving O(log boxes-per-rack) best-fit
//!   ("fullest box that still fits") and O(1) per-rack maxima;
//! * per rack × resource kind, the **total available units** — giving O(1)
//!   restricted contention-ratio denominators;
//! * a **segment tree over racks** whose nodes store per-kind maxima of
//!   the rack *fit keys* — giving O(log racks) successor queries
//!   `next_rack_with_fit` (single kind, exact) and `next_pool_rack`
//!   (all three kinds; exact at leaves, guided at internal nodes).
//!
//! A rack's fit key for a kind is `max_available + 1` over the rack's
//! *live* boxes, or `0` when every box of that kind has been retracted
//! (see [`PlacementIndex::remove`]). Encoding liveness into the key makes
//! every fit predicate a strict comparison `key > units`, i.e. "some live
//! box has ≥ `units` free" — which stays correct for zero-unit demands on
//! a fully-failed rack, where a plain `max ≥ units` would wrongly admit
//! the rack (max saturates to 0 with no boxes behind it).
//!
//! Updates are O(log racks + log boxes-per-rack) per `take`/`give`;
//! queries never scan the box table. `Cluster` owns one of these and keeps
//! it coherent; `check_invariants` cross-checks every structure against a
//! brute-force rebuild.

use crate::resources::{BoxId, RackId, ResourceKind};
use std::collections::BTreeSet;

/// Incrementally-maintained aggregates over the cluster's availability
/// state. See the module docs for the structure inventory.
#[derive(Debug, Clone, Default)]
pub struct PlacementIndex {
    racks: usize,
    /// Leaf count of the segment tree (racks rounded up to a power of two).
    cap: usize,
    /// Segment tree nodes, 1-indexed; `tree[cap + r]` is rack `r`'s
    /// per-kind fit-key leaf (`max_available + 1`, `0` = no live boxes),
    /// internal nodes hold children maxima.
    tree: Vec<[u32; 3]>,
    /// Per rack, per kind: `(available, box)` ascending.
    sets: Vec<[BTreeSet<(u32, BoxId)>; 3]>,
    /// Per rack, per kind: total available units.
    totals: Vec<[u64; 3]>,
}

impl PlacementIndex {
    /// Build the index for `racks` racks from an iterator of
    /// `(rack, kind, box, available)` tuples.
    pub fn build(
        racks: u16,
        boxes: impl Iterator<Item = (RackId, ResourceKind, BoxId, u32)>,
    ) -> Self {
        let n = racks as usize;
        let cap = n.next_power_of_two().max(1);
        let mut index = PlacementIndex {
            racks: n,
            cap,
            tree: vec![[0; 3]; 2 * cap],
            sets: (0..n).map(|_| Default::default()).collect(),
            totals: vec![[0; 3]; n],
        };
        for (rack, kind, box_id, avail) in boxes {
            let (r, k) = (rack.0 as usize, kind.index());
            index.sets[r][k].insert((avail, box_id));
            index.totals[r][k] += avail as u64;
        }
        for r in 0..n {
            for k in 0..3 {
                index.tree[cap + r][k] = Self::fit_key(&index.sets[r][k]);
            }
        }
        for node in (1..cap).rev() {
            index.tree[node] = Self::merge(index.tree[2 * node], index.tree[2 * node + 1]);
        }
        index
    }

    fn merge(a: [u32; 3], b: [u32; 3]) -> [u32; 3] {
        [a[0].max(b[0]), a[1].max(b[1]), a[2].max(b[2])]
    }

    /// The rack/kind fit key: `max_available + 1` over live boxes, `0`
    /// when none remain. (Saturating: a box with `u32::MAX` free would
    /// alias with `u32::MAX - 1`, which no real capacity approaches.)
    fn fit_key(set: &BTreeSet<(u32, BoxId)>) -> u32 {
        set.last().map_or(0, |&(avail, _)| avail.saturating_add(1))
    }

    /// Record one box's availability change. O(log racks) when the rack
    /// maximum moves, O(log boxes-per-rack) otherwise.
    pub fn update(
        &mut self,
        rack: RackId,
        kind: ResourceKind,
        box_id: BoxId,
        old_avail: u32,
        new_avail: u32,
    ) {
        if old_avail == new_avail {
            return; // zero-unit grants and releases are no-ops
        }
        let (r, k) = (rack.0 as usize, kind.index());
        let set = &mut self.sets[r][k];
        let removed = set.remove(&(old_avail, box_id));
        debug_assert!(removed, "index out of sync: missing {box_id} @ {old_avail}");
        set.insert((new_avail, box_id));
        self.totals[r][k] = self.totals[r][k] + new_avail as u64 - old_avail as u64;
        let key = Self::fit_key(&self.sets[r][k]);
        self.refresh_leaf(r, k, key);
    }

    fn refresh_leaf(&mut self, r: usize, k: usize, new_key: u32) {
        let mut node = self.cap + r;
        if self.tree[node][k] == new_key {
            return;
        }
        self.tree[node][k] = new_key;
        while node > 1 {
            node /= 2;
            let recomputed = Self::merge(self.tree[2 * node], self.tree[2 * node + 1]);
            if self.tree[node] == recomputed {
                break;
            }
            self.tree[node] = recomputed;
        }
    }

    /// Retract one box from the index entirely — used when the box fails
    /// and must stop answering every aggregate query (maxima, totals,
    /// best-fit, successor scans). O(log racks) when the rack maximum
    /// moves.
    pub fn remove(&mut self, rack: RackId, kind: ResourceKind, box_id: BoxId, avail: u32) {
        let (r, k) = (rack.0 as usize, kind.index());
        let removed = self.sets[r][k].remove(&(avail, box_id));
        debug_assert!(removed, "index out of sync: missing {box_id} @ {avail}");
        self.totals[r][k] -= avail as u64;
        let key = Self::fit_key(&self.sets[r][k]);
        self.refresh_leaf(r, k, key);
    }

    /// Re-admit a box previously retracted with [`PlacementIndex::remove`]
    /// at availability `avail`. O(log racks) when the rack maximum moves.
    pub fn insert(&mut self, rack: RackId, kind: ResourceKind, box_id: BoxId, avail: u32) {
        let (r, k) = (rack.0 as usize, kind.index());
        let inserted = self.sets[r][k].insert((avail, box_id));
        debug_assert!(inserted, "index out of sync: duplicate {box_id} @ {avail}");
        self.totals[r][k] += avail as u64;
        let key = Self::fit_key(&self.sets[r][k]);
        self.refresh_leaf(r, k, key);
    }

    /// Largest availability among `rack`'s *live* boxes of `kind`
    /// (0 when none remain). O(1).
    #[inline]
    pub fn rack_max(&self, rack: RackId, kind: ResourceKind) -> u32 {
        self.tree[self.cap + rack.0 as usize][kind.index()].saturating_sub(1)
    }

    /// Whether `rack` holds a live box of `kind` with ≥ `units` free.
    /// Unlike `rack_max(..) >= units`, this stays correct for zero-unit
    /// demands on a rack whose boxes of `kind` have all been retracted.
    /// O(1).
    #[inline]
    pub fn rack_admits(&self, rack: RackId, kind: ResourceKind, units: u32) -> bool {
        self.tree[self.cap + rack.0 as usize][kind.index()] > units
    }

    /// Total available units of `kind` in `rack`. O(1).
    #[inline]
    pub fn rack_total(&self, rack: RackId, kind: ResourceKind) -> u64 {
        self.totals[rack.0 as usize][kind.index()]
    }

    /// The fullest box of `kind` in `rack` that still has `units` free
    /// (best-fit; ties to the lower box id). O(log boxes-per-rack).
    pub fn best_fit(&self, rack: RackId, kind: ResourceKind, units: u32) -> Option<BoxId> {
        self.sets[rack.0 as usize][kind.index()]
            .range((units, BoxId(0))..)
            .next()
            .map(|&(_, b)| b)
    }

    /// First rack with id ≥ `from` holding a *live* box of `kind` with
    /// ≥ `units` free. Exact, O(log racks).
    pub fn next_rack_with_fit(&self, kind: ResourceKind, units: u32, from: u16) -> Option<RackId> {
        let k = kind.index();
        self.descend(from as usize, |node| node[k] > units)
    }

    /// First rack with id ≥ `from` able to host the whole `demand` in
    /// single *live* boxes (RISA's `INTRA_RACK_POOL` membership test).
    /// Exact at leaves; internal nodes prune by per-kind fit keys.
    pub fn next_pool_rack(&self, demand: &[u32; 3], from: u16) -> Option<RackId> {
        self.descend(from as usize, |node| {
            node[0] > demand[0] && node[1] > demand[1] && node[2] > demand[2]
        })
    }

    /// Leftmost leaf ≥ `start` on which `pred` holds, among real racks.
    fn descend(&self, start: usize, pred: impl Fn(&[u32; 3]) -> bool + Copy) -> Option<RackId> {
        if start >= self.racks {
            return None;
        }
        self.descend_node(1, 0, self.cap, start, pred)
    }

    fn descend_node(
        &self,
        node: usize,
        lo: usize,
        hi: usize,
        start: usize,
        pred: impl Fn(&[u32; 3]) -> bool + Copy,
    ) -> Option<RackId> {
        if hi <= start || !pred(&self.tree[node]) {
            return None;
        }
        if hi - lo == 1 {
            return (lo < self.racks).then_some(RackId(lo as u16));
        }
        let mid = (lo + hi) / 2;
        self.descend_node(2 * node, lo, mid, start, pred)
            .or_else(|| self.descend_node(2 * node + 1, mid, hi, start, pred))
    }

    /// Exhaustively cross-check every aggregate against `avail_of`.
    pub fn check_against(
        &self,
        racks: u16,
        boxes: impl Iterator<Item = (RackId, ResourceKind, BoxId, u32)>,
    ) -> Result<(), String> {
        let rebuilt = PlacementIndex::build(racks, boxes);
        if rebuilt.sets != self.sets {
            return Err("placement-index availability sets stale".into());
        }
        if rebuilt.totals != self.totals {
            return Err("placement-index rack totals stale".into());
        }
        if rebuilt.tree != self.tree {
            return Err("placement-index segment tree stale".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ALL_RESOURCES;

    fn sample() -> PlacementIndex {
        // 3 racks x 2 boxes per kind, availabilities laid out by formula.
        let boxes = (0..3u16).flat_map(|r| {
            ALL_RESOURCES.into_iter().flat_map(move |kind| {
                (0..2u32).map(move |i| {
                    let id = BoxId(r as u32 * 6 + kind.index() as u32 * 2 + i);
                    let avail = 10 * (r as u32 + 1) + i;
                    (RackId(r), kind, id, avail)
                })
            })
        });
        PlacementIndex::build(3, boxes)
    }

    #[test]
    fn build_computes_maxima_and_totals() {
        let idx = sample();
        assert_eq!(idx.rack_max(RackId(0), ResourceKind::Cpu), 11);
        assert_eq!(idx.rack_max(RackId(2), ResourceKind::Storage), 31);
        assert_eq!(idx.rack_total(RackId(1), ResourceKind::Ram), 41);
    }

    #[test]
    fn update_moves_maxima() {
        let mut idx = sample();
        // Drain rack 2's best CPU box (id 13, avail 31).
        idx.update(RackId(2), ResourceKind::Cpu, BoxId(13), 31, 0);
        assert_eq!(idx.rack_max(RackId(2), ResourceKind::Cpu), 30);
        assert_eq!(idx.rack_total(RackId(2), ResourceKind::Cpu), 30);
        idx.update(RackId(2), ResourceKind::Cpu, BoxId(13), 0, 31);
        assert_eq!(idx.rack_max(RackId(2), ResourceKind::Cpu), 31);
    }

    #[test]
    fn successor_queries_are_exact() {
        let idx = sample();
        // Only rack 2 can host 31 CPU units.
        assert_eq!(
            idx.next_rack_with_fit(ResourceKind::Cpu, 31, 0),
            Some(RackId(2))
        );
        assert_eq!(idx.next_rack_with_fit(ResourceKind::Cpu, 31, 3), None);
        assert_eq!(idx.next_rack_with_fit(ResourceKind::Cpu, 32, 0), None);
        // Every rack hosts 5 units; successor respects `from`.
        assert_eq!(
            idx.next_rack_with_fit(ResourceKind::Ram, 5, 1),
            Some(RackId(1))
        );
        // Pool query needs all three kinds at once.
        assert_eq!(idx.next_pool_rack(&[21, 21, 21], 0), Some(RackId(1)));
        assert_eq!(idx.next_pool_rack(&[21, 31, 21], 0), Some(RackId(2)));
        assert_eq!(idx.next_pool_rack(&[32, 0, 0], 0), None);
    }

    #[test]
    fn best_fit_prefers_fullest_then_lowest_id() {
        let mut idx = sample();
        // Rack 0 CPU: (10, box0), (11, box1). Demand 10 → box0 (fuller).
        assert_eq!(
            idx.best_fit(RackId(0), ResourceKind::Cpu, 10),
            Some(BoxId(0))
        );
        assert_eq!(
            idx.best_fit(RackId(0), ResourceKind::Cpu, 11),
            Some(BoxId(1))
        );
        assert_eq!(idx.best_fit(RackId(0), ResourceKind::Cpu, 12), None);
        // Equal availability ties to the lower id.
        idx.update(RackId(0), ResourceKind::Cpu, BoxId(1), 11, 10);
        assert_eq!(
            idx.best_fit(RackId(0), ResourceKind::Cpu, 9),
            Some(BoxId(0))
        );
    }

    #[test]
    fn check_against_detects_corruption() {
        let boxes =
            || (0..2u16).map(|r| (RackId(r), ResourceKind::Cpu, BoxId(r as u32), 5 + r as u32));
        let mut idx = PlacementIndex::build(2, boxes());
        assert!(idx.check_against(2, boxes()).is_ok());
        idx.update(RackId(0), ResourceKind::Cpu, BoxId(0), 5, 3);
        assert!(idx.check_against(2, boxes()).is_err());
    }
}
