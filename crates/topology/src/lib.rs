//! # risa-topology — the disaggregated-datacenter resource model
//!
//! The RISA paper (§3.1, Figure 3, Table 1) evaluates on the dRedBox-style
//! disaggregated architecture of Zervas et al.: a **cluster** of racks, each
//! rack holding single-resource **boxes** (CPU, RAM or storage), each box
//! divided into **bricks** of a fixed number of resource **units**
//! (CPU unit = 4 cores, RAM unit = 4 GB, storage unit = 64 GB).
//!
//! This crate owns:
//! * the configuration type reproducing Table 1 ([`TopologyConfig`]),
//! * resource-kind/unit arithmetic ([`ResourceKind`], [`UnitDemand`]),
//! * the mutable cluster state with unit-granular allocate/release
//!   ([`Cluster`]),
//! * the incremental [`PlacementIndex`] behind it: sorted per-rack
//!   availability sets, per-rack totals, and a rack segment tree that
//!   answer first-fit / best-fit / pool-successor queries in
//!   O(log) instead of the seed's per-VM linear scans.
//!
//! The network is deliberately **not** modelled here (see `risa-network`);
//! schedulers combine both.
//!
//! ```
//! use risa_topology::{Cluster, TopologyConfig, ResourceKind, UnitDemand};
//!
//! let cluster = Cluster::new(TopologyConfig::paper());
//! // Table 1: 18 racks x 2 CPU boxes x 8 bricks x 16 units x 4 cores.
//! assert_eq!(cluster.total_capacity(ResourceKind::Cpu), 18 * 2 * 128);
//!
//! // A "typical" VM from the paper's toy example: 8 cores, 16 GB, 128 GB.
//! let demand = UnitDemand::from_natural(&cluster.config().units, 8, 16, 128);
//! assert_eq!(demand.get(ResourceKind::Cpu), 2);      // ceil(8 / 4)
//! assert_eq!(demand.get(ResourceKind::Ram), 4);      // ceil(16 / 4)
//! assert_eq!(demand.get(ResourceKind::Storage), 2);  // ceil(128 / 64)
//! ```

#![warn(missing_docs)]

mod cluster;
mod config;
pub mod display;
mod index;
mod partition;
mod resources;

pub use cluster::{AllocError, BoxAllocation, BoxState, Cluster, VmPlacement};
pub use config::{BoxMix, TopologyConfig, UnitSizes};
pub use index::PlacementIndex;
pub use partition::{RackInterval, RackSet};
pub use resources::{BoxId, RackId, ResourceKind, UnitDemand, ALL_RESOURCES};
