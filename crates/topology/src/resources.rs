//! Resource kinds, identifiers, and unit-granular demand vectors.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// The three disaggregated resource types of the paper (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Compute boxes (unit = 4 cores in Table 1).
    Cpu,
    /// Memory boxes (unit = 4 GB).
    Ram,
    /// Storage boxes (unit = 64 GB).
    Storage,
}

/// All resource kinds in canonical order (CPU, RAM, storage) — the order
/// the paper's algorithms iterate `res_type`.
pub const ALL_RESOURCES: [ResourceKind; 3] =
    [ResourceKind::Cpu, ResourceKind::Ram, ResourceKind::Storage];

impl ResourceKind {
    /// Stable dense index (0/1/2) for array-backed tables.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            ResourceKind::Cpu => 0,
            ResourceKind::Ram => 1,
            ResourceKind::Storage => 2,
        }
    }

    /// Inverse of [`ResourceKind::index`].
    #[inline]
    pub const fn from_index(i: usize) -> ResourceKind {
        match i {
            0 => ResourceKind::Cpu,
            1 => ResourceKind::Ram,
            2 => ResourceKind::Storage,
            _ => panic!("resource index out of range"),
        }
    }

    /// Short label used in reports ("CPU", "RAM", "STO").
    pub const fn label(self) -> &'static str {
        match self {
            ResourceKind::Cpu => "CPU",
            ResourceKind::Ram => "RAM",
            ResourceKind::Storage => "STO",
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Index of a rack within the cluster.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct RackId(pub u16);

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rack{}", self.0)
    }
}

/// Global index of a box within the cluster (dense, 0-based, stable).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct BoxId(pub u32);

impl fmt::Display for BoxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "box{}", self.0)
    }
}

/// A VM's resource demand expressed in **units** per resource kind.
///
/// The paper converts a VM's natural requirements (cores, GB) to brick units
/// using Table 1's unit sizes; allocations happen at unit granularity.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize, PartialOrd, Ord,
)]
pub struct UnitDemand([u32; 3]);

impl UnitDemand {
    /// Demand of zero units of everything.
    pub const ZERO: UnitDemand = UnitDemand([0; 3]);

    /// Build from per-kind unit counts (CPU, RAM, storage order).
    pub const fn new(cpu: u32, ram: u32, storage: u32) -> Self {
        UnitDemand([cpu, ram, storage])
    }

    /// Convert natural amounts (cores, GB RAM, GB storage) to units by
    /// rounding **up** to whole units, as a real allocator must.
    pub fn from_natural(
        units: &crate::config::UnitSizes,
        cpu_cores: u32,
        ram_gb: u32,
        storage_gb: u32,
    ) -> Self {
        UnitDemand([
            cpu_cores.div_ceil(units.cpu_cores_per_unit),
            ram_gb.div_ceil(units.ram_gb_per_unit),
            storage_gb.div_ceil(units.storage_gb_per_unit),
        ])
    }

    /// Units demanded of `kind`.
    #[inline]
    pub fn get(&self, kind: ResourceKind) -> u32 {
        self.0[kind.index()]
    }

    /// Set the demanded units of `kind`.
    #[inline]
    pub fn set(&mut self, kind: ResourceKind, units: u32) {
        self.0[kind.index()] = units;
    }

    /// True when nothing is demanded.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 3]
    }

    /// Component-wise `<=` (fits within an availability vector).
    pub fn fits_within(&self, avail: &UnitDemand) -> bool {
        (0..3).all(|i| self.0[i] <= avail.0[i])
    }

    /// Largest single-kind demand, in units.
    pub fn max_units(&self) -> u32 {
        self.0.iter().copied().max().unwrap_or(0)
    }

    /// Total units across kinds (a crude size measure used in reports).
    pub fn total_units(&self) -> u32 {
        self.0.iter().sum()
    }
}

impl Index<ResourceKind> for UnitDemand {
    type Output = u32;
    fn index(&self, kind: ResourceKind) -> &u32 {
        &self.0[kind.index()]
    }
}

impl IndexMut<ResourceKind> for UnitDemand {
    fn index_mut(&mut self, kind: ResourceKind) -> &mut u32 {
        &mut self.0[kind.index()]
    }
}

impl fmt::Display for UnitDemand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cpu={}u ram={}u sto={}u",
            self.0[0], self.0[1], self.0[2]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UnitSizes;

    #[test]
    fn index_roundtrip() {
        for kind in ALL_RESOURCES {
            assert_eq!(ResourceKind::from_index(kind.index()), kind);
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ResourceKind::Cpu.label(), "CPU");
        assert_eq!(ResourceKind::Ram.to_string(), "RAM");
        assert_eq!(ResourceKind::Storage.label(), "STO");
    }

    #[test]
    fn natural_conversion_rounds_up() {
        let u = UnitSizes::paper(); // 4 cores, 4 GB, 64 GB
                                    // 1 core still occupies a whole 4-core unit.
        let d = UnitDemand::from_natural(&u, 1, 1, 1);
        assert_eq!(d, UnitDemand::new(1, 1, 1));
        // Exact multiples don't over-allocate.
        let d = UnitDemand::from_natural(&u, 32, 32, 128);
        assert_eq!(d, UnitDemand::new(8, 8, 2));
        // Paper's "typical VM": 8 cores / 16 GB / 128 GB.
        let d = UnitDemand::from_natural(&u, 8, 16, 128);
        assert_eq!(d, UnitDemand::new(2, 4, 2));
    }

    #[test]
    fn fits_within_is_componentwise() {
        let small = UnitDemand::new(1, 2, 3);
        let big = UnitDemand::new(3, 3, 3);
        assert!(small.fits_within(&big));
        assert!(!big.fits_within(&small));
        assert!(small.fits_within(&small));
        // One exceeding component breaks the fit.
        assert!(!UnitDemand::new(4, 0, 0).fits_within(&big));
    }

    #[test]
    fn indexing_and_setters() {
        let mut d = UnitDemand::ZERO;
        assert!(d.is_zero());
        d[ResourceKind::Ram] = 5;
        d.set(ResourceKind::Storage, 2);
        assert_eq!(d.get(ResourceKind::Ram), 5);
        assert_eq!(d[ResourceKind::Storage], 2);
        assert_eq!(d.max_units(), 5);
        assert_eq!(d.total_units(), 7);
        assert!(!d.is_zero());
    }

    #[test]
    fn display_formats() {
        assert_eq!(RackId(3).to_string(), "rack3");
        assert_eq!(BoxId(17).to_string(), "box17");
        assert_eq!(UnitDemand::new(1, 2, 3).to_string(), "cpu=1u ram=2u sto=3u");
    }
}
