//! Workload transformations: slicing, scaling, merging — the operations a
//! trace-driven study needs (the paper itself slices the Azure trace into
//! its first 3000/5000/7500 VMs).

use crate::vm::{VmId, VmRequest, Workload};

/// The first `n` requests, re-labelled `"<name>[..n]"` (the paper's
/// "first N VMs" slicing).
pub fn take_first(w: &Workload, n: usize) -> Workload {
    let vms: Vec<VmRequest> = w.vms().iter().take(n).copied().collect();
    Workload::from_vms(format!("{}[..{}]", w.name(), vms.len()), reindex(vms))
}

/// Requests arriving within `[start, end)`, arrivals shifted so the window
/// starts at 0.
pub fn window(w: &Workload, start: f64, end: f64) -> Workload {
    let vms: Vec<VmRequest> = w
        .vms()
        .iter()
        .filter(|v| v.arrival >= start && v.arrival < end)
        .map(|v| VmRequest {
            arrival: v.arrival - start,
            ..*v
        })
        .collect();
    Workload::from_vms(format!("{}[{start}..{end})", w.name()), reindex(vms))
}

/// Scale every arrival time by `factor` (> 1 slows the workload down,
/// < 1 speeds it up); lifetimes are untouched, so the offered load scales
/// inversely with `factor`.
pub fn scale_arrivals(w: &Workload, factor: f64) -> Workload {
    assert!(factor > 0.0, "scale factor must be positive");
    let vms: Vec<VmRequest> = w
        .vms()
        .iter()
        .map(|v| VmRequest {
            arrival: v.arrival * factor,
            ..*v
        })
        .collect();
    Workload::from_vms(format!("{}x{factor}", w.name()), vms)
}

/// Merge two workloads by arrival time (e.g. overlaying a synthetic burst
/// onto an Azure baseline). Ids are reassigned by merged order.
pub fn merge(a: &Workload, b: &Workload) -> Workload {
    let mut vms: Vec<VmRequest> = a.vms().iter().chain(b.vms().iter()).copied().collect();
    vms.sort_by(|x, y| x.arrival.total_cmp(&y.arrival));
    Workload::from_vms(format!("{}+{}", a.name(), b.name()), reindex(vms))
}

fn reindex(mut vms: Vec<VmRequest>) -> Vec<VmRequest> {
    for (i, vm) in vms.iter_mut().enumerate() {
        vm.id = VmId(i as u32);
    }
    vms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticConfig;

    fn base() -> Workload {
        Workload::synthetic(&SyntheticConfig::small(100, 5))
    }

    #[test]
    fn take_first_slices_and_reindexes() {
        let w = take_first(&base(), 10);
        assert_eq!(w.len(), 10);
        assert_eq!(w.vms()[0].id, VmId(0));
        assert_eq!(w.vms()[9].id, VmId(9));
        assert!(w.name().contains("[..10]"));
        // Taking more than available is the identity in length.
        assert_eq!(take_first(&base(), 1000).len(), 100);
    }

    #[test]
    fn window_shifts_to_zero() {
        let b = base();
        let mid = b.vms()[50].arrival;
        let w = window(&b, mid, f64::INFINITY);
        assert!(w.len() <= 50);
        assert!(w.vms()[0].arrival >= 0.0);
        assert!(w.vms()[0].arrival < 1e6);
        // The first in-window VM now arrives at (old - start).
        let first_old = b.vms().iter().find(|v| v.arrival >= mid).unwrap();
        assert!((w.vms()[0].arrival - (first_old.arrival - mid)).abs() < 1e-12);
    }

    #[test]
    fn scale_changes_span_not_lifetimes() {
        let b = base();
        let slow = scale_arrivals(&b, 2.0);
        assert_eq!(slow.len(), b.len());
        let last_b = b.vms().last().unwrap();
        let last_s = slow.vms().last().unwrap();
        assert!((last_s.arrival - last_b.arrival * 2.0).abs() < 1e-9);
        assert_eq!(last_s.lifetime, last_b.lifetime);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        scale_arrivals(&base(), 0.0);
    }

    #[test]
    fn merge_interleaves_sorted() {
        let a = base();
        let b = scale_arrivals(&base(), 1.37);
        let m = merge(&a, &b);
        assert_eq!(m.len(), 200);
        assert!(m.vms().windows(2).all(|w| w[0].arrival <= w[1].arrival));
        // Dense re-ids.
        assert_eq!(m.vms()[199].id, VmId(199));
    }
}
