//! A double-buffered cursor over a [`ShardSource`] — bounded-memory
//! workload consumption with shard prefetch.
//!
//! [`StreamingShards`] walks a workload in VM-index order (which, for the
//! stitched trace, is also arrival-time order) holding **at most two
//! shards** in memory: the shard currently being consumed and the next
//! one, generating on the resident `rayon` pool via
//! [`rayon::spawn_task`] while the consumer drains the current buffer.
//! Peak buffered VMs is therefore ≤ 2×[`SHARD_SIZE`] regardless of trace
//! length (tracked exactly by [`StreamingShards::peak_buffered`] and
//! asserted by `crates/sim/tests/streaming_bounds.rs`), and generation
//! wall-clock overlaps consumption instead of preceding it.
//!
//! ## Determinism
//!
//! The cursor yields the *byte-identical* VM sequence of
//! [`materialize`](crate::shard::materialize) on the same source:
//!
//! * each shard's VMs come from the same per-shard generation code
//!   ([`ShardSource::shard_vms`]), driven by `(seed, shard, stream)` RNGs
//!   that owe nothing to neighbouring shards;
//! * absolute arrivals are rebased with the same running-offset
//!   accumulation (`offset += total`, then `offset + local`) the
//!   materialized prefix sum performs — the identical `f64` additions in
//!   the identical order, hence bit-equal times;
//! * prefetch only moves *where* a shard is generated, never *what* it
//!   contains — at pool width 1 the task runs inline and the cursor is
//!   exactly sequential.

use crate::shard::{ShardSource, SHARD_SIZE};
use crate::vm::VmRequest;
use rayon::Task;
use std::fmt;
use std::sync::Arc;

/// A bounded-memory, prefetching cursor over a [`ShardSource`]; see the
/// module docs.
pub struct StreamingShards {
    source: Arc<dyn ShardSource>,
    /// Current shard's VMs, arrivals already rebased to absolute time.
    current: Vec<VmRequest>,
    /// Cursor into `current`.
    pos: usize,
    /// Global index of the next VM [`StreamingShards::next`] will yield.
    consumed: u32,
    /// The shard the outstanding `prefetch` (or the next swap) produces.
    next_shard: u32,
    /// Absolute time offset of `next_shard` — the running prefix sum.
    offset: f64,
    prefetch: Option<Task<(Vec<VmRequest>, f64)>>,
    peak_buffered: usize,
    shards_generated: u32,
}

impl StreamingShards {
    /// Start a cursor at VM 0 and kick off the prefetch of shard 0.
    pub fn new(source: Arc<dyn ShardSource>) -> Self {
        let (prefetch, peak_buffered) = if source.num_shards() > 0 {
            (Some(Self::launch(&source, 0)), source.shard_range(0).len())
        } else {
            (None, 0)
        };
        StreamingShards {
            source,
            current: Vec::new(),
            pos: 0,
            consumed: 0,
            next_shard: 0,
            offset: 0.0,
            prefetch,
            peak_buffered,
            shards_generated: 0,
        }
    }

    fn launch(source: &Arc<dyn ShardSource>, shard: u32) -> Task<(Vec<VmRequest>, f64)> {
        let src = Arc::clone(source);
        rayon::spawn_task(move || src.shard_vms(shard))
    }

    fn swap_in_next_shard(&mut self) {
        // Invariant: `prefetch`, when present, holds shard `next_shard`.
        let task = self
            .prefetch
            .take()
            .unwrap_or_else(|| Self::launch(&self.source, self.next_shard));
        let (mut vms, total) = task.wait();
        debug_assert_eq!(vms.len(), self.source.shard_range(self.next_shard).len());
        // Rebase shard-local arrivals: the same `offset + local` addition
        // the materialized path performs, against the same running offset.
        let o = self.offset;
        for vm in &mut vms {
            // `+=` is the same IEEE addition as the materialized path's
            // `o + local` (f64 `+` is commutative), so times stay
            // bit-identical.
            vm.arrival += o;
        }
        self.offset += total;
        self.current = vms;
        self.pos = 0;
        self.next_shard += 1;
        self.shards_generated += 1;
        let mut buffered = self.current.len();
        if self.next_shard < self.source.num_shards() {
            self.prefetch = Some(Self::launch(&self.source, self.next_shard));
            buffered += self.source.shard_range(self.next_shard).len();
        }
        self.peak_buffered = self.peak_buffered.max(buffered);
    }

    /// VMs not yet yielded (exact).
    pub fn remaining(&self) -> usize {
        (self.source.total_vms() - self.consumed) as usize
    }

    /// Total VMs in the underlying workload.
    pub fn total_vms(&self) -> u32 {
        self.source.total_vms()
    }

    /// Workload name, from the source.
    pub fn label(&self) -> &str {
        self.source.label()
    }

    /// High-water mark of VMs buffered at once (current shard plus any
    /// outstanding prefetch). Bounded by 2×[`SHARD_SIZE`] by construction.
    pub fn peak_buffered(&self) -> usize {
        debug_assert!(self.peak_buffered <= 2 * SHARD_SIZE as usize);
        self.peak_buffered
    }

    /// Shards generated so far (consumed or in the current buffer).
    pub fn shards_generated(&self) -> u32 {
        self.shards_generated
    }
}

impl Iterator for StreamingShards {
    type Item = VmRequest;

    /// Yield the next VM in index order, or `None` when the workload is
    /// exhausted. Crossing a shard boundary waits for the prefetched
    /// shard, rebases its arrivals, and immediately starts prefetching
    /// the one after.
    fn next(&mut self) -> Option<VmRequest> {
        while self.pos == self.current.len() {
            if self.next_shard >= self.source.num_shards() {
                return None;
            }
            self.swap_in_next_shard();
        }
        let vm = self.current[self.pos];
        self.pos += 1;
        self.consumed += 1;
        Some(vm)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

// Manual `Debug`: the source trait object and the prefetch task are
// opaque; summarize progress instead.
impl fmt::Debug for StreamingShards {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamingShards")
            .field("label", &self.source.label())
            .field("consumed", &self.consumed)
            .field("total_vms", &self.source.total_vms())
            .field("next_shard", &self.next_shard)
            .field("prefetch_outstanding", &self.prefetch.is_some())
            .field("peak_buffered", &self.peak_buffered)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::materialize;
    use crate::synthetic::SyntheticShards;
    use crate::SyntheticConfig;

    fn source(n: u32, seed: u64) -> Arc<dyn ShardSource> {
        Arc::new(SyntheticShards::new(&SyntheticConfig::small(n, seed)))
    }

    /// The streaming cursor must reproduce the materialized VM sequence
    /// bit-for-bit — including arrivals across shard boundaries — at any
    /// thread count.
    #[test]
    fn cursor_matches_materialized_byte_for_byte() {
        let n = 3 * SHARD_SIZE + 123;
        let expect = materialize(&*source(n, 42));
        for threads in [1, 2, 8] {
            let got: Vec<VmRequest> = rayon::with_num_threads(threads, || {
                let mut cursor = StreamingShards::new(source(n, 42));
                std::iter::from_fn(|| cursor.next()).collect()
            });
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn peak_buffered_is_bounded_by_two_shards() {
        let n = 5 * SHARD_SIZE + 7;
        let mut cursor = StreamingShards::new(source(n, 9));
        let mut count = 0u32;
        while cursor.next().is_some() {
            count += 1;
            assert!(cursor.peak_buffered() <= 2 * SHARD_SIZE as usize);
        }
        assert_eq!(count, n);
        assert_eq!(cursor.remaining(), 0);
        assert!(cursor.peak_buffered() >= SHARD_SIZE as usize);
        assert_eq!(cursor.shards_generated(), cursor.source.num_shards());
    }

    #[test]
    fn remaining_counts_down_exactly() {
        let n = SHARD_SIZE + 10;
        let mut cursor = StreamingShards::new(source(n, 3));
        assert_eq!(cursor.remaining(), n as usize);
        assert_eq!(cursor.total_vms(), n);
        assert_eq!(cursor.label(), "synthetic");
        for left in (0..n as usize).rev() {
            let vm = cursor.next().expect("not exhausted");
            assert_eq!(vm.id.0 as usize, n as usize - 1 - left);
            assert_eq!(cursor.remaining(), left);
        }
        assert!(cursor.next().is_none());
        assert!(cursor.next().is_none(), "exhaustion is stable");
    }

    #[test]
    fn empty_workload_yields_nothing() {
        let mut cursor = StreamingShards::new(source(0, 1));
        assert!(cursor.next().is_none());
        assert_eq!(cursor.remaining(), 0);
        assert_eq!(cursor.peak_buffered(), 0);
    }
}
