//! Pre-built traces as shard sources — in-memory and file-backed.
//!
//! Generated workloads stream through [`crate::ShardSource`] because every
//! shard is *derivable* on demand from per-shard RNG streams. A pre-built
//! trace (a [`Workload`] literal, or a CSV file on disk) has no generator
//! to re-run — but it can still be **served** in shard-sized chunks, which
//! is all the streaming arrival pipeline needs. This module provides the
//! two adapters:
//!
//! * [`TraceShards`] slices an in-memory [`Workload`] into shards; and
//! * [`CsvFileShards`] is the chunked trace-file reader: one validating
//!   scan at open records the byte offset of each shard's first row, and
//!   each `shard_vms` call re-reads only that shard's rows — so a run
//!   over an on-disk CSV holds at most two shards of VMs in memory.
//!
//! ## The zero-delta stitching trick
//!
//! Generated shards report arrivals in *shard-local* time plus a per-shard
//! delta total, and the consumer rebases with `offset + local`. A pre-built
//! trace's arrivals are already absolute, and `offset + (absolute - offset)`
//! is **not** an `f64` identity — rebasing through deltas would break
//! byte-identity with the materialized path. Both adapters therefore
//! return arrivals **unchanged** with a per-shard delta total of `0.0`:
//! the consumer's running offset stays `0.0` forever, its rebase is
//! `arrival + 0.0` (exact for every non-negative arrival, and arrivals
//! are validated non-negative), and the streamed trace is bit-for-bit the
//! stored one. Because the totals no longer encode the span, both
//! adapters override [`ShardSource::span_units`] with the true last
//! arrival.

use crate::csv::{parse_row, CsvError, HEADER};
use crate::shard::{ShardSource, SHARD_SIZE};
use crate::vm::{VmRequest, Workload};
use std::fs::File;
use std::io::{BufRead, BufReader, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// An in-memory [`Workload`] served shard-by-shard.
///
/// Lets `WorkloadSpec::Trace` runs use the streaming arrival pipeline
/// (bounded arrival-lane buffering, identical event sequencing) instead of
/// silently falling back to the materialized path.
#[derive(Debug, Clone)]
pub struct TraceShards {
    workload: Workload,
}

impl TraceShards {
    /// Wrap a workload. The workload must be sorted by arrival (enforced
    /// by [`Workload`] construction).
    pub fn new(workload: Workload) -> Self {
        TraceShards { workload }
    }
}

impl ShardSource for TraceShards {
    fn total_vms(&self) -> u32 {
        self.workload.len() as u32
    }

    fn label(&self) -> &str {
        self.workload.name()
    }

    fn shard_vms(&self, shard: u32) -> (Vec<VmRequest>, f64) {
        let r = self.shard_range(shard);
        // Arrivals stay absolute; delta total 0.0 keeps the consumer's
        // running offset at zero (see module docs).
        (
            self.workload.vms()[r.start as usize..r.end as usize].to_vec(),
            0.0,
        )
    }

    fn shard_arrivals(&self, shard: u32) -> (Vec<f64>, f64) {
        let r = self.shard_range(shard);
        (
            self.workload.vms()[r.start as usize..r.end as usize]
                .iter()
                .map(|vm| vm.arrival)
                .collect(),
            0.0,
        )
    }

    fn span_units(&self) -> f64 {
        self.workload.vms().last().map_or(0.0, |vm| vm.arrival)
    }
}

/// Errors raised while opening a CSV trace file as a shard source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceFileError {
    /// The file could not be read.
    Io {
        /// Path that failed.
        path: String,
        /// Stringified I/O error.
        message: String,
    },
    /// A row failed CSV validation (same rules as [`crate::csv::from_csv`]).
    Csv(CsvError),
    /// VM ids must equal the row's 0-based rank: the streaming arrival
    /// pipeline addresses VMs by arrival index, so a gap or permutation in
    /// ids would silently diverge from the materialized path.
    NonDenseId {
        /// 1-based line number.
        line: usize,
        /// Rank the row should have carried.
        expected: u32,
        /// Id actually found.
        found: u32,
    },
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::Io { path, message } => {
                write!(f, "cannot read trace file '{path}': {message}")
            }
            TraceFileError::Csv(e) => write!(f, "trace file: {e}"),
            TraceFileError::NonDenseId {
                line,
                expected,
                found,
            } => write!(
                f,
                "line {line}: VM ids must be dense and in order (expected {expected}, found {found})"
            ),
        }
    }
}

impl std::error::Error for TraceFileError {}

impl From<CsvError> for TraceFileError {
    fn from(e: CsvError) -> Self {
        TraceFileError::Csv(e)
    }
}

/// A CSV trace file on disk, served shard-by-shard without ever holding
/// the whole trace in memory.
///
/// [`CsvFileShards::open`] makes one streaming pass over the file that
/// validates every row (header, arity, field domains, sorted and dense
/// ids — the exact [`crate::csv::from_csv`] rules plus density) and
/// records, per [`SHARD_SIZE`] rows, the byte offset of the shard's first
/// row. Each [`ShardSource::shard_vms`] call then reopens the file, seeks
/// to the shard's offset and parses only its rows. The file must not be
/// modified between `open` and the run — `shard_vms` panics (loudly, with
/// the offending line) if a previously-valid row stops parsing.
#[derive(Debug, Clone)]
pub struct CsvFileShards {
    path: PathBuf,
    name: String,
    /// Byte offset of the first data row of each shard.
    offsets: Vec<u64>,
    total: u32,
    span: f64,
}

impl CsvFileShards {
    /// Open and validate `path`, labelling the workload `name`.
    pub fn open(name: impl Into<String>, path: impl AsRef<Path>) -> Result<Self, TraceFileError> {
        let path = path.as_ref().to_path_buf();
        let io_err = |e: std::io::Error| TraceFileError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        };
        let mut reader = BufReader::new(File::open(&path).map_err(io_err)?);
        let mut buf = String::new();
        let mut pos: u64 = 0; // byte offset of the line in `buf`
        let mut line = 0usize; // 1-based line number of that line

        // Header.
        let n = reader.read_line(&mut buf).map_err(io_err)?;
        line += 1;
        if n == 0 || buf.trim() != HEADER {
            return Err(CsvError::BadHeader.into());
        }
        pos += n as u64;

        let mut offsets = Vec::new();
        let mut total: u32 = 0;
        let mut span = 0.0f64;
        let mut last_arrival = f64::NEG_INFINITY;
        loop {
            buf.clear();
            let n = reader.read_line(&mut buf).map_err(io_err)?;
            if n == 0 {
                break;
            }
            line += 1;
            let row_start = pos;
            pos += n as u64;
            let row = buf.trim();
            if row.is_empty() {
                continue;
            }
            let vm = parse_row(row, line)?;
            if vm.id.0 != total {
                return Err(TraceFileError::NonDenseId {
                    line,
                    expected: total,
                    found: vm.id.0,
                });
            }
            if vm.arrival < last_arrival {
                return Err(CsvError::NotSorted { line }.into());
            }
            last_arrival = vm.arrival;
            if total.is_multiple_of(SHARD_SIZE) {
                offsets.push(row_start);
            }
            total += 1;
            span = vm.arrival;
        }
        Ok(CsvFileShards {
            path,
            name: name.into(),
            offsets,
            total,
            span,
        })
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl ShardSource for CsvFileShards {
    fn total_vms(&self) -> u32 {
        self.total
    }

    fn label(&self) -> &str {
        &self.name
    }

    fn shard_vms(&self, shard: u32) -> (Vec<VmRequest>, f64) {
        let range = self.shard_range(shard);
        let want = range.len();
        let mut reader = BufReader::new(File::open(&self.path).unwrap_or_else(|e| {
            panic!(
                "trace file '{}' unreadable after open(): {e}",
                self.path.display()
            )
        }));
        reader
            .seek(SeekFrom::Start(self.offsets[shard as usize]))
            .unwrap_or_else(|e| panic!("seek in trace file '{}': {e}", self.path.display()));
        let mut vms = Vec::with_capacity(want);
        let mut buf = String::new();
        while vms.len() < want {
            buf.clear();
            let n = reader
                .read_line(&mut buf)
                .unwrap_or_else(|e| panic!("read from trace file '{}': {e}", self.path.display()));
            assert!(
                n > 0,
                "trace file '{}' truncated since open(): shard {shard} ended after {} of {want} rows",
                self.path.display(),
                vms.len()
            );
            let row = buf.trim();
            if row.is_empty() {
                continue;
            }
            // Line numbers are unknown on the re-read path; report the
            // shard-relative row instead.
            let vm = parse_row(row, vms.len() + 1).unwrap_or_else(|e| {
                panic!(
                    "trace file '{}' changed since open(): shard {shard}, {e}",
                    self.path.display()
                )
            });
            vms.push(vm);
        }
        // Absolute arrivals, zero delta total (see module docs).
        (vms, 0.0)
    }

    fn span_units(&self) -> f64 {
        self.span
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::to_csv;
    use crate::shard::materialize;
    use crate::streaming::StreamingShards;
    use crate::synthetic::SyntheticConfig;
    use std::sync::Arc;

    fn sample_workload(n: u32) -> Workload {
        Workload::synthetic(&SyntheticConfig::small(n, 11))
    }

    #[test]
    fn trace_shards_reproduce_the_workload_exactly() {
        // 2.5 shards so the ragged tail and shard boundaries are exercised.
        let w = sample_workload(SHARD_SIZE * 2 + 50);
        let shards = TraceShards::new(w.clone());
        assert_eq!(shards.total_vms(), w.len() as u32);
        assert_eq!(shards.label(), w.name());
        assert_eq!(materialize(&shards), w.vms());
        assert_eq!(
            shards.span_units().to_bits(),
            w.vms().last().unwrap().arrival.to_bits()
        );
        // Every per-shard delta total is exactly zero, so a streaming
        // consumer's offset never moves.
        for s in 0..shards.num_shards() {
            assert_eq!(shards.shard_vms(s).1, 0.0);
            assert_eq!(shards.shard_arrivals(s).1, 0.0);
        }
    }

    #[test]
    fn streaming_cursor_over_trace_shards_is_bit_exact_and_bounded() {
        let w = sample_workload(SHARD_SIZE * 2 + 50);
        let cursor = StreamingShards::new(Arc::new(TraceShards::new(w.clone())));
        let streamed: Vec<VmRequest> = cursor.collect();
        assert_eq!(streamed, *w.vms());
    }

    fn temp_csv(tag: &str, contents: &str) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("risa_trace_{}_{tag}.csv", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn csv_file_shards_match_in_memory_parse() {
        let w = sample_workload(SHARD_SIZE * 2 + 50);
        let path = temp_csv("roundtrip", &to_csv(&w));
        let shards = CsvFileShards::open("disk", &path).unwrap();
        assert_eq!(shards.total_vms(), w.len() as u32);
        assert_eq!(shards.num_shards(), 3);
        assert_eq!(
            shards.span_units().to_bits(),
            w.vms().last().unwrap().arrival.to_bits()
        );
        // Chunked re-reads reproduce the trace bit-for-bit, shard by shard
        // and end to end.
        assert_eq!(materialize(&shards), w.vms());
        let streamed: Vec<VmRequest> = StreamingShards::new(Arc::new(shards.clone())).collect();
        assert_eq!(streamed, *w.vms());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_file_shards_tolerate_blank_lines_and_empty_files() {
        let path = temp_csv("blanks", &format!("{HEADER}\n\n0,1,2,128,1.0,10.0\n\n"));
        let shards = CsvFileShards::open("blanky", &path).unwrap();
        assert_eq!(shards.total_vms(), 1);
        assert_eq!(shards.shard_vms(0).0.len(), 1);
        std::fs::remove_file(&path).ok();

        let path = temp_csv("empty", &format!("{HEADER}\n"));
        let shards = CsvFileShards::open("empty", &path).unwrap();
        assert_eq!(shards.total_vms(), 0);
        assert_eq!(shards.num_shards(), 0);
        assert_eq!(shards.span_units(), 0.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_validates_eagerly() {
        let missing = CsvFileShards::open("x", "/nonexistent/risa/trace.csv").unwrap_err();
        assert!(matches!(missing, TraceFileError::Io { .. }));
        assert!(missing.to_string().contains("/nonexistent/risa/trace.csv"));

        let path = temp_csv("badheader", "nope\n0,1,2,128,1.0,10.0\n");
        assert_eq!(
            CsvFileShards::open("x", &path).unwrap_err(),
            TraceFileError::Csv(CsvError::BadHeader)
        );
        std::fs::remove_file(&path).ok();

        let path = temp_csv(
            "unsorted",
            &format!("{HEADER}\n0,1,2,128,5.0,10.0\n1,1,2,128,4.0,10.0\n"),
        );
        assert_eq!(
            CsvFileShards::open("x", &path).unwrap_err(),
            TraceFileError::Csv(CsvError::NotSorted { line: 3 })
        );
        std::fs::remove_file(&path).ok();

        let path = temp_csv(
            "sparseid",
            &format!("{HEADER}\n0,1,2,128,1.0,10.0\n5,1,2,128,2.0,10.0\n"),
        );
        assert_eq!(
            CsvFileShards::open("x", &path).unwrap_err(),
            TraceFileError::NonDenseId {
                line: 3,
                expected: 1,
                found: 5
            }
        );
        std::fs::remove_file(&path).ok();
    }
}
