//! CSV trace interchange.
//!
//! JSON (in `vm.rs`) is the lossless native format; CSV is the lingua
//! franca of trace analysis tooling (the Azure trace itself ships as CSV),
//! so workloads can also round-trip through a simple header-checked CSV:
//!
//! ```text
//! id,cpu_cores,ram_gb,storage_gb,arrival,lifetime
//! 0,8,16,128,12.5,6300.0
//! ```
//!
//! Times are written with `{:?}` — Rust's shortest-round-trip float
//! rendering — so a CSV round trip preserves every `f64` bit-for-bit
//! (asserted by `csv_round_trip_is_bit_exact` below). This matters for
//! the streaming trace reader and checkpoint paths, whose byte-identity
//! guarantees assume the trace survives interchange exactly.

use crate::vm::{VmId, VmRequest, Workload};

/// The exact header line emitted and required.
pub const HEADER: &str = "id,cpu_cores,ram_gb,storage_gb,arrival,lifetime";

/// Errors raised while parsing a CSV trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// First line did not match [`HEADER`].
    BadHeader,
    /// A row had the wrong number of fields.
    BadArity {
        /// 1-based line number.
        line: usize,
    },
    /// A field failed to parse.
    BadField {
        /// 1-based line number.
        line: usize,
        /// Column name.
        column: &'static str,
    },
    /// A field parsed but its value is outside the valid domain
    /// (non-finite or negative time). NaN in particular would otherwise
    /// silently defeat the sorted-arrivals check (`NaN < last` is false)
    /// and poison downstream event ordering.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// Column name.
        column: &'static str,
    },
    /// Rows are not sorted by arrival time.
    NotSorted {
        /// 1-based line number of the offending row.
        line: usize,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::BadHeader => write!(f, "bad CSV header (expected '{HEADER}')"),
            CsvError::BadArity { line } => write!(f, "line {line}: expected 6 fields"),
            CsvError::BadField { line, column } => {
                write!(f, "line {line}: cannot parse column '{column}'")
            }
            CsvError::BadValue { line, column } => {
                write!(
                    f,
                    "line {line}: column '{column}' must be a finite, non-negative number"
                )
            }
            CsvError::NotSorted { line } => {
                write!(f, "line {line}: arrivals must be non-decreasing")
            }
        }
    }
}

impl std::error::Error for CsvError {}

/// Serialize a workload as CSV (header + one row per VM).
pub fn to_csv(w: &Workload) -> String {
    let mut out = String::with_capacity(64 * (w.len() + 1));
    out.push_str(HEADER);
    out.push('\n');
    for vm in w.vms() {
        // `{:?}` (shortest round-trip rendering) for the two floats:
        // `{}` Display can render a value whose re-parse differs in the
        // last ulp, which would silently break trace byte-identity.
        out.push_str(&format!(
            "{},{},{},{},{:?},{:?}\n",
            vm.id.0, vm.cpu_cores, vm.ram_gb, vm.storage_gb, vm.arrival, vm.lifetime
        ));
    }
    out
}

/// Parse one data row (no header, already trimmed, non-empty) into a
/// [`VmRequest`]. `line` is the 1-based line number used in errors.
///
/// Shared by [`from_csv`] and the chunked trace-file reader
/// ([`crate::CsvFileShards`]), so both paths accept exactly the same
/// rows. The sorted-arrivals check stays with the callers because it
/// needs cross-row state.
pub(crate) fn parse_row(row: &str, line: usize) -> Result<VmRequest, CsvError> {
    let fields: Vec<&str> = row.split(',').collect();
    if fields.len() != 6 {
        return Err(CsvError::BadArity { line });
    }
    fn num<T: std::str::FromStr>(
        s: &str,
        line: usize,
        column: &'static str,
    ) -> Result<T, CsvError> {
        s.trim()
            .parse()
            .map_err(|_| CsvError::BadField { line, column })
    }
    let vm = VmRequest {
        id: VmId(num(fields[0], line, "id")?),
        cpu_cores: num(fields[1], line, "cpu_cores")?,
        ram_gb: num(fields[2], line, "ram_gb")?,
        storage_gb: num(fields[3], line, "storage_gb")?,
        arrival: num(fields[4], line, "arrival")?,
        lifetime: num(fields[5], line, "lifetime")?,
    };
    for (value, column) in [(vm.arrival, "arrival"), (vm.lifetime, "lifetime")] {
        if !value.is_finite() || value < 0.0 {
            return Err(CsvError::BadValue { line, column });
        }
    }
    Ok(vm)
}

/// Parse a workload from CSV produced by [`to_csv`] (or hand-written in
/// the same schema). `name` labels the resulting workload.
pub fn from_csv(name: &str, csv: &str) -> Result<Workload, CsvError> {
    let mut lines = csv.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        _ => return Err(CsvError::BadHeader),
    }
    let mut vms: Vec<VmRequest> = Vec::new();
    let mut last_arrival = f64::NEG_INFINITY;
    for (idx, row) in lines {
        let line = idx + 1;
        let row = row.trim();
        if row.is_empty() {
            continue;
        }
        let vm = parse_row(row, line)?;
        if vm.arrival < last_arrival {
            return Err(CsvError::NotSorted { line });
        }
        last_arrival = vm.arrival;
        vms.push(vm);
    }
    Ok(Workload::from_vms(name, vms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticConfig;

    #[test]
    fn roundtrip_preserves_everything_but_name() {
        let w = Workload::synthetic(&SyntheticConfig::small(60, 3));
        let back = from_csv("synthetic", &to_csv(&w)).unwrap();
        assert_eq!(w, back);
    }

    /// Regression for the `{}`-formatted writer: every `f64` bit pattern
    /// that can legally appear in a trace (subnormals, extremes, values
    /// with no short decimal form) must survive a CSV round trip exactly.
    #[test]
    fn csv_round_trip_is_bit_exact() {
        let times = [
            0.0,
            0.1 + 0.2, // 0.30000000000000004 — classic shortest-repr case
            f64::MIN_POSITIVE,
            5e-324, // smallest subnormal
            1.5e-10,
            12.5,
            6300.000000000001,
            1e300,
            f64::MAX,
        ];
        let mut sorted: Vec<f64> = times.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let vms: Vec<VmRequest> = sorted
            .iter()
            .enumerate()
            .map(|(i, &t)| VmRequest {
                id: VmId(i as u32),
                cpu_cores: 1,
                ram_gb: 2,
                storage_gb: 4,
                arrival: t,
                lifetime: times[i],
            })
            .collect();
        let w = Workload::from_vms("bits", vms);
        let back = from_csv("bits", &to_csv(&w)).unwrap();
        assert_eq!(back.len(), w.len());
        for (a, b) in w.vms().iter().zip(back.vms()) {
            assert_eq!(
                a.arrival.to_bits(),
                b.arrival.to_bits(),
                "arrival {} not bit-identical after round trip",
                a.arrival
            );
            assert_eq!(
                a.lifetime.to_bits(),
                b.lifetime.to_bits(),
                "lifetime {} not bit-identical after round trip",
                a.lifetime
            );
        }
    }

    #[test]
    fn header_enforced() {
        assert_eq!(
            from_csv("x", "wrong\n1,2,3,4,5,6").unwrap_err(),
            CsvError::BadHeader
        );
        assert_eq!(from_csv("x", "").unwrap_err(), CsvError::BadHeader);
    }

    #[test]
    fn arity_and_field_errors_carry_line_numbers() {
        let csv = format!("{HEADER}\n0,1,2,128,0.0,10\n1,2,3\n");
        assert_eq!(
            from_csv("x", &csv).unwrap_err(),
            CsvError::BadArity { line: 3 }
        );

        let csv = format!("{HEADER}\n0,one,2,128,0.0,10\n");
        assert_eq!(
            from_csv("x", &csv).unwrap_err(),
            CsvError::BadField {
                line: 2,
                column: "cpu_cores"
            }
        );
    }

    #[test]
    fn unsorted_arrivals_rejected() {
        let csv = format!("{HEADER}\n0,1,2,128,5.0,10\n1,1,2,128,4.0,10\n");
        assert_eq!(
            from_csv("x", &csv).unwrap_err(),
            CsvError::NotSorted { line: 3 }
        );
    }

    /// Regression: a NaN arrival used to slip through the `NotSorted`
    /// check (`NaN < last` is false, and every later comparison against
    /// the NaN "last arrival" is false too), silently accepting an
    /// unordered trace. It must now be rejected as a bad value.
    #[test]
    fn nan_arrival_no_longer_bypasses_sort_check() {
        let csv = format!("{HEADER}\n0,1,2,128,5.0,10\n1,1,2,128,NaN,10\n2,1,2,128,1.0,10\n");
        assert_eq!(
            from_csv("x", &csv).unwrap_err(),
            CsvError::BadValue {
                line: 3,
                column: "arrival"
            }
        );
    }

    #[test]
    fn non_finite_and_negative_times_rejected() {
        for (row, column) in [
            ("0,1,2,128,inf,10", "arrival"),
            ("0,1,2,128,-0.5,10", "arrival"),
            ("0,1,2,128,1.0,NaN", "lifetime"),
            ("0,1,2,128,1.0,-inf", "lifetime"),
            ("0,1,2,128,1.0,-3", "lifetime"),
        ] {
            let csv = format!("{HEADER}\n{row}\n");
            assert_eq!(
                from_csv("x", &csv).unwrap_err(),
                CsvError::BadValue { line: 2, column },
                "row: {row}"
            );
        }
        // Zero times are valid (a trace may start at t = 0).
        let csv = format!("{HEADER}\n0,1,2,128,0,0\n");
        assert!(from_csv("x", &csv).is_ok());
    }

    #[test]
    fn blank_lines_tolerated() {
        let csv = format!("{HEADER}\n0,1,2,128,1.0,10\n\n1,1,2,128,2.0,10\n");
        assert_eq!(from_csv("x", &csv).unwrap().len(), 2);
    }

    #[test]
    fn error_display_is_informative() {
        assert!(CsvError::BadHeader.to_string().contains(HEADER));
        assert!(CsvError::NotSorted { line: 7 }.to_string().contains('7'));
        let bad = CsvError::BadValue {
            line: 9,
            column: "arrival",
        }
        .to_string();
        assert!(bad.contains('9') && bad.contains("arrival") && bad.contains("finite"));
    }
}
