//! Azure-2017-like workloads, histogram-matched to Figure 6 of the paper.
//!
//! The paper evaluates on the first 3000/5000/7500 VMs of the 2017 public
//! Azure trace \[5\]. The trace is not redistributable, but Figure 6 prints
//! the exact 10-bin histogram counts of CPU cores and RAM per slice. This
//! module regenerates populations whose CPU and RAM **marginals match those
//! counts exactly** (a "deck" draw: each value appears precisely its
//! published number of times, in a seeded random order), with storage fixed
//! at 128 GB as the paper assumes.
//!
//! CPU bars sit at Azure's A-series core counts {1, 2, 4, 8}; RAM bars at
//! the Azure sizes {small (≤4 GB), 7, 14, 28, 56}. Small-RAM VMs are drawn
//! from {2, 4} GB — both round to one 4 GB RAM unit, so the choice cannot
//! affect scheduling. The paper does not describe the Azure arrival
//! process; we reuse the §5.1 Poisson/staircase process with a mean
//! interarrival of 12 time units, the fastest rate at which no VM drops on
//! any slice — matching the paper's "no VMs were dropped" observation
//! (see EXPERIMENTS.md "calibration").

use crate::shard::{self, ShardSource, Stream};
use crate::synthetic::SyntheticConfig;
use crate::vm::{VmId, VmRequest, Workload};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Exp};
use serde::{Deserialize, Serialize};

/// Which slice of the Azure trace to regenerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AzureSubset {
    /// First 3000 VMs (paper "Azure-3000").
    N3000,
    /// First 5000 VMs (paper "Azure-5000").
    N5000,
    /// First 7500 VMs (paper "Azure-7500").
    N7500,
}

impl AzureSubset {
    /// All three subsets in paper order.
    pub const ALL: [AzureSubset; 3] = [AzureSubset::N3000, AzureSubset::N5000, AzureSubset::N7500];

    /// Number of VMs in the slice.
    pub const fn len(self) -> u32 {
        match self {
            AzureSubset::N3000 => 3000,
            AzureSubset::N5000 => 5000,
            AzureSubset::N7500 => 7500,
        }
    }

    /// Slices are never empty (companion to [`AzureSubset::len`]).
    pub const fn is_empty(self) -> bool {
        false
    }

    /// Report label ("Azure-3000", …) matching the paper's x-axes.
    pub const fn label(self) -> &'static str {
        match self {
            AzureSubset::N3000 => "Azure-3000",
            AzureSubset::N5000 => "Azure-5000",
            AzureSubset::N7500 => "Azure-7500",
        }
    }

    /// Figure 6 CPU marginal: (cores, count) pairs. Counts sum to `len()`.
    pub const fn cpu_marginal(self) -> [(u32, u32); 4] {
        match self {
            AzureSubset::N3000 => [(1, 1326), (2, 1269), (4, 316), (8, 89)],
            AzureSubset::N5000 => [(1, 1931), (2, 2514), (4, 444), (8, 111)],
            AzureSubset::N7500 => [(1, 4153), (2, 2536), (4, 507), (8, 304)],
        }
    }

    /// Figure 6 RAM marginal: (GB, count) pairs; GB = 0 encodes the
    /// "small" bucket drawn from {2, 4} GB. Counts sum to `len()`.
    pub const fn ram_marginal(self) -> [(u32, u32); 5] {
        match self {
            AzureSubset::N3000 => [(0, 2591), (7, 299), (14, 15), (28, 17), (56, 78)],
            AzureSubset::N5000 => [(0, 4439), (7, 427), (14, 39), (28, 17), (56, 78)],
            AzureSubset::N7500 => [(0, 6682), (7, 488), (14, 203), (28, 19), (56, 108)],
        }
    }
}

/// Arrival/lifetime process parameters for the Azure-like workloads.
///
/// Defaults chosen so the paper's "no VMs were dropped" holds on the
/// Table 1 DDC for all three slices (see EXPERIMENTS.md "calibration").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AzureProcess {
    /// Mean interarrival, time units.
    pub interarrival_mean: f64,
    /// Lifetime staircase base, time units.
    pub lifetime_base: f64,
    /// Staircase increment per set.
    pub lifetime_step: f64,
    /// Requests per staircase set.
    pub lifetime_step_every: u32,
}

impl Default for AzureProcess {
    fn default() -> Self {
        AzureProcess {
            interarrival_mean: 12.0,
            lifetime_base: 6300.0,
            lifetime_step: 360.0,
            lifetime_step_every: 100,
        }
    }
}

/// Generate an Azure-like workload with the default process.
pub fn generate(subset: AzureSubset, seed: u64) -> Workload {
    generate_with(subset, seed, AzureProcess::default())
}

/// The Azure-like workload as a lazy [`ShardSource`].
///
/// Construction validates the process and performs the sequential deck
/// shuffles once (O(n) `u32`s retained for the source's lifetime — ~60 KB
/// at the largest slice, negligible next to a shard buffer); each shard's
/// per-VM draws then come from that shard's own RNG streams, so
/// [`ShardSource::shard_vms`] is a pure function of `(self, shard)` and
/// the streaming cursor reproduces the materialized trace byte-for-byte.
/// [`ShardSource::shard_arrivals`] walks only the arrivals stream — the
/// decks and the small-RAM coin never perturb arrival times.
pub struct AzureShards {
    subset: AzureSubset,
    deck_seed: u64,
    cpu_deck: Vec<u32>,
    ram_deck: Vec<u32>,
    staircase: SyntheticConfig,
    exp: Exp,
}

impl AzureShards {
    /// Validate `process`, draw the decks, and wrap everything as a shard
    /// source.
    ///
    /// # Panics
    /// On a non-finite/non-positive interarrival mean or a zero
    /// `lifetime_step_every` — the same contract as [`generate_with`].
    pub fn new(subset: AzureSubset, seed: u64, process: AzureProcess) -> Self {
        assert!(
            process.interarrival_mean.is_finite() && process.interarrival_mean > 0.0,
            "AzureProcess: interarrival_mean must be finite and > 0 (got {})",
            process.interarrival_mean
        );
        assert!(
            process.lifetime_step_every >= 1,
            "AzureProcess: lifetime_step_every must be at least 1 (got 0); \
             the staircase divides the request index by it"
        );
        let n = subset.len();
        let deck_seed = seed ^ 0xA2A2_5EED;
        // risa-lint: allow(rng_seed) — deck derivation predates and spans the shard streams; trace-v2 bytes are pinned by tests, so it must not move to stream_seed
        let mut rng = StdRng::seed_from_u64(deck_seed);

        // Deck draws: exact marginal counts, seeded order.
        let mut cpu_deck: Vec<u32> = subset
            .cpu_marginal()
            .iter()
            .flat_map(|&(v, c)| std::iter::repeat_n(v, c as usize))
            .collect();
        let mut ram_deck: Vec<u32> = subset
            .ram_marginal()
            .iter()
            .flat_map(|&(v, c)| std::iter::repeat_n(v, c as usize))
            .collect();
        debug_assert_eq!(cpu_deck.len(), n as usize);
        debug_assert_eq!(ram_deck.len(), n as usize);
        cpu_deck.shuffle(&mut rng);
        ram_deck.shuffle(&mut rng);

        let staircase = SyntheticConfig {
            lifetime_base: process.lifetime_base,
            lifetime_step: process.lifetime_step,
            lifetime_step_every: process.lifetime_step_every,
            ..SyntheticConfig::paper(0)
        };
        let exp = Exp::new(1.0 / process.interarrival_mean).expect("positive rate");
        AzureShards {
            subset,
            deck_seed,
            cpu_deck,
            ram_deck,
            staircase,
            exp,
        }
    }
}

impl ShardSource for AzureShards {
    fn total_vms(&self) -> u32 {
        self.subset.len()
    }

    fn label(&self) -> &str {
        self.subset.label()
    }

    fn shard_vms(&self, shard_idx: u32) -> (Vec<VmRequest>, f64) {
        let mut arrivals = shard::stream_rng(self.deck_seed, shard_idx, Stream::Arrivals);
        let mut resources = shard::stream_rng(self.deck_seed, shard_idx, Stream::Resources);
        let mut t = 0.0f64;
        let vms = self
            .shard_range(shard_idx)
            .map(|i| {
                t += self.exp.sample(&mut arrivals);
                let ram_gb = match self.ram_deck[i as usize] {
                    // "Small" bucket: 2 or 4 GB, both one RAM unit.
                    0 => {
                        if resources.gen_bool(0.5) {
                            2
                        } else {
                            4
                        }
                    }
                    gb => gb,
                };
                VmRequest {
                    id: VmId(i),
                    cpu_cores: self.cpu_deck[i as usize],
                    ram_gb,
                    storage_gb: 128,
                    arrival: t,
                    lifetime: self.staircase.lifetime_of(i),
                }
            })
            .collect();
        (vms, t)
    }

    fn shard_arrivals(&self, shard_idx: u32) -> (Vec<f64>, f64) {
        // Arrivals-stream-only pass: decks, the small-RAM coin, and the
        // staircase never touch the arrivals RNG, so the delta sequence is
        // bit-identical to the full pass above.
        let mut arrivals = shard::stream_rng(self.deck_seed, shard_idx, Stream::Arrivals);
        let mut t = 0.0f64;
        let times = self
            .shard_range(shard_idx)
            .map(|_| {
                t += self.exp.sample(&mut arrivals);
                t
            })
            .collect();
        (times, t)
    }
}

// Manual `Debug`: the decks are thousands of entries; summarize.
impl std::fmt::Debug for AzureShards {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AzureShards")
            .field("subset", &self.subset)
            .field("deck_seed", &self.deck_seed)
            .field("staircase", &self.staircase)
            .finish()
    }
}

/// Generate with an explicit arrival/lifetime process (ablation hook).
///
/// The deck shuffles stay sequential (they are O(n) swaps on one stream);
/// the per-VM draws — interarrival deltas and the small-RAM coin — are
/// sharded over the `rayon` pool exactly like the synthetic generator
/// (see [`crate::shard`]), so the output is byte-identical at any thread
/// count — and to draining a [`crate::StreamingShards`] cursor over
/// [`AzureShards`]. Resource draws come from a stream separate from the
/// arrival deltas, so changing the [`AzureProcess`] moves arrivals and
/// lifetimes only, never the per-VM CPU/RAM sequence.
pub fn generate_with(subset: AzureSubset, seed: u64, process: AzureProcess) -> Workload {
    let source = AzureShards::new(subset, seed, process);
    Workload::from_vms(subset.label(), shard::materialize(&source))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 6: the regenerated CPU marginals match the paper bin-for-bin.
    #[test]
    fn cpu_marginals_match_fig6_exactly() {
        for subset in AzureSubset::ALL {
            let w = generate(subset, 11);
            for (cores, expect) in subset.cpu_marginal() {
                let got = w.vms().iter().filter(|v| v.cpu_cores == cores).count();
                assert_eq!(got as u32, expect, "{}: {cores}-core count", subset.label());
            }
        }
    }

    /// Figure 6: likewise for RAM (the small bucket collapses 2/4 GB).
    #[test]
    fn ram_marginals_match_fig6_exactly() {
        for subset in AzureSubset::ALL {
            let w = generate(subset, 11);
            for (gb, expect) in subset.ram_marginal() {
                let got = if gb == 0 {
                    w.vms().iter().filter(|v| v.ram_gb <= 4).count()
                } else {
                    w.vms().iter().filter(|v| v.ram_gb == gb).count()
                };
                assert_eq!(got as u32, expect, "{}: {gb} GB count", subset.label());
            }
        }
    }

    #[test]
    fn marginal_counts_sum_to_subset_size() {
        for subset in AzureSubset::ALL {
            let cpu_sum: u32 = subset.cpu_marginal().iter().map(|&(_, c)| c).sum();
            let ram_sum: u32 = subset.ram_marginal().iter().map(|&(_, c)| c).sum();
            assert_eq!(cpu_sum, subset.len());
            assert_eq!(ram_sum, subset.len());
        }
    }

    #[test]
    fn storage_is_fixed_128() {
        let w = generate(AzureSubset::N3000, 1);
        assert!(w.vms().iter().all(|v| v.storage_gb == 128));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            generate(AzureSubset::N5000, 4),
            generate(AzureSubset::N5000, 4)
        );
        assert_ne!(
            generate(AzureSubset::N5000, 4),
            generate(AzureSubset::N5000, 5)
        );
    }

    #[test]
    fn arrivals_sorted_lifetimes_staircase() {
        let w = generate(AzureSubset::N7500, 2);
        assert!(w.vms().windows(2).all(|p| p[0].arrival <= p[1].arrival));
        assert_eq!(w.vms()[0].lifetime, 6300.0);
        assert_eq!(w.vms()[7499].lifetime, 6300.0 + 74.0 * 360.0);
    }

    #[test]
    fn every_vm_fits_one_box() {
        use risa_topology::TopologyConfig;
        for subset in AzureSubset::ALL {
            let w = generate(subset, 3);
            assert!(w.validate_fits(&TopologyConfig::paper()).is_ok());
        }
    }

    /// The paper's observation that storage is usually the most-contended
    /// resource for Azure workloads: unit demand of storage (2 units)
    /// exceeds CPU (≤2 units for ≤8 cores) and RAM (1 unit) for typical VMs.
    #[test]
    fn storage_dominates_unit_demand_for_typical_vms() {
        use risa_topology::{ResourceKind, TopologyConfig};
        let cfg = TopologyConfig::paper();
        let w = generate(AzureSubset::N3000, 8);
        let dominated = w
            .vms()
            .iter()
            .filter(|v| {
                let d = v.demand(&cfg);
                d.get(ResourceKind::Storage) >= d.get(ResourceKind::Cpu)
                    && d.get(ResourceKind::Storage) >= d.get(ResourceKind::Ram)
            })
            .count();
        assert!(
            dominated as f64 > 0.8 * w.len() as f64,
            "storage should dominate for most VMs, got {dominated}/{}",
            w.len()
        );
    }

    #[test]
    fn custom_process_changes_arrivals_only() {
        let fast = generate_with(
            AzureSubset::N3000,
            6,
            AzureProcess {
                interarrival_mean: 5.0,
                ..AzureProcess::default()
            },
        );
        let slow = generate_with(AzureSubset::N3000, 6, AzureProcess::default());
        let t_fast = fast.vms().last().unwrap().arrival;
        let t_slow = slow.vms().last().unwrap().arrival;
        assert!(t_fast < t_slow);
        // The property the name promises: the per-VM resource sequences are
        // identical — only the arrival process moved (resource draws come
        // from a stream independent of the arrival deltas).
        for (f, s) in fast.vms().iter().zip(slow.vms()) {
            assert_eq!(f.id, s.id);
            assert_eq!(f.cpu_cores, s.cpu_cores, "cpu sequence moved at {}", f.id);
            assert_eq!(f.ram_gb, s.ram_gb, "ram sequence moved at {}", f.id);
            assert_eq!(f.storage_gb, s.storage_gb);
        }
        assert!(fast
            .vms()
            .iter()
            .zip(slow.vms())
            .any(|(f, s)| f.arrival != s.arrival));
    }

    /// Regression: `lifetime_step_every == 0` used to reach the staircase
    /// division and die with an opaque divide-by-zero panic.
    #[test]
    #[should_panic(expected = "lifetime_step_every must be at least 1")]
    fn zero_lifetime_step_every_is_rejected_clearly() {
        let _ = generate_with(
            AzureSubset::N3000,
            1,
            AzureProcess {
                lifetime_step_every: 0,
                ..AzureProcess::default()
            },
        );
    }

    /// The sharded-generation contract: byte-identical output at any
    /// thread count (N7500 spans two shards).
    #[test]
    fn byte_identical_at_any_thread_count() {
        let one = rayon::with_num_threads(1, || generate(AzureSubset::N7500, 42));
        for threads in [2, 8] {
            let many = rayon::with_num_threads(threads, || generate(AzureSubset::N7500, 42));
            assert_eq!(many, one, "threads={threads}");
        }
    }

    /// The arrivals-only pass must be bit-identical to the arrival column
    /// of the full per-shard pass (decks and the small-RAM coin draw from
    /// other streams).
    #[test]
    fn shard_arrivals_match_full_pass_bit_for_bit() {
        let source = AzureShards::new(AzureSubset::N7500, 13, AzureProcess::default());
        assert_eq!(source.num_shards(), 2);
        for shard_idx in 0..source.num_shards() {
            let (vms, full_total) = source.shard_vms(shard_idx);
            let (times, cheap_total) = source.shard_arrivals(shard_idx);
            assert_eq!(full_total.to_bits(), cheap_total.to_bits());
            let full_times: Vec<f64> = vms.iter().map(|vm| vm.arrival).collect();
            assert_eq!(times, full_times, "shard {shard_idx}");
        }
    }

    /// A streaming cursor over [`AzureShards`] reproduces the materialized
    /// trace byte-for-byte.
    #[test]
    fn streaming_cursor_matches_materialized() {
        use crate::StreamingShards;
        use std::sync::Arc;
        let expect = generate(AzureSubset::N7500, 5);
        let mut cursor = StreamingShards::new(Arc::new(AzureShards::new(
            AzureSubset::N7500,
            5,
            AzureProcess::default(),
        )));
        let got: Vec<VmRequest> = std::iter::from_fn(|| cursor.next()).collect();
        assert_eq!(got, expect.vms());
    }
}
