//! # risa-workload — workload generators and traces for the RISA evaluation
//!
//! Two workload families drive the paper's evaluation (§5):
//!
//! 1. **Synthetic random** (§5.1): 2500 VMs, CPU ~ U{1..32} cores,
//!    RAM ~ U{1..32} GB, storage fixed at 128 GB, Poisson arrivals with a
//!    mean interarrival of 10 time units, and a *staircase* lifetime —
//!    6300 time units plus 360 per completed set of 100 requests.
//! 2. **Azure-2017-like** (§5.2): the paper slices the public Azure trace
//!    into its first 3000/5000/7500 VMs. The trace itself is not
//!    redistributable, but Figure 6 prints the exact per-bin histogram
//!    counts of CPU cores and RAM for each slice; [`azure`] regenerates
//!    VM populations with **exactly** those marginal counts (storage fixed
//!    at 128 GB, as the paper assumes). See DESIGN.md §2 for why this
//!    substitution preserves the scheduling-relevant structure.
//!
//! All generation is seeded and deterministic — and, since trace version 2,
//! **sharded**: every [`shard::SHARD_SIZE`] (= 4096) VMs draw from their own
//! `(seed, shard, stream)`-derived RNG streams and generate concurrently on
//! the `rayon` pool, with absolute arrivals stitched by a prefix sum over
//! per-shard interarrival totals (see [`shard`]). Shard boundaries are
//! fixed, never thread-count-dependent, so the same seed yields a
//! **byte-identical trace at any thread count** (`RISA_THREADS=1` and
//! `--jobs 8` agree exactly).
//!
//! Because every shard is independently derivable, traces can also be
//! consumed **lazily**: a generator exposed as a [`ShardSource`] produces
//! any single shard on demand, and a [`StreamingShards`] cursor walks the
//! workload holding at most two shards in memory — the one being consumed
//! plus the next one prefetching on the `rayon` pool. The cursor's running
//! offset performs the same sequential `f64` additions as the materialized
//! prefix sum, so streaming and materialized traces are byte-identical by
//! construction (see [`shard`] and the `risa-sim` streaming arrival
//! pipeline built on top).
//!
//! > **Trace-version note:** the sharded stream replaced the legacy
//! > single-stream generator as the canonical trace. Distributions and all
//! > Figure 6 marginals are unchanged, but a given seed produces a
//! > *different* (equally valid) trace than pre-shard versions — regenerate
//! > any stored traces rather than comparing across versions.
//!
//! ```
//! use risa_workload::{SyntheticConfig, AzureSubset, Workload};
//!
//! let syn = Workload::synthetic(&SyntheticConfig::paper(42));
//! assert_eq!(syn.len(), 2500);
//!
//! let az = Workload::azure(AzureSubset::N3000, 7);
//! assert_eq!(az.len(), 3000);
//! // Figure 6(a): exactly 1326 single-core VMs in Azure-3000.
//! assert_eq!(az.vms().iter().filter(|v| v.cpu_cores == 1).count(), 1326);
//! ```

#![warn(missing_docs)]

pub mod azure;
pub mod csv;
pub mod ops;
pub mod shard;
mod stats;
mod streaming;
mod synthetic;
mod trace;
mod vm;

pub use azure::{AzureShards, AzureSubset};
pub use shard::ShardSource;
pub use stats::WorkloadStats;
pub use streaming::StreamingShards;
pub use synthetic::{LifetimeModel, SyntheticConfig, SyntheticShards};
pub use trace::{CsvFileShards, TraceFileError, TraceShards};
pub use vm::{VmId, VmRequest, Workload};
