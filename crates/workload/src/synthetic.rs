//! The paper's synthetic random workload (§5.1).
//!
//! > "A VM can have a random amount of CPU cores from 1 to 32 cores and a
//! > random amount of RAM from 1 to 32 GB. Storage for every VM is 128 GB.
//! > Requests are produced dynamically based on a Poisson distribution with
//! > a mean interarrival period of 10 time units. The VM life cycle begins
//! > at 6300 time units, with an increment of 360 time units for each set
//! > of 100 requests. A total of 2500 VMs were generated."

use crate::shard::{self, ShardSource, Stream};
use crate::vm::{VmId, VmRequest, Workload};
use rand::Rng;
use rand_distr::{Distribution, Exp};
use serde::{Deserialize, Serialize};

/// How VM lifetimes are drawn.
///
/// The paper uses the deterministic staircase (§5.1); the other models are
/// ablation hooks showing RISA's advantage is not an artifact of the
/// staircase (`cargo bench -p risa-bench --bench ablation`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum LifetimeModel {
    /// The paper's staircase: `base + step × ⌊i / step_every⌋`.
    #[default]
    Staircase,
    /// I.i.d. exponential lifetimes with the given mean (time units).
    Exponential {
        /// Mean lifetime.
        mean: f64,
    },
    /// Every VM lives exactly this long.
    Fixed {
        /// The lifetime.
        value: f64,
    },
}

/// Parameters of the synthetic random workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Number of VM requests (paper: 2500).
    pub num_vms: u32,
    /// Mean interarrival period, time units (paper: 10; Poisson process ⇒
    /// exponential interarrival).
    pub interarrival_mean: f64,
    /// Inclusive CPU range in cores (paper: 1..=32).
    pub cpu_cores: (u32, u32),
    /// Inclusive RAM range in GB (paper: 1..=32).
    pub ram_gb: (u32, u32),
    /// Fixed storage per VM in GB (paper: 128).
    pub storage_gb: u32,
    /// Initial lifetime, time units (paper: 6300).
    pub lifetime_base: f64,
    /// Lifetime increment per completed request set (paper: 360).
    pub lifetime_step: f64,
    /// Requests per set (paper: 100).
    pub lifetime_step_every: u32,
    /// Lifetime model (paper: the staircase; see [`LifetimeModel`]).
    pub lifetime_model: LifetimeModel,
    /// RNG seed; identical seeds reproduce the workload bit-for-bit.
    pub seed: u64,
}

impl SyntheticConfig {
    /// The paper's §5.1 parameters with a chosen seed.
    pub fn paper(seed: u64) -> Self {
        SyntheticConfig {
            num_vms: 2500,
            interarrival_mean: 10.0,
            cpu_cores: (1, 32),
            ram_gb: (1, 32),
            storage_gb: 128,
            lifetime_base: 6300.0,
            lifetime_step: 360.0,
            lifetime_step_every: 100,
            lifetime_model: LifetimeModel::Staircase,
            seed,
        }
    }

    /// A scaled-down variant for fast tests and examples.
    pub fn small(num_vms: u32, seed: u64) -> Self {
        SyntheticConfig {
            num_vms,
            ..SyntheticConfig::paper(seed)
        }
    }

    /// Lifetime of the `i`-th request (0-based) under the staircase rule.
    pub fn lifetime_of(&self, i: u32) -> f64 {
        self.lifetime_base + self.lifetime_step * (i / self.lifetime_step_every) as f64
    }
}

/// The synthetic workload as a lazy [`ShardSource`]: any shard can be
/// generated on its own from the config's `(seed, shard, stream)` RNGs.
///
/// Construction validates the config once (the same panics as
/// `generate`); [`ShardSource::shard_vms`] then runs the per-shard
/// generation code shared with the materialized path, and
/// [`ShardSource::shard_arrivals`] is overridden to walk only the
/// [`Stream::Arrivals`] stream — arrival deltas never depend on resource
/// draws, so the cheap pass is bit-identical to the full one's arrival
/// column (asserted in this module's tests).
#[derive(Debug, Clone, Copy)]
pub struct SyntheticShards {
    cfg: SyntheticConfig,
    exp: Exp,
    lifetime_exp: Option<Exp>,
}

impl SyntheticShards {
    /// Validate `cfg` and wrap it as a shard source.
    ///
    /// # Panics
    /// On non-finite/non-positive interarrival or lifetime parameters,
    /// inverted resource ranges, or a zero `lifetime_step_every` — the
    /// same contract as `generate`.
    pub fn new(cfg: &SyntheticConfig) -> Self {
        assert!(
            cfg.interarrival_mean.is_finite() && cfg.interarrival_mean > 0.0,
            "SyntheticConfig: interarrival_mean must be finite and > 0 (got {})",
            cfg.interarrival_mean
        );
        assert!(cfg.cpu_cores.0 >= 1 && cfg.cpu_cores.0 <= cfg.cpu_cores.1);
        assert!(cfg.ram_gb.0 >= 1 && cfg.ram_gb.0 <= cfg.ram_gb.1);
        assert!(
            cfg.lifetime_step_every >= 1,
            "SyntheticConfig: lifetime_step_every must be at least 1 (got 0); \
             the staircase divides the request index by it"
        );
        match cfg.lifetime_model {
            LifetimeModel::Staircase => {}
            LifetimeModel::Exponential { mean } => {
                assert!(
                    mean.is_finite() && mean > 0.0,
                    "SyntheticConfig: exponential lifetime mean must be finite and > 0 (got {mean})"
                );
            }
            LifetimeModel::Fixed { value } => {
                assert!(
                    value.is_finite() && value >= 0.0,
                    "SyntheticConfig: fixed lifetime must be finite and non-negative (got {value})"
                );
            }
        }
        let exp = Exp::new(1.0 / cfg.interarrival_mean).expect("positive rate");
        let lifetime_exp = match cfg.lifetime_model {
            LifetimeModel::Exponential { mean } => {
                Some(Exp::new(1.0 / mean).expect("positive rate"))
            }
            _ => None,
        };
        SyntheticShards {
            cfg: *cfg,
            exp,
            lifetime_exp,
        }
    }
}

impl ShardSource for SyntheticShards {
    fn total_vms(&self) -> u32 {
        self.cfg.num_vms
    }

    fn label(&self) -> &str {
        "synthetic"
    }

    fn shard_vms(&self, shard_idx: u32) -> (Vec<VmRequest>, f64) {
        let cfg = &self.cfg;
        let mut arrivals = shard::stream_rng(cfg.seed, shard_idx, Stream::Arrivals);
        let mut resources = shard::stream_rng(cfg.seed, shard_idx, Stream::Resources);
        let mut t = 0.0f64;
        let vms = self
            .shard_range(shard_idx)
            .map(|i| {
                t += self.exp.sample(&mut arrivals);
                let lifetime = match cfg.lifetime_model {
                    LifetimeModel::Staircase => cfg.lifetime_of(i),
                    LifetimeModel::Exponential { .. } => self
                        .lifetime_exp
                        .expect("hoisted above")
                        .sample(&mut resources),
                    LifetimeModel::Fixed { value } => value,
                };
                VmRequest {
                    id: VmId(i),
                    cpu_cores: resources.gen_range(cfg.cpu_cores.0..=cfg.cpu_cores.1),
                    ram_gb: resources.gen_range(cfg.ram_gb.0..=cfg.ram_gb.1),
                    storage_gb: cfg.storage_gb,
                    arrival: t,
                    lifetime,
                }
            })
            .collect();
        (vms, t)
    }

    fn shard_arrivals(&self, shard_idx: u32) -> (Vec<f64>, f64) {
        // Arrivals-stream-only pass: the resource RNG is never touched, so
        // the delta sequence — and therefore every time — is bit-identical
        // to the full pass above.
        let mut arrivals = shard::stream_rng(self.cfg.seed, shard_idx, Stream::Arrivals);
        let mut t = 0.0f64;
        let times = self
            .shard_range(shard_idx)
            .map(|_| {
                t += self.exp.sample(&mut arrivals);
                t
            })
            .collect();
        (times, t)
    }
}

/// Generate the workload described by `cfg`.
///
/// Generation is sharded: every [`shard::SHARD_SIZE`] VMs draw from their
/// own `(seed, shard)`-derived RNG streams and run concurrently on the
/// `rayon` pool, with absolute arrivals stitched by a prefix sum over
/// per-shard interarrival totals (see [`crate::shard`]). The output is
/// byte-identical at any thread count — and to draining a
/// [`crate::StreamingShards`] cursor over [`SyntheticShards`], which runs
/// the same per-shard code lazily.
pub fn generate(cfg: &SyntheticConfig) -> Workload {
    let source = SyntheticShards::new(cfg);
    Workload::from_vms("synthetic", shard::materialize(&source))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape() {
        let w = generate(&SyntheticConfig::paper(1));
        assert_eq!(w.len(), 2500);
        for vm in w.vms() {
            assert!((1..=32).contains(&vm.cpu_cores));
            assert!((1..=32).contains(&vm.ram_gb));
            assert_eq!(vm.storage_gb, 128);
        }
        // Arrivals strictly ordered and positive.
        assert!(w.vms().windows(2).all(|p| p[0].arrival <= p[1].arrival));
        assert!(w.vms()[0].arrival > 0.0);
    }

    #[test]
    fn lifetime_staircase() {
        let cfg = SyntheticConfig::paper(1);
        assert_eq!(cfg.lifetime_of(0), 6300.0);
        assert_eq!(cfg.lifetime_of(99), 6300.0);
        assert_eq!(cfg.lifetime_of(100), 6660.0);
        assert_eq!(cfg.lifetime_of(250), 6300.0 + 2.0 * 360.0);
        // Last of 2500: floor(2499/100) = 24 steps ⇒ 14 940 time units.
        assert_eq!(cfg.lifetime_of(2499), 6300.0 + 24.0 * 360.0);
        let w = generate(&cfg);
        assert_eq!(w.vms()[2499].lifetime, 14_940.0);
    }

    #[test]
    fn mean_interarrival_approximates_config() {
        let w = generate(&SyntheticConfig::paper(7));
        let total = w.vms().last().unwrap().arrival;
        let mean = total / w.len() as f64;
        // Exponential with mean 10 over 2500 samples: ±5 % is generous.
        assert!((mean - 10.0).abs() < 0.5, "mean interarrival {mean}");
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let a = generate(&SyntheticConfig::paper(42));
        let b = generate(&SyntheticConfig::paper(42));
        let c = generate(&SyntheticConfig::paper(43));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_cpu_covers_range() {
        let w = generate(&SyntheticConfig::paper(3));
        let mut seen = [false; 33];
        for vm in w.vms() {
            seen[vm.cpu_cores as usize] = true;
        }
        // With 2500 draws over 32 values, every value appears w.h.p.
        assert!(seen[1..=32].iter().all(|&s| s));
    }

    #[test]
    fn small_config_scales_down() {
        let w = generate(&SyntheticConfig::small(50, 9));
        assert_eq!(w.len(), 50);
        assert_eq!(w.vms()[49].lifetime, 6300.0);
    }

    #[test]
    fn every_vm_fits_one_box() {
        use risa_topology::TopologyConfig;
        let w = generate(&SyntheticConfig::paper(5));
        assert!(w.validate_fits(&TopologyConfig::paper()).is_ok());
    }

    #[test]
    fn exponential_lifetimes_have_requested_mean() {
        let cfg = SyntheticConfig {
            lifetime_model: LifetimeModel::Exponential { mean: 5000.0 },
            ..SyntheticConfig::paper(8)
        };
        let w = generate(&cfg);
        let mean: f64 = w.vms().iter().map(|v| v.lifetime).sum::<f64>() / w.len() as f64;
        assert!((mean - 5000.0).abs() < 300.0, "mean lifetime {mean}");
        // Genuinely random: lifetimes differ.
        assert!(w.vms()[0].lifetime != w.vms()[1].lifetime);
    }

    #[test]
    fn fixed_lifetimes_are_constant() {
        let cfg = SyntheticConfig {
            lifetime_model: LifetimeModel::Fixed { value: 1234.0 },
            ..SyntheticConfig::small(50, 8)
        };
        let w = generate(&cfg);
        assert!(w.vms().iter().all(|v| v.lifetime == 1234.0));
    }

    /// Regression: `lifetime_step_every == 0` used to reach the staircase
    /// division and die with an opaque divide-by-zero panic.
    #[test]
    #[should_panic(expected = "lifetime_step_every must be at least 1")]
    fn zero_lifetime_step_every_is_rejected_clearly() {
        let cfg = SyntheticConfig {
            lifetime_step_every: 0,
            ..SyntheticConfig::small(10, 1)
        };
        let _ = generate(&cfg);
    }

    /// The sharded-generation contract: byte-identical output at any
    /// thread count, for a trace spanning several shards.
    #[test]
    fn byte_identical_at_any_thread_count() {
        let cfg = SyntheticConfig::small(3 * crate::shard::SHARD_SIZE + 123, 42);
        let one = rayon::with_num_threads(1, || generate(&cfg));
        for threads in [2, 8] {
            let many = rayon::with_num_threads(threads, || generate(&cfg));
            assert_eq!(many, one, "threads={threads}");
        }
    }

    /// Arrivals stay monotone across shard boundaries after stitching.
    #[test]
    fn arrivals_monotone_across_shard_boundaries() {
        let cfg = SyntheticConfig::small(2 * crate::shard::SHARD_SIZE + 7, 5);
        let w = generate(&cfg);
        assert!(w.vms().windows(2).all(|p| p[0].arrival <= p[1].arrival));
        // The staircase is index-based, so it crosses shards untouched.
        let i = crate::shard::SHARD_SIZE; // first VM of shard 1
        assert_eq!(w.vms()[i as usize].lifetime, cfg.lifetime_of(i));
    }

    #[test]
    fn default_model_is_the_paper_staircase() {
        assert_eq!(LifetimeModel::default(), LifetimeModel::Staircase);
        let w = generate(&SyntheticConfig::paper(8));
        assert_eq!(w.vms()[0].lifetime, 6300.0);
        assert_eq!(w.vms()[150].lifetime, 6660.0);
    }

    /// The arrivals-only pass must be bit-identical to the arrival column
    /// of the full per-shard pass — for every lifetime model, including
    /// the one whose lifetimes sample the *resources* stream.
    #[test]
    fn shard_arrivals_match_full_pass_bit_for_bit() {
        let models = [
            LifetimeModel::Staircase,
            LifetimeModel::Exponential { mean: 5000.0 },
            LifetimeModel::Fixed { value: 7.0 },
        ];
        for model in models {
            let cfg = SyntheticConfig {
                lifetime_model: model,
                ..SyntheticConfig::small(2 * crate::shard::SHARD_SIZE + 50, 21)
            };
            let source = SyntheticShards::new(&cfg);
            for shard_idx in 0..source.num_shards() {
                let (vms, full_total) = source.shard_vms(shard_idx);
                let (times, cheap_total) = source.shard_arrivals(shard_idx);
                assert_eq!(full_total.to_bits(), cheap_total.to_bits(), "{model:?}");
                let full_times: Vec<f64> = vms.iter().map(|vm| vm.arrival).collect();
                assert_eq!(times, full_times, "{model:?} shard {shard_idx}");
            }
        }
    }
}
