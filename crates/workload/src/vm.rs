//! VM requests and workload containers.

use risa_topology::{TopologyConfig, UnitDemand};
use serde::{Deserialize, Serialize};

/// Dense identifier of a VM within one workload (its arrival rank).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct VmId(pub u32);

impl std::fmt::Display for VmId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// One VM request: natural-unit resource demands plus its arrival time and
/// lifetime in paper time units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmRequest {
    /// Arrival rank / identifier.
    pub id: VmId,
    /// CPU demand in cores.
    pub cpu_cores: u32,
    /// RAM demand in GB.
    pub ram_gb: u32,
    /// Storage demand in GB (the paper fixes this at 128 GB).
    pub storage_gb: u32,
    /// Arrival time, paper time units.
    pub arrival: f64,
    /// Lifetime, paper time units (1 unit ≡ 1 s in the energy model).
    pub lifetime: f64,
}

impl VmRequest {
    /// Unit-granular demand under `cfg`'s unit sizes.
    pub fn demand(&self, cfg: &TopologyConfig) -> UnitDemand {
        UnitDemand::from_natural(&cfg.units, self.cpu_cores, self.ram_gb, self.storage_gb)
    }

    /// Departure time (arrival + lifetime).
    pub fn departure(&self) -> f64 {
        self.arrival + self.lifetime
    }
}

/// A full, ordered workload (VMs sorted by arrival).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    name: String,
    vms: Vec<VmRequest>,
}

impl Workload {
    /// Wrap a VM list, asserting arrival order and dense ids.
    pub fn from_vms(name: impl Into<String>, vms: Vec<VmRequest>) -> Self {
        debug_assert!(
            vms.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "workload must be sorted by arrival"
        );
        Workload {
            name: name.into(),
            vms,
        }
    }

    /// Generate the paper's synthetic random workload (§5.1).
    ///
    /// Sharded across the `rayon` pool; byte-identical at any thread
    /// count (see [`crate::shard`]).
    pub fn synthetic(cfg: &crate::synthetic::SyntheticConfig) -> Self {
        crate::synthetic::generate(cfg)
    }

    /// Generate an Azure-2017-like workload matched to Figure 6 (§5.2).
    ///
    /// Deck shuffles are sequential; per-VM draws are sharded across the
    /// `rayon` pool; byte-identical at any thread count (see
    /// [`crate::shard`]).
    pub fn azure(subset: crate::azure::AzureSubset, seed: u64) -> Self {
        crate::azure::generate(subset, seed)
    }

    /// Workload label used in reports ("synthetic", "Azure-3000", …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of VM requests.
    pub fn len(&self) -> usize {
        self.vms.len()
    }

    /// True when the workload holds no requests.
    pub fn is_empty(&self) -> bool {
        self.vms.is_empty()
    }

    /// The request list, ordered by arrival.
    pub fn vms(&self) -> &[VmRequest] {
        &self.vms
    }

    /// Check the paper's standing assumption (§2) that every VM fits in a
    /// single box of each resource; returns the first violator if any.
    pub fn validate_fits(&self, cfg: &TopologyConfig) -> Result<(), VmRequest> {
        let cap = cfg.box_capacity_units();
        for vm in &self.vms {
            if vm.demand(cfg).max_units() > cap {
                return Err(*vm);
            }
        }
        Ok(())
    }

    /// Serialize to pretty JSON (trace exchange format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("workload serializes")
    }

    /// Parse a workload back from [`Workload::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm(id: u32, arrival: f64) -> VmRequest {
        VmRequest {
            id: VmId(id),
            cpu_cores: 8,
            ram_gb: 16,
            storage_gb: 128,
            arrival,
            lifetime: 6300.0,
        }
    }

    #[test]
    fn demand_uses_topology_units() {
        let cfg = TopologyConfig::paper();
        let d = vm(0, 0.0).demand(&cfg);
        assert_eq!(d, UnitDemand::new(2, 4, 2));
    }

    #[test]
    fn departure_is_arrival_plus_lifetime() {
        assert_eq!(vm(0, 100.0).departure(), 6400.0);
    }

    #[test]
    fn workload_accessors() {
        let w = Workload::from_vms("test", vec![vm(0, 0.0), vm(1, 5.0)]);
        assert_eq!(w.name(), "test");
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
        assert_eq!(w.vms()[1].arrival, 5.0);
    }

    #[test]
    fn validate_fits_catches_oversized_vm() {
        let cfg = TopologyConfig::paper();
        let mut big = vm(0, 0.0);
        big.ram_gb = 513; // 129 units > 128-unit box
        let w = Workload::from_vms("bad", vec![big]);
        assert_eq!(w.validate_fits(&cfg).unwrap_err().id, VmId(0));

        let ok = Workload::from_vms("ok", vec![vm(0, 0.0)]);
        assert!(ok.validate_fits(&cfg).is_ok());
    }

    #[test]
    fn json_roundtrip() {
        let w = Workload::from_vms("rt", vec![vm(0, 0.0), vm(1, 2.5)]);
        let back = Workload::from_json(&w.to_json()).unwrap();
        assert_eq!(w, back);
    }
}
