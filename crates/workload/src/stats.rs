//! Workload characterization (the numbers behind Figure 6's narrative).

use crate::vm::Workload;
use serde::{Deserialize, Serialize};

/// Summary statistics of one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadStats {
    /// Number of VM requests.
    pub count: usize,
    /// Mean CPU demand, cores.
    pub mean_cpu_cores: f64,
    /// Mean RAM demand, GB.
    pub mean_ram_gb: f64,
    /// Mean storage demand, GB.
    pub mean_storage_gb: f64,
    /// Fraction of "small" VMs (≤2 cores and ≤4 GB), the quantity the
    /// paper uses to contrast Azure-3000/5000/7500 (§5.2).
    pub small_vm_fraction: f64,
    /// Mean lifetime, time units.
    pub mean_lifetime: f64,
    /// Time of the last arrival.
    pub last_arrival: f64,
    /// Latest departure across all VMs (simulation horizon).
    pub horizon: f64,
    /// Σ (lifetime) — total VM-time, the numerator of the expected
    /// steady-state concurrency `vm_time / horizon`.
    pub total_vm_time: f64,
}

impl WorkloadStats {
    /// Compute statistics for `w`.
    pub fn of(w: &Workload) -> Self {
        let n = w.len().max(1) as f64;
        let mut cpu = 0.0;
        let mut ram = 0.0;
        let mut sto = 0.0;
        let mut life = 0.0;
        let mut small = 0usize;
        let mut last_arrival = 0.0f64;
        let mut horizon = 0.0f64;
        for vm in w.vms() {
            cpu += vm.cpu_cores as f64;
            ram += vm.ram_gb as f64;
            sto += vm.storage_gb as f64;
            life += vm.lifetime;
            if vm.cpu_cores <= 2 && vm.ram_gb <= 4 {
                small += 1;
            }
            last_arrival = last_arrival.max(vm.arrival);
            horizon = horizon.max(vm.departure());
        }
        WorkloadStats {
            count: w.len(),
            mean_cpu_cores: cpu / n,
            mean_ram_gb: ram / n,
            mean_storage_gb: sto / n,
            small_vm_fraction: small as f64 / n,
            mean_lifetime: life / n,
            last_arrival,
            horizon,
            total_vm_time: life,
        }
    }

    /// Expected average concurrency over the run: `Σ lifetime / horizon`.
    pub fn mean_concurrency(&self) -> f64 {
        if self.horizon <= 0.0 {
            0.0
        } else {
            self.total_vm_time / self.horizon
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::azure::AzureSubset;
    use crate::synthetic::SyntheticConfig;

    #[test]
    fn synthetic_means_match_uniform_expectation() {
        let w = Workload::synthetic(&SyntheticConfig::paper(21));
        let s = WorkloadStats::of(&w);
        assert_eq!(s.count, 2500);
        // U{1..32}: mean 16.5; allow sampling noise.
        assert!(
            (s.mean_cpu_cores - 16.5).abs() < 0.6,
            "{}",
            s.mean_cpu_cores
        );
        assert!((s.mean_ram_gb - 16.5).abs() < 0.6);
        assert_eq!(s.mean_storage_gb, 128.0);
        // Staircase mean: 6300 + 360 * mean(step) where steps 0..=24.
        assert!((s.mean_lifetime - (6300.0 + 360.0 * 12.0)).abs() < 360.0);
        assert!(s.horizon > s.last_arrival);
    }

    /// §5.2: "Azure-7500 has the greatest percentage of small VMs",
    /// Azure-3000 the lowest.
    #[test]
    fn small_vm_fraction_ordering_matches_paper() {
        let f = |s: AzureSubset| WorkloadStats::of(&Workload::azure(s, 17)).small_vm_fraction;
        let (f3, f5, f7) = (
            f(AzureSubset::N3000),
            f(AzureSubset::N5000),
            f(AzureSubset::N7500),
        );
        assert!(f3 < f5, "Azure-3000 ({f3}) < Azure-5000 ({f5})");
        assert!(f5 < f7, "Azure-5000 ({f5}) < Azure-7500 ({f7})");
    }

    #[test]
    fn azure_cpu_means_are_small() {
        // §5.2: "the CPU requirement is generally low" vs synthetic 16.5.
        let s = WorkloadStats::of(&Workload::azure(AzureSubset::N3000, 17));
        assert!(s.mean_cpu_cores < 3.0);
        assert!(s.mean_ram_gb < 8.0);
    }

    #[test]
    fn mean_concurrency_sane() {
        let w = Workload::synthetic(&SyntheticConfig::paper(4));
        let s = WorkloadStats::of(&w);
        let c = s.mean_concurrency();
        // ~2500 VMs × ~10 620 u lifetime over a ~40 000 u horizon ≈ 650.
        assert!(c > 400.0 && c < 900.0, "concurrency {c}");
    }

    #[test]
    fn empty_workload_is_safe() {
        let w = Workload::from_vms("empty", vec![]);
        let s = WorkloadStats::of(&w);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_concurrency(), 0.0);
    }
}
