//! # risa-bench — criterion benches regenerating the paper's evaluation
//!
//! All benches live under `benches/` (this library is intentionally
//! empty); each file regenerates one paper artifact or scaling study:
//!
//! * `fig05`–`fig12` — one bench per evaluation figure (§5), printing the
//!   paper-style table first and then timing the hot kernel behind it
//!   (e.g. one schedule/release cycle at the paper's ~60 % operating
//!   point for the Figure 11/12 execution-time stories).
//! * `scale` — throughput vs cluster size (12 → 768 racks) on the shared
//!   `risa_sched::cycle::ScheduleCycle` treadmill, the acceptance bench
//!   for the incremental `PlacementIndex`.
//! * `ablation`, `micro`, `tables` — calibration sweeps, kernel
//!   microbenches, and table/report rendering.
//!
//! Replication setup (warming treadmills, pre-loading per-algorithm
//! clusters) fans out over the `rayon` thread pool — `RISA_THREADS=1`
//! forces it sequential — while every *measured* section stays on one
//! thread so samples are uncontended. The vendored criterion stand-in
//! honours `RISA_BENCH_MS` to shorten measurement windows in CI.

#![warn(missing_docs)]
