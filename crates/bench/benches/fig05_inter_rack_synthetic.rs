//! Figure 5: inter-rack VM assignments on the synthetic random workload.
//!
//! Prints the regenerated Figure 5 table (paper: NULB 255, NALB 255,
//! RISA 7, RISA-BF 2), then benchmarks the full 2500-VM simulation per
//! algorithm.

use criterion::{BenchmarkId, Criterion};
use risa_sim::{experiments, Algorithm, SimulationBuilder, WorkloadSpec};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig05_full_sim_2500vms");
    g.sample_size(10);
    for algo in Algorithm::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(algo), &algo, |b, &algo| {
            b.iter(|| {
                SimulationBuilder::new()
                    .algorithm(algo)
                    .workload(WorkloadSpec::synthetic_paper(42))
                    .faults_off()
                    .build()
                    .run()
            });
        });
    }
    g.finish();
}

fn main() {
    println!("{}", risa_sim::host_info());
    println!("{}", experiments::fig5(42));
    println!("paper: NULB 255, NALB 255, RISA 7, RISA-BF 2 inter-rack; CPU 64.66% RAM 65.11% STO 31.72%\n");

    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
