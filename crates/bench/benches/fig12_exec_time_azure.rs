//! Figure 12: scheduler execution time on the Azure workloads (paper:
//! Azure-7500 — NALB 15 929 s, NULB 10 361 s, RISA 3 679 s, RISA-BF
//! 4 013 s; RISA 2.81×/4.33× faster than NULB/NALB). We benchmark one
//! schedule+release cycle with an Azure-typical small VM on a cluster
//! pre-loaded with Azure-like demands.

use criterion::{BenchmarkId, Criterion};
use rayon::prelude::*;
use risa_network::{NetworkConfig, NetworkState};
use risa_sched::{Algorithm, ScheduleOutcome, Scheduler};
use risa_sim::experiments;
use risa_topology::{Cluster, TopologyConfig, UnitDemand};

fn loaded_state(algo: Algorithm) -> (Cluster, NetworkState, Scheduler) {
    let mut cluster = Cluster::new(TopologyConfig::paper());
    let mut net = NetworkState::new(NetworkConfig::paper(), &cluster);
    let mut sched = Scheduler::new(algo, &cluster);
    // Azure-typical VM: 1-2 cores, small RAM, 128 GB storage; load until
    // storage (the contended resource) reaches ~60 %.
    let d = UnitDemand::new(1, 1, 2);
    for _ in 0..1400 {
        match sched.schedule(&mut cluster, &mut net, &d) {
            ScheduleOutcome::Assigned(_) => {}
            ScheduleOutcome::Dropped(r) => panic!("preload dropped: {r:?}"),
        }
    }
    (cluster, net, sched)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_schedule_one_azure_vm");
    let d = UnitDemand::new(1, 1, 2);
    // Pre-load all four per-algorithm clusters concurrently (the
    // replication setup, ~hundreds of schedules each); the measured
    // schedule/release cycles below stay sequential and uncontended.
    let states: Vec<(Cluster, NetworkState, Scheduler)> = Algorithm::ALL
        .par_iter()
        .map(|&algo| loaded_state(algo))
        .collect();
    for (algo, state) in Algorithm::ALL.into_iter().zip(states) {
        let (mut cluster, mut net, mut sched) = state;
        g.bench_with_input(BenchmarkId::from_parameter(algo), &algo, |b, _| {
            b.iter(|| match sched.schedule(&mut cluster, &mut net, &d) {
                ScheduleOutcome::Assigned(a) => Scheduler::release(&mut cluster, &mut net, &a),
                ScheduleOutcome::Dropped(r) => panic!("dropped: {r:?}"),
            });
        });
    }
    g.finish();
}

fn main() {
    // Spawn the resident pool before anything is timed: the replication
    // setup and the fig12 matrix reuse the same parked workers.
    rayon::warm_up();
    println!("{}", risa_sim::host_info());
    println!("{}", experiments::fig12(2023));
    println!("paper Azure-7500: NALB 15929 s > NULB 10361 s > RISA-BF 4013 s > RISA 3679 s");
    println!("(RISA 2.81x vs NULB, 4.33x vs NALB — the ordering is the result)\n");

    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
