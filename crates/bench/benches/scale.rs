//! Scheduling throughput vs cluster size — the scaling study the
//! incremental `PlacementIndex` exists for.
//!
//! Sweeps racks ∈ {12, 48, 192, 768} for all four algorithms, measuring
//! steady-state schedule/release cycles (the shared
//! `risa_sched::cycle::ScheduleCycle` treadmill, so `risa-cli bench` and
//! this bench measure the same workload). With the seed's linear scans the
//! per-VM cost grew linearly in racks; with the index it stays near-flat
//! (the acceptance bar: 768-rack throughput within 5× of 12-rack).

use criterion::{BenchmarkId, Criterion};
use rayon::prelude::*;
use risa_sched::cycle::ScheduleCycle;
use risa_sched::Algorithm;

const RACK_SWEEP: [u16; 4] = [12, 48, 192, 768];

fn bench_scale(c: &mut Criterion) {
    // Build and warm all 16 (algorithm × racks) treadmills concurrently —
    // the replication setup dominates total bench time at 768 racks.
    // Measurement below stays sequential so samples are uncontended.
    let cells: Vec<(Algorithm, u16)> = Algorithm::ALL
        .iter()
        .flat_map(|&algo| RACK_SWEEP.iter().map(move |&racks| (algo, racks)))
        .collect();
    let mut warmed: Vec<((Algorithm, u16), ScheduleCycle)> = cells
        .par_iter()
        .map(|&(algo, racks)| {
            let mut cycle = ScheduleCycle::new(racks, algo);
            // Warm to the steady-state window before measuring.
            for _ in 0..512 {
                cycle.step();
            }
            ((algo, racks), cycle)
        })
        .collect();
    for algo in Algorithm::ALL {
        let mut g = c.benchmark_group(format!("scale_{algo}"));
        g.sample_size(10);
        for racks in RACK_SWEEP {
            let slot = warmed
                .iter()
                .position(|&((a, r), _)| a == algo && r == racks)
                .expect("every cell was warmed");
            let (_, mut cycle) = warmed.swap_remove(slot);
            g.bench_with_input(BenchmarkId::from_parameter(racks), &racks, |b, _| {
                b.iter(|| cycle.step())
            });
        }
        g.finish();
    }
}

fn main() {
    // Spawn the resident pool before the (timed-adjacent) warm-up fan-out.
    rayon::warm_up();
    println!("schedule/release cycle time vs cluster size (paper rack shape)");
    let mut c = Criterion::default().configure_from_args();
    bench_scale(&mut c);
    c.final_summary();
}
