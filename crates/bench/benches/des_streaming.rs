//! Streaming arrival pipeline at scale: a ≥10M-VM synthetic run that the
//! materialized lane could only attempt by holding the whole trace in
//! memory, replayed with the `StreamingShards` cursor so peak memory is
//! O(resident VMs + 2 shards).
//!
//! The artifact section runs the big trace once per FEL backend, printing
//! events/sec, the cursor's peak buffered arrivals (asserted ≤ 2 shards),
//! the peak FEL length, and the process peak RSS so the bounded-memory
//! claim is visible in the log. `RISA_STREAM_VMS` overrides the trace
//! size (e.g. for a quick CI smoke). The criterion sweep then compares
//! streaming vs materialized end-to-end on a 20k-VM trace — the pipeline
//! should be at worst even there (generation overlaps simulation), and
//! the artifact numbers show it is the only lane that scales past RAM.

use criterion::{BenchmarkId, Criterion};
use risa_des::FelKind;
use risa_sim::{peak_rss_bytes, Algorithm, ArrivalMode, SimulationBuilder, WorkloadSpec};
use risa_workload::shard::SHARD_SIZE;
use risa_workload::{LifetimeModel, SyntheticConfig};

const DEFAULT_VMS: u32 = 10_000_000;

/// The big trace: fixed lifetimes keep the resident population (a memory
/// term the *workload* owns) flat while the arrival count scales.
fn big_config(vms: u32) -> SyntheticConfig {
    SyntheticConfig {
        lifetime_model: LifetimeModel::Fixed { value: 6300.0 },
        ..SyntheticConfig::small(vms, 42)
    }
}

fn main() {
    rayon::warm_up();
    println!("{}", risa_sim::host_info());

    let vms: u32 = std::env::var("RISA_STREAM_VMS")
        .ok()
        .map(|v| v.parse().expect("RISA_STREAM_VMS must be a VM count"))
        .unwrap_or(DEFAULT_VMS);

    println!("des_streaming artifact: {vms}-VM streaming single run, per FEL backend");
    for fel in FelKind::ALL {
        let mut sim = SimulationBuilder::new()
            .algorithm(Algorithm::Risa)
            .workload(WorkloadSpec::Synthetic(big_config(vms)))
            .arrivals(ArrivalMode::Streaming)
            .fel(fel)
            .faults_off() // perf baseline: comparable across env toggles
            .build();
        let t0 = std::time::Instant::now();
        let report = sim.run();
        let secs = t0.elapsed().as_secs_f64();
        let events = sim.events_dispatched();
        let peak_buffered = sim.peak_buffered_arrivals().expect("streaming run");
        let rss = peak_rss_bytes()
            .map(|b| format!("{:.0} MiB", b as f64 / (1u64 << 20) as f64))
            .unwrap_or_else(|| "n/a".into());
        println!(
            "  fel={fel}: {events} events in {secs:.3} s = {:.0} events/s; \
             peak buffered {peak_buffered} VMs, peak FEL {}, peak resident {}, peak RSS {rss} \
             (admitted {}, dropped {})",
            events as f64 / secs.max(1e-9),
            sim.peak_fel_len(),
            sim.world().peak_resident(),
            report.admitted,
            report.dropped,
        );
        assert_eq!(report.admitted + report.dropped, vms);
        assert!(
            peak_buffered <= 2 * SHARD_SIZE as usize,
            "cursor buffered {peak_buffered} VMs, more than two shards"
        );
    }
    println!();

    let mut c = Criterion::default().configure_from_args();
    let small = big_config(20_000);
    let mut g = c.benchmark_group("des_streaming_20k_full_run");
    for mode in ArrivalMode::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(mode), &mode, |b, &mode| {
            b.iter(|| {
                SimulationBuilder::new()
                    .algorithm(Algorithm::Risa)
                    .workload(WorkloadSpec::Synthetic(small))
                    .arrivals(mode)
                    .faults_off()
                    .build()
                    .run()
            })
        });
    }
    g.finish();
    c.final_summary();
}
