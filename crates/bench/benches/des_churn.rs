//! DES throughput under churn: events/sec with the canonical fault
//! scenario injected, against the faults-off baseline on the same trace.
//!
//! The fault subsystem rides the same two-lane FEL as arrivals and
//! departures, so its cost shows up directly as events/sec. This bench
//! quantifies the churn tax: a saturating single run per (faults ×
//! FEL backend) cell prints the artifact numbers, then a criterion sweep
//! times a 20k-VM run with and without the canonical scenario so the
//! overhead is comparable across commits.

use criterion::{BenchmarkId, Criterion};
use risa_des::FelKind;
use risa_sim::{Algorithm, FaultSpec, SimulationBuilder, WorkloadSpec};
use risa_workload::{SyntheticConfig, Workload};

const SATURATING_VMS: u32 = 100_000;

/// One full run; returns (events, seconds, evacuated, churn drops).
fn one_run(trace: &Workload, fel: FelKind, faults: bool) -> (u64, f64, u32, u32) {
    let mut b = SimulationBuilder::new()
        .algorithm(Algorithm::Risa)
        .workload(WorkloadSpec::Trace(trace.clone()))
        .fel(fel);
    b = if faults {
        b.faults(FaultSpec::canonical())
    } else {
        b.faults_off()
    };
    let mut sim = b.build();
    let t0 = std::time::Instant::now();
    let report = sim.run();
    let secs = t0.elapsed().as_secs_f64();
    let (evac, churn_drops) = report
        .faults
        .map_or((0, 0), |f| (f.evacuated, f.dropped_churn));
    (sim.events_dispatched(), secs, evac, churn_drops)
}

fn main() {
    rayon::warm_up();
    println!("{}", risa_sim::host_info());
    let trace = Workload::synthetic(&SyntheticConfig::small(SATURATING_VMS, 42));

    println!(
        "des_churn artifact: saturating {SATURATING_VMS}-VM single run, \
         canonical faults vs faults-off, per FEL backend"
    );
    for fel in FelKind::ALL {
        let (base_events, base_secs, _, _) = one_run(&trace, fel, false);
        let (events, secs, evac, churn_drops) = one_run(&trace, fel, true);
        let base_rate = base_events as f64 / base_secs.max(1e-9);
        let rate = events as f64 / secs.max(1e-9);
        println!(
            "  fel={fel}: faults-off {base_rate:.0} events/s; \
             churn {rate:.0} events/s ({:+.1}%); \
             {evac} evacuated, {churn_drops} churn drops",
            (rate / base_rate - 1.0) * 100.0,
        );
        assert!(evac > 0, "canonical scenario must displace residents");
    }
    println!();

    let mut c = Criterion::default().configure_from_args();
    let small = Workload::synthetic(&SyntheticConfig::small(20_000, 42));
    let mut g = c.benchmark_group("des_churn_20k_full_run");
    for faults in [false, true] {
        let label = if faults { "canonical" } else { "off" };
        g.bench_with_input(BenchmarkId::from_parameter(label), &faults, |b, &faults| {
            b.iter(|| one_run(&small, FelKind::Heap, faults))
        });
    }
    g.finish();
    c.final_summary();
}
