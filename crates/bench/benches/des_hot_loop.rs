//! DES hot-loop throughput: events/sec on a saturating single run, swept
//! over the future-event-list backends.
//!
//! Figures 11/12 of the paper are *scheduler execution time* plots, so the
//! single-run event loop is the measurement instrument of this
//! reproduction. This bench tracks the instrument itself: a 100k-VM
//! synthetic trace (saturating the paper cluster) is replayed end to end
//! per FEL backend, reporting events dispatched per second and the peak
//! FEL length — which the two-lane queue keeps at O(resident VMs), not
//! O(trace length). The criterion sweep then times a 20k-VM run per
//! backend so the numbers are comparable across commits.

use criterion::{BenchmarkId, Criterion};
use risa_des::FelKind;
use risa_sim::{Algorithm, SimulationBuilder, WorkloadSpec};
use risa_workload::{SyntheticConfig, Workload};

const SATURATING_VMS: u32 = 100_000;

/// One full run; returns (events, seconds, peak FEL, admitted, dropped).
fn one_run(trace: &Workload, fel: FelKind) -> (u64, f64, usize, u32, u32) {
    let mut sim = SimulationBuilder::new()
        .algorithm(Algorithm::Risa)
        .workload(WorkloadSpec::Trace(trace.clone()))
        .fel(fel)
        .faults_off() // perf baseline: comparable across env toggles
        .build();
    let t0 = std::time::Instant::now();
    let report = sim.run();
    let secs = t0.elapsed().as_secs_f64();
    (
        sim.events_dispatched(),
        secs,
        sim.peak_fel_len(),
        report.admitted,
        report.dropped,
    )
}

fn main() {
    // Trace generation (sharded) happens before anything is timed.
    rayon::warm_up();
    println!("{}", risa_sim::host_info());
    let trace = Workload::synthetic(&SyntheticConfig::small(SATURATING_VMS, 42));

    println!("des_hot_loop artifact: saturating {SATURATING_VMS}-VM single run, per FEL backend");
    for fel in FelKind::ALL {
        let (events, secs, peak_fel, admitted, dropped) = one_run(&trace, fel);
        println!(
            "  fel={fel}: {events} events in {secs:.3} s = {:.0} events/s; \
             peak FEL {peak_fel} (trace {SATURATING_VMS}; admitted {admitted}, dropped {dropped})",
            events as f64 / secs.max(1e-9),
        );
        assert!(
            peak_fel < SATURATING_VMS as usize / 4,
            "peak FEL must stay resident-bounded"
        );
    }
    println!();

    let mut c = Criterion::default().configure_from_args();
    let small = Workload::synthetic(&SyntheticConfig::small(20_000, 42));
    let mut g = c.benchmark_group("des_hot_loop_20k_full_run");
    for fel in FelKind::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(fel), &fel, |b, &fel| {
            b.iter(|| {
                SimulationBuilder::new()
                    .algorithm(Algorithm::Risa)
                    .workload(WorkloadSpec::Trace(small.clone()))
                    .fel(fel)
                    .faults_off()
                    .build()
                    .run()
            })
        });
    }
    g.finish();
    c.final_summary();
}
