//! Figure 8: intra- and inter-rack network utilization on the Azure-like
//! workloads (paper: intra equal across algorithms, inter exactly 0 for
//! RISA/RISA-BF). Benchmarks the bandwidth-ledger hot path.

use criterion::{black_box, Criterion};
use risa_network::{FlowDemands, LinkPolicy, NetworkConfig, NetworkState};
use risa_sim::experiments;
use risa_topology::{BoxId, Cluster, TopologyConfig};

fn bench(c: &mut Criterion) {
    let cluster = Cluster::new(TopologyConfig::paper());
    let mut net = NetworkState::new(NetworkConfig::paper(), &cluster);
    let demand = FlowDemands {
        cpu_ram_mbps: 20_000,
        ram_sto_mbps: 4_000,
    };
    c.bench_function("fig08_vm_flow_alloc_release", |b| {
        b.iter(|| {
            let a = net
                .alloc_vm(
                    &cluster,
                    black_box(BoxId(0)),
                    BoxId(2),
                    BoxId(4),
                    &demand,
                    LinkPolicy::FirstFit,
                )
                .unwrap();
            net.release_vm(&a).unwrap();
        })
    });
    c.bench_function("fig08_utilization_query", |b| {
        b.iter(|| (net.intra_utilization(), net.inter_utilization()))
    });
}

fn main() {
    println!("{}", experiments::fig8(2023));
    println!("paper: intra 30.4 / 35.4 / 42.6 % (equal across algorithms — shape reproduced);");
    println!("inter exactly 0 for RISA/RISA-BF (reproduced)\n");

    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
