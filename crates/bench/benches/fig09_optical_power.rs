//! Figure 9: power consumption of the optical components on the Azure
//! workloads (paper: RISA 3.36 kW vs NULB 5.22 kW on Azure-3000, a 33 %
//! reduction). Benchmarks the Eq. (1) energy-model kernel.

use criterion::{black_box, Criterion};
use risa_photonics::{EnergyModel, PhotonicsConfig, SwitchPath};
use risa_sim::experiments;

fn bench(c: &mut Criterion) {
    let model = EnergyModel::new(PhotonicsConfig::paper());
    let intra = SwitchPath::intra_rack(64, 256);
    let inter = SwitchPath::inter_rack(64, 256, 512);
    c.bench_function("fig09_eq1_intra_flow_energy", |b| {
        b.iter(|| model.flow_total_energy_j(black_box(&intra), 40_000, 6300.0))
    });
    c.bench_function("fig09_eq1_inter_flow_energy", |b| {
        b.iter(|| model.flow_total_energy_j(black_box(&inter), 40_000, 6300.0))
    });
}

fn main() {
    println!("{}", experiments::fig9(2023));
    println!("paper: Azure-3000 5.22 (NULB) / 5.27 (NALB) / 3.36 kW (RISA, -33 %);");
    println!("direction reproduced — RISA strictly below NULB/NALB; magnitude tracks");
    println!("the inter-rack rate (see EXPERIMENTS.md)\n");

    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
