//! Figure 6: CPU/RAM histograms of the Azure-like workloads. The printed
//! bin counts must equal the paper's (e.g. Azure-3000 CPU:
//! 1326/1269/316/89). Benchmarks workload generation throughput.

use criterion::{BenchmarkId, Criterion};
use risa_sim::experiments;
use risa_workload::{AzureSubset, SyntheticConfig, Workload};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig06_workload_generation");
    for subset in AzureSubset::ALL {
        g.bench_with_input(
            BenchmarkId::new("azure", subset.label()),
            &subset,
            |b, &s| b.iter(|| Workload::azure(s, 2023)),
        );
    }
    g.bench_function("synthetic_2500", |b| {
        b.iter(|| Workload::synthetic(&SyntheticConfig::paper(42)))
    });
    g.finish();
}

fn main() {
    println!("{}", experiments::fig6(2023));
    println!(
        "paper Azure-3000 CPU bins: 1326 / 1269 / 316 / 89; RAM bins: 2591 / 299 / 15 / 17 / 78\n"
    );

    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
