//! Figure 7: percentage of inter-rack VM assignments on the Azure-like
//! workloads (paper: up to 52 % NULB / 48 % NALB, 0 % RISA and RISA-BF).
//! Benchmarks the Azure-3000 end-to-end run per algorithm.

use criterion::{BenchmarkId, Criterion};
use risa_sim::{experiments, Algorithm, SimulationBuilder, WorkloadSpec};
use risa_workload::AzureSubset;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig07_azure3000_full_sim");
    g.sample_size(10);
    for algo in Algorithm::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(algo), &algo, |b, &algo| {
            b.iter(|| {
                SimulationBuilder::new()
                    .algorithm(algo)
                    .workload(WorkloadSpec::azure(AzureSubset::N3000, 2023))
                    .faults_off()
                    .build()
                    .run()
            });
        });
    }
    g.finish();
}

fn main() {
    println!("{}", experiments::fig7(2023));
    println!("paper: NULB/NALB up to 52/48 %; RISA and RISA-BF exactly 0 % (reproduced);");
    println!("our NULB/NALB fragment less than the paper's (see EXPERIMENTS.md)\n");

    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
