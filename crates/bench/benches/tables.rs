//! Tables 1–5 of the paper: prints the configuration tables and the §4.3
//! toy-example traces (Tables 3/4), then benchmarks the contention-ratio
//! and SUPER_RACK kernels shared by the algorithms.

use criterion::{black_box, Criterion};
use risa_metrics::{Align, Table};
use risa_network::NetworkConfig;
use risa_sched::{contention_ratios, toy, SuperRack};
use risa_topology::{Cluster, ResourceKind, TopologyConfig, UnitDemand};

fn print_table1() {
    let cfg = TopologyConfig::paper();
    let mut t = Table::new(
        "Table 1: disaggregated architecture configuration",
        &["parameter", "value"],
    )
    .align(&[Align::Left, Align::Right]);
    t.row_display(&["cluster size", &format!("{} racks", cfg.racks)]);
    t.row_display(&["rack size", &format!("{} boxes", cfg.box_mix.total())]);
    t.row_display(&["box size", &format!("{} bricks", cfg.bricks_per_box)]);
    t.row_display(&["brick size", &format!("{} units", cfg.units_per_brick)]);
    t.row_display(&[
        "CPU unit",
        &format!("{} cores", cfg.units.cpu_cores_per_unit),
    ]);
    t.row_display(&["RAM unit", &format!("{} GB", cfg.units.ram_gb_per_unit)]);
    t.row_display(&[
        "storage unit",
        &format!("{} GB", cfg.units.storage_gb_per_unit),
    ]);
    println!("{t}");
}

fn print_table2() {
    let n = NetworkConfig::paper();
    let mut t = Table::new("Table 2: network requirements", &["flow", "bandwidth"])
        .align(&[Align::Left, Align::Right]);
    t.row_display(&[
        "CPU-RAM",
        &format!("{} Gb/s/unit", n.cpu_ram_mbps_per_unit / 1000),
    ]);
    t.row_display(&[
        "RAM-STO",
        &format!("{} Gb/s/unit", n.ram_sto_mbps_per_unit / 1000),
    ]);
    println!("{t}");
}

fn print_table3() {
    let c = toy::table3_cluster();
    let ids = toy::table3_ids();
    let mut t = Table::new(
        "Table 3: toy-example DDC state (availability in units)",
        &["resource", "id0", "id1", "id2", "id3"],
    )
    .align(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for (label, list) in [("CPU", ids.cpu), ("RAM", ids.ram), ("STO", ids.sto)] {
        let row: Vec<String> = std::iter::once(label.to_string())
            .chain(list.iter().map(|&b| c.available(b).to_string()))
            .collect();
        t.row(&row);
    }
    println!("{t}");
}

fn print_table5() {
    println!("Table 5 analogue — {}", risa_sim::host_info());
    println!();
}

fn bench(c: &mut Criterion) {
    let cluster = Cluster::new(TopologyConfig::paper());
    let demand = UnitDemand::new(2, 4, 2);
    c.bench_function("tables_contention_ratio_scan", |b| {
        b.iter(|| contention_ratios(black_box(&cluster), &demand, None))
    });
    c.bench_function("tables_super_rack_build", |b| {
        b.iter(|| SuperRack::build(black_box(&cluster), &demand))
    });
    c.bench_function("tables_rack_fits_all_racks", |b| {
        b.iter(|| {
            (0..cluster.num_racks())
                .filter(|&r| cluster.rack_fits(risa_topology::RackId(r), &demand))
                .count()
        })
    });
    let _ = ResourceKind::Cpu;
}

fn main() {
    print_table1();
    print_table2();
    print_table3();
    print_table5();

    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
