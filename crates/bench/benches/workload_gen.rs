//! Workload-generation throughput — the sharded-generation scaling story.
//!
//! Trace generation is sharded per 4096-VM index block with
//! `(seed, shard)`-derived RNG streams (`risa_workload::shard`), so a
//! single big trace fans out over the thread pool. This bench sweeps the
//! pinned thread count over a ≥1M-VM synthetic trace and the largest
//! Azure-like deck; the acceptance bar is **≥3× throughput at 8 threads
//! vs 1 thread** for the 1M-VM synthetic trace (on a machine with ≥8
//! cores — shard boundaries are fixed, so the *output* is byte-identical
//! at every point of the sweep, only the wall clock moves).

use criterion::{black_box, BenchmarkId, Criterion};
use rayon::with_num_threads;
use risa_workload::{AzureSubset, SyntheticConfig, Workload};

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn bench_synthetic_1m(c: &mut Criterion) {
    let cfg = SyntheticConfig::small(1_000_000, 42);
    let mut g = c.benchmark_group("generate_synthetic_1M_vms");
    g.sample_size(10);
    for threads in THREAD_SWEEP {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| with_num_threads(t, || black_box(Workload::synthetic(&cfg)).len()))
        });
    }
    g.finish();
}

fn bench_azure_7500(c: &mut Criterion) {
    let mut g = c.benchmark_group("generate_azure_7500");
    g.sample_size(10);
    for threads in THREAD_SWEEP {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                with_num_threads(t, || {
                    black_box(Workload::azure(AzureSubset::N7500, 7)).len()
                })
            })
        });
    }
    g.finish();
}

fn main() {
    // Spawn the resident pool at the sweep's widest point up front, so
    // the 2/4/8-thread legs measure generation, not worker spawning.
    with_num_threads(THREAD_SWEEP[THREAD_SWEEP.len() - 1], rayon::warm_up);
    println!("sharded workload-generation throughput vs pinned thread count");
    let mut c = Criterion::default().configure_from_args();
    bench_synthetic_1m(&mut c);
    bench_azure_7500(&mut c);
    c.final_summary();
}
