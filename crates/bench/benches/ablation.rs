//! Ablations beyond the paper: trunk width, the Eq. (1) α factor, seed
//! sensitivity, and a *measured* cell-sharing factor from actual Beneš
//! routing — the design-choice studies DESIGN.md calls out.

use criterion::Criterion;
use risa_photonics::fabric::Fabric;
use risa_sim::experiments;

/// Route deterministic connection sets through the paper's 64-port box
/// switch and report the measured sharing factor per load level.
fn empirical_alpha_table() {
    println!("Measured Benes cell-sharing factor (64-port box switch)");
    println!("=======================================================");
    println!("active connections   measured alpha   (paper assumes 0.90)");
    for &active in &[4usize, 16, 32, 64] {
        let ports = 64u16;
        let mut perm = vec![None; ports as usize];
        let mut used_out = vec![false; ports as usize];
        let mut placed = 0usize;
        let mut k = 0usize;
        while placed < active && k < 4 * ports as usize {
            let i = (k * 7) % ports as usize;
            let o = (i * 37 + 11) % ports as usize;
            if perm[i].is_none() && !used_out[o] {
                perm[i] = Some(o as u16);
                used_out[o] = true;
                placed += 1;
            }
            k += 1;
        }
        let alpha = Fabric::route(ports, &perm).unwrap().empirical_alpha();
        println!("{placed:>18}   {alpha:>14.3}");
    }
    println!();
}

fn main() {
    println!("{}", experiments::ablation_trunk_width(7, &[1, 2, 4, 8]));
    println!("{}", experiments::ablation_alpha(7, &[0.5, 0.7, 0.9, 1.0]));
    println!("{}", experiments::ablation_seeds(&[1, 2, 3, 4, 5], 1200));
    println!("{}", experiments::ablation_lifetimes(7, 1200));
    println!(
        "{}",
        experiments::fig5_seed_sweep(&[1, 2, 3, 4, 5, 6, 7, 8], 1200)
    );
    empirical_alpha_table();

    // No kernel benchmark here — the tables above are the artifact — but
    // keep Criterion's argument handling so `cargo bench ablation` works
    // uniformly.
    let c = Criterion::default().configure_from_args();
    c.final_summary();
}
