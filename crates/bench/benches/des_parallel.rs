//! Optimistic parallel DES executor: events/sec versus thread count, and
//! the conflict/rollback economics that decide whether speculation pays.
//!
//! The speculative executor (`risa_sim::parallel`) drains the two-lane
//! queue in windows, speculates arrival decisions in parallel against the
//! window-start state, and commits serially in canonical order with
//! conflict detection. Its profit equation is simple: fast commits are
//! work moved off the critical path; rollbacks are pure overhead (the
//! speculation is discarded and the arrival re-executes serially). This
//! bench is the checked-in artifact for that equation:
//!
//! * the saturating 100k-VM run per (exec mode × thread count), reporting
//!   events/s and — for speculative runs — window, fast-commit, rollback
//!   and serial-event counters plus the derived conflict rate;
//! * an assertion that the speculation counters are thread-count
//!   invariant (fixed chunking + serial commit order), so the artifact's
//!   conflict rate is a property of the workload, not the machine;
//! * a criterion sweep timing a 20k-VM full run per exec mode so the
//!   sequential/speculative ratio is tracked commit over commit.
//!
//! On the saturated synthetic workload the admit path serializes on the
//! shared round-robin rack cursor (every successful admit moves it, so
//! consecutive admits conflict by construction), while drops touch no
//! shared dirt and fast-commit freely. The printed crossover line states
//! the rate at which speculation would break even at each thread count,
//! next to the measured fast-commit rate — the quantified form of the
//! "conflict rate makes wall-clock speedup unreachable here" claim.

use criterion::{BenchmarkId, Criterion};
use risa_sim::{Algorithm, ExecMode, SimulationBuilder, SpeculationReport, WorkloadSpec};
use risa_workload::{SyntheticConfig, Workload};

const SATURATING_VMS: u32 = 100_000;
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// One full run; returns (events, seconds, admitted, dropped, counters).
fn one_run(trace: &Workload, exec: ExecMode) -> (u64, f64, u32, u32, Option<SpeculationReport>) {
    let mut sim = SimulationBuilder::new()
        .algorithm(Algorithm::Risa)
        .workload(WorkloadSpec::Trace(trace.clone()))
        .exec(exec)
        .faults_off() // perf baseline: comparable across env toggles
        .build();
    let t0 = std::time::Instant::now();
    let report = sim.run();
    let secs = t0.elapsed().as_secs_f64();
    (
        sim.events_dispatched(),
        secs,
        report.admitted,
        report.dropped,
        report.speculation,
    )
}

fn main() {
    rayon::warm_up();
    println!("{}", risa_sim::host_info());
    let trace = Workload::synthetic(&SyntheticConfig::small(SATURATING_VMS, 42));

    println!(
        "des_parallel artifact: saturating {SATURATING_VMS}-VM single run, \
         per (exec mode x thread count)"
    );
    let (seq_events, seq_secs, seq_admitted, seq_dropped, seq_spec) =
        one_run(&trace, ExecMode::Sequential);
    assert!(seq_spec.is_none(), "sequential runs carry no counters");
    let seq_rate = seq_events as f64 / seq_secs.max(1e-9);
    println!("  sequential: {seq_events} events in {seq_secs:.3} s = {seq_rate:.0} events/s");

    let mut counters: Vec<SpeculationReport> = Vec::new();
    for threads in THREAD_SWEEP {
        let (events, secs, admitted, dropped, spec) =
            rayon::with_num_threads(threads, || one_run(&trace, ExecMode::Speculative));
        // Byte-identity of the outcome is the executor's contract; the
        // differential batteries check full reports and traces, the bench
        // keeps a tripwire on the headline numbers.
        assert_eq!(
            (events, admitted, dropped),
            (seq_events, seq_admitted, seq_dropped)
        );
        let s = spec.expect("speculative runs carry counters");
        let rate = events as f64 / secs.max(1e-9);
        let conflict = s.rollbacks as f64 / (s.speculated.max(1)) as f64;
        // Break-even sketch: with per-arrival speculation cost ~= serial
        // cost, a rollback re-pays the serial cost, so speedup needs
        // fast_commit_rate > 1 - 1/threads on the arrival share alone.
        let breakeven = 1.0 - 1.0 / threads as f64;
        println!(
            "  speculative/t{threads}: {events} events in {secs:.3} s = {rate:.0} events/s \
             ({:.2}x sequential)",
            rate / seq_rate.max(1e-9),
        );
        println!(
            "    windows {} | speculated {} | fast {} | rollback {} | serial {} \
             | conflict rate {:.1}% (break-even needs fast-commit > {:.0}%, measured {:.1}%)",
            s.windows,
            s.speculated,
            s.fast_commits,
            s.rollbacks,
            s.serial_events,
            conflict * 100.0,
            breakeven * 100.0,
            (1.0 - conflict) * 100.0,
        );
        counters.push(s);
    }
    // The counters are a workload property: fixed chunking and the serial
    // canonical commit make them independent of pool width.
    assert!(
        counters.windows(2).all(|w| w[0] == w[1]),
        "speculation counters must be thread-count invariant: {counters:?}"
    );
    println!();

    let mut c = Criterion::default().configure_from_args();
    let small = Workload::synthetic(&SyntheticConfig::small(20_000, 42));
    let mut g = c.benchmark_group("des_parallel_20k_full_run");
    for exec in ExecMode::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(exec), &exec, |b, &exec| {
            b.iter(|| {
                SimulationBuilder::new()
                    .algorithm(Algorithm::Risa)
                    .workload(WorkloadSpec::Trace(small.clone()))
                    .exec(exec)
                    .faults_off()
                    .build()
                    .run()
            })
        });
    }
    g.finish();
    c.final_summary();
}
