//! Figure 10: average CPU-RAM round-trip latency on the Azure workloads
//! (paper: 110 ns RISA/RISA-BF vs 226/216 ns NULB/NALB on Azure-3000).
//! Benchmarks the per-VM latency accumulation path.

use criterion::{black_box, Criterion};
use risa_metrics::OnlineStats;
use risa_sim::experiments;

fn bench(c: &mut Criterion) {
    c.bench_function("fig10_latency_accumulation_1k", |b| {
        b.iter(|| {
            let mut s = OnlineStats::new();
            for i in 0..1000u32 {
                s.record(if i % 3 == 0 { 330.0 } else { 110.0 });
            }
            black_box(s.mean())
        })
    });
}

fn main() {
    println!("{}", experiments::fig10(2023));
    println!("paper: Azure-3000 226 / 216 / 110 / 110 ns; RISA's exact 110 ns reproduced,");
    println!("NULB/NALB exceed 110 ns in proportion to their inter-rack rate\n");

    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
