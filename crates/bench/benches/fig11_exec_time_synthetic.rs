//! Figure 11: scheduler execution time on the synthetic workload (paper:
//! NALB 865 s ≫ NULB 233 s > RISA-BF 112 s ≥ RISA 111 s on a Ryzen 7
//! 2700X). We benchmark the *scheduler-only* cost: one schedule+release
//! cycle on a cluster pre-loaded to ~60 % (the paper's operating point).

use criterion::{BenchmarkId, Criterion};
use rayon::prelude::*;
use risa_network::{NetworkConfig, NetworkState};
use risa_sched::{Algorithm, ScheduleOutcome, Scheduler};
use risa_sim::experiments;
use risa_topology::{Cluster, TopologyConfig, UnitDemand};

/// Pre-load the cluster to roughly the paper's §5.1 utilization.
fn loaded_state(algo: Algorithm) -> (Cluster, NetworkState, Scheduler) {
    let mut cluster = Cluster::new(TopologyConfig::paper());
    let mut net = NetworkState::new(NetworkConfig::paper(), &cluster);
    let mut sched = Scheduler::new(algo, &cluster);
    // ~650 typical VMs ≈ 60 % CPU/RAM utilization.
    let d = UnitDemand::new(4, 4, 2);
    for _ in 0..650 {
        match sched.schedule(&mut cluster, &mut net, &d) {
            ScheduleOutcome::Assigned(_) => {}
            ScheduleOutcome::Dropped(r) => panic!("preload dropped: {r:?}"),
        }
    }
    (cluster, net, sched)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_schedule_one_vm_at_60pct");
    let d = UnitDemand::new(4, 4, 2);
    // Pre-load all four per-algorithm clusters concurrently (the
    // replication setup, ~hundreds of schedules each); the measured
    // schedule/release cycles below stay sequential and uncontended.
    let states: Vec<(Cluster, NetworkState, Scheduler)> = Algorithm::ALL
        .par_iter()
        .map(|&algo| loaded_state(algo))
        .collect();
    for (algo, state) in Algorithm::ALL.into_iter().zip(states) {
        let (mut cluster, mut net, mut sched) = state;
        g.bench_with_input(BenchmarkId::from_parameter(algo), &algo, |b, _| {
            b.iter(|| match sched.schedule(&mut cluster, &mut net, &d) {
                ScheduleOutcome::Assigned(a) => Scheduler::release(&mut cluster, &mut net, &a),
                ScheduleOutcome::Dropped(r) => panic!("dropped: {r:?}"),
            });
        });
    }
    g.finish();
}

fn main() {
    // Spawn the resident pool before anything is timed: the replication
    // setup and the fig11 matrix reuse the same parked workers.
    rayon::warm_up();
    println!("{}", risa_sim::host_info());
    println!("{}", experiments::fig11(42));
    println!(
        "paper: NALB 865 s > NULB 233 s > RISA-BF 112 s >= RISA 111 s (ordering is the result)\n"
    );

    let mut c = Criterion::default().configure_from_args();
    bench(&mut c);
    c.final_summary();
}
