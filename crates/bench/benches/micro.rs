//! Microbenchmarks of every substrate hot path: the numbers that explain
//! the Figure 11/12 execution-time ordering from first principles.

use criterion::{black_box, BenchmarkId, Criterion};
use risa_des::{EventQueue, SimTime};
use risa_metrics::TimeWeighted;
use risa_network::{FlowDemands, LinkPolicy, NetworkConfig, NetworkState};
use risa_photonics::{benes, EnergyModel, PhotonicsConfig, SwitchPath};
use risa_sched::{Algorithm, ScheduleOutcome, Scheduler};
use risa_topology::{BoxId, Cluster, TopologyConfig, UnitDemand};

fn bench_topology(c: &mut Criterion) {
    let mut cluster = Cluster::new(TopologyConfig::paper());
    c.bench_function("micro_cluster_take_give", |b| {
        b.iter(|| {
            cluster.take(black_box(BoxId(0)), 4).unwrap();
            cluster.give(BoxId(0), 4).unwrap();
        })
    });
    let demand = UnitDemand::new(2, 4, 2);
    c.bench_function("micro_rack_fits", |b| {
        b.iter(|| cluster.rack_fits(risa_topology::RackId(9), black_box(&demand)))
    });
}

fn bench_network(c: &mut Criterion) {
    let cluster = Cluster::new(TopologyConfig::paper());
    let mut net = NetworkState::new(NetworkConfig::paper(), &cluster);
    c.bench_function("micro_flow_alloc_release_intra", |b| {
        b.iter(|| {
            let f = net
                .alloc_flow(&cluster, BoxId(0), BoxId(2), 20_000, LinkPolicy::FirstFit)
                .unwrap();
            net.release_flow(&f).unwrap();
        })
    });
    c.bench_function("micro_flow_alloc_release_inter", |b| {
        b.iter(|| {
            let f = net
                .alloc_flow(
                    &cluster,
                    BoxId(0),
                    BoxId(8),
                    20_000,
                    LinkPolicy::MostAvailable,
                )
                .unwrap();
            net.release_flow(&f).unwrap();
        })
    });
    let d = FlowDemands {
        cpu_ram_mbps: 20_000,
        ram_sto_mbps: 4_000,
    };
    c.bench_function("micro_rack_intra_feasible", |b| {
        b.iter(|| net.rack_intra_feasible(&cluster, risa_topology::RackId(0), black_box(&d)))
    });
}

fn bench_photonics(c: &mut Criterion) {
    let model = EnergyModel::new(PhotonicsConfig::paper());
    let path = SwitchPath::inter_rack(64, 256, 512);
    c.bench_function("micro_benes_total_cells_512", |b| {
        b.iter(|| benes::total_cells(black_box(512)))
    });
    c.bench_function("micro_eq1_energy", |b| {
        b.iter(|| model.flow_total_energy_j(black_box(&path), 40_000, 6300.0))
    });
}

fn bench_des(c: &mut Criterion) {
    c.bench_function("micro_event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.push(SimTime::from_ticks((i * 7919) % 1000), i);
            }
            while q.pop().is_some() {}
        })
    });
    c.bench_function("micro_time_weighted_set", |b| {
        let mut tw = TimeWeighted::new(0.0, 0.0);
        let mut t = 0.0;
        b.iter(|| {
            t += 1.0;
            tw.set(t, black_box(42.0));
        })
    });
}

fn bench_schedulers(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_schedule_empty_cluster");
    let demand = UnitDemand::new(2, 4, 2);
    for algo in Algorithm::ALL {
        let mut cluster = Cluster::new(TopologyConfig::paper());
        let mut net = NetworkState::new(NetworkConfig::paper(), &cluster);
        let mut sched = Scheduler::new(algo, &cluster);
        g.bench_with_input(BenchmarkId::from_parameter(algo), &algo, |b, _| {
            b.iter(|| match sched.schedule(&mut cluster, &mut net, &demand) {
                ScheduleOutcome::Assigned(a) => Scheduler::release(&mut cluster, &mut net, &a),
                ScheduleOutcome::Dropped(r) => panic!("dropped: {r:?}"),
            })
        });
    }
    g.finish();
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    bench_topology(&mut c);
    bench_network(&mut c);
    bench_photonics(&mut c);
    bench_des(&mut c);
    bench_schedulers(&mut c);
    c.final_summary();
}
