//! End-to-end fault-injection battery: churn actually happens, the
//! evacuation pipeline balances, runs stay deterministic and drained
//! runs end pristine (audited).

use risa_sim::{
    Algorithm, ArrivalMode, FaultSpec, FelKind, RunReport, SimulationBuilder, WorkloadSpec,
};

fn churn_run(algo: Algorithm, spec: FaultSpec) -> RunReport {
    let mut r = SimulationBuilder::new()
        .algorithm(algo)
        .workload(WorkloadSpec::synthetic(3000, 11))
        .faults(spec)
        .audit(true)
        .build()
        .run();
    r.sched_seconds = 0.0;
    r
}

#[test]
fn canonical_scenario_produces_churn_and_balances() {
    let r = churn_run(Algorithm::Risa, FaultSpec::canonical());
    let f = r.faults.as_ref().expect("faults attached");
    assert!(f.rack_failures > 0, "canonical scenario fails racks: {f:?}");
    assert_eq!(f.rack_repairs, f.rack_failures, "every failure repaired");
    assert_eq!(f.trunk_link_ups, f.trunk_link_downs);
    assert_eq!(f.xcvr_ups, f.xcvr_downs);
    // The evacuation pipeline balances on a drained run.
    assert_eq!(
        f.evacuated,
        f.evac_replaced + f.dropped_churn + f.evac_departed
    );
    assert!(f.evacuated > 0, "rack failures displace residents: {f:?}");
    assert!(f.mean_recovery_time > 0.0);
    assert!(f.mean_stranded_units > 0.0, "downtime strands capacity");
    // The main drop counters are churn-free: evacuation drops are
    // accounted separately.
    assert_eq!(r.admitted + r.dropped, r.total_vms);
}

#[test]
fn fault_runs_are_deterministic() {
    let a = churn_run(Algorithm::Nalb, FaultSpec::canonical());
    let b = churn_run(Algorithm::Nalb, FaultSpec::canonical());
    assert_eq!(a, b);
}

#[test]
fn scenario_seed_changes_the_churn() {
    let a = churn_run(Algorithm::Risa, FaultSpec::canonical_seeded(1));
    let b = churn_run(Algorithm::Risa, FaultSpec::canonical_seeded(2));
    let (fa, fb) = (a.faults.unwrap(), b.faults.unwrap());
    assert_ne!(
        (fa.rack_failures, fa.mean_recovery_time, fa.evacuated),
        (fb.rack_failures, fb.mean_recovery_time, fb.evacuated)
    );
}

/// The tentpole determinism claim: a churn scenario is byte-identical
/// across FEL backends and arrival pipelines (thread count is covered by
/// the CI matrix — nothing in a run draws from the pool under faults
/// except workload generation, which is pinned separately).
#[test]
fn churn_is_byte_identical_across_fel_and_arrival_modes() {
    let run = |fel: FelKind, mode: ArrivalMode| {
        let mut sim = SimulationBuilder::new()
            .workload(WorkloadSpec::synthetic(6000, 9))
            .faults(FaultSpec::canonical())
            .fel(fel)
            .arrivals(mode)
            .audit(true)
            .build();
        sim.enable_trace(40_000);
        let mut r = sim.run();
        r.sched_seconds = 0.0;
        let trace = format!("{:?}", sim.trace().unwrap());
        (serde_json::to_string(&r).unwrap(), trace)
    };
    let base = run(FelKind::Heap, ArrivalMode::Materialized);
    assert_eq!(run(FelKind::Calendar, ArrivalMode::Materialized), base);
    assert_eq!(run(FelKind::Heap, ArrivalMode::Streaming), base);
    assert_eq!(run(FelKind::Calendar, ArrivalMode::Streaming), base);
}

/// Faults-off runs are byte-identical to a builder that never heard of
/// faults — the `faults` report block vanishes entirely.
#[test]
fn faults_off_is_byte_identical_to_no_faults() {
    let run = |explicit_off: bool| {
        let mut b = SimulationBuilder::new().workload(WorkloadSpec::synthetic(800, 4));
        if explicit_off {
            b = b.faults_off();
        }
        let mut r = b.build().run();
        r.sched_seconds = 0.0;
        serde_json::to_string(&r).unwrap()
    };
    let off = run(true);
    assert!(!off.contains("faults"));
    if std::env::var("RISA_FAULTS").is_err() {
        assert_eq!(run(false), off);
    }
}

/// Migration delays can outlive a VM's remaining lifetime; those VMs
/// depart in transit and the pipeline still balances. A huge per-unit
/// delay makes *every* evacuation lose the race with its departure.
#[test]
fn in_transit_departures_cancel_migrations() {
    let spec = FaultSpec {
        migration_delay_per_unit: 1e7,
        ..FaultSpec::canonical()
    };
    let r = churn_run(Algorithm::Risa, spec);
    let f = r.faults.unwrap();
    assert!(f.evacuated > 0);
    assert_eq!(f.evac_replaced, 0, "nothing outruns its departure: {f:?}");
    assert_eq!(f.evacuated, f.evac_departed + f.dropped_churn);
}

/// A rates-zeroed spec attaches the machinery but never fires: the run
/// matches faults-off numbers, modulo the (all-zero) report block.
#[test]
fn zero_rate_scenario_is_quiet() {
    let spec = FaultSpec {
        rack_failures_per_span: 0.0,
        trunk_downs_per_span: 0.0,
        xcvr_downs_per_span: 0.0,
        ..FaultSpec::canonical()
    };
    let quiet = churn_run(Algorithm::Risa, spec);
    let f = quiet.faults.as_ref().unwrap();
    assert_eq!(
        (
            f.rack_failures,
            f.trunk_link_downs,
            f.xcvr_downs,
            f.evacuated
        ),
        (0, 0, 0, 0)
    );
    let mut off = SimulationBuilder::new()
        .algorithm(Algorithm::Risa)
        .workload(WorkloadSpec::synthetic(3000, 11))
        .faults_off()
        .audit(true)
        .build()
        .run();
    off.sched_seconds = 0.0;
    let mut quiet_stripped = quiet.clone();
    quiet_stripped.faults = None;
    assert_eq!(quiet_stripped, off);
}
