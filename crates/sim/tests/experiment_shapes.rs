//! Integration tests for the experiment layer itself: every per-figure
//! entry point renders a complete, well-formed report whose headline
//! properties match the paper's direction.

use risa_sim::{experiments, Algorithm, SimConfig, WorkloadSpec};
use risa_workload::{AzureSubset, SyntheticConfig};

/// One shared reduced Azure matrix keeps this suite fast.
fn azure3000_runs() -> Vec<risa_sim::RunReport> {
    let cfg = SimConfig::paper();
    experiments::run_matrix(
        &cfg,
        &[WorkloadSpec::azure(AzureSubset::N3000, 77)],
        &Algorithm::ALL,
        true,
    )
}

#[test]
fn headline_directions_hold_on_one_matrix() {
    let runs = azure3000_runs();
    let by = |a: Algorithm| runs.iter().find(|r| r.algorithm == a).unwrap();

    // Figure 7: RISA/RISA-BF at exactly zero.
    assert_eq!(by(Algorithm::Risa).inter_rack_percent(), 0.0);
    assert_eq!(by(Algorithm::RisaBf).inter_rack_percent(), 0.0);
    assert!(by(Algorithm::Nulb).inter_rack_percent() > 0.0);

    // Figure 8: intra equal across algorithms; inter zero for RISA.
    let intra0 = by(Algorithm::Nulb).intra_net_utilization;
    for r in &runs {
        assert!((r.intra_net_utilization - intra0).abs() < 1e-6);
    }
    assert_eq!(by(Algorithm::Risa).inter_net_utilization, 0.0);

    // Figure 9: RISA power strictly below the baselines.
    assert!(by(Algorithm::Risa).optical_power_w < by(Algorithm::Nulb).optical_power_w);
    assert!(by(Algorithm::RisaBf).optical_power_w < by(Algorithm::Nalb).optical_power_w);

    // Figure 10: RISA exactly at the 110 ns intra-rack constant.
    assert_eq!(by(Algorithm::Risa).mean_cpu_ram_latency_ns, 110.0);
    assert!(by(Algorithm::Nulb).mean_cpu_ram_latency_ns > 110.0);

    // Figures 11/12 (deterministic ops): NALB > NULB > RISA-like work.
    let ops = |a: Algorithm| by(a).work.ops_per_call();
    assert!(ops(Algorithm::Nalb) > ops(Algorithm::Nulb));
    assert!(ops(Algorithm::Nulb) > ops(Algorithm::Risa));
    assert!(ops(Algorithm::Nulb) > ops(Algorithm::RisaBf));
}

#[test]
fn rendered_reports_are_complete() {
    // fig6 is cheap (no simulation) — full check.
    let f6 = experiments::fig6(7);
    for label in ["Azure-3000", "Azure-5000", "Azure-7500"] {
        assert!(f6.rendered.contains(label), "fig6 missing {label}");
    }
    assert!(f6.runs.is_empty(), "fig6 is workload-only");

    // A reduced fig5 renders a table plus the bar chart.
    let f5 = experiments::fig5_with(3, &WorkloadSpec::Synthetic(SyntheticConfig::small(150, 3)));
    assert!(f5.rendered.contains("Figure 5"));
    assert!(f5.rendered.contains('#'), "bar chart present");
    assert_eq!(f5.runs.len(), 4);
    assert_eq!(f5.runs_for_workload("synthetic").len(), 4);
}

#[test]
fn lifetime_ablation_keeps_risa_at_zero() {
    let rep = experiments::ablation_lifetimes(5, 900);
    // 3 models × 4 algorithms.
    assert_eq!(rep.runs.len(), 12);
    for r in rep
        .runs
        .iter()
        .filter(|r| matches!(r.algorithm, Algorithm::Risa | Algorithm::RisaBf))
    {
        assert_eq!(
            r.inter_rack_assignments, 0,
            "{} should stay intra-rack under every lifetime model",
            r.algorithm
        );
    }
}

#[test]
fn trunk_ablation_narrow_trunks_drop_more() {
    let rep = experiments::ablation_trunk_width(9, &[1, 8]);
    let dropped = |width_first: bool, algo: Algorithm| {
        // Runs are pushed width-major (all four algorithms per width).
        let idx_base = if width_first { 0 } else { 4 };
        rep.runs[idx_base..idx_base + 4]
            .iter()
            .find(|r| r.algorithm == algo)
            .unwrap()
            .dropped
    };
    // Width 1 drops at least as much as width 8 for every algorithm.
    for algo in Algorithm::ALL {
        assert!(
            dropped(true, algo) >= dropped(false, algo),
            "{algo}: narrow trunks can't drop less"
        );
    }
}
