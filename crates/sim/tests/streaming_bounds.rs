//! Bounded-memory properties of the streaming arrival pipeline, plus the
//! loud-rejection contract for unsorted preload input.

use risa_sim::{Algorithm, ArrivalMode, SimulationBuilder, WorkloadSpec};
use risa_workload::shard::SHARD_SIZE;
use risa_workload::{LifetimeModel, SyntheticConfig};

/// The memory bound the tentpole promises: over a 100k-VM streaming run
/// the workload cursor never buffers more than two shards of VMs, and the
/// per-VM bookkeeping tracks residency, not trace length. (A fixed
/// lifetime keeps the resident population small; the default staircase
/// would make resident VMs — a *separate* memory term — grow with n.)
#[test]
fn peak_buffered_arrivals_is_two_shards_on_100k_run() {
    let n = 100_000;
    let cfg = SyntheticConfig {
        lifetime_model: LifetimeModel::Fixed { value: 6300.0 },
        ..SyntheticConfig::small(n, 17)
    };
    let mut sim = SimulationBuilder::new()
        .algorithm(Algorithm::Risa)
        .workload(WorkloadSpec::Synthetic(cfg))
        .arrivals(ArrivalMode::Streaming)
        .faults_off() // churn events would share the FEL bound asserted below
        .build();
    let report = sim.run();
    assert_eq!(report.total_vms, n);
    assert_eq!(report.admitted + report.dropped, n);

    let peak = sim.peak_buffered_arrivals().expect("streaming run");
    assert!(
        peak <= 2 * SHARD_SIZE as usize,
        "peak buffered {peak} exceeds two shards ({})",
        2 * SHARD_SIZE
    );
    assert!(
        peak >= SHARD_SIZE as usize,
        "peak buffered {peak} implausibly small for a {n}-VM run"
    );
    // The FEL holds in-flight departures only — the other bounded term.
    assert!(sim.peak_fel_len() <= sim.world().peak_resident() as usize);
    assert!((sim.world().peak_resident() as usize) < n as usize / 10);
}

/// The bound holds under every arrival-order stress we can apply: a fast
/// arrival process that keeps tens of thousands resident still caps the
/// *cursor* at two shards (resident VMs are the workload's business, not
/// the pipeline's).
#[test]
fn saturating_run_still_caps_cursor_at_two_shards() {
    let mut sim = SimulationBuilder::new()
        .workload(WorkloadSpec::Synthetic(SyntheticConfig::small(20_000, 9)))
        .arrivals(ArrivalMode::Streaming)
        .audit(true)
        .build();
    sim.run();
    let peak = sim.peak_buffered_arrivals().unwrap();
    assert!(peak <= 2 * SHARD_SIZE as usize, "peak {peak}");
}

/// Satellite fix: an unsorted trace handed to the builder must fail
/// *loudly* in debug builds instead of silently taking the slow
/// push-through-the-FEL fallback (which masked generator ordering bugs).
/// `Workload::from_vms` already debug-asserts order, so the only way an
/// unsorted workload reaches the builder is deserialization — exactly
/// what this test does.
#[test]
#[cfg(debug_assertions)]
#[should_panic(expected = "not sorted by arrival")]
fn unsorted_trace_is_rejected_loudly_in_debug_builds() {
    SimulationBuilder::new()
        .workload(WorkloadSpec::Trace(tampered_trace()))
        .build();
}

/// An out-of-order trace built through serde — the one constructor
/// without the `from_vms` ordering debug-assert, i.e. the path a broken
/// trace file would actually take.
fn tampered_trace() -> risa_workload::Workload {
    let sorted = WorkloadSpec::synthetic(10, 4).materialize();
    let mut vms = sorted.vms().to_vec();
    vms.swap(2, 7); // break the order, keep ids/fields valid
    let vms_json = serde_json::to_string(&vms).unwrap();
    let json = format!("{{\"name\":\"tampered\",\"vms\":{vms_json}}}");
    risa_workload::Workload::from_json(&json).unwrap()
}

/// The legacy oracle path deliberately pushes every arrival through the
/// FEL and never requires sortedness — it must keep accepting unsorted
/// traces (that is its job), even in debug builds.
#[test]
fn legacy_path_accepts_unsorted_traces() {
    let report = SimulationBuilder::new()
        .workload(WorkloadSpec::Trace(tampered_trace()))
        .legacy_arrival_path(true)
        .build()
        .run();
    assert_eq!(report.total_vms, 10);
    assert_eq!(report.admitted, 10);
}
