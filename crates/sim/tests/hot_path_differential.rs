//! Old-path vs new-path differential for the single-run hot loop.
//!
//! PR 5 rebuilt the engine's event delivery: arrivals stream from a
//! pre-sorted cursor instead of being pushed into the future-event list,
//! the FEL backend is pluggable (heap oracle vs calendar queue), and
//! scheduler timing is amortized. None of that may change *behavior*: this
//! suite replays canonical traces (a saturating synthetic run and
//! Azure-7500) through the **legacy engine configuration** (every arrival
//! pushed through a heap FEL — the pre-PR5 code path, kept as
//! `SimulationBuilder::legacy_arrival_path`) and the new path under *both*
//! FEL backends, asserting byte-identical `RunReport`s and event dispatch
//! orders, at 1 and 8 worker threads.
//!
//! PR 6 added a third lane to the same differential: the **streaming
//! arrival pipeline** (`ArrivalMode::Streaming`) generates the trace
//! shard-by-shard during the run instead of materializing it, and must
//! also be byte-identical — same reports, same dispatch order, both FEL
//! backends, 1 and 8 threads.
//!
//! PR 7 added the fault-injection lane: the canonical **churn** scenario
//! (rack failures with evacuation, trunk/transceiver flaps) must be
//! byte-identical across FEL backends, arrival pipelines, and pool sizes
//! too. The faults-free legs pin `.faults_off()` so the `RISA_FAULTS=1`
//! CI leg cannot change what they measure.
//!
//! PR 9 added the checkpoint/restore lane: a run snapshotted at a
//! simulated time `T`, serialized to JSON, and resumed must replay into
//! the **byte-identical** report and event dispatch order the
//! uninterrupted run produces — across FEL backends, arrival pipelines,
//! pool sizes, and faults on/off. A second new lane drives the chunked
//! CSV trace-file reader (`WorkloadSpec::TraceCsv`) through the
//! streaming pipeline and pins it to the generator run's bytes.
//!
//! PR 10 added the **optimistic parallel executor** lane
//! (`ExecMode::Speculative`): arrival decisions speculated on the pool
//! and committed serially in canonical order must replay into the
//! sequential engine's exact bytes — report JSON (modulo the
//! speculation counter block, which only that mode emits) **and** event
//! dispatch order — across both canonical traces, FEL backends, arrival
//! pipelines, faults off/on, and 1 vs 8 pool threads, including through
//! a checkpoint/resume split.
//!
//! CI runs this file under `RISA_FEL=heap` / `RISA_FEL=calendar`,
//! `RISA_ARRIVALS=streaming`, `RISA_FAULTS=1` and `RISA_EXEC=speculative`
//! so no env toggle can rot.

use rayon::with_num_threads;
use risa_sim::{
    Algorithm, ArrivalMode, Checkpoint, DdcSimulation, ExecMode, FaultSpec, FelKind, RunOutcome,
    RunReport, SimulationBuilder, WorkloadSpec,
};
use risa_workload::{AzureSubset, SyntheticConfig};

/// The two canonical traces: a synthetic run that saturates the paper
/// cluster (drops exercised) and the largest Azure slice.
fn canonical_specs() -> Vec<(&'static str, WorkloadSpec)> {
    vec![
        (
            "synthetic-6000-saturating",
            WorkloadSpec::Synthetic(SyntheticConfig::small(6000, 9)),
        ),
        ("azure-7500", WorkloadSpec::azure(AzureSubset::N7500, 2023)),
    ]
}

/// Run one configuration to completion, returning the canonicalized
/// report (wall-clock zeroed — the one nondeterministic field) and the
/// full event dispatch order.
fn run(spec: &WorkloadSpec, algo: Algorithm, legacy: bool, fel: FelKind) -> (String, String) {
    run_mode(spec, algo, legacy, fel, ArrivalMode::Materialized)
}

fn run_mode(
    spec: &WorkloadSpec,
    algo: Algorithm,
    legacy: bool,
    fel: FelKind,
    arrivals: ArrivalMode,
) -> (String, String) {
    let mut b = SimulationBuilder::new()
        .algorithm(algo)
        .workload(spec.clone())
        .fel(fel)
        .arrivals(arrivals)
        .faults_off()
        .legacy_arrival_path(legacy);
    if legacy {
        // The pre-PR5 engine also timed every scheduling call.
        b = b.sched_timing_batch(1);
    }
    let mut sim = b.build();
    sim.enable_trace(20_000);
    let mut report: RunReport = sim.run();
    report.sched_seconds = 0.0;
    let json = serde_json::to_string(&report).expect("report serializes");
    let order = sim.trace().expect("trace enabled").dump();
    (json, order)
}

/// Tentpole acceptance: legacy and two-lane paths agree byte-for-byte on
/// reports *and* dispatch order, for both FEL backends.
#[test]
fn legacy_and_two_lane_paths_are_byte_identical() {
    for (name, spec) in canonical_specs() {
        for algo in [Algorithm::Risa, Algorithm::Nalb] {
            let (legacy_report, legacy_order) = run(&spec, algo, true, FelKind::Heap);
            for fel in FelKind::ALL {
                let (report, order) = run(&spec, algo, false, fel);
                assert_eq!(
                    legacy_report, report,
                    "{name}/{algo}/{fel}: RunReport diverged from the legacy engine"
                );
                assert_eq!(
                    legacy_order, order,
                    "{name}/{algo}/{fel}: event dispatch order diverged"
                );
            }
        }
    }
}

/// Thread count must not leak into the hot path: the same configuration
/// at 1 and 8 pool threads (generation is sharded; the DES loop itself is
/// single-threaded) produces identical bytes.
#[test]
fn reports_identical_at_1_and_8_jobs() {
    for (name, spec) in canonical_specs() {
        for fel in FelKind::ALL {
            let go = || run(&spec, Algorithm::Risa, false, fel);
            let one = with_num_threads(1, go);
            let eight = with_num_threads(8, go);
            assert_eq!(one, eight, "{name}/{fel}: --jobs changed the run");
        }
    }
}

/// The two-lane queue's core promise: the FEL never holds the trace, only
/// in-flight departures — peak FEL length is bounded by peak resident VMs
/// and stays far below the total VM count.
#[test]
fn peak_fel_is_resident_bounded_on_10k_run() {
    for fel in FelKind::ALL {
        let mut sim = SimulationBuilder::new()
            .algorithm(Algorithm::Risa)
            .workload(WorkloadSpec::Synthetic(SyntheticConfig::small(10_000, 7)))
            .fel(fel)
            .faults_off()
            .build();
        sim.run();
        let peak_fel = sim.peak_fel_len();
        let peak_resident = sim.world().peak_resident() as usize;
        assert!(peak_resident > 0);
        assert!(
            peak_fel <= peak_resident,
            "{fel}: peak FEL {peak_fel} exceeds peak resident {peak_resident}"
        );
        assert!(
            peak_fel < 10_000 / 4,
            "{fel}: peak FEL {peak_fel} is not ≪ the 10k trace length"
        );
    }
}

/// The legacy path, by contrast, *does* hold the whole trace in the FEL —
/// the contrast that proves the two-lane claim isn't vacuous.
#[test]
fn legacy_path_peaks_at_trace_length() {
    let n = 2_000u32;
    let mut sim = SimulationBuilder::new()
        .workload(WorkloadSpec::Synthetic(SyntheticConfig::small(n, 7)))
        .legacy_arrival_path(true)
        .faults_off()
        .build();
    sim.run();
    assert!(sim.peak_fel_len() >= n as usize);
}

/// `RISA_FEL` (read when the builder gets no explicit `.fel()`) selects
/// the backend; the CI legs exercise both values end to end.
#[test]
fn builder_default_backend_follows_env() {
    let expected = FelKind::from_env();
    let sim = SimulationBuilder::new()
        .workload(WorkloadSpec::synthetic(10, 1))
        .build();
    assert_eq!(sim.fel_backend(), expected);
}

/// PR 6 tentpole acceptance: the **streaming** pipeline — trace generated
/// shard-by-shard during the run, nothing materialized — produces
/// byte-identical `RunReport` JSON and event dispatch order on both
/// canonical traces, under both FEL backends.
#[test]
fn streaming_pipeline_is_byte_identical_to_materialized() {
    for (name, spec) in canonical_specs() {
        for algo in [Algorithm::Risa, Algorithm::Nalb] {
            let (m_report, m_order) =
                run_mode(&spec, algo, false, FelKind::Heap, ArrivalMode::Materialized);
            for fel in FelKind::ALL {
                let (report, order) = run_mode(&spec, algo, false, fel, ArrivalMode::Streaming);
                assert_eq!(
                    m_report, report,
                    "{name}/{algo}/{fel}: streaming RunReport diverged"
                );
                assert_eq!(
                    m_order, order,
                    "{name}/{algo}/{fel}: streaming dispatch order diverged"
                );
            }
        }
    }
}

/// Thread count must not leak into the streaming pipeline either: shard
/// prefetch moves *where* shards generate, never what they contain.
#[test]
fn streaming_reports_identical_at_1_and_8_jobs() {
    for (name, spec) in canonical_specs() {
        for fel in FelKind::ALL {
            let go = || run_mode(&spec, Algorithm::Risa, false, fel, ArrivalMode::Streaming);
            let one = with_num_threads(1, go);
            let eight = with_num_threads(8, go);
            assert_eq!(one, eight, "{name}/{fel}: --jobs changed the streaming run");
        }
    }
}

/// PR 7 tentpole acceptance: the canonical churn scenario — rack
/// failures evacuating residents through the live scheduler, trunk and
/// transceiver flaps retracting bandwidth — is byte-identical (report
/// JSON **and** event dispatch order) across both FEL backends, both
/// arrival pipelines, and 1 vs 8 pool threads, on both canonical traces.
/// Fault onsets ride the same two-lane FEL as everything else, so this
/// is the end-to-end proof that churn never breaks run reproducibility.
#[test]
fn churn_scenario_is_byte_identical_across_modes_and_jobs() {
    for (name, spec) in canonical_specs() {
        let go = |fel: FelKind, arrivals: ArrivalMode| {
            let mut sim = SimulationBuilder::new()
                .algorithm(Algorithm::Risa)
                .workload(spec.clone())
                .faults(FaultSpec::canonical())
                .fel(fel)
                .arrivals(arrivals)
                .build();
            sim.enable_trace(40_000);
            let mut report: RunReport = sim.run();
            report.sched_seconds = 0.0;
            let json = serde_json::to_string(&report).expect("report serializes");
            (json, sim.trace().expect("trace enabled").dump())
        };
        let base = with_num_threads(1, || go(FelKind::Heap, ArrivalMode::Materialized));
        assert!(
            base.0.contains("\"faults\""),
            "{name}: churn run must report resilience metrics"
        );
        for fel in FelKind::ALL {
            for arrivals in [ArrivalMode::Materialized, ArrivalMode::Streaming] {
                for jobs in [1usize, 8] {
                    let got = with_num_threads(jobs, || go(fel, arrivals));
                    assert_eq!(
                        base, got,
                        "{name}/{fel}/{arrivals:?}/jobs={jobs}: churn run diverged"
                    );
                }
            }
        }
    }
}

/// Trace capacity large enough that no lane of the checkpoint
/// differential ever evicts — prefix/suffix stitching needs every entry.
const TRACE_CAP: usize = 64_000;

fn build_cfg(
    spec: &WorkloadSpec,
    fel: FelKind,
    arrivals: ArrivalMode,
    faults: bool,
) -> DdcSimulation {
    let b = SimulationBuilder::new()
        .algorithm(Algorithm::Risa)
        .workload(spec.clone())
        .fel(fel)
        .arrivals(arrivals);
    if faults {
        b.faults(FaultSpec::canonical())
    } else {
        b.faults_off()
    }
    .build()
}

/// Full uninterrupted run: canonical report JSON, every dispatched event
/// rendered, and the simulated duration (for picking a mid-run horizon).
/// Collapse the speculation counters to their horizon-invariant
/// combinations. Under `RISA_EXEC=speculative` the builder-default runs
/// of the checkpoint matrix carry a `SpeculationReport`, and window
/// composition is horizon-dependent (see its doc): the `run_until` split
/// truncates a window at the checkpoint boundary, shifting `windows` and
/// the fast/rollback split — while `speculated`, `serial_events`,
/// fast + rollback, and the total event count stay fixed. (The dedicated
/// `checkpoint_under_speculation_resumes_byte_identically` leg pins those
/// invariants explicitly with the counters un-collapsed.)
fn collapse_speculation(report: &mut RunReport) {
    if let Some(s) = report.speculation.as_mut() {
        s.windows = 0;
        s.window_events = s.speculated + s.serial_events;
        s.rollbacks = s.speculated;
        s.fast_commits = 0;
    }
}

fn uninterrupted(
    spec: &WorkloadSpec,
    fel: FelKind,
    arrivals: ArrivalMode,
    faults: bool,
) -> (String, Vec<String>, f64) {
    let mut sim = build_cfg(spec, fel, arrivals, faults);
    sim.enable_trace(TRACE_CAP);
    let mut report = sim.run();
    report.sched_seconds = 0.0;
    collapse_speculation(&mut report);
    let trace = sim.trace().expect("trace enabled");
    assert_eq!(trace.recorded(), trace.len() as u64, "trace evicted");
    let events = trace.entries().map(ToString::to_string).collect();
    (
        serde_json::to_string(&report).expect("report serializes"),
        events,
        report.sim_duration,
    )
}

/// The same run split in two: run to `t`, checkpoint, serialize to JSON,
/// load it back, resume, run to completion. Returns the report and the
/// stitched prefix + suffix event sequence.
fn checkpointed(
    spec: &WorkloadSpec,
    fel: FelKind,
    arrivals: ArrivalMode,
    faults: bool,
    t: f64,
) -> (String, Vec<String>) {
    let mut first = build_cfg(spec, fel, arrivals, faults);
    first.enable_trace(TRACE_CAP);
    assert_eq!(
        first.run_until(t),
        RunOutcome::HorizonReached,
        "horizon must land mid-run"
    );
    let json = first.checkpoint().to_json();
    let cp = Checkpoint::from_json(&json).expect("checkpoint JSON round-trips");
    let mut resumed = cp.resume();
    resumed.enable_trace(TRACE_CAP);
    let mut report = resumed.run();
    report.sched_seconds = 0.0;
    collapse_speculation(&mut report);

    let prefix = first.trace().expect("trace enabled");
    assert_eq!(prefix.recorded(), prefix.len() as u64, "prefix evicted");
    let suffix = resumed.trace().expect("trace enabled");
    assert_eq!(
        suffix.recorded() - cp.events_dispatched(),
        suffix.len() as u64,
        "suffix evicted"
    );
    let mut events: Vec<String> = prefix.entries().map(ToString::to_string).collect();
    events.extend(suffix.entries().map(ToString::to_string));
    (
        serde_json::to_string(&report).expect("report serializes"),
        events,
    )
}

/// PR 9 tentpole acceptance: checkpoint-at-T / JSON round-trip / resume
/// replays into the uninterrupted run's exact bytes — report JSON **and**
/// the full event sequence (prefix recorded before the snapshot plus
/// suffix recorded after resume, with continuous sequence numbers) — on
/// both canonical traces, across both FEL backends, both arrival
/// pipelines, 1 vs 8 pool threads, and faults off/on.
#[test]
fn checkpoint_resume_is_byte_identical_across_modes_and_jobs() {
    for (name, spec) in canonical_specs() {
        for faults in [false, true] {
            // One uninterrupted baseline per fault setting; cross-config
            // byte-identity of uninterrupted runs is pinned by the other
            // differential legs, so every resumed run can compare against
            // this single reference transitively.
            let (base_report, base_events, duration) = with_num_threads(1, || {
                uninterrupted(&spec, FelKind::Heap, ArrivalMode::Materialized, faults)
            });
            let t = duration * 0.4;
            for fel in FelKind::ALL {
                for arrivals in [ArrivalMode::Materialized, ArrivalMode::Streaming] {
                    for jobs in [1usize, 8] {
                        let (report, events) = with_num_threads(jobs, || {
                            checkpointed(&spec, fel, arrivals, faults, t)
                        });
                        assert_eq!(
                            base_report, report,
                            "{name}/{fel}/{arrivals:?}/faults={faults}/jobs={jobs}: \
                             resumed RunReport diverged from the uninterrupted run"
                        );
                        assert_eq!(
                            base_events, events,
                            "{name}/{fel}/{arrivals:?}/faults={faults}/jobs={jobs}: \
                             resumed event sequence diverged from the uninterrupted run"
                        );
                    }
                }
            }
        }
    }
}

/// PR 9 streaming-reader acceptance: a `WorkloadSpec::TraceCsv` run reads
/// the trace file in shard-sized chunks through the streaming pipeline —
/// `arrival_mode()` reports `Streaming`, peak buffered VMs stay bounded
/// by two shards — and its report and dispatch order are byte-identical
/// to the generator-backed run that produced the file.
#[test]
fn trace_csv_file_streams_chunked_and_matches_generator_run() {
    let spec = WorkloadSpec::Synthetic(SyntheticConfig::small(6000, 9));
    let (base_json, base_order) = run_mode(
        &spec,
        Algorithm::Risa,
        false,
        FelKind::Heap,
        ArrivalMode::Materialized,
    );

    let w = spec.materialize();
    let path = std::env::temp_dir().join(format!("risa_diff_trace_{}.csv", std::process::id()));
    std::fs::write(&path, risa_workload::csv::to_csv(&w)).expect("write trace file");
    let csv_spec = WorkloadSpec::TraceCsv {
        name: w.name().to_string(),
        path: path.display().to_string(),
    };

    for fel in FelKind::ALL {
        let (json, order) = run_mode(
            &csv_spec,
            Algorithm::Risa,
            false,
            fel,
            ArrivalMode::Streaming,
        );
        assert_eq!(base_json, json, "{fel}: TraceCsv streaming report diverged");
        assert_eq!(base_order, order, "{fel}: TraceCsv dispatch order diverged");
    }

    let mut sim = build_cfg(&csv_spec, FelKind::Heap, ArrivalMode::Streaming, false);
    assert_eq!(
        sim.arrival_mode(),
        ArrivalMode::Streaming,
        "CSV trace files must stream, not fall back to materialized"
    );
    sim.run();
    let peak = sim
        .peak_buffered_arrivals()
        .expect("streaming runs report buffered high-water mark");
    assert!(
        peak <= 2 * risa_workload::shard::SHARD_SIZE as usize,
        "peak buffered VMs {peak} exceeds the two-shard bound"
    );
    std::fs::remove_file(&path).ok();
}

/// `RISA_ARRIVALS` (read when the builder gets no explicit `.arrivals()`)
/// selects the pipeline; the CI streaming leg exercises it end to end.
#[test]
fn builder_default_arrival_mode_follows_env() {
    let expected = ArrivalMode::from_env();
    let sim = SimulationBuilder::new()
        .workload(WorkloadSpec::synthetic(10, 1))
        .build();
    assert_eq!(sim.arrival_mode(), expected);
}

/// `RISA_EXEC` (read when the builder gets no explicit `.exec()`) selects
/// the executor; the CI speculative leg exercises it end to end.
#[test]
fn builder_default_exec_follows_env() {
    let expected = ExecMode::from_env();
    let sim = SimulationBuilder::new()
        .workload(WorkloadSpec::synthetic(10, 1))
        .build();
    assert_eq!(sim.exec_mode(), expected);
}

/// One run under an explicit executor; the speculation counter block is
/// stripped (it is the one report key only the speculative mode emits)
/// and the wall-clock field zeroed, so sequential and speculative output
/// can be compared byte-for-byte.
fn run_exec(
    spec: &WorkloadSpec,
    fel: FelKind,
    arrivals: ArrivalMode,
    faults: bool,
    exec: ExecMode,
) -> (String, String) {
    let b = SimulationBuilder::new()
        .algorithm(Algorithm::Risa)
        .workload(spec.clone())
        .fel(fel)
        .arrivals(arrivals)
        .exec(exec);
    let mut sim = if faults {
        b.faults(FaultSpec::canonical())
    } else {
        b.faults_off()
    }
    .build();
    sim.enable_trace(40_000);
    let mut report: RunReport = sim.run();
    report.sched_seconds = 0.0;
    assert_eq!(
        report.speculation.take().is_some(),
        exec == ExecMode::Speculative,
        "the speculation block rides exactly on speculative runs"
    );
    let json = serde_json::to_string(&report).expect("report serializes");
    (json, sim.trace().expect("trace enabled").dump())
}

/// PR 10 tentpole acceptance: the optimistic parallel executor replays
/// into the sequential engine's exact bytes — report JSON **and** full
/// event dispatch order — on both canonical traces, across both FEL
/// backends, both arrival pipelines, faults off/on, and 1 vs 8 pool
/// threads.
#[test]
fn speculative_execution_is_byte_identical_across_modes_and_jobs() {
    for (name, spec) in canonical_specs() {
        for faults in [false, true] {
            // One sequential baseline per fault setting; the other legs
            // pin sequential cross-config identity, so every speculative
            // run compares against this reference transitively.
            let base = with_num_threads(1, || {
                run_exec(
                    &spec,
                    FelKind::Heap,
                    ArrivalMode::Materialized,
                    faults,
                    ExecMode::Sequential,
                )
            });
            for fel in FelKind::ALL {
                for arrivals in [ArrivalMode::Materialized, ArrivalMode::Streaming] {
                    for jobs in [1usize, 8] {
                        let got = with_num_threads(jobs, || {
                            run_exec(&spec, fel, arrivals, faults, ExecMode::Speculative)
                        });
                        assert_eq!(
                            base, got,
                            "{name}/{fel}/{arrivals:?}/faults={faults}/jobs={jobs}: \
                             speculative run diverged from the sequential engine"
                        );
                    }
                }
            }
        }
    }
}

/// Checkpoint under speculation: a speculative run snapshotted mid-run
/// (windows fully commit before control returns, so the snapshot is a
/// clean sequential-equivalent state), serialized to JSON, and resumed
/// must replay into the uninterrupted speculative run's exact bytes.
/// The one sanctioned difference is the `fast_commits`/`rollbacks`
/// *split*: the horizon truncates a window at the boundary, and a
/// shorter window accumulates less dirt (see the `SpeculationReport`
/// docs) — the totals and every simulation result still match.
#[test]
fn checkpoint_under_speculation_resumes_byte_identically() {
    let spec = WorkloadSpec::Synthetic(SyntheticConfig::small(6000, 9));
    let mut base = SimulationBuilder::new()
        .algorithm(Algorithm::Risa)
        .workload(spec.clone())
        .exec(ExecMode::Speculative)
        .faults_off()
        .build();
    base.enable_trace(TRACE_CAP);
    let mut base_report = base.run();
    base_report.sched_seconds = 0.0;
    let base_spec = base_report.speculation.take().expect("counters present");
    let base_json = serde_json::to_string(&base_report).expect("report serializes");
    let base_trace = base.trace().expect("trace enabled");
    let base_events: Vec<String> = base_trace.entries().map(ToString::to_string).collect();
    let t = base_report.sim_duration * 0.4;

    let mut first = SimulationBuilder::new()
        .algorithm(Algorithm::Risa)
        .workload(spec)
        .exec(ExecMode::Speculative)
        .faults_off()
        .build();
    first.enable_trace(TRACE_CAP);
    assert_eq!(first.run_until(t), RunOutcome::HorizonReached);
    let cp = Checkpoint::from_json(&first.checkpoint().to_json()).expect("round-trips");
    let mut resumed = cp.resume();
    assert_eq!(
        resumed.exec_mode(),
        ExecMode::Speculative,
        "the recipe pins the executor across resume"
    );
    resumed.enable_trace(TRACE_CAP);
    let mut report = resumed.run();
    report.sched_seconds = 0.0;
    let resumed_spec = report.speculation.take().expect("counters survive resume");
    let mut events: Vec<String> = first
        .trace()
        .expect("trace enabled")
        .entries()
        .map(ToString::to_string)
        .collect();
    events.extend(
        resumed
            .trace()
            .expect("trace enabled")
            .entries()
            .map(ToString::to_string),
    );
    assert_eq!(
        base_json,
        serde_json::to_string(&report).expect("report serializes"),
        "resumed speculative report diverged"
    );
    assert_eq!(
        base_events, events,
        "resumed speculative event sequence diverged"
    );
    // Horizon-invariant counter totals: same arrivals speculated, every
    // one still accounted; only the per-window fast/rollback split may
    // shift with the truncated window boundary.
    assert_eq!(base_spec.speculated, resumed_spec.speculated);
    assert_eq!(
        base_spec.fast_commits + base_spec.rollbacks,
        resumed_spec.fast_commits + resumed_spec.rollbacks
    );
    assert!(resumed_spec.windows > 0 && resumed_spec.serial_events > 0);
}
