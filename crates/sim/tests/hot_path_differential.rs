//! Old-path vs new-path differential for the single-run hot loop.
//!
//! PR 5 rebuilt the engine's event delivery: arrivals stream from a
//! pre-sorted cursor instead of being pushed into the future-event list,
//! the FEL backend is pluggable (heap oracle vs calendar queue), and
//! scheduler timing is amortized. None of that may change *behavior*: this
//! suite replays canonical traces (a saturating synthetic run and
//! Azure-7500) through the **legacy engine configuration** (every arrival
//! pushed through a heap FEL — the pre-PR5 code path, kept as
//! `SimulationBuilder::legacy_arrival_path`) and the new path under *both*
//! FEL backends, asserting byte-identical `RunReport`s and event dispatch
//! orders, at 1 and 8 worker threads.
//!
//! PR 6 added a third lane to the same differential: the **streaming
//! arrival pipeline** (`ArrivalMode::Streaming`) generates the trace
//! shard-by-shard during the run instead of materializing it, and must
//! also be byte-identical — same reports, same dispatch order, both FEL
//! backends, 1 and 8 threads.
//!
//! PR 7 added the fault-injection lane: the canonical **churn** scenario
//! (rack failures with evacuation, trunk/transceiver flaps) must be
//! byte-identical across FEL backends, arrival pipelines, and pool sizes
//! too. The faults-free legs pin `.faults_off()` so the `RISA_FAULTS=1`
//! CI leg cannot change what they measure.
//!
//! CI runs this file under `RISA_FEL=heap` / `RISA_FEL=calendar`,
//! `RISA_ARRIVALS=streaming` and `RISA_FAULTS=1` so no env toggle can rot.

use rayon::with_num_threads;
use risa_sim::{
    Algorithm, ArrivalMode, FaultSpec, FelKind, RunReport, SimulationBuilder, WorkloadSpec,
};
use risa_workload::{AzureSubset, SyntheticConfig};

/// The two canonical traces: a synthetic run that saturates the paper
/// cluster (drops exercised) and the largest Azure slice.
fn canonical_specs() -> Vec<(&'static str, WorkloadSpec)> {
    vec![
        (
            "synthetic-6000-saturating",
            WorkloadSpec::Synthetic(SyntheticConfig::small(6000, 9)),
        ),
        ("azure-7500", WorkloadSpec::azure(AzureSubset::N7500, 2023)),
    ]
}

/// Run one configuration to completion, returning the canonicalized
/// report (wall-clock zeroed — the one nondeterministic field) and the
/// full event dispatch order.
fn run(spec: &WorkloadSpec, algo: Algorithm, legacy: bool, fel: FelKind) -> (String, String) {
    run_mode(spec, algo, legacy, fel, ArrivalMode::Materialized)
}

fn run_mode(
    spec: &WorkloadSpec,
    algo: Algorithm,
    legacy: bool,
    fel: FelKind,
    arrivals: ArrivalMode,
) -> (String, String) {
    let mut b = SimulationBuilder::new()
        .algorithm(algo)
        .workload(spec.clone())
        .fel(fel)
        .arrivals(arrivals)
        .faults_off()
        .legacy_arrival_path(legacy);
    if legacy {
        // The pre-PR5 engine also timed every scheduling call.
        b = b.sched_timing_batch(1);
    }
    let mut sim = b.build();
    sim.enable_trace(20_000);
    let mut report: RunReport = sim.run();
    report.sched_seconds = 0.0;
    let json = serde_json::to_string(&report).expect("report serializes");
    let order = sim.trace().expect("trace enabled").dump();
    (json, order)
}

/// Tentpole acceptance: legacy and two-lane paths agree byte-for-byte on
/// reports *and* dispatch order, for both FEL backends.
#[test]
fn legacy_and_two_lane_paths_are_byte_identical() {
    for (name, spec) in canonical_specs() {
        for algo in [Algorithm::Risa, Algorithm::Nalb] {
            let (legacy_report, legacy_order) = run(&spec, algo, true, FelKind::Heap);
            for fel in FelKind::ALL {
                let (report, order) = run(&spec, algo, false, fel);
                assert_eq!(
                    legacy_report, report,
                    "{name}/{algo}/{fel}: RunReport diverged from the legacy engine"
                );
                assert_eq!(
                    legacy_order, order,
                    "{name}/{algo}/{fel}: event dispatch order diverged"
                );
            }
        }
    }
}

/// Thread count must not leak into the hot path: the same configuration
/// at 1 and 8 pool threads (generation is sharded; the DES loop itself is
/// single-threaded) produces identical bytes.
#[test]
fn reports_identical_at_1_and_8_jobs() {
    for (name, spec) in canonical_specs() {
        for fel in FelKind::ALL {
            let go = || run(&spec, Algorithm::Risa, false, fel);
            let one = with_num_threads(1, go);
            let eight = with_num_threads(8, go);
            assert_eq!(one, eight, "{name}/{fel}: --jobs changed the run");
        }
    }
}

/// The two-lane queue's core promise: the FEL never holds the trace, only
/// in-flight departures — peak FEL length is bounded by peak resident VMs
/// and stays far below the total VM count.
#[test]
fn peak_fel_is_resident_bounded_on_10k_run() {
    for fel in FelKind::ALL {
        let mut sim = SimulationBuilder::new()
            .algorithm(Algorithm::Risa)
            .workload(WorkloadSpec::Synthetic(SyntheticConfig::small(10_000, 7)))
            .fel(fel)
            .faults_off()
            .build();
        sim.run();
        let peak_fel = sim.peak_fel_len();
        let peak_resident = sim.world().peak_resident() as usize;
        assert!(peak_resident > 0);
        assert!(
            peak_fel <= peak_resident,
            "{fel}: peak FEL {peak_fel} exceeds peak resident {peak_resident}"
        );
        assert!(
            peak_fel < 10_000 / 4,
            "{fel}: peak FEL {peak_fel} is not ≪ the 10k trace length"
        );
    }
}

/// The legacy path, by contrast, *does* hold the whole trace in the FEL —
/// the contrast that proves the two-lane claim isn't vacuous.
#[test]
fn legacy_path_peaks_at_trace_length() {
    let n = 2_000u32;
    let mut sim = SimulationBuilder::new()
        .workload(WorkloadSpec::Synthetic(SyntheticConfig::small(n, 7)))
        .legacy_arrival_path(true)
        .faults_off()
        .build();
    sim.run();
    assert!(sim.peak_fel_len() >= n as usize);
}

/// `RISA_FEL` (read when the builder gets no explicit `.fel()`) selects
/// the backend; the CI legs exercise both values end to end.
#[test]
fn builder_default_backend_follows_env() {
    let expected = FelKind::from_env();
    let sim = SimulationBuilder::new()
        .workload(WorkloadSpec::synthetic(10, 1))
        .build();
    assert_eq!(sim.fel_backend(), expected);
}

/// PR 6 tentpole acceptance: the **streaming** pipeline — trace generated
/// shard-by-shard during the run, nothing materialized — produces
/// byte-identical `RunReport` JSON and event dispatch order on both
/// canonical traces, under both FEL backends.
#[test]
fn streaming_pipeline_is_byte_identical_to_materialized() {
    for (name, spec) in canonical_specs() {
        for algo in [Algorithm::Risa, Algorithm::Nalb] {
            let (m_report, m_order) =
                run_mode(&spec, algo, false, FelKind::Heap, ArrivalMode::Materialized);
            for fel in FelKind::ALL {
                let (report, order) = run_mode(&spec, algo, false, fel, ArrivalMode::Streaming);
                assert_eq!(
                    m_report, report,
                    "{name}/{algo}/{fel}: streaming RunReport diverged"
                );
                assert_eq!(
                    m_order, order,
                    "{name}/{algo}/{fel}: streaming dispatch order diverged"
                );
            }
        }
    }
}

/// Thread count must not leak into the streaming pipeline either: shard
/// prefetch moves *where* shards generate, never what they contain.
#[test]
fn streaming_reports_identical_at_1_and_8_jobs() {
    for (name, spec) in canonical_specs() {
        for fel in FelKind::ALL {
            let go = || run_mode(&spec, Algorithm::Risa, false, fel, ArrivalMode::Streaming);
            let one = with_num_threads(1, go);
            let eight = with_num_threads(8, go);
            assert_eq!(one, eight, "{name}/{fel}: --jobs changed the streaming run");
        }
    }
}

/// PR 7 tentpole acceptance: the canonical churn scenario — rack
/// failures evacuating residents through the live scheduler, trunk and
/// transceiver flaps retracting bandwidth — is byte-identical (report
/// JSON **and** event dispatch order) across both FEL backends, both
/// arrival pipelines, and 1 vs 8 pool threads, on both canonical traces.
/// Fault onsets ride the same two-lane FEL as everything else, so this
/// is the end-to-end proof that churn never breaks run reproducibility.
#[test]
fn churn_scenario_is_byte_identical_across_modes_and_jobs() {
    for (name, spec) in canonical_specs() {
        let go = |fel: FelKind, arrivals: ArrivalMode| {
            let mut sim = SimulationBuilder::new()
                .algorithm(Algorithm::Risa)
                .workload(spec.clone())
                .faults(FaultSpec::canonical())
                .fel(fel)
                .arrivals(arrivals)
                .build();
            sim.enable_trace(40_000);
            let mut report: RunReport = sim.run();
            report.sched_seconds = 0.0;
            let json = serde_json::to_string(&report).expect("report serializes");
            (json, sim.trace().expect("trace enabled").dump())
        };
        let base = with_num_threads(1, || go(FelKind::Heap, ArrivalMode::Materialized));
        assert!(
            base.0.contains("\"faults\""),
            "{name}: churn run must report resilience metrics"
        );
        for fel in FelKind::ALL {
            for arrivals in [ArrivalMode::Materialized, ArrivalMode::Streaming] {
                for jobs in [1usize, 8] {
                    let got = with_num_threads(jobs, || go(fel, arrivals));
                    assert_eq!(
                        base, got,
                        "{name}/{fel}/{arrivals:?}/jobs={jobs}: churn run diverged"
                    );
                }
            }
        }
    }
}

/// `RISA_ARRIVALS` (read when the builder gets no explicit `.arrivals()`)
/// selects the pipeline; the CI streaming leg exercises it end to end.
#[test]
fn builder_default_arrival_mode_follows_env() {
    let expected = ArrivalMode::from_env();
    let sim = SimulationBuilder::new()
        .workload(WorkloadSpec::synthetic(10, 1))
        .build();
    assert_eq!(sim.arrival_mode(), expected);
}
