//! Conflict-detector property battery for the optimistic parallel
//! executor (`ExecMode::Speculative`).
//!
//! The executor speculates arrival decisions in parallel against the
//! window-start state and commits serially in canonical order, rolling
//! back any speculation whose read set intersects dirt left by earlier
//! commits in the window. The differential suite pins the headline
//! byte-identity matrix; this battery attacks the conflict detector
//! itself, the part whose failure mode is *silent* (a missed conflict
//! admits a VM against stale state and only shows up as a diverged
//! report):
//!
//! * randomized (seeded, deterministic) run configurations against the
//!   sequential oracle — workload size, seed, algorithm, FEL backend and
//!   arrival pipeline all drawn from a fixed xorshift stream;
//! * forced-conflict scenarios: the saturating pool-spillover storm
//!   (every admit moves the shared round-robin cursor, so consecutive
//!   admits conflict by construction), rack-failure churn mid-window
//!   (fault events poison the window), and an underloaded all-admit
//!   burst (at most one intra-rack admit can fast-commit per window —
//!   the cursor dirt serializes the rest);
//! * counter identities: every speculated arrival either fast-commits or
//!   rolls back, counters are thread-count invariant, and a window that
//!   conflicts wall-to-wall degrades to exactly the serial execution.

use rayon::with_num_threads;
use risa_sim::{
    Algorithm, ArrivalMode, ExecMode, FaultSpec, FelKind, RunReport, SimulationBuilder,
    SpeculationReport, WorkloadSpec,
};
use risa_workload::SyntheticConfig;

/// Deterministic xorshift64* stream — the battery's "random" source, so
/// every run of the suite exercises the same configurations.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn pick(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// One run; returns (canonical report JSON with the wall-clock field
/// zeroed and the speculation block stripped, dispatch order, counters).
fn run(
    spec: &WorkloadSpec,
    algo: Algorithm,
    fel: FelKind,
    arrivals: ArrivalMode,
    faults: bool,
    exec: ExecMode,
) -> (String, String, Option<SpeculationReport>) {
    let b = SimulationBuilder::new()
        .algorithm(algo)
        .workload(spec.clone())
        .fel(fel)
        .arrivals(arrivals)
        .exec(exec);
    let mut sim = if faults {
        b.faults(FaultSpec::canonical())
    } else {
        b.faults_off()
    }
    .build();
    sim.enable_trace(40_000);
    let mut report: RunReport = sim.run();
    report.sched_seconds = 0.0;
    let counters = report.speculation.take();
    assert_eq!(
        counters.is_some(),
        exec == ExecMode::Speculative,
        "counters ride exactly on speculative runs"
    );
    let json = serde_json::to_string(&report).expect("report serializes");
    (json, sim.trace().expect("trace enabled").dump(), counters)
}

/// Every speculated arrival is accounted exactly once.
fn assert_counter_identity(s: &SpeculationReport) {
    assert_eq!(
        s.fast_commits + s.rollbacks,
        s.speculated,
        "speculation accounting leak: {s:?}"
    );
    assert!(s.windows > 0);
    // Every drained event is accounted as speculated-or-serial; events a
    // handler schedules *into* a window mid-commit are committed serially
    // on top of the drained count.
    assert!(s.speculated + s.serial_events >= s.window_events);
}

/// Randomized configurations against the sequential oracle: same report
/// bytes, same dispatch order, sane counters. Sizes stay small enough
/// for debug CI; the canonical saturating traces are covered by the
/// differential suite.
#[test]
fn randomized_windows_match_sequential_oracle() {
    let mut rng = Rng(0x5EED_CAFE_F00D_0001);
    for case in 0..10 {
        let n = 200 + rng.pick(1400) as u32;
        let seed = rng.next();
        let algo = Algorithm::ALL[rng.pick(Algorithm::ALL.len() as u64) as usize];
        let fel = FelKind::ALL[rng.pick(FelKind::ALL.len() as u64) as usize];
        let arrivals = ArrivalMode::ALL[rng.pick(ArrivalMode::ALL.len() as u64) as usize];
        let spec = WorkloadSpec::Synthetic(SyntheticConfig::small(n, seed));
        let (seq_json, seq_order, _) = run(&spec, algo, fel, arrivals, false, ExecMode::Sequential);
        let (spec_json, spec_order, counters) =
            run(&spec, algo, fel, arrivals, false, ExecMode::Speculative);
        assert_eq!(
            seq_json, spec_json,
            "case {case} (n={n} seed={seed:#x} {algo}/{fel}/{arrivals:?}): report diverged"
        );
        assert_eq!(
            seq_order, spec_order,
            "case {case} (n={n} seed={seed:#x} {algo}/{fel}/{arrivals:?}): dispatch order diverged"
        );
        assert_counter_identity(&counters.unwrap());
    }
}

/// Pool-spillover storm: the saturating trace drives the cluster to
/// drops, and every successful admit moves the shared round-robin
/// cursor — the densest conflict regime the workload model produces.
/// The run must still be byte-identical, with the conflict rate visible
/// in the counters (most speculations roll back).
#[test]
fn spillover_storm_rolls_back_but_stays_identical() {
    let spec = WorkloadSpec::Synthetic(SyntheticConfig::small(6000, 9));
    let (seq_json, seq_order, _) = run(
        &spec,
        Algorithm::Risa,
        FelKind::Heap,
        ArrivalMode::Materialized,
        false,
        ExecMode::Sequential,
    );
    let (spec_json, spec_order, counters) = run(
        &spec,
        Algorithm::Risa,
        FelKind::Heap,
        ArrivalMode::Materialized,
        false,
        ExecMode::Speculative,
    );
    assert_eq!(seq_json, spec_json, "spillover storm: report diverged");
    assert_eq!(seq_order, spec_order, "spillover storm: order diverged");
    let s = counters.unwrap();
    assert_counter_identity(&s);
    assert!(
        s.rollbacks > s.speculated / 2,
        "a saturating run must be conflict-dominated, got {s:?}"
    );
    assert!(
        s.fast_commits > 0,
        "drops before first dirt still fast-commit"
    );
}

/// Rack-failure churn mid-window: fault events poison the window dirt,
/// so every in-flight speculation behind them must roll back rather than
/// commit against a cluster that just lost a rack. Byte-identity against
/// the sequential churn run is the proof the poisoning is sound.
#[test]
fn rack_failure_mid_window_is_byte_identical() {
    let spec = WorkloadSpec::Synthetic(SyntheticConfig::small(6000, 9));
    for fel in FelKind::ALL {
        let (seq_json, seq_order, _) = run(
            &spec,
            Algorithm::Risa,
            fel,
            ArrivalMode::Materialized,
            true,
            ExecMode::Sequential,
        );
        let (spec_json, spec_order, counters) = run(
            &spec,
            Algorithm::Risa,
            fel,
            ArrivalMode::Materialized,
            true,
            ExecMode::Speculative,
        );
        assert_eq!(seq_json, spec_json, "{fel}: churn report diverged");
        assert_eq!(seq_order, spec_order, "{fel}: churn order diverged");
        let s = counters.unwrap();
        assert_counter_identity(&s);
        assert!(
            s.serial_events > 0,
            "fault onsets execute on the serial path: {s:?}"
        );
    }
}

/// All-conflicts degradation: on an underloaded all-admit burst every
/// intra-rack admit moves the cursor, so after the first fast commit in
/// a window every later interval read conflicts — the window degrades to
/// (at most one fast commit plus) serial re-execution. The sharp bound:
/// fast commits cannot exceed the window count.
#[test]
fn all_admit_burst_degrades_to_serial_per_window() {
    let spec = WorkloadSpec::Synthetic(SyntheticConfig::small(500, 3));
    let (seq_json, _, _) = run(
        &spec,
        Algorithm::Risa,
        FelKind::Heap,
        ArrivalMode::Materialized,
        false,
        ExecMode::Sequential,
    );
    let (spec_json, _, counters) = run(
        &spec,
        Algorithm::Risa,
        FelKind::Heap,
        ArrivalMode::Materialized,
        false,
        ExecMode::Speculative,
    );
    assert_eq!(seq_json, spec_json, "all-admit burst: report diverged");
    assert!(
        spec_json.contains("\"admitted\": 500") || spec_json.contains("\"admitted\":500"),
        "burst must be underloaded (all admitted): {spec_json}"
    );
    let s = counters.unwrap();
    assert_counter_identity(&s);
    assert!(
        s.fast_commits <= s.windows,
        "at most one admit can fast-commit per window once the cursor moved: {s:?}"
    );
    assert_eq!(
        s.rollbacks,
        s.speculated - s.fast_commits,
        "everything else degrades to serial re-execution: {s:?}"
    );
}

/// The counters are a workload property, not a machine property: fixed
/// chunking plus the serial canonical commit make the full report —
/// speculation block included — byte-identical at 1 and 8 pool threads.
#[test]
fn speculation_counters_are_thread_count_invariant() {
    let spec = WorkloadSpec::Synthetic(SyntheticConfig::small(3000, 11));
    let go = || {
        let mut sim = SimulationBuilder::new()
            .algorithm(Algorithm::Risa)
            .workload(spec.clone())
            .exec(ExecMode::Speculative)
            .faults_off()
            .build();
        let mut report = sim.run();
        report.sched_seconds = 0.0;
        serde_json::to_string(&report).expect("report serializes")
    };
    let one = with_num_threads(1, go);
    let eight = with_num_threads(8, go);
    assert!(one.contains("\"speculation\""));
    assert_eq!(one, eight, "pool width leaked into the speculation block");
}

/// K=1 exact scheduler timing under speculation: per-call durations are
/// measured on the workers and absorbed at commit, so the exact-mode
/// estimate must still be a positive measured total (the Figure 11/12
/// experiments rely on this field).
#[test]
fn exact_sched_timing_survives_speculation() {
    let mut sim = SimulationBuilder::new()
        .algorithm(Algorithm::Risa)
        .workload(WorkloadSpec::synthetic(400, 5))
        .sched_timing_batch(1)
        .exec(ExecMode::Speculative)
        .faults_off()
        .build();
    let report = sim.run();
    assert!(
        report.sched_seconds > 0.0,
        "K=1 speculative runs must report measured scheduler time"
    );
    assert_counter_identity(&report.speculation.unwrap());
}
