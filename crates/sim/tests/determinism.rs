//! Parallelism must be invisible in the results.
//!
//! The `rayon` stand-in became a real scoped-thread pool in PR 2; the
//! contract (ROADMAP "Architecture") is that thread count only changes
//! wall-clock time, never a report. These tests pin that contract: the
//! same seeded experiment matrix serialized after a 1-thread run and a
//! 4-thread run must be **byte-identical** — modulo `sched_seconds`, the
//! report's one wall-clock field, which is zeroed before comparison
//! (`builder.rs` documents it as the only nondeterministic field).

use rayon::with_num_threads;
use risa_sim::{experiments, Algorithm, RunReport, SimConfig, WorkloadSpec};

/// A small but non-trivial matrix: two synthetic workloads (with churn)
/// across all four algorithms = 8 full simulation jobs.
fn matrix() -> Vec<RunReport> {
    let cfg = SimConfig::paper();
    let specs = [
        WorkloadSpec::synthetic(400, 11),
        WorkloadSpec::synthetic(300, 12),
    ];
    experiments::run_matrix(&cfg, &specs, &Algorithm::ALL, true)
}

/// Serialize with the wall-clock field normalized out.
fn canonical_json(mut runs: Vec<RunReport>) -> String {
    for r in &mut runs {
        r.sched_seconds = 0.0;
    }
    serde_json::to_string(&runs).expect("reports serialize")
}

#[test]
fn one_thread_and_four_threads_serialize_identically() {
    let sequential = with_num_threads(1, matrix);
    let parallel = with_num_threads(4, matrix);
    assert_eq!(
        sequential.len(),
        parallel.len(),
        "matrix completeness must not depend on thread count"
    );
    // Order preservation: job i is the same (algorithm, workload) pair.
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(s.algorithm, p.algorithm);
        assert_eq!(s.workload, p.workload);
    }
    assert_eq!(
        canonical_json(sequential),
        canonical_json(parallel),
        "reports must be byte-identical at any thread count"
    );
}

#[test]
fn oversubscribed_pool_is_still_deterministic() {
    // More threads than jobs, and an odd count that doesn't divide the
    // matrix evenly — the chunk deal must not affect results.
    let reference = canonical_json(with_num_threads(1, matrix));
    for threads in [3, 16] {
        assert_eq!(
            canonical_json(with_num_threads(threads, matrix)),
            reference,
            "threads={threads}"
        );
    }
}

#[test]
fn seed_sweep_is_thread_count_invariant() {
    // `fig5_seed_sweep` uses `par_iter().flat_map(..)` — the other parallel
    // shape in the experiments module.
    let run = || {
        experiments::fig5_seed_sweep(&[1, 2], 300)
            .runs
            .into_iter()
            .collect::<Vec<RunReport>>()
    };
    assert_eq!(
        canonical_json(with_num_threads(1, run)),
        canonical_json(with_num_threads(4, run))
    );
}

/// The whole-job types the pool moves between threads.
#[test]
fn simulation_job_types_are_send_and_sync() {
    fn assert_send<T: Send>() {}
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SimConfig>();
    assert_send_sync::<WorkloadSpec>();
    assert_send_sync::<RunReport>();
    assert_send_sync::<risa_sim::ExperimentReport>();
    assert_send_sync::<risa_sim::SimulationBuilder>();
    // A primed simulation moves to a worker; it is not shared.
    assert_send::<risa_sim::DdcSimulation>();
    assert_send::<risa_sim::DdcWorld>();
}
