//! Parallelism must be invisible in the results.
//!
//! The `rayon` stand-in became a real pool in PR 2 and a **resident
//! work-stealing pool** in this PR; the contract (ROADMAP
//! "Architecture") is that thread count only changes wall-clock time,
//! never a report. These tests pin that contract: the same seeded
//! experiment matrix serialized after a 1-thread run and a 4-thread run
//! must be **byte-identical** — modulo `sched_seconds`, the report's one
//! wall-clock field, which is zeroed before comparison (`builder.rs`
//! documents it as the only nondeterministic field).
//!
//! Workload generation is itself parallel (sharded per 4096-VM index
//! block, `risa_workload::shard`), so the same contract is pinned one
//! layer down — materializing a spec at 1 vs 8 threads must produce
//! byte-identical traces — and one layer *up*: a parallel matrix whose
//! cells generate multi-shard traces is a nested drive that subdivides
//! onto the same resident workers, and its reports must not move either,
//! including when the pool is oversubscribed far past the machine's
//! cores. CI runs this suite under `RISA_THREADS=1`, `=4`, *and* `=8`.

use rayon::with_num_threads;
use risa_sim::{experiments, Algorithm, RunReport, SimConfig, WorkloadSpec};

/// A small but non-trivial matrix: two synthetic workloads (with churn)
/// across all four algorithms = 8 full simulation jobs.
fn matrix() -> Vec<RunReport> {
    let cfg = SimConfig::paper();
    let specs = [
        WorkloadSpec::synthetic(400, 11),
        WorkloadSpec::synthetic(300, 12),
    ];
    experiments::run_matrix(&cfg, &specs, &Algorithm::ALL, true)
}

/// Serialize with the wall-clock field normalized out.
fn canonical_json(mut runs: Vec<RunReport>) -> String {
    for r in &mut runs {
        r.sched_seconds = 0.0;
    }
    serde_json::to_string(&runs).expect("reports serialize")
}

#[test]
fn one_thread_and_four_threads_serialize_identically() {
    let sequential = with_num_threads(1, matrix);
    let parallel = with_num_threads(4, matrix);
    assert_eq!(
        sequential.len(),
        parallel.len(),
        "matrix completeness must not depend on thread count"
    );
    // Order preservation: job i is the same (algorithm, workload) pair.
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(s.algorithm, p.algorithm);
        assert_eq!(s.workload, p.workload);
    }
    assert_eq!(
        canonical_json(sequential),
        canonical_json(parallel),
        "reports must be byte-identical at any thread count"
    );
}

#[test]
fn oversubscribed_pool_is_still_deterministic() {
    // More threads than jobs, and an odd count that doesn't divide the
    // matrix evenly — the chunk deal must not affect results.
    let reference = canonical_json(with_num_threads(1, matrix));
    for threads in [3, 16] {
        assert_eq!(
            canonical_json(with_num_threads(threads, matrix)),
            reference,
            "threads={threads}"
        );
    }
}

#[test]
fn seed_sweep_is_thread_count_invariant() {
    // `fig5_seed_sweep` uses `par_iter().flat_map(..)` — the other parallel
    // shape in the experiments module.
    let run = || {
        experiments::fig5_seed_sweep(&[1, 2], 300)
            .runs
            .into_iter()
            .collect::<Vec<RunReport>>()
    };
    assert_eq!(
        canonical_json(with_num_threads(1, run)),
        canonical_json(with_num_threads(4, run))
    );
}

#[test]
fn workload_generation_is_byte_identical_across_thread_counts() {
    // Trace generation itself is sharded (risa_workload::shard): fixed
    // 4096-VM shards with per-shard RNG streams, stitched by a prefix sum.
    // 1 thread and 8 threads must materialize byte-identical workloads for
    // both generator families (the synthetic size spans several shards).
    let specs = [
        WorkloadSpec::synthetic(10_000, 42),
        WorkloadSpec::azure(risa_workload::AzureSubset::N7500, 42),
    ];
    for spec in &specs {
        let one = with_num_threads(1, || spec.materialize());
        for threads in [4, 8] {
            let many = with_num_threads(threads, || spec.materialize());
            assert_eq!(
                serde_json::to_string(&many).unwrap(),
                serde_json::to_string(&one).unwrap(),
                "threads={threads}"
            );
        }
    }
}

#[test]
fn workload_generation_is_stable_across_repeated_runs() {
    // Sharded-vs-sharded: two independent materializations of the same
    // spec agree byte-for-byte (no hidden global state in the shard
    // streams), including under a parallel pool.
    let spec = WorkloadSpec::synthetic(9000, 7);
    let a = with_num_threads(8, || spec.materialize());
    let b = with_num_threads(8, || spec.materialize());
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}

/// A *nested* drive: a parallel experiment matrix whose cells generate
/// multi-shard traces in parallel — `par_iter` (matrix) around
/// `par_iter` (shard generation), the shape the resident pool's
/// work-stealing subdivision exists for.
fn nested_matrix() -> Vec<RunReport> {
    let cfg = SimConfig::paper();
    // > SHARD_SIZE VMs per spec, so builds inside the matrix cells fan
    // out over the same workers the matrix itself occupies.
    let specs = [
        WorkloadSpec::synthetic(5000, 21),
        WorkloadSpec::synthetic(4500, 22),
    ];
    experiments::run_matrix(&cfg, &specs, &Algorithm::ALL, true)
}

#[test]
fn nested_matrix_over_generated_traces_is_byte_identical_1_vs_8() {
    let sequential = with_num_threads(1, nested_matrix);
    let parallel = with_num_threads(8, nested_matrix);
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(s.algorithm, p.algorithm);
        assert_eq!(s.workload, p.workload);
    }
    assert_eq!(
        canonical_json(sequential),
        canonical_json(parallel),
        "nested (matrix x shard-generation) runs must be byte-identical"
    );
}

#[test]
fn oversubscribed_nested_run_is_still_deterministic() {
    // RISA_THREADS=16-style width, far beyond this machine's cores (CI
    // runners have <= 8): more workers than jobs at both nesting levels,
    // plus OS-level oversubscription. Results must not move.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let wide = 16.max(2 * cores);
    assert_eq!(
        canonical_json(with_num_threads(1, nested_matrix)),
        canonical_json(with_num_threads(wide, nested_matrix)),
        "width {wide} (> {cores} cores) must not change any report byte"
    );
}

/// The whole-job types the pool moves between threads.
#[test]
fn simulation_job_types_are_send_and_sync() {
    fn assert_send<T: Send>() {}
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SimConfig>();
    assert_send_sync::<WorkloadSpec>();
    assert_send_sync::<RunReport>();
    assert_send_sync::<risa_sim::ExperimentReport>();
    assert_send_sync::<risa_sim::SimulationBuilder>();
    // A primed simulation moves to a worker; it is not shared.
    assert_send::<risa_sim::DdcSimulation>();
    assert_send::<risa_sim::DdcWorld>();
}
