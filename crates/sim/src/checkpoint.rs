//! Checkpoint/restore for single runs: snapshot a [`DdcSimulation`] at a
//! simulated time `T`, serialize it, and later resume a run that is
//! **byte-identical** to the uninterrupted one — same report JSON, same
//! event trace, same sequence numbers.
//!
//! # What a checkpoint holds
//!
//! | Block | Contents |
//! |---|---|
//! | `recipe` | The fully-resolved [`SimulationBuilder`]: workload spec, algorithm, topology/network/photonics config, FEL backend, arrival mode, fault spec, audit/timeline settings. Every env-deferred knob was pinned at build time, so restoring **never reads the environment** (enforced by the `checkpoint_purity` lint rule). |
//! | clock | `(at, dispatched, clamped)` — the engine clock and dispatch counters. |
//! | FEL | Every future-event-list entry with its original `(time, seq)` pair, plus the `next_seq` counter and FEL high-water mark. |
//! | arrivals | The static arrival lane as a *cursor position* (`arrivals_remaining`): a restore rebuilds the lane from the recipe and fast-forwards it, re-executing the exact `f64` accumulation the original run performed. |
//! | `world` | Cluster, network, scheduler, per-VM assignments, metric accumulators (latency as raw bits), audit ledger, fault-injection state (RNG chains as draw counts), and the streaming-cursor position. |
//!
//! # Versioning
//!
//! The JSON encoding is hand-rolled (like [`crate::RunReport`]'s) and
//! carries an explicit `"version"` field ([`CHECKPOINT_VERSION`]);
//! loading a checkpoint from a different version fails loudly instead of
//! misinterpreting bytes. Nested state blocks reuse the validated serde
//! of their own types (`Cluster` and `NetworkState` rebuild and check
//! derived state on load).
//!
//! # Why resume is byte-identical
//!
//! Everything downstream of the scheduler is deterministic given (a) the
//! exact mutable state at `T` and (b) the exact pending event set with
//! its tie-breaking sequence numbers. The snapshot captures both; the
//! parts that are *not* serialized (workload generators, RNG chains) are
//! re-derived from the recipe and fast-forwarded by replaying the same
//! bounded number of draws/`next()` calls, which re-executes bit-for-bit
//! the same `f64` arithmetic. `tests/hot_path_differential.rs` proves the
//! guarantee across FEL backends × arrival modes × thread counts ×
//! faults on/off.

use crate::builder::{DdcSimulation, SimulationBuilder};
use crate::parallel::ExecMode;
use crate::spec::WorkloadSpec;
use crate::streaming::ArrivalMode;
use crate::world::{SimEvent, WorldSnapshot};
use crate::{FaultSpec, RunReport, SimConfig};
use risa_des::{FelKind, QueueEntry, RunOutcome, SimTime};
use risa_sched::Algorithm;
use serde::value::field;
use serde::{Deserialize, Error, Serialize, Value};

/// Version tag written into every serialized checkpoint; loading any
/// other version is an error. Version 2 added the resolved `exec` engine
/// to the recipe and the speculative-executor counters to the world
/// block.
pub const CHECKPOINT_VERSION: u32 = 2;

/// A serializable snapshot of a [`DdcSimulation`] at one simulated
/// instant. Produce with [`DdcSimulation::checkpoint`] (or the cadence
/// driver [`DdcSimulation::run_checkpointed`]); turn back into a running
/// simulation with [`Checkpoint::resume`].
#[derive(Debug, Clone)]
pub struct Checkpoint {
    recipe: SimulationBuilder,
    at: SimTime,
    dispatched: u64,
    clamped: u64,
    fel: Vec<QueueEntry<SimEvent>>,
    next_seq: u64,
    peak_fel: usize,
    arrivals_remaining: usize,
    world: WorldSnapshot,
}

impl Checkpoint {
    /// Simulated time the snapshot was taken at, in time units.
    pub fn at(&self) -> f64 {
        self.at.as_units()
    }

    /// Events dispatched up to the snapshot.
    pub fn events_dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Future-event-list entries pending at the snapshot.
    pub fn pending_events(&self) -> usize {
        self.fel.len()
    }

    /// Arrivals not yet delivered from the static lane at the snapshot.
    pub fn arrivals_remaining(&self) -> usize {
        self.arrivals_remaining
    }

    /// Rebuild a running simulation from this checkpoint.
    ///
    /// A pristine run is rebuilt from the embedded recipe (no environment
    /// reads — every knob was resolved when the original run was built),
    /// the arrival lane is fast-forwarded to the recorded cursor
    /// position, the future-event list is replaced with the recorded
    /// entries (original sequence numbers included), the clock is
    /// restored, and the world state is overwritten with the snapshot.
    /// The result behaves byte-identically to the uninterrupted run from
    /// `at` onward.
    pub fn resume(&self) -> DdcSimulation {
        let mut run = self
            .recipe
            .clone()
            .try_build()
            .unwrap_or_else(|e| panic!("checkpoint recipe failed to rebuild: {e}"));
        run.sim
            .queue_mut()
            .fast_forward_arrivals(self.arrivals_remaining);
        run.sim
            .queue_mut()
            .restore_fel(self.fel.clone(), self.next_seq, self.peak_fel);
        run.sim
            .restore_clock(self.at, self.dispatched, self.clamped);
        run.sim.world_mut().restore(self.world.clone());
        run
    }

    /// Serialize to JSON text (see the module docs for the format).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serialization is infallible")
    }

    /// Load a checkpoint from JSON text, rejecting version mismatches and
    /// malformed state loudly.
    pub fn from_json(json: &str) -> Result<Checkpoint, Error> {
        serde_json::from_str(json)
    }
}

impl DdcSimulation {
    /// Dispatch events until the clock would pass `horizon` (time units).
    /// Events scheduled exactly at the horizon are dispatched; the first
    /// event strictly beyond it stays queued and the call returns
    /// [`RunOutcome::HorizonReached`]. An empty queue returns
    /// [`RunOutcome::Exhausted`].
    /// Under [`ExecMode::Speculative`] the horizon is honoured exactly —
    /// windows only drain events at or before it — so checkpoints taken
    /// between calls cut the run at the same event boundary the
    /// sequential engine would.
    pub fn run_until(&mut self, horizon: f64) -> RunOutcome {
        match self.exec {
            ExecMode::Sequential => self.sim.run_until(SimTime::from_units(horizon), u64::MAX),
            ExecMode::Speculative => {
                crate::parallel::run_speculative(&mut self.sim, SimTime::from_units(horizon))
            }
        }
    }

    /// Snapshot the paused run. Taking a checkpoint does not perturb the
    /// run: the future-event list is drained and rebuilt with identical
    /// `(time, seq)` entries, and everything else is read-only.
    pub fn checkpoint(&mut self) -> Checkpoint {
        let qs = self.sim.queue_mut().snapshot();
        let (at, dispatched, clamped) = self.sim.clock_state();
        Checkpoint {
            recipe: self.recipe.clone(),
            at,
            dispatched,
            clamped,
            fel: qs.fel,
            next_seq: qs.next_seq,
            peak_fel: qs.peak_fel,
            arrivals_remaining: qs.arrivals_remaining,
            world: self.sim.world().snapshot(),
        }
    }

    /// Run to completion like [`DdcSimulation::run`], handing a
    /// [`Checkpoint`] to `sink` every
    /// [`SimulationBuilder::checkpoint_every`] simulated time units.
    /// Without a cadence this is exactly [`DdcSimulation::run`]. The
    /// checkpoints are a pure tap: the report (and the event trace) are
    /// byte-identical to an un-checkpointed run.
    pub fn run_checkpointed(&mut self, mut sink: impl FnMut(&Checkpoint)) -> RunReport {
        let Some(every) = self.checkpoint_every else {
            return self.run();
        };
        let mut horizon = every;
        while let RunOutcome::HorizonReached = self.run_until(horizon) {
            let cp = self.checkpoint();
            sink(&cp);
            horizon += every;
        }
        self.finish()
    }
}

// ---------------------------------------------------------------------
// Serialization. Hand-rolled (like `RunReport`'s) so the format carries
// an explicit version tag and the recipe's enum knobs travel as their
// canonical CLI strings (`heap`/`calendar`, `materialized`/`streaming`)
// rather than as derive-shaped trees.
// ---------------------------------------------------------------------

impl Serialize for Checkpoint {
    fn to_value(&self) -> Value {
        let fel: Vec<Value> = self
            .fel
            .iter()
            .map(|e| (e.at, e.seq, e.event).to_value())
            .collect();
        Value::Map(vec![
            ("version".into(), CHECKPOINT_VERSION.to_value()),
            ("recipe".into(), recipe_to_value(&self.recipe)),
            ("at".into(), self.at.to_value()),
            ("dispatched".into(), self.dispatched.to_value()),
            ("clamped".into(), self.clamped.to_value()),
            ("fel".into(), Value::Seq(fel)),
            ("next_seq".into(), self.next_seq.to_value()),
            ("peak_fel".into(), self.peak_fel.to_value()),
            (
                "arrivals_remaining".into(),
                self.arrivals_remaining.to_value(),
            ),
            ("world".into(), self.world.to_value()),
        ])
    }
}

impl Deserialize for Checkpoint {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let version = u32::from_value(field(v, "version")?)?;
        if version != CHECKPOINT_VERSION {
            return Err(Error::new(format!(
                "checkpoint version {version} is not supported \
                 (this build reads version {CHECKPOINT_VERSION})"
            )));
        }
        let fel = field(v, "fel")?
            .as_seq()
            .ok_or_else(|| Error::new("checkpoint 'fel' must be a sequence"))?
            .iter()
            .map(|e| {
                let (at, seq, event) = <(SimTime, u64, SimEvent)>::from_value(e)?;
                Ok(QueueEntry { at, seq, event })
            })
            .collect::<Result<Vec<_>, Error>>()?;
        Ok(Checkpoint {
            recipe: recipe_from_value(field(v, "recipe")?)?,
            at: SimTime::from_value(field(v, "at")?)?,
            dispatched: u64::from_value(field(v, "dispatched")?)?,
            clamped: u64::from_value(field(v, "clamped")?)?,
            fel,
            next_seq: u64::from_value(field(v, "next_seq")?)?,
            peak_fel: usize::from_value(field(v, "peak_fel")?)?,
            arrivals_remaining: usize::from_value(field(v, "arrivals_remaining")?)?,
            world: WorldSnapshot::from_value(field(v, "world")?)?,
        })
    }
}

/// Serialize a *fully-resolved* recipe: `fel`, `arrivals` and `faults`
/// must have been pinned by `try_build` (panics otherwise — a checkpoint
/// must never defer a knob to the restore-time environment).
fn recipe_to_value(r: &SimulationBuilder) -> Value {
    let fel = r
        .fel
        .expect("checkpoint recipe has an unresolved FEL backend");
    let arrivals = r
        .arrivals
        .expect("checkpoint recipe has an unresolved arrival mode");
    let faults = r
        .faults
        .as_ref()
        .expect("checkpoint recipe has an unresolved fault spec");
    let exec = r
        .exec
        .expect("checkpoint recipe has an unresolved exec mode");
    Value::Map(vec![
        ("cfg".into(), r.cfg.to_value()),
        ("algorithm".into(), r.algorithm.to_value()),
        ("workload".into(), r.workload.to_value()),
        ("timeline_interval".into(), r.timeline_interval.to_value()),
        ("audit".into(), r.audit.to_value()),
        ("fel".into(), fel.to_string().to_value()),
        ("queue_capacity".into(), r.queue_capacity.to_value()),
        ("sched_timing_batch".into(), r.sched_timing_batch.to_value()),
        (
            "legacy_arrival_path".into(),
            r.legacy_arrival_path.to_value(),
        ),
        ("arrivals".into(), arrivals.to_string().to_value()),
        ("faults".into(), faults.to_value()),
        ("checkpoint_every".into(), r.checkpoint_every.to_value()),
        ("exec".into(), exec.to_string().to_value()),
    ])
}

fn recipe_from_value(v: &Value) -> Result<SimulationBuilder, Error> {
    let fel: FelKind = String::from_value(field(v, "fel")?)?
        .parse()
        .map_err(Error::new)?;
    let arrivals: ArrivalMode = String::from_value(field(v, "arrivals")?)?
        .parse()
        .map_err(Error::new)?;
    let exec: ExecMode = String::from_value(field(v, "exec")?)?
        .parse()
        .map_err(Error::new)?;
    Ok(SimulationBuilder {
        cfg: SimConfig::from_value(field(v, "cfg")?)?,
        algorithm: Algorithm::from_value(field(v, "algorithm")?)?,
        workload: WorkloadSpec::from_value(field(v, "workload")?)?,
        timeline_interval: Option::<f64>::from_value(field(v, "timeline_interval")?)?,
        audit: bool::from_value(field(v, "audit")?)?,
        fel: Some(fel),
        queue_capacity: Option::<usize>::from_value(field(v, "queue_capacity")?)?,
        sched_timing_batch: u32::from_value(field(v, "sched_timing_batch")?)?,
        legacy_arrival_path: bool::from_value(field(v, "legacy_arrival_path")?)?,
        arrivals: Some(arrivals),
        faults: Some(Option::<FaultSpec>::from_value(field(v, "faults")?)?),
        checkpoint_every: Option::<f64>::from_value(field(v, "checkpoint_every")?)?,
        exec: Some(exec),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimulationBuilder;
    use risa_sched::Algorithm;

    fn base() -> SimulationBuilder {
        SimulationBuilder::new()
            .algorithm(Algorithm::RisaBf)
            .workload(WorkloadSpec::synthetic(400, 11))
            .audit(true)
    }

    // Under RISA_EXEC=speculative these builder-default runs carry a
    // SpeculationReport, and window composition is horizon-dependent
    // (see its doc): a run_until split (checkpoint horizon or cadence
    // tap) truncates the window at the boundary, shifting `windows` and
    // the fast/rollback split between a checkpointed and an
    // uninterrupted run. Normalize those to their horizon-invariant
    // combinations — `speculated`, `serial_events`, fast + rollback
    // (== speculated), and the total event count — so the byte-identity
    // assertions compare exactly what the checkpoint contract
    // guarantees.
    fn normalize(r: &mut RunReport) {
        r.sched_seconds = 0.0; // the only wall-clock field
        if let Some(s) = r.speculation.as_mut() {
            s.windows = 0;
            s.window_events = s.speculated + s.serial_events;
            s.rollbacks = s.speculated;
            s.fast_commits = 0;
        }
    }

    fn finish_report(run: &mut DdcSimulation) -> RunReport {
        let mut r = run.run();
        normalize(&mut r);
        r
    }

    #[test]
    fn resume_matches_uninterrupted_run() {
        let mut whole = base().build();
        let baseline = finish_report(&mut whole);

        let mut first = base().build();
        assert_eq!(first.run_until(3000.0), RunOutcome::HorizonReached);
        let cp = first.checkpoint();
        // The clock sits at the last dispatched event, at or before the
        // horizon (the engine advances time only on dispatch).
        assert!(cp.at() > 0.0 && cp.at() <= 3000.0);
        assert!(cp.pending_events() > 0);
        let mut resumed = cp.resume();
        let report = finish_report(&mut resumed);
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            serde_json::to_string(&baseline).unwrap()
        );
    }

    #[test]
    fn resume_after_json_round_trip_is_still_identical() {
        let mut whole = base().build();
        let baseline = finish_report(&mut whole);

        let mut first = base().build();
        first.run_until(5000.0);
        let json = first.checkpoint().to_json();
        let cp = Checkpoint::from_json(&json).unwrap();
        let mut resumed = cp.resume();
        assert_eq!(finish_report(&mut resumed), baseline);
        // The serialized form itself round-trips byte-identically.
        assert_eq!(cp.to_json(), json);
    }

    #[test]
    fn checkpoint_is_a_pure_tap_on_the_run() {
        // Checkpointing mid-run must not perturb the run it observes.
        let mut plain = base().build();
        let baseline = finish_report(&mut plain);

        let mut tapped = base().checkpoint_every(1500.0).build();
        let mut count = 0usize;
        let mut report = tapped.run_checkpointed(|_| count += 1);
        normalize(&mut report);
        assert_eq!(report, baseline);
        assert!(count >= 2, "expected several checkpoints, got {count}");
    }

    #[test]
    fn streaming_runs_checkpoint_too() {
        let spec = WorkloadSpec::synthetic(6000, 13);
        let run = |mode| {
            SimulationBuilder::new()
                .workload(spec.clone())
                .arrivals(mode)
                .faults_off()
                .build()
        };
        let mut whole = run(ArrivalMode::Streaming);
        let baseline = finish_report(&mut whole);

        let mut first = run(ArrivalMode::Streaming);
        assert_eq!(first.run_until(20_000.0), RunOutcome::HorizonReached);
        let cp = Checkpoint::from_json(&first.checkpoint().to_json()).unwrap();
        assert!(cp.arrivals_remaining() > 0, "horizon lands mid-arrivals");
        let mut resumed = cp.resume();
        assert_eq!(resumed.arrival_mode(), ArrivalMode::Streaming);
        assert_eq!(finish_report(&mut resumed), baseline);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut run = base().build();
        run.run_until(1000.0);
        // Bump the version tag in the serialized tree, not via string
        // surgery (the text rendering of the tag is an encoding detail).
        let mut tree = run.checkpoint().to_value();
        let Value::Map(fields) = &mut tree else {
            panic!("checkpoint serializes as a map")
        };
        fields
            .iter_mut()
            .find(|(k, _)| k == "version")
            .expect("version field present in the encoding")
            .1 = Value::Int(999);
        let err = Checkpoint::from_value(&tree).expect_err("future version must be rejected");
        assert!(err.to_string().contains("version 999"), "got: {err}");
    }
}
