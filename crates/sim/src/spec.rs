//! Workload specification: how the simulation obtains its VM trace.

use risa_workload::azure::AzureProcess;
use risa_workload::{
    AzureShards, AzureSubset, ShardSource, SyntheticConfig, SyntheticShards, Workload,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Declarative description of the workload a simulation should run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// The §5.1 synthetic random workload with explicit parameters.
    Synthetic(SyntheticConfig),
    /// An Azure-2017-like slice (§5.2) with a seed.
    Azure {
        /// Which slice.
        subset: AzureSubset,
        /// Generation seed.
        seed: u64,
    },
    /// A pre-built trace (e.g. loaded from JSON).
    Trace(Workload),
}

impl WorkloadSpec {
    /// Synthetic workload of `n` VMs with paper parameters.
    pub fn synthetic(n: u32, seed: u64) -> Self {
        WorkloadSpec::Synthetic(SyntheticConfig::small(n, seed))
    }

    /// The full 2500-VM paper synthetic workload.
    pub fn synthetic_paper(seed: u64) -> Self {
        WorkloadSpec::Synthetic(SyntheticConfig::paper(seed))
    }

    /// An Azure-like slice.
    pub fn azure(subset: AzureSubset, seed: u64) -> Self {
        WorkloadSpec::Azure { subset, seed }
    }

    /// Materialize the trace.
    ///
    /// Synthetic and Azure specs generate **sharded** on the `rayon`
    /// pool: fixed 4096-VM index shards with `(seed, shard)`-derived RNG
    /// streams, stitched by a prefix sum over per-shard interarrival
    /// totals (`risa_workload::shard`). A single big trial therefore uses
    /// every worker, and the result is byte-identical at any thread count
    /// (pinned by `tests/determinism.rs`).
    pub fn materialize(&self) -> Workload {
        match self {
            WorkloadSpec::Synthetic(cfg) => Workload::synthetic(cfg),
            WorkloadSpec::Azure { subset, seed } => Workload::azure(*subset, *seed),
            WorkloadSpec::Trace(w) => w.clone(),
        }
    }

    /// The spec as a lazy per-shard generator, when it is backed by one —
    /// the handle [`crate::ArrivalMode::Streaming`] runs on. `None` for
    /// pre-built traces, which have nothing to generate lazily.
    ///
    /// The source generates the *same trace* [`WorkloadSpec::materialize`]
    /// produces (shard-for-shard the identical code and RNG streams), so
    /// consuming it through a cursor is byte-identical to materializing.
    pub fn shard_source(&self) -> Option<Arc<dyn ShardSource>> {
        match self {
            WorkloadSpec::Synthetic(cfg) => Some(Arc::new(SyntheticShards::new(cfg))),
            WorkloadSpec::Azure { subset, seed } => Some(Arc::new(AzureShards::new(
                *subset,
                *seed,
                AzureProcess::default(),
            ))),
            WorkloadSpec::Trace(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_materializes_n_vms() {
        assert_eq!(WorkloadSpec::synthetic(37, 1).materialize().len(), 37);
        assert_eq!(WorkloadSpec::synthetic_paper(1).materialize().len(), 2500);
    }

    #[test]
    fn azure_materializes_subset() {
        let w = WorkloadSpec::azure(AzureSubset::N3000, 2).materialize();
        assert_eq!(w.len(), 3000);
        assert_eq!(w.name(), "Azure-3000");
    }

    #[test]
    fn trace_passthrough() {
        let w = WorkloadSpec::synthetic(5, 3).materialize();
        let spec = WorkloadSpec::Trace(w.clone());
        assert_eq!(spec.materialize(), w);
    }

    /// The shard source must regenerate exactly the trace `materialize`
    /// yields — the foundation of the streaming/materialized identity.
    #[test]
    fn shard_source_reproduces_materialize() {
        for spec in [
            WorkloadSpec::synthetic(5000, 21),
            WorkloadSpec::azure(AzureSubset::N3000, 8),
        ] {
            let source = spec.shard_source().expect("generator-backed");
            assert_eq!(
                risa_workload::shard::materialize(&*source),
                spec.materialize().vms()
            );
            assert_eq!(source.label(), spec.materialize().name());
        }
        let trace = WorkloadSpec::Trace(WorkloadSpec::synthetic(3, 1).materialize());
        assert!(trace.shard_source().is_none());
    }

    #[test]
    fn spec_serde_roundtrip() {
        let spec = WorkloadSpec::azure(AzureSubset::N5000, 9);
        let json = serde_json::to_string(&spec).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
