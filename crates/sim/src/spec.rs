//! Workload specification: how the simulation obtains its VM trace.

use risa_workload::azure::AzureProcess;
use risa_workload::{
    AzureShards, AzureSubset, CsvFileShards, ShardSource, SyntheticConfig, SyntheticShards,
    TraceShards, Workload,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Declarative description of the workload a simulation should run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// The §5.1 synthetic random workload with explicit parameters.
    Synthetic(SyntheticConfig),
    /// An Azure-2017-like slice (§5.2) with a seed.
    Azure {
        /// Which slice.
        subset: AzureSubset,
        /// Generation seed.
        seed: u64,
    },
    /// A pre-built trace (e.g. loaded from JSON).
    Trace(Workload),
    /// A CSV trace file on disk, read in shard-sized chunks — the whole
    /// trace never needs to fit in memory (see
    /// [`risa_workload::CsvFileShards`]).
    TraceCsv {
        /// Workload label for reports.
        name: String,
        /// Path to the CSV file ([`risa_workload::csv`] schema).
        path: String,
    },
}

impl WorkloadSpec {
    /// Synthetic workload of `n` VMs with paper parameters.
    pub fn synthetic(n: u32, seed: u64) -> Self {
        WorkloadSpec::Synthetic(SyntheticConfig::small(n, seed))
    }

    /// The full 2500-VM paper synthetic workload.
    pub fn synthetic_paper(seed: u64) -> Self {
        WorkloadSpec::Synthetic(SyntheticConfig::paper(seed))
    }

    /// An Azure-like slice.
    pub fn azure(subset: AzureSubset, seed: u64) -> Self {
        WorkloadSpec::Azure { subset, seed }
    }

    /// Materialize the trace.
    ///
    /// Synthetic and Azure specs generate **sharded** on the `rayon`
    /// pool: fixed 4096-VM index shards with `(seed, shard)`-derived RNG
    /// streams, stitched by a prefix sum over per-shard interarrival
    /// totals (`risa_workload::shard`). A single big trial therefore uses
    /// every worker, and the result is byte-identical at any thread count
    /// (pinned by `tests/determinism.rs`).
    pub fn materialize(&self) -> Workload {
        match self {
            WorkloadSpec::Synthetic(cfg) => Workload::synthetic(cfg),
            WorkloadSpec::Azure { subset, seed } => Workload::azure(*subset, *seed),
            WorkloadSpec::Trace(w) => w.clone(),
            WorkloadSpec::TraceCsv { name, path } => {
                let csv = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| panic!("cannot read trace file '{path}': {e}"));
                risa_workload::csv::from_csv(name, &csv)
                    .unwrap_or_else(|e| panic!("trace file '{path}': {e}"))
            }
        }
    }

    /// The spec as a lazy per-shard source — the handle
    /// [`crate::ArrivalMode::Streaming`] runs on. Generator-backed specs
    /// regenerate each shard from its RNG streams; pre-built traces are
    /// *served* in shard-sized slices ([`risa_workload::TraceShards`]),
    /// and on-disk CSV traces are read chunk-by-chunk
    /// ([`risa_workload::CsvFileShards`]), so every spec streams.
    ///
    /// The source yields the *same trace* [`WorkloadSpec::materialize`]
    /// produces, bit-for-bit, so consuming it through a cursor is
    /// byte-identical to materializing. Panics (loudly, never a silent
    /// fallback) if a CSV trace file is missing or invalid.
    pub fn shard_source(&self) -> Option<Arc<dyn ShardSource>> {
        match self {
            WorkloadSpec::Synthetic(cfg) => Some(Arc::new(SyntheticShards::new(cfg))),
            WorkloadSpec::Azure { subset, seed } => Some(Arc::new(AzureShards::new(
                *subset,
                *seed,
                AzureProcess::default(),
            ))),
            WorkloadSpec::Trace(w) => Some(Arc::new(TraceShards::new(w.clone()))),
            WorkloadSpec::TraceCsv { name, path } => Some(Arc::new(
                CsvFileShards::open(name.clone(), path)
                    .unwrap_or_else(|e| panic!("trace file '{path}': {e}")),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_materializes_n_vms() {
        assert_eq!(WorkloadSpec::synthetic(37, 1).materialize().len(), 37);
        assert_eq!(WorkloadSpec::synthetic_paper(1).materialize().len(), 2500);
    }

    #[test]
    fn azure_materializes_subset() {
        let w = WorkloadSpec::azure(AzureSubset::N3000, 2).materialize();
        assert_eq!(w.len(), 3000);
        assert_eq!(w.name(), "Azure-3000");
    }

    #[test]
    fn trace_passthrough() {
        let w = WorkloadSpec::synthetic(5, 3).materialize();
        let spec = WorkloadSpec::Trace(w.clone());
        assert_eq!(spec.materialize(), w);
    }

    /// The shard source must yield exactly the trace `materialize`
    /// yields — the foundation of the streaming/materialized identity.
    /// Every spec kind streams, including pre-built traces.
    #[test]
    fn shard_source_reproduces_materialize() {
        for spec in [
            WorkloadSpec::synthetic(5000, 21),
            WorkloadSpec::azure(AzureSubset::N3000, 8),
            WorkloadSpec::Trace(WorkloadSpec::synthetic(5000, 21).materialize()),
        ] {
            let source = spec.shard_source().expect("every spec kind streams");
            assert_eq!(
                risa_workload::shard::materialize(&*source),
                spec.materialize().vms()
            );
            assert_eq!(source.label(), spec.materialize().name());
        }
    }

    #[test]
    fn trace_csv_spec_streams_and_materializes_identically() {
        let w = WorkloadSpec::synthetic(500, 4).materialize();
        let path = std::env::temp_dir().join(format!("risa_spec_trace_{}.csv", std::process::id()));
        std::fs::write(&path, risa_workload::csv::to_csv(&w)).unwrap();
        let spec = WorkloadSpec::TraceCsv {
            name: "disk".into(),
            path: path.display().to_string(),
        };
        let materialized = spec.materialize();
        assert_eq!(materialized.name(), "disk");
        assert_eq!(materialized.vms(), w.vms());
        let source = spec.shard_source().expect("CSV traces stream");
        assert_eq!(risa_workload::shard::materialize(&*source), w.vms());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "cannot read trace file")]
    fn trace_csv_spec_missing_file_fails_loudly() {
        WorkloadSpec::TraceCsv {
            name: "x".into(),
            path: "/nonexistent/risa/spec.csv".into(),
        }
        .materialize();
    }

    #[test]
    fn spec_serde_roundtrip() {
        let spec = WorkloadSpec::azure(AzureSubset::N5000, 9);
        let json = serde_json::to_string(&spec).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
