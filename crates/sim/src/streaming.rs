//! Streaming arrival pipeline: bounded-memory runs that generate the
//! trace shard-by-shard *while* the engine simulates, instead of
//! materializing every VM up front.
//!
//! Two cursors walk the same [`ShardSource`] independently:
//!
//! * [`StreamingArrivals`] (this module) feeds the event queue's static
//!   arrival lane through [`risa_des::ArrivalSource`]. It needs only the
//!   *arrival times*, so it uses the cheap
//!   [`ShardSource::shard_arrivals`] pass — one `Vec<f64>` shard buffer,
//!   refilled synchronously (re-deriving the arrivals RNG stream costs
//!   microseconds per shard).
//! * [`risa_workload::StreamingShards`] (owned by the world) yields the
//!   full [`risa_workload::VmRequest`]s in the same index order, double-
//!   buffered: while the engine drains shard *k*, shard *k+1* generates
//!   on the resident `rayon` pool. Peak buffered VMs ≤ 2 shards.
//!
//! The cursors never coordinate, yet always agree: arrivals are delivered
//! strictly in VM-index order (the stitched trace is sorted and the queue
//! assigns consecutive sequence numbers), so the world's cursor is always
//! exactly one VM behind the queue's. Both rebase shard-local times with
//! the identical running `offset += total` accumulation the materialized
//! prefix sum performs — the same `f64` additions in the same order —
//! which is why a streaming run is *byte-identical* to a materialized one
//! (pinned by `tests/hot_path_differential.rs`).

use crate::world::SimEvent;
use risa_des::{ArrivalSource, SimTime};
use risa_workload::ShardSource;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// How the simulation obtains its arrival schedule (builder
/// [`crate::SimulationBuilder::arrivals`], `risa-cli run --arrivals`, or
/// the `RISA_ARRIVALS` environment variable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrivalMode {
    /// Generate the whole trace before the run (the oracle path).
    Materialized,
    /// Feed arrivals shard-by-shard during the run: peak memory is
    /// O(resident VMs + 2 shards) instead of O(trace length). Every
    /// [`crate::WorkloadSpec`] streams — generators regenerate shards,
    /// pre-built traces are served in shard-sized slices, and CSV trace
    /// files are read chunk-by-chunk from disk.
    Streaming,
}

impl ArrivalMode {
    /// Every mode, for sweeps and differential tests.
    pub const ALL: [ArrivalMode; 2] = [ArrivalMode::Materialized, ArrivalMode::Streaming];

    /// Mode selected by the `RISA_ARRIVALS` environment variable
    /// (`materialized` | `streaming`), defaulting to
    /// [`ArrivalMode::Materialized`]. Panics on an unrecognized value
    /// rather than silently running the wrong pipeline.
    pub fn from_env() -> ArrivalMode {
        // risa-lint: allow(env_read) — selects the arrival pipeline; differential tests prove the choice never changes a report byte
        match std::env::var("RISA_ARRIVALS") {
            Err(_) => ArrivalMode::Materialized,
            Ok(v) => v.parse().unwrap_or_else(|e| panic!("RISA_ARRIVALS: {e}")),
        }
    }
}

impl FromStr for ArrivalMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "materialized" => Ok(ArrivalMode::Materialized),
            "streaming" => Ok(ArrivalMode::Streaming),
            other => Err(format!(
                "unknown arrival mode '{other}' (materialized|streaming)"
            )),
        }
    }
}

impl fmt::Display for ArrivalMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArrivalMode::Materialized => "materialized",
            ArrivalMode::Streaming => "streaming",
        })
    }
}

/// Lazy arrival schedule for the event queue's static lane: yields
/// `(arrival time, SimEvent::Arrival(idx))` in VM-index order, holding
/// one shard of arrival *times* at a time (see the [module docs](self)).
pub(crate) struct StreamingArrivals {
    source: Arc<dyn ShardSource>,
    /// Shard-local arrival times of the shard currently being drained.
    times: Vec<f64>,
    /// Cursor into `times`.
    pos: usize,
    /// Absolute time offset of the shard in `times`.
    shard_offset: f64,
    /// Running prefix sum: absolute offset of `next_shard`.
    offset: f64,
    /// Next shard to load.
    next_shard: u32,
    /// Global index of the next VM arrival to yield.
    next_idx: u32,
    total: u32,
}

impl StreamingArrivals {
    pub(crate) fn new(source: Arc<dyn ShardSource>) -> Self {
        let total = source.total_vms();
        StreamingArrivals {
            source,
            times: Vec::new(),
            pos: 0,
            shard_offset: 0.0,
            offset: 0.0,
            next_shard: 0,
            next_idx: 0,
            total,
        }
    }

    /// Make `times[pos]` valid, loading the next shard's arrival pass if
    /// the current one is drained. Returns `false` at end of trace.
    fn ensure(&mut self) -> bool {
        while self.pos == self.times.len() {
            if self.next_shard >= self.source.num_shards() {
                return false;
            }
            let (times, total) = self.source.shard_arrivals(self.next_shard);
            debug_assert_eq!(times.len(), self.source.shard_range(self.next_shard).len());
            // The same sequential accumulation as the materialized
            // prefix sum — bit-equal offsets, hence bit-equal times.
            self.shard_offset = self.offset;
            self.offset += total;
            self.times = times;
            self.pos = 0;
            self.next_shard += 1;
        }
        true
    }
}

impl ArrivalSource<SimEvent> for StreamingArrivals {
    fn peek_time(&mut self) -> Option<SimTime> {
        self.ensure()
            .then(|| SimTime::from_units(self.shard_offset + self.times[self.pos]))
    }

    fn next(&mut self) -> Option<(SimTime, SimEvent)> {
        if !self.ensure() {
            return None;
        }
        let at = SimTime::from_units(self.shard_offset + self.times[self.pos]);
        let event = SimEvent::Arrival(self.next_idx);
        self.pos += 1;
        self.next_idx += 1;
        Some((at, event))
    }

    fn remaining(&self) -> usize {
        (self.total - self.next_idx) as usize
    }
}

impl fmt::Debug for StreamingArrivals {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamingArrivals")
            .field("label", &self.source.label())
            .field("next_idx", &self.next_idx)
            .field("total", &self.total)
            .field("next_shard", &self.next_shard)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;

    #[test]
    fn mode_parses_and_displays() {
        assert_eq!(
            "materialized".parse::<ArrivalMode>().unwrap(),
            ArrivalMode::Materialized
        );
        assert_eq!(
            "Streaming".parse::<ArrivalMode>().unwrap(),
            ArrivalMode::Streaming
        );
        assert!("shard".parse::<ArrivalMode>().is_err());
        for mode in ArrivalMode::ALL {
            assert_eq!(mode.to_string().parse::<ArrivalMode>().unwrap(), mode);
        }
    }

    /// The queue-side cursor must emit exactly the `(time, event)` pairs
    /// the materialized path preloads — bit-equal times, same order.
    #[test]
    fn streaming_arrivals_match_materialized_schedule() {
        for spec in [
            WorkloadSpec::synthetic(9000, 11), // > 2 shards
            WorkloadSpec::azure(risa_workload::AzureSubset::N3000, 4),
        ] {
            let workload = spec.materialize();
            let expect = crate::world::arrival_events(&workload);
            let mut cursor = StreamingArrivals::new(spec.shard_source().expect("generator-backed"));
            assert_eq!(cursor.remaining(), expect.len());
            let mut got = Vec::new();
            while let Some(pair) = cursor.next() {
                got.push(pair);
            }
            assert_eq!(got, expect);
            assert_eq!(cursor.remaining(), 0);
            assert!(cursor.peek_time().is_none());
        }
    }

    #[test]
    fn peek_agrees_with_next() {
        let mut cursor =
            StreamingArrivals::new(WorkloadSpec::synthetic(50, 3).shard_source().unwrap());
        let mut seen = 0;
        while let Some(t) = cursor.peek_time() {
            let (at, event) = cursor.next().unwrap();
            assert_eq!(at, t);
            assert_eq!(event, SimEvent::Arrival(seen));
            seen += 1;
        }
        assert_eq!(seen, 50);
    }
}
