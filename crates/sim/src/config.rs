//! Simulation-level configuration: latency constants and the bundle of all
//! subsystem configurations.

use risa_network::NetworkConfig;
use risa_photonics::PhotonicsConfig;
use risa_topology::TopologyConfig;
use serde::{Deserialize, Serialize};

/// CPU-RAM round-trip latency constants (§5.2, from \[20\]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyConfig {
    /// Round-trip within a rack, ns (paper: 110).
    pub intra_rack_ns: f64,
    /// Round-trip across racks, ns (paper: 330).
    pub inter_rack_ns: f64,
}

impl LatencyConfig {
    /// The paper's constants.
    pub const fn paper() -> Self {
        LatencyConfig {
            intra_rack_ns: 110.0,
            inter_rack_ns: 330.0,
        }
    }
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig::paper()
    }
}

/// Everything the simulation needs besides the workload and algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SimConfig {
    /// Cluster shape (Table 1).
    pub topology: TopologyConfig,
    /// Network shape (Table 2 and §3.1).
    pub network: NetworkConfig,
    /// Photonics constants (§3.2).
    pub photonics: PhotonicsConfig,
    /// Latency constants (§5.2).
    pub latency: LatencyConfig,
}

impl SimConfig {
    /// All-paper defaults.
    pub fn paper() -> Self {
        SimConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_latency_constants() {
        let l = LatencyConfig::paper();
        assert_eq!(l.intra_rack_ns, 110.0);
        assert_eq!(l.inter_rack_ns, 330.0);
    }

    #[test]
    fn default_bundle_is_paper() {
        let c = SimConfig::paper();
        assert_eq!(c.topology.racks, 18);
        assert_eq!(c.network.link_mbps, 200_000);
        assert_eq!(c.photonics.alpha, 0.9);
    }

    #[test]
    fn serde_roundtrip() {
        let c = SimConfig::paper();
        let json = serde_json::to_string(&c).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
