//! Optimistic rack-partitioned parallel execution of the single-run DES
//! hot loop.
//!
//! The sequential engine dispatches one event at a time; the dominant cost
//! per event is the scheduler's rack scan on arrivals. This module drains
//! the two-lane queue in bounded windows (≤ [`WINDOW`] events), prefetches
//! the window's [`risa_workload::VmRequest`]s, **speculates every arrival's
//! scheduling decision in parallel** against the window-start state on the
//! resident `rayon` pool, and then commits the window serially in exact
//! canonical `(time, seq)` order:
//!
//! * a speculated decision whose *read set* (for RISA/RISA-BF intra-rack
//!   admits, the wrapping rack interval `[round-robin cursor, chosen
//!   rack]`; for everything else, the whole cluster) is disjoint from the
//!   racks dirtied by earlier commits in the window **fast-commits**: the
//!   validated placement and flow hops are replayed without re-running the
//!   search (see [`commit`]);
//! * a conflicted decision **rolls back**: the speculated work is
//!   discarded entirely and the arrival re-executes serially through the
//!   ordinary [`crate::DdcWorld`] path.
//!
//! Because commits happen one at a time in the canonical order, and every
//! rolled-back event re-executes the sequential code, reports, event
//! traces and checkpoints are **byte-identical to the sequential engine at
//! any thread count** (`tests/hot_path_differential.rs` pins this across
//! the full workload × FEL × arrival-pipeline × faults matrix; the
//! wall-clock `sched_seconds` field is the one exclusion, and even its
//! sampling *structure* is reproduced exactly — see `SchedTimer::absorb`).
//!
//! Conflict-rate economics (quantified by `benches/des_parallel.rs` and
//! the [`SpeculationReport`] block): RISA admits serialize on the shared
//! round-robin cursor — every committed admit advances it, invalidating
//! the other outstanding admit speculations of the window — so admit-heavy
//! phases degrade toward serial execution plus validation overhead. Drops,
//! however, mutate nothing (a failed `try_rack` rolls every probe back and
//! never commits cursors), so the saturated phase of a run — where each
//! drop is a full O(racks) scan plus the super-rack fallback, the most
//! expensive events of the whole simulation — parallelizes cleanly.

mod commit;
mod view;

use crate::world::{DdcWorld, SimEvent};
use risa_des::{QueueEntry, RunOutcome, SimTime, Simulation};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Maximum events drained per window. Bounds both the executor-held event
/// buffer and the staleness of speculation (everything speculates against
/// the window-start state, so wider windows raise the conflict rate).
pub(crate) const WINDOW: usize = 256;

/// Arrivals speculated per cluster/network clone. One pool task clones the
/// window-start cluster and network once, then speculates its chunk's
/// arrivals sequentially with exact undo between them — amortizing the
/// clone cost over the chunk while every decision still reads the
/// window-start state exactly.
pub(crate) const SPEC_CHUNK: usize = 32;

/// How the single-run event loop executes (builder
/// [`crate::SimulationBuilder::exec`], `risa-cli run --exec`, or the
/// `RISA_EXEC` environment variable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Dispatch events one at a time — the oracle path.
    Sequential,
    /// Windowed optimistic parallel execution (this module): speculate
    /// arrival decisions on the thread pool, commit in canonical order,
    /// roll conflicts back to the sequential path. Byte-identical output;
    /// the report gains a [`SpeculationReport`] block.
    Speculative,
}

impl ExecMode {
    /// Every mode, for sweeps and differential tests.
    pub const ALL: [ExecMode; 2] = [ExecMode::Sequential, ExecMode::Speculative];

    /// Mode selected by the `RISA_EXEC` environment variable
    /// (`sequential` | `speculative`), defaulting to
    /// [`ExecMode::Sequential`]. Panics on an unrecognized value rather
    /// than silently running the wrong engine.
    pub fn from_env() -> ExecMode {
        // risa-lint: allow(env_read) — selects the execution engine; differential tests prove the choice never changes a report byte
        match std::env::var("RISA_EXEC") {
            Err(_) => ExecMode::Sequential,
            Ok(v) => v.parse().unwrap_or_else(|e| panic!("RISA_EXEC: {e}")),
        }
    }
}

impl FromStr for ExecMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "sequential" => Ok(ExecMode::Sequential),
            "speculative" => Ok(ExecMode::Speculative),
            other => Err(format!(
                "unknown exec mode '{other}' (sequential|speculative)"
            )),
        }
    }
}

impl fmt::Display for ExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ExecMode::Sequential => "sequential",
            ExecMode::Speculative => "speculative",
        })
    }
}

/// Counters of the speculative executor, reported under the `speculation`
/// key of [`crate::RunReport`] (absent on sequential runs).
///
/// Every field is a function of window composition and canonical commit
/// order only — chunking is fixed and validity is decided serially at
/// commit time — so the counts are **identical at any thread count**
/// (asserted by `tests/hot_path_differential.rs`). The accounting
/// identity `fast_commits + rollbacks + serial_events == window_events`
/// plus merged-in events holds per window.
///
/// Window composition *is* horizon-dependent, though: a `run_until`
/// horizon (or checkpoint split) truncates the window at the boundary,
/// and a shorter window accumulates less dirt — so the
/// `fast_commits`/`rollbacks` split may differ between an uninterrupted
/// run and the same run resumed from a checkpoint. The totals
/// (`speculated`, and `fast_commits + rollbacks`) and every simulation
/// result stay byte-identical either way.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpeculationReport {
    /// Windows drained from the queue.
    pub windows: u64,
    /// Events drained into windows (excludes events that handlers
    /// scheduled *into* a window mid-commit; those count as
    /// [`SpeculationReport::serial_events`]).
    pub window_events: u64,
    /// Arrival decisions speculated on the pool.
    pub speculated: u64,
    /// Speculations that survived conflict detection and fast-committed.
    pub fast_commits: u64,
    /// Speculations invalidated by an earlier commit in their window and
    /// re-executed serially.
    pub rollbacks: u64,
    /// Events committed through the ordinary sequential handler:
    /// departures, fault machinery, and handler-scheduled events merged
    /// into the window mid-commit.
    pub serial_events: u64,
}

impl SpeculationReport {
    /// Fold one window's counters into the running totals.
    pub(crate) fn merge(&mut self, d: &SpeculationReport) {
        self.windows += d.windows;
        self.window_events += d.window_events;
        self.speculated += d.speculated;
        self.fast_commits += d.fast_commits;
        self.rollbacks += d.rollbacks;
        self.serial_events += d.serial_events;
    }
}

/// Drive `sim` to `horizon` (inclusive, like [`Simulation::run_until`])
/// with the windowed optimistic executor. Every window fully commits
/// before this returns, so the queue and world are always in a state the
/// sequential engine could have produced — checkpoints taken between
/// calls are valid. Stop requests are honoured at window boundaries
/// (the DDC world never issues them; the granularity is documented on
/// [`crate::DdcSimulation::run_until`]).
pub(crate) fn run_speculative(sim: &mut Simulation<DdcWorld>, horizon: SimTime) -> RunOutcome {
    sim.clear_stop_request();
    loop {
        if sim.stop_requested() {
            return RunOutcome::Stopped;
        }
        // Drain up to WINDOW entries at or before the horizon. Everything
        // left in the queue sorts after everything drained.
        let mut window: Vec<QueueEntry<SimEvent>> = Vec::with_capacity(WINDOW);
        while window.len() < WINDOW {
            match sim.peek_key() {
                Some((t, _)) if t <= horizon => {
                    window.push(sim.pop_entry().expect("peeked entry"));
                }
                _ => break,
            }
        }
        if window.is_empty() {
            return match sim.peek_key() {
                None => RunOutcome::Exhausted,
                Some(_) => RunOutcome::HorizonReached,
            };
        }
        // Prefetch the window's VM requests in canonical order — which is
        // ascending VM-index order, so the streaming cursor sees exactly
        // the `next()` sequence the sequential run performs.
        let mut arrivals: Vec<view::ArrivalSpec> = Vec::new();
        {
            let world = sim.world_mut();
            for (pos, entry) in window.iter().enumerate() {
                if let SimEvent::Arrival(idx) = entry.event {
                    let vm = world.source.take(idx, &world.cfg.topology);
                    arrivals.push(view::ArrivalSpec { pos, idx, vm });
                }
            }
        }
        // Speculate every arrival against the window-start state, in
        // parallel, then commit the window serially in canonical order.
        let specs = view::speculate(sim.world(), &arrivals);
        let delta = commit::commit_window(sim, window, arrivals, specs);
        sim.world_mut()
            .speculation
            .as_mut()
            .expect("speculative runs carry a SpeculationReport")
            .merge(&delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parses_and_displays() {
        assert_eq!(
            "sequential".parse::<ExecMode>().unwrap(),
            ExecMode::Sequential
        );
        assert_eq!(
            "Speculative".parse::<ExecMode>().unwrap(),
            ExecMode::Speculative
        );
        assert!("parallel".parse::<ExecMode>().is_err());
        for mode in ExecMode::ALL {
            assert_eq!(mode.to_string().parse::<ExecMode>().unwrap(), mode);
        }
    }

    #[test]
    fn report_merge_accumulates() {
        let mut total = SpeculationReport::default();
        let d = SpeculationReport {
            windows: 1,
            window_events: 10,
            speculated: 7,
            fast_commits: 5,
            rollbacks: 2,
            serial_events: 3,
        };
        total.merge(&d);
        total.merge(&d);
        assert_eq!(total.windows, 2);
        assert_eq!(total.window_events, 20);
        assert_eq!(total.fast_commits, 10);
        assert_eq!(total.rollbacks, 4);
        assert_eq!(total.serial_events, 6);
    }
}
