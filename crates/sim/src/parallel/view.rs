//! The speculation phase: copy-on-write views and pool workers.
//!
//! Each pool task owns one *chunk view* — a clone of the window-start
//! cluster and network — and speculates its chunk's arrivals sequentially
//! against it, undoing each admitted placement before the next arrival so
//! every decision reads the window-start state **exactly** (validity at
//! commit time is then a pure function of what earlier commits dirtied;
//! see `super::commit`). The scheduler is cloned per arrival via
//! [`Scheduler::speculative_clone`], which zeroes the work counters so the
//! post-call clone *is* the work delta of that one call.
//!
//! This module mutates only its private clones (through the scheduler's
//! own entry points); all mutation of the real world happens in the
//! commit layer. The `speculation_purity` lint rule in `risa-lint` pins
//! that boundary: raw placement/flow mutators are flagged everywhere in
//! `sim/src/parallel` except `commit.rs`.

use super::SPEC_CHUNK;
use crate::world::DdcWorld;
use rayon::prelude::*;
use risa_network::NetworkState;
use risa_sched::{Algorithm, ScheduleOutcome, Scheduler};
use risa_topology::{Cluster, RackId, RackInterval, ResourceKind, TopologyConfig};
use risa_workload::VmRequest;
use std::time::{Duration, Instant};

/// One arrival drained into the current window, with its prefetched
/// request. `pos` is the entry's position in the window buffer, used to
/// re-align speculation results with the canonical commit order.
pub(super) struct ArrivalSpec {
    /// Position of the arrival within the drained window.
    pub(super) pos: usize,
    /// VM index (the `Arrival(idx)` payload).
    pub(super) idx: u32,
    /// The request, prefetched at window-drain time (the serial rollback
    /// path must *not* pull it from the source again).
    pub(super) vm: VmRequest,
}

/// A speculated scheduling decision, produced on a pool worker.
pub(super) struct Speculation {
    /// The decision taken against the window-start state.
    pub(super) outcome: ScheduleOutcome,
    /// The post-call scheduler clone: its cursors are the exact state the
    /// real scheduler reaches by making this decision, and its work
    /// counters are the delta of this one call.
    pub(super) sched: Scheduler,
    /// The racks this decision *read*, when that set is an interval: the
    /// RISA round-robin probe `[cursor, chosen rack]` of an intra-rack,
    /// non-fallback admit. `None` means the decision read the whole
    /// cluster (NULB/NALB, drops, fallback and inter-rack admits) and
    /// stays valid only if nothing at all was dirtied before it commits.
    pub(super) interval: Option<RackInterval>,
    /// Worker-measured duration of the `schedule` call, absorbed into the
    /// world's `SchedTimer` on fast commit.
    pub(super) elapsed: Duration,
}

/// The `Sync` window-start state workers speculate against (the world
/// itself is not `Sync` — the streaming source owns a prefetch task).
#[derive(Clone, Copy)]
struct S0<'a> {
    cluster: &'a Cluster,
    net: &'a NetworkState,
    scheduler: &'a Scheduler,
    topo: &'a TopologyConfig,
}

/// Speculate every window arrival against the window-start state of
/// `world`, in parallel chunks on the resident pool. Results are in
/// arrival (= canonical) order.
pub(super) fn speculate(world: &DdcWorld, arrivals: &[ArrivalSpec]) -> Vec<Speculation> {
    if arrivals.is_empty() {
        return Vec::new();
    }
    let s0 = S0 {
        cluster: &world.cluster,
        net: &world.net,
        scheduler: &world.scheduler,
        topo: &world.cfg.topology,
    };
    let chunks: Vec<&[ArrivalSpec]> = arrivals.chunks(SPEC_CHUNK).collect();
    chunks
        .par_iter()
        .flat_map(|chunk| speculate_chunk(s0, chunk))
        .collect()
}

/// Speculate one chunk on one worker: clone the cluster and network once,
/// run each arrival's schedule call on a fresh scheduler clone, and undo
/// admitted placements between arrivals so every decision reads the
/// window-start state.
fn speculate_chunk(s0: S0<'_>, chunk: &[ArrivalSpec]) -> Vec<Speculation> {
    let mut cluster = s0.cluster.clone();
    let mut net = s0.net.clone();
    let algo = s0.scheduler.algorithm();
    let probe_is_interval = matches!(algo, Algorithm::Risa | Algorithm::RisaBf);
    chunk
        .iter()
        .map(|a| {
            let mut sched = s0.scheduler.speculative_clone();
            let cursor0 = sched.rr_cursor();
            let demand = a.vm.demand(s0.topo);
            // risa-lint: allow(wall_clock) — workers always time the speculated call; the duration feeds SchedTimer::absorb only on fast commit, reproducing the sequential sampling structure exactly
            let t0 = Instant::now();
            let outcome = sched.schedule(&mut cluster, &mut net, &demand);
            let elapsed = t0.elapsed();
            let interval = match &outcome {
                ScheduleOutcome::Assigned(asg)
                    if probe_is_interval && asg.intra_rack && !asg.used_fallback =>
                {
                    // The round-robin probe visited exactly the racks from
                    // the cursor to the admitting rack, wrapping once —
                    // skipped non-pool racks included (their *membership*
                    // was read).
                    let chosen = cluster.rack_of(asg.placement.grant(ResourceKind::Cpu).box_id);
                    Some(RackInterval::new(RackId(cursor0), chosen))
                }
                _ => None,
            };
            // Exact undo: restore the chunk view to the window-start
            // state for the next arrival. Drops left it untouched.
            if let Some(asg) = outcome.assigned() {
                Scheduler::release(&mut cluster, &mut net, asg);
            }
            Speculation {
                outcome,
                sched,
                interval,
                elapsed,
            }
        })
        .collect()
}
