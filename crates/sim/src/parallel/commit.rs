//! The commit layer: serial canonical-order application of a drained
//! window, with conflict detection and rollback.
//!
//! This file is the **only** place speculative execution mutates the real
//! world, and the only file in `sim/src/parallel` exempt from the
//! `speculation_purity` lint rule's ban on raw placement/flow mutators.
//!
//! Commits walk the window in exact `(time, seq)` order, merging against
//! the live queue head so handler-scheduled events (departures of VMs
//! admitted earlier in the same window, fault follow-ups) still dispatch
//! in canonical order. A [`DirtySet`] accumulates what each commit wrote:
//!
//! | committed event                        | dirt                        |
//! |----------------------------------------|-----------------------------|
//! | arrival → intra-rack, non-fallback admit | grant racks + cursor moved |
//! | arrival → fallback or inter-rack admit | poison (read/wrote broadly) |
//! | arrival → drop                         | none (no state mutated)     |
//! | departure of a resident VM             | its grant racks             |
//! | departure of a tombstoned/in-transit VM| none (fault ledger only)    |
//! | any fault or migration event           | poison                      |
//!
//! A speculation fast-commits iff its read set is disjoint from the dirt:
//! interval reads (RISA intra-rack admits) tolerate dirt outside their
//! probe interval as long as the cursor has not moved; whole-cluster
//! reads (everything else) require a fully clean window so far. The
//! fast path replays the *validated* decision — placement re-taken, flow
//! hops re-reserved exactly ([`risa_network::NetworkState::replay_vm`] is
//! link-policy-independent), cursors adopted, work and timing deltas
//! absorbed — and then runs the same `finish_arrival` tail as the
//! sequential path, so the resulting world state is byte-identical.

use super::view::{ArrivalSpec, Speculation};
use super::SpeculationReport;
use crate::world::{DdcWorld, SimEvent};
use risa_des::{QueueEntry, Simulation};
use risa_sched::ScheduleOutcome;
use risa_topology::{RackId, RackInterval, RackSet};

/// What the window's earlier commits wrote, at rack granularity.
pub(super) struct DirtySet {
    /// Racks whose compute or intra-rack bandwidth changed.
    racks: RackSet,
    /// The real scheduler's cursor state moved (any committed admit):
    /// every outstanding interval speculation started from a stale
    /// cursor, so none of them can fast-commit.
    cursor_moved: bool,
    /// Something outside the rack-granular model changed (fault
    /// machinery, fallback/inter-rack placement): nothing fast-commits
    /// for the rest of the window.
    poisoned: bool,
}

impl DirtySet {
    fn new(num_racks: u16) -> Self {
        DirtySet {
            racks: RackSet::new(num_racks),
            cursor_moved: false,
            poisoned: false,
        }
    }

    fn is_clean(&self) -> bool {
        !self.poisoned && !self.cursor_moved && self.racks.is_empty()
    }

    /// May a speculation with this read set still fast-commit?
    fn admits(&self, read: Option<&RackInterval>) -> bool {
        match read {
            Some(iv) => {
                !self.poisoned && !self.cursor_moved && !self.racks.intersects_interval(*iv)
            }
            None => self.is_clean(),
        }
    }
}

/// Commit one drained window in canonical order. `arrivals` and `specs`
/// are aligned and sorted by window position (speculation preserves
/// order). Returns the window's counter delta (`windows == 1`).
pub(super) fn commit_window(
    sim: &mut Simulation<DdcWorld>,
    window: Vec<QueueEntry<SimEvent>>,
    arrivals: Vec<ArrivalSpec>,
    specs: Vec<Speculation>,
) -> SpeculationReport {
    let mut stats = SpeculationReport {
        windows: 1,
        window_events: window.len() as u64,
        speculated: arrivals.len() as u64,
        ..SpeculationReport::default()
    };
    let mut dirty = DirtySet::new(sim.world().cluster.num_racks());
    let mut spec_iter = arrivals.into_iter().zip(specs).peekable();
    let mut buffered = window.into_iter().enumerate().peekable();
    while let Some((pos, front)) = buffered.peek() {
        let front_key = (front.at, front.seq);
        if sim.peek_key().is_some_and(|k| k < front_key) {
            // A handler-scheduled event sorts before the next buffered
            // entry. It cannot be an arrival: at drain time everything
            // still queued sorted after the whole window, so only events
            // scheduled by this window's handlers can land here.
            let entry = sim.pop_entry().expect("peeked entry");
            debug_assert!(
                !matches!(entry.event, SimEvent::Arrival(_)),
                "arrival lane outran a drained window"
            );
            commit_serial(sim, entry, &mut dirty);
            stats.serial_events += 1;
            continue;
        }
        let pos = *pos;
        let (_, entry) = buffered.next().expect("peeked entry");
        if let SimEvent::Arrival(idx) = entry.event {
            let (a, spec) = spec_iter.next().expect("one speculation per arrival");
            debug_assert_eq!(a.pos, pos, "speculation out of step with the window");
            debug_assert_eq!(a.idx, idx);
            if dirty.admits(spec.interval.as_ref()) {
                commit_fast(sim, entry, &a, spec);
                stats.fast_commits += 1;
            } else {
                // Conflict: discard the speculated work entirely and
                // re-execute the arrival through the sequential path
                // (with the prefetched request — never a second take).
                let now = entry.at.as_units();
                sim.dispatch_with(entry, |w, ctx, _event| {
                    w.end_time = w.end_time.max(now);
                    w.arrival_with_vm(idx, &a.vm, now, ctx);
                });
                stats.rollbacks += 1;
            }
            taint_from_arrival(sim.world(), idx, &mut dirty);
        } else {
            commit_serial(sim, entry, &mut dirty);
            stats.serial_events += 1;
        }
    }
    debug_assert!(spec_iter.next().is_none(), "unconsumed speculation");
    stats
}

/// Apply a validated speculation without re-running the search: replicate
/// `World::handle`'s preamble, absorb the worker-measured timing, adopt
/// the post-call cursors and work delta, replay the placement and exact
/// flow hops, then run the shared `finish_arrival` tail.
fn commit_fast(
    sim: &mut Simulation<DdcWorld>,
    entry: QueueEntry<SimEvent>,
    a: &ArrivalSpec,
    spec: Speculation,
) {
    let Speculation {
        outcome,
        sched,
        interval: _,
        elapsed,
    } = spec;
    let (idx, vm) = (a.idx, &a.vm);
    let now = entry.at.as_units();
    sim.dispatch_with(entry, move |w, ctx, _event| {
        w.end_time = w.end_time.max(now);
        w.sched.absorb(elapsed);
        w.scheduler.adopt_cursors(&sched);
        w.scheduler.add_work(*sched.work());
        if let ScheduleOutcome::Assigned(asg) = &outcome {
            w.cluster
                .take_placement(&asg.placement)
                .expect("validated speculation: placement must replay");
            w.net
                .replay_vm(&asg.network)
                .expect("validated speculation: flow hops must replay");
        }
        w.finish_arrival(idx, vm, outcome, now, ctx);
    });
}

/// Record the dirt a just-committed arrival produced, derived from the
/// realized outcome (identical for fast and rolled-back commits): the
/// assignment slot is occupied iff the VM was admitted.
fn taint_from_arrival(world: &DdcWorld, idx: u32, dirty: &mut DirtySet) {
    match world.assignment(idx) {
        Some(a) if a.used_fallback || !a.intra_rack => dirty.poisoned = true,
        Some(a) => {
            dirty.cursor_moved = true;
            for r in a.placement.racks(&world.cluster) {
                dirty.racks.insert(r);
            }
        }
        // Dropped: the schedule call rolled every probe back — no rack,
        // cursor or network state changed (only write-only counters).
        None => {}
    }
}

/// Dispatch a non-arrival event through the ordinary sequential handler
/// and record its dirt.
fn commit_serial(
    sim: &mut Simulation<DdcWorld>,
    entry: QueueEntry<SimEvent>,
    dirty: &mut DirtySet,
) {
    match entry.event {
        SimEvent::Arrival(_) => unreachable!("arrivals take the speculation path"),
        SimEvent::Departure(idx) => {
            // Racks this departure frees — captured before dispatch, since
            // the handler consumes the assignment. `None` means the VM was
            // tombstoned or is in transit: only fault bookkeeping mutates.
            let freed: Option<Vec<RackId>> = {
                let w = sim.world();
                w.assignment(idx).map(|a| a.placement.racks(&w.cluster))
            };
            sim.dispatch_entry(entry);
            if let Some(racks) = freed {
                for r in racks {
                    dirty.racks.insert(r);
                }
            }
        }
        SimEvent::RackFail(_)
        | SimEvent::RackRepair(_)
        | SimEvent::TrunkDown { .. }
        | SimEvent::TrunkUp { .. }
        | SimEvent::XcvrDown { .. }
        | SimEvent::XcvrUp { .. }
        | SimEvent::Migrate(_) => {
            // Rack membership, link state or the scheduler itself may
            // change — outside the rack-granular read model.
            sim.dispatch_entry(entry);
            dirty.poisoned = true;
        }
    }
}
