//! Fluent construction of a ready-to-run DDC simulation.

use crate::config::{LatencyConfig, SimConfig};
use crate::faults::FaultSpec;
use crate::parallel::ExecMode;
use crate::report::RunReport;
use crate::spec::WorkloadSpec;
use crate::streaming::{ArrivalMode, StreamingArrivals};
use crate::world::{DdcWorld, DEFAULT_SCHED_TIMING_BATCH};
use risa_des::{EventQueue, EventTrace, FelKind, SimTime, Simulation};
use risa_network::NetworkConfig;
use risa_photonics::PhotonicsConfig;
use risa_sched::Algorithm;
use risa_topology::{ResourceKind, TopologyConfig, ALL_RESOURCES};
use risa_workload::StreamingShards;
use std::sync::Arc;

/// Why a simulation could not be built. [`SimulationBuilder::try_build`]
/// returns these; [`SimulationBuilder::build`] panics with their
/// [`std::fmt::Display`] rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A pre-built [`WorkloadSpec::Trace`] is not sorted by arrival time.
    /// Reachable in release builds (where `Workload::from_vms` only
    /// debug-asserts order) via traces deserialized from tampered or
    /// buggy JSON; rejected *typed and loud* rather than silently routed
    /// through a slower arrival path that would mask the producer's bug.
    UnsortedTrace {
        /// Workload name.
        workload: String,
        /// Index of the first VM that arrives before its predecessor.
        index: usize,
    },
    /// A VM's demand exceeds single-box capacity, violating the paper's
    /// §2 placement assumption.
    OversizedVm {
        /// Offending VM id.
        id: u32,
        /// Workload name.
        workload: String,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnsortedTrace { workload, index } => write!(
                f,
                "workload '{workload}' is not sorted by arrival (first violation at VM \
                 index {index}); fix the trace producer"
            ),
            BuildError::OversizedVm { id, workload } => write!(
                f,
                "VM vm{id} in workload '{workload}' exceeds single-box capacity \
                 (paper §2 assumption)"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builder for a [`DdcSimulation`]. Defaults reproduce the paper exactly:
/// Table 1 topology, §3.1 network, §3.2 photonics, RISA, and a small
/// synthetic workload.
///
/// Fields are `pub(crate)` so the checkpoint codec (`crate::checkpoint`)
/// can persist a fully-resolved builder as a run recipe.
#[derive(Debug, Clone)]
pub struct SimulationBuilder {
    pub(crate) cfg: SimConfig,
    pub(crate) algorithm: Algorithm,
    pub(crate) workload: WorkloadSpec,
    pub(crate) timeline_interval: Option<f64>,
    pub(crate) audit: bool,
    pub(crate) fel: Option<FelKind>,
    pub(crate) queue_capacity: Option<usize>,
    pub(crate) sched_timing_batch: u32,
    pub(crate) legacy_arrival_path: bool,
    pub(crate) arrivals: Option<ArrivalMode>,
    pub(crate) faults: Option<Option<FaultSpec>>,
    pub(crate) checkpoint_every: Option<f64>,
    pub(crate) exec: Option<ExecMode>,
}

impl SimulationBuilder {
    /// Paper defaults.
    pub fn new() -> Self {
        SimulationBuilder {
            cfg: SimConfig::paper(),
            algorithm: Algorithm::Risa,
            workload: WorkloadSpec::synthetic(100, 0),
            timeline_interval: None,
            audit: false,
            fel: None,
            queue_capacity: None,
            sched_timing_batch: DEFAULT_SCHED_TIMING_BATCH,
            legacy_arrival_path: false,
            arrivals: None,
            faults: None,
            checkpoint_every: None,
            exec: None,
        }
    }

    /// Choose the single-run execution engine (default: the `RISA_EXEC`
    /// environment variable, falling back to [`ExecMode::Sequential`]).
    /// [`ExecMode::Speculative`] drains the queue in bounded windows and
    /// speculates arrival decisions on the `rayon` pool — reports, event
    /// traces and checkpoints stay byte-identical to the sequential
    /// engine at any thread count (pinned by
    /// `tests/hot_path_differential.rs`), and the report gains a
    /// [`crate::SpeculationReport`] block.
    pub fn exec(mut self, mode: ExecMode) -> Self {
        self.exec = Some(mode);
        self
    }

    /// Snapshot the run every `interval` simulated time units when driven
    /// by [`DdcSimulation::run_checkpointed`] (see `crate::checkpoint`).
    /// Plain [`DdcSimulation::run`] ignores the cadence; the interval is
    /// carried in every checkpoint's recipe so resumed runs keep it.
    pub fn checkpoint_every(mut self, interval: f64) -> Self {
        assert!(
            interval > 0.0 && interval.is_finite(),
            "checkpoint interval must be positive and finite"
        );
        self.checkpoint_every = Some(interval);
        self
    }

    /// Attach a fault-injection scenario: rack failure/repair, trunk-link
    /// and transceiver outages driven by deterministic per-component RNG
    /// chains (see [`FaultSpec`] and the `crate::faults` module docs).
    /// The run report gains a [`crate::FaultReport`] block.
    ///
    /// Default: the `RISA_FAULTS` environment variable
    /// ([`FaultSpec::from_env`]), falling back to no faults.
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.faults = Some(Some(spec));
        self
    }

    /// Force faults off, ignoring the `RISA_FAULTS` environment variable
    /// — for tests and experiments that assert exact faults-free outcomes.
    pub fn faults_off(mut self) -> Self {
        self.faults = Some(None);
        self
    }

    /// Choose how arrivals reach the engine (default: the `RISA_ARRIVALS`
    /// environment variable, falling back to
    /// [`ArrivalMode::Materialized`]). [`ArrivalMode::Streaming`]
    /// generates the trace shard-by-shard *during* the run — peak memory
    /// O(resident VMs + 2 shards) instead of O(trace length) — and is
    /// byte-identical to the materialized path (pinned by
    /// `tests/hot_path_differential.rs`). Every [`WorkloadSpec`] streams:
    /// generators regenerate shards, pre-built traces are served in
    /// shard-sized slices, and CSV trace files are read chunk-by-chunk.
    /// Only the legacy arrival path forces
    /// [`ArrivalMode::Materialized`] — check
    /// [`DdcSimulation::arrival_mode`] for the mode actually in effect.
    pub fn arrivals(mut self, mode: ArrivalMode) -> Self {
        self.arrivals = Some(mode);
        self
    }

    /// Choose the future-event-list backend (default: the `RISA_FEL`
    /// environment variable, falling back to [`FelKind::Heap`]). Reports
    /// are byte-identical across backends — pinned by
    /// `tests/hot_path_differential.rs`.
    pub fn fel(mut self, kind: FelKind) -> Self {
        self.fel = Some(kind);
        self
    }

    /// Pre-reserve space for `cap` events in the future-event list (heap
    /// backend only). The FEL holds in-flight departures, so a bound on
    /// peak *resident* VMs — not the trace length — is the right hint.
    pub fn queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = Some(cap);
        self
    }

    /// Scheduler-timing batch: one clock pair per `every` scheduling calls
    /// (default [`DEFAULT_SCHED_TIMING_BATCH`]); `1` restores exact
    /// per-call timing. See [`RunReport::sched_seconds`].
    pub fn sched_timing_batch(mut self, every: u32) -> Self {
        self.sched_timing_batch = every;
        self
    }

    /// Schedule every arrival through the future-event list, as the
    /// engine did before the two-lane queue (PR 5). This is the *oracle*
    /// configuration for the hot-path differential tests; behavior is
    /// byte-identical to the default sorted-stream path, just slower on
    /// big traces.
    pub fn legacy_arrival_path(mut self, on: bool) -> Self {
        self.legacy_arrival_path = on;
        self
    }

    /// Independently audit every assignment against a shadow ledger
    /// (`risa_sched::audit`); the run panics on any violation. Costs one
    /// hash-map insert/remove per VM — enabled throughout the test suite.
    pub fn audit(mut self, on: bool) -> Self {
        self.audit = on;
        self
    }

    /// Record a utilization time series sampled every `interval` time
    /// units, retrievable via [`DdcSimulation::timeline`].
    pub fn record_timeline(mut self, interval: f64) -> Self {
        self.timeline_interval = Some(interval);
        self
    }

    /// Choose the scheduling algorithm.
    pub fn algorithm(mut self, a: Algorithm) -> Self {
        self.algorithm = a;
        self
    }

    /// Choose the workload.
    pub fn workload(mut self, w: WorkloadSpec) -> Self {
        self.workload = w;
        self
    }

    /// Override the topology (Table 1 by default).
    pub fn topology(mut self, t: TopologyConfig) -> Self {
        self.cfg.topology = t;
        self
    }

    /// Override the network (§3.1/Table 2 by default).
    pub fn network(mut self, n: NetworkConfig) -> Self {
        self.cfg.network = n;
        self
    }

    /// Override the photonics constants (§3.2 by default).
    pub fn photonics(mut self, p: PhotonicsConfig) -> Self {
        self.cfg.photonics = p;
        self
    }

    /// Override the latency constants (§5.2 by default).
    pub fn latency(mut self, l: LatencyConfig) -> Self {
        self.cfg.latency = l;
        self
    }

    /// Override the whole configuration bundle.
    pub fn config(mut self, c: SimConfig) -> Self {
        self.cfg = c;
        self
    }

    /// Materialize the workload and prime the event queue.
    ///
    /// Trace generation fans out over the `rayon` pool (sharded,
    /// deterministic — see [`WorkloadSpec::materialize`]); it happens
    /// here, *before* the run, so the report's scheduler wall-clock
    /// (`sched_seconds`) is never polluted by generation threads.
    ///
    /// Under [`ArrivalMode::Streaming`] (generator-backed specs only) no
    /// trace is materialized at all: the run consumes the workload
    /// shard-by-shard, prefetching the next shard on the pool while the
    /// engine drains the current one — same report, same event order,
    /// O(resident VMs + 2 shards) peak memory.
    ///
    /// Arrivals are fed to the engine through the two-lane queue's sorted
    /// stream ([`Simulation::preload_sorted`]): the trace is walked by
    /// index — no `Vec<VmRequest>` clone — and the future-event list only
    /// ever holds in-flight departures, O(resident VMs) instead of
    /// O(trace length).
    ///
    /// Panics on an invalid workload (unsorted pre-built trace, VM
    /// exceeding single-box capacity) with the corresponding
    /// [`BuildError`] message; use [`SimulationBuilder::try_build`] where
    /// a typed error is preferable.
    pub fn build(self) -> DdcSimulation {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`SimulationBuilder::build`], but invalid workloads surface
    /// as a typed [`BuildError`] instead of a panic.
    pub fn try_build(self) -> Result<DdcSimulation, BuildError> {
        // Resolve every env-deferred knob *now* and remember the result:
        // the recipe a checkpoint stores must be able to rebuild this run
        // without consulting ambient state (env vars may differ — or be
        // gone — by resume time; see `crate::checkpoint`).
        let fault_spec = match &self.faults {
            Some(choice) => choice.clone(),
            None => FaultSpec::from_env(),
        };
        let mode = self.arrivals.unwrap_or_else(ArrivalMode::from_env);
        let backend = self.fel.unwrap_or_else(FelKind::from_env);
        let exec = self.exec.unwrap_or_else(ExecMode::from_env);
        let mut recipe = self.clone();
        recipe.faults = Some(fault_spec.clone());
        recipe.arrivals = Some(mode);
        recipe.fel = Some(backend);
        recipe.exec = Some(exec);

        // Typed rejection of unsorted pre-built traces. Generators emit
        // sorted traces by construction and CSV parsing validates order,
        // but a `Trace` deserialized from tampered or buggy JSON bypasses
        // `Workload::from_vms`' debug_assert in release builds — catch it
        // here on every build profile, before any arrival pipeline runs.
        // The legacy oracle path is exempt: it pushes every arrival
        // through the FEL, which orders them itself — accepting unsorted
        // traces is that path's job.
        if !self.legacy_arrival_path {
            if let WorkloadSpec::Trace(w) = &self.workload {
                let vms = w.vms();
                if let Some(index) = (1..vms.len()).find(|&i| vms[i].arrival < vms[i - 1].arrival) {
                    return Err(BuildError::UnsortedTrace {
                        workload: w.name().to_string(),
                        index,
                    });
                }
                // Same early-rejection contract for capacity: a pre-built
                // trace is already in memory, so an oversized VM is
                // detectable now on *both* arrival pipelines — the
                // streaming branch below otherwise defers validation to
                // each arrival, turning a build-time error into a
                // mid-run panic.
                if let Err(vm) = w.validate_fits(&self.cfg.topology) {
                    return Err(BuildError::OversizedVm {
                        id: vm.id.0,
                        workload: w.name().to_string(),
                    });
                }
            }
        }

        // The streaming pipeline serves every spec kind (generators
        // regenerate shards; pre-built and on-disk traces are served in
        // shard-sized chunks); only the legacy push-everything oracle
        // path forces materialization.
        let streaming_source = if mode == ArrivalMode::Streaming && !self.legacy_arrival_path {
            self.workload.shard_source()
        } else {
            None
        };
        let queue =
            EventQueue::with_capacity_and_backend(self.queue_capacity.unwrap_or(0), backend);

        if let Some(source) = streaming_source {
            // Streaming: the world pulls full VmRequests from a
            // double-buffered shard cursor; the queue pulls arrival
            // *times* from an independent arrivals-only cursor. Nothing
            // is materialized — peak memory is O(resident + 2 shards).
            // Per-VM capacity validation happens at each arrival.
            let cursor = StreamingShards::new(Arc::clone(&source));
            let mut world = DdcWorld::new_streaming(self.cfg, self.algorithm, cursor);
            self.prime(&mut world);
            if exec == ExecMode::Speculative {
                world.enable_speculation();
            }
            if let Some(spec) = fault_spec {
                world.enable_faults(spec, source.span_units());
            }
            let mut sim = Simulation::with_queue(world, queue);
            sim.attach_arrivals(Box::new(StreamingArrivals::new(source)));
            Self::seed_faults(&mut sim);
            return Ok(DdcSimulation {
                sim,
                arrival_mode: ArrivalMode::Streaming,
                recipe,
                checkpoint_every: self.checkpoint_every,
                exec,
            });
        }

        let workload = self.workload.materialize();
        if let Err(vm) = workload.validate_fits(&self.cfg.topology) {
            return Err(BuildError::OversizedVm {
                id: vm.id.0,
                workload: workload.name().to_string(),
            });
        }
        // After the typed Trace check above, every materialized workload
        // reaching the sorted-preload lane is sorted (generators by
        // construction, CSV by validation); the legacy lane pushes
        // through the FEL and tolerates any order.
        debug_assert!(
            self.legacy_arrival_path
                || workload
                    .vms()
                    .windows(2)
                    .all(|w| w[0].arrival <= w[1].arrival),
            "generator produced an unsorted trace"
        );
        let arrivals = crate::world::arrival_events(&workload);
        let span = workload.vms().last().map_or(0.0, |vm| vm.arrival);
        let mut world = DdcWorld::new(self.cfg, self.algorithm, workload);
        self.prime(&mut world);
        if exec == ExecMode::Speculative {
            world.enable_speculation();
        }
        if let Some(spec) = fault_spec {
            world.enable_faults(spec, span);
        }
        let mut sim = Simulation::with_queue(world, queue);
        if self.legacy_arrival_path {
            for (at, event) in arrivals {
                sim.schedule(at, event);
            }
        } else {
            sim.preload_sorted(arrivals);
        }
        Self::seed_faults(&mut sim);
        Ok(DdcSimulation {
            sim,
            arrival_mode: ArrivalMode::Materialized,
            recipe,
            checkpoint_every: self.checkpoint_every,
            exec,
        })
    }

    /// Push each fault chain's first onset through the FEL. Must run
    /// *after* arrivals are preloaded/attached: both arrival pipelines
    /// reserve the same sequence-number block for the trace, so seeding
    /// afterwards gives every fault event the identical sequence number
    /// (and therefore identical same-time ordering) on both paths.
    fn seed_faults(sim: &mut Simulation<DdcWorld>) {
        if sim.world().faults.is_some() {
            for (at, event) in sim.world_mut().initial_fault_events() {
                sim.schedule(at, event);
            }
        }
    }

    /// Apply the builder knobs shared by both arrival paths.
    fn prime(&self, world: &mut DdcWorld) {
        world.set_sched_timing_batch(self.sched_timing_batch);
        if let Some(interval) = self.timeline_interval {
            world.enable_timeline(interval);
        }
        if self.audit {
            world.enable_audit();
        }
    }
}

impl Default for SimulationBuilder {
    fn default() -> Self {
        SimulationBuilder::new()
    }
}

/// A primed simulation; [`DdcSimulation::run`] drives it to completion and
/// summarizes.
#[derive(Debug)]
pub struct DdcSimulation {
    pub(crate) sim: Simulation<DdcWorld>,
    pub(crate) arrival_mode: ArrivalMode,
    /// The fully-resolved builder that produced this run: every
    /// env-deferred knob pinned at build time, so a checkpoint's embedded
    /// recipe can rebuild the identical pristine run without consulting
    /// ambient state (see [`crate::checkpoint`]).
    pub(crate) recipe: SimulationBuilder,
    /// Checkpoint cadence for [`DdcSimulation::run_checkpointed`], in
    /// simulated time units.
    pub(crate) checkpoint_every: Option<f64>,
    /// The execution engine resolved at build time.
    pub(crate) exec: ExecMode,
}

impl DdcSimulation {
    /// Run every event and produce the run report.
    pub fn run(&mut self) -> RunReport {
        match self.exec {
            ExecMode::Sequential => {
                self.sim.run_to_completion();
            }
            ExecMode::Speculative => {
                crate::parallel::run_speculative(&mut self.sim, SimTime::MAX);
            }
        }
        self.finish()
    }

    /// Post-run invariant checks + flushes, shared by every driver that
    /// drains the queue ([`DdcSimulation::run`] and the checkpointing
    /// loop in [`crate::checkpoint`]).
    pub(crate) fn finish(&mut self) -> RunReport {
        debug_assert_eq!(self.sim.clamped_schedules(), 0);
        // Drained queue ⇒ every admitted VM departed and released its
        // slot (the sparse store's residency-bounded-memory invariant).
        debug_assert_eq!(
            self.sim.world().assignments.occupied(),
            self.sim.world().resident() as usize
        );
        debug_assert!(self.sim.world().assignments.all_free());
        self.sim.world_mut().flush_timeline();
        self.sim.world_mut().finish_audit();
        self.report()
    }

    /// Summarize current state (normally called after [`DdcSimulation::run`]).
    pub fn report(&self) -> RunReport {
        let w = self.sim.world();
        let t_end = w.end_time;
        let cap = |k: ResourceKind| w.cluster.total_capacity(k) as f64;
        let util = |k: ResourceKind| {
            if t_end > 0.0 && cap(k) > 0.0 {
                w.util[k.index()].mean_to(t_end) / cap(k)
            } else {
                0.0
            }
        };
        let mut us = [0.0; 3];
        for k in ALL_RESOURCES {
            us[k.index()] = util(k);
        }
        let intra_cap = w.net.intra_capacity_mbps() as f64;
        let inter_cap = w.net.inter_capacity_mbps() as f64;
        RunReport {
            algorithm: w.algorithm(),
            workload: w.source.name().to_string(),
            total_vms: w.source.total(),
            admitted: w.counters.admitted,
            dropped: w.counters.dropped_compute + w.counters.dropped_network,
            dropped_compute: w.counters.dropped_compute,
            dropped_network: w.counters.dropped_network,
            inter_rack_assignments: w.counters.inter_rack,
            fallback_assignments: w.counters.fallback,
            cpu_utilization: us[0],
            ram_utilization: us[1],
            storage_utilization: us[2],
            intra_net_utilization: if t_end > 0.0 {
                w.intra_bw.mean_to(t_end) / intra_cap
            } else {
                0.0
            },
            inter_net_utilization: if t_end > 0.0 {
                w.inter_bw.mean_to(t_end) / inter_cap
            } else {
                0.0
            },
            optical_energy_j: w.optical_energy_j,
            optical_power_w: if t_end > 0.0 {
                w.optical_energy_j / t_end
            } else {
                0.0
            },
            mean_cpu_ram_latency_ns: w.latency.mean(),
            sched_seconds: w.sched_seconds(),
            work: *w.scheduler.work(),
            sim_duration: t_end,
            faults: w.fault_report(),
            speculation: w.speculation,
        }
    }

    /// Access the world (e.g. for white-box assertions in tests).
    pub fn world(&self) -> &DdcWorld {
        self.sim.world()
    }

    /// Keep a ring buffer of the last `capacity` dispatched events; with a
    /// capacity of at least `2 × total VMs` the dump is the complete event
    /// dispatch order (the hot-path differential compares these across
    /// engine configurations).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.sim.enable_trace(capacity);
    }

    /// The event trace, when enabled via [`DdcSimulation::enable_trace`].
    pub fn trace(&self) -> Option<&EventTrace> {
        self.sim.trace()
    }

    /// Total events dispatched so far (arrivals + departures).
    pub fn events_dispatched(&self) -> u64 {
        self.sim.dispatched()
    }

    /// High-water mark of the future-event list. With the sorted arrival
    /// stream this is bounded by peak *resident* VMs, not trace length —
    /// asserted by `tests/hot_path_differential.rs`.
    pub fn peak_fel_len(&self) -> usize {
        self.sim.queue().peak_fel_len()
    }

    /// The future-event-list backend this run uses.
    pub fn fel_backend(&self) -> FelKind {
        self.sim.queue().backend()
    }

    /// The execution engine this run uses (resolved at build time from
    /// [`SimulationBuilder::exec`] or the `RISA_EXEC` environment
    /// variable).
    pub fn exec_mode(&self) -> ExecMode {
        self.exec
    }

    /// The arrival pipeline actually in effect. Every workload spec
    /// streams (generators, pre-built traces, and on-disk CSV traces
    /// alike); only the legacy arrival path forces
    /// [`ArrivalMode::Materialized`].
    pub fn arrival_mode(&self) -> ArrivalMode {
        self.arrival_mode
    }

    /// High-water mark of VMs buffered by the streaming workload cursor;
    /// `None` on the materialized path. Bounded by
    /// 2×[`risa_workload::shard::SHARD_SIZE`] by construction — the
    /// memory-bound half of the streaming pipeline's contract (asserted
    /// by `tests/streaming_bounds.rs`).
    pub fn peak_buffered_arrivals(&self) -> Option<usize> {
        self.sim.world().stream_peak_buffered()
    }

    /// The recorded time series, when enabled via
    /// [`SimulationBuilder::record_timeline`].
    pub fn timeline(&self) -> Option<&crate::timeline::Timeline> {
        self.sim.world().timeline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_produces_consistent_report() {
        let report = SimulationBuilder::new()
            .algorithm(Algorithm::RisaBf)
            .workload(WorkloadSpec::synthetic(120, 5))
            .faults_off() // exact faults-free numbers asserted below
            .build()
            .run();
        assert_eq!(report.total_vms, 120);
        assert_eq!(report.admitted + report.dropped, 120);
        assert_eq!(report.dropped, 0);
        assert_eq!(
            report.dropped,
            report.dropped_compute + report.dropped_network
        );
        assert!(report.sim_duration > 6300.0, "runs past the first lifetime");
        assert!(report.cpu_utilization > 0.0 && report.cpu_utilization < 1.0);
        assert!(report.optical_power_w > 0.0);
        assert_eq!(report.mean_cpu_ram_latency_ns, 110.0);
        assert_eq!(report.inter_rack_percent(), 0.0);
    }

    #[test]
    fn reports_are_deterministic_modulo_wall_clock() {
        let run = || {
            let mut r = SimulationBuilder::new()
                .algorithm(Algorithm::Nulb)
                .workload(WorkloadSpec::synthetic(150, 77))
                .build()
                .run();
            r.sched_seconds = 0.0; // the only wall-clock field
            r
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_algorithms_share_workload() {
        // Same seed ⇒ identical workload across algorithms, as the paper's
        // comparisons require.
        let a = SimulationBuilder::new()
            .algorithm(Algorithm::Nulb)
            .workload(WorkloadSpec::synthetic(60, 9))
            .build()
            .run();
        let b = SimulationBuilder::new()
            .algorithm(Algorithm::Risa)
            .workload(WorkloadSpec::synthetic(60, 9))
            .build()
            .run();
        assert_eq!(a.total_vms, b.total_vms);
        assert_eq!(a.workload, b.workload);
    }

    /// The whole point of the pipeline: identical reports (and admitted
    /// counters, energies, …) whether the trace is materialized up front
    /// or streamed shard-by-shard during the run.
    #[test]
    fn streaming_report_equals_materialized_report() {
        let run = |mode: ArrivalMode| {
            let mut sim = SimulationBuilder::new()
                .workload(WorkloadSpec::synthetic(9000, 13)) // 3 shards
                .arrivals(mode)
                .audit(true)
                .build();
            assert_eq!(sim.arrival_mode(), mode);
            let mut r = sim.run();
            r.sched_seconds = 0.0;
            (r, sim.events_dispatched(), sim.peak_fel_len())
        };
        let (m_report, m_events, m_fel) = run(ArrivalMode::Materialized);
        let (s_report, s_events, s_fel) = run(ArrivalMode::Streaming);
        assert_eq!(s_report, m_report);
        assert_eq!(s_events, m_events);
        assert_eq!(s_fel, m_fel);
    }

    #[test]
    fn streaming_bounds_buffered_arrivals() {
        use risa_workload::shard::SHARD_SIZE;
        let mut sim = SimulationBuilder::new()
            .workload(WorkloadSpec::synthetic(3 * SHARD_SIZE, 5))
            .arrivals(ArrivalMode::Streaming)
            .build();
        sim.run();
        let peak = sim.peak_buffered_arrivals().expect("streaming run");
        assert!(peak <= 2 * SHARD_SIZE as usize, "peak {peak}");
        assert!(peak > 0);
    }

    #[test]
    fn pre_built_traces_stream_and_match_their_materialized_run() {
        // A pre-built trace streams through TraceShards — no silent
        // fallback to the materialized path — and the result is
        // byte-identical to running the same trace materialized.
        let w = WorkloadSpec::synthetic(300, 2).materialize();
        let run = |mode| {
            let mut sim = SimulationBuilder::new()
                .workload(WorkloadSpec::Trace(w.clone()))
                .arrivals(mode)
                .build();
            let mut r = sim.run();
            r.sched_seconds = 0.0;
            (sim.arrival_mode(), r)
        };
        let (streamed_mode, streamed) = run(ArrivalMode::Streaming);
        let (materialized_mode, materialized) = run(ArrivalMode::Materialized);
        assert_eq!(streamed_mode, ArrivalMode::Streaming);
        assert_eq!(materialized_mode, ArrivalMode::Materialized);
        assert_eq!(streamed, materialized);

        // Only the legacy oracle path still forces materialization.
        let sim = SimulationBuilder::new()
            .workload(WorkloadSpec::synthetic(20, 2))
            .arrivals(ArrivalMode::Streaming)
            .legacy_arrival_path(true)
            .build();
        assert_eq!(sim.arrival_mode(), ArrivalMode::Materialized);
        assert_eq!(sim.peak_buffered_arrivals(), None);
    }

    /// An unsorted trace — only reachable by deserializing tampered or
    /// buggy JSON, since `Workload::from_vms` merely debug-asserts order —
    /// must be rejected with a typed error in *every* build profile.
    /// Regression for the release-mode hole where the old code silently
    /// fell back to routing arrivals through the FEL.
    #[test]
    fn unsorted_trace_rejected_with_typed_error_in_release_too() {
        use serde::{Deserialize as _, Serialize as _, Value};

        let good = WorkloadSpec::synthetic(10, 3).materialize();
        // Tamper via serde: swap two arrivals in the serialized tree so
        // the workload never passes through `from_vms` ordering checks.
        let mut tree = good.to_value();
        {
            let Value::Map(fields) = &mut tree else {
                panic!("workload serializes as a map")
            };
            let (_, vms) = fields
                .iter_mut()
                .find(|(k, _)| k == "vms")
                .expect("workload map has a vms field");
            let Value::Seq(items) = vms else {
                panic!("vms serializes as a sequence")
            };
            let arrival = |item: &Value| item.get("arrival").unwrap().clone();
            let (a3, a7) = (arrival(&items[3]), arrival(&items[7]));
            let mut set = |i: usize, val: Value| {
                let Value::Map(vm) = &mut items[i] else {
                    panic!("VM serializes as a map")
                };
                vm.iter_mut().find(|(k, _)| k == "arrival").unwrap().1 = val;
            };
            set(3, a7);
            set(7, a3);
        }
        let tampered = risa_workload::Workload::from_value(&tree).unwrap();

        let err = SimulationBuilder::new()
            .workload(WorkloadSpec::Trace(tampered))
            .try_build()
            .expect_err("tampered trace must be rejected");
        match &err {
            BuildError::UnsortedTrace { workload, index } => {
                assert_eq!(workload, "synthetic");
                assert_eq!(*index, 4, "first out-of-order VM index");
            }
            other => panic!("expected UnsortedTrace, got {other:?}"),
        }
        assert!(err.to_string().contains("not sorted by arrival"));
    }

    #[test]
    #[should_panic(expected = "single-box capacity")]
    fn oversized_vm_rejected_at_build() {
        use risa_workload::{VmId, VmRequest, Workload};
        let vm = VmRequest {
            id: VmId(0),
            cpu_cores: 4096,
            ram_gb: 4,
            storage_gb: 128,
            arrival: 1.0,
            lifetime: 10.0,
        };
        SimulationBuilder::new()
            .workload(WorkloadSpec::Trace(Workload::from_vms("bad", vec![vm])))
            .build();
    }
}
