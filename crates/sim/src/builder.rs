//! Fluent construction of a ready-to-run DDC simulation.

use crate::config::{LatencyConfig, SimConfig};
use crate::report::RunReport;
use crate::spec::WorkloadSpec;
use crate::world::{DdcWorld, SimEvent};
use risa_des::{SimTime, Simulation};
use risa_network::NetworkConfig;
use risa_photonics::PhotonicsConfig;
use risa_sched::Algorithm;
use risa_topology::{ResourceKind, TopologyConfig, ALL_RESOURCES};

/// Builder for a [`DdcSimulation`]. Defaults reproduce the paper exactly:
/// Table 1 topology, §3.1 network, §3.2 photonics, RISA, and a small
/// synthetic workload.
#[derive(Debug, Clone)]
pub struct SimulationBuilder {
    cfg: SimConfig,
    algorithm: Algorithm,
    workload: WorkloadSpec,
    timeline_interval: Option<f64>,
    audit: bool,
}

impl SimulationBuilder {
    /// Paper defaults.
    pub fn new() -> Self {
        SimulationBuilder {
            cfg: SimConfig::paper(),
            algorithm: Algorithm::Risa,
            workload: WorkloadSpec::synthetic(100, 0),
            timeline_interval: None,
            audit: false,
        }
    }

    /// Independently audit every assignment against a shadow ledger
    /// (`risa_sched::audit`); the run panics on any violation. Costs one
    /// hash-map insert/remove per VM — enabled throughout the test suite.
    pub fn audit(mut self, on: bool) -> Self {
        self.audit = on;
        self
    }

    /// Record a utilization time series sampled every `interval` time
    /// units, retrievable via [`DdcSimulation::timeline`].
    pub fn record_timeline(mut self, interval: f64) -> Self {
        self.timeline_interval = Some(interval);
        self
    }

    /// Choose the scheduling algorithm.
    pub fn algorithm(mut self, a: Algorithm) -> Self {
        self.algorithm = a;
        self
    }

    /// Choose the workload.
    pub fn workload(mut self, w: WorkloadSpec) -> Self {
        self.workload = w;
        self
    }

    /// Override the topology (Table 1 by default).
    pub fn topology(mut self, t: TopologyConfig) -> Self {
        self.cfg.topology = t;
        self
    }

    /// Override the network (§3.1/Table 2 by default).
    pub fn network(mut self, n: NetworkConfig) -> Self {
        self.cfg.network = n;
        self
    }

    /// Override the photonics constants (§3.2 by default).
    pub fn photonics(mut self, p: PhotonicsConfig) -> Self {
        self.cfg.photonics = p;
        self
    }

    /// Override the latency constants (§5.2 by default).
    pub fn latency(mut self, l: LatencyConfig) -> Self {
        self.cfg.latency = l;
        self
    }

    /// Override the whole configuration bundle.
    pub fn config(mut self, c: SimConfig) -> Self {
        self.cfg = c;
        self
    }

    /// Materialize the workload and prime the event queue.
    ///
    /// Trace generation fans out over the `rayon` pool (sharded,
    /// deterministic — see [`WorkloadSpec::materialize`]); it happens
    /// here, *before* the run, so the report's scheduler wall-clock
    /// (`sched_seconds`) is never polluted by generation threads.
    pub fn build(self) -> DdcSimulation {
        let workload = self.workload.materialize();
        workload
            .validate_fits(&self.cfg.topology)
            .unwrap_or_else(|vm| {
                panic!(
                    "VM {} exceeds single-box capacity (paper §2 assumption)",
                    vm.id
                )
            });
        let mut world = DdcWorld::new(self.cfg, self.algorithm, workload);
        if let Some(interval) = self.timeline_interval {
            world.enable_timeline(interval);
        }
        if self.audit {
            world.enable_audit();
        }
        let mut sim = Simulation::new(world);
        for vm in sim.world().workload.vms().to_vec() {
            sim.schedule(SimTime::from_units(vm.arrival), SimEvent::Arrival(vm.id.0));
        }
        DdcSimulation { sim }
    }
}

impl Default for SimulationBuilder {
    fn default() -> Self {
        SimulationBuilder::new()
    }
}

/// A primed simulation; [`DdcSimulation::run`] drives it to completion and
/// summarizes.
#[derive(Debug)]
pub struct DdcSimulation {
    sim: Simulation<DdcWorld>,
}

impl DdcSimulation {
    /// Run every event and produce the run report.
    pub fn run(&mut self) -> RunReport {
        self.sim.run_to_completion();
        debug_assert_eq!(self.sim.clamped_schedules(), 0);
        self.sim.world_mut().flush_timeline();
        self.sim.world_mut().finish_audit();
        self.report()
    }

    /// Summarize current state (normally called after [`DdcSimulation::run`]).
    pub fn report(&self) -> RunReport {
        let w = self.sim.world();
        let t_end = w.end_time;
        let cap = |k: ResourceKind| w.cluster.total_capacity(k) as f64;
        let util = |k: ResourceKind| {
            if t_end > 0.0 && cap(k) > 0.0 {
                w.util[k.index()].mean_to(t_end) / cap(k)
            } else {
                0.0
            }
        };
        let mut us = [0.0; 3];
        for k in ALL_RESOURCES {
            us[k.index()] = util(k);
        }
        let intra_cap = w.net.intra_capacity_mbps() as f64;
        let inter_cap = w.net.inter_capacity_mbps() as f64;
        RunReport {
            algorithm: w.algorithm(),
            workload: w.workload.name().to_string(),
            total_vms: w.workload.len() as u32,
            admitted: w.counters.admitted,
            dropped: w.counters.dropped_compute + w.counters.dropped_network,
            dropped_compute: w.counters.dropped_compute,
            dropped_network: w.counters.dropped_network,
            inter_rack_assignments: w.counters.inter_rack,
            fallback_assignments: w.counters.fallback,
            cpu_utilization: us[0],
            ram_utilization: us[1],
            storage_utilization: us[2],
            intra_net_utilization: if t_end > 0.0 {
                w.intra_bw.mean_to(t_end) / intra_cap
            } else {
                0.0
            },
            inter_net_utilization: if t_end > 0.0 {
                w.inter_bw.mean_to(t_end) / inter_cap
            } else {
                0.0
            },
            optical_energy_j: w.optical_energy_j,
            optical_power_w: if t_end > 0.0 {
                w.optical_energy_j / t_end
            } else {
                0.0
            },
            mean_cpu_ram_latency_ns: w.latency.mean(),
            sched_seconds: w.sched_wall.as_secs_f64(),
            work: *w.scheduler.work(),
            sim_duration: t_end,
        }
    }

    /// Access the world (e.g. for white-box assertions in tests).
    pub fn world(&self) -> &DdcWorld {
        self.sim.world()
    }

    /// The recorded time series, when enabled via
    /// [`SimulationBuilder::record_timeline`].
    pub fn timeline(&self) -> Option<&crate::timeline::Timeline> {
        self.sim.world().timeline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_produces_consistent_report() {
        let report = SimulationBuilder::new()
            .algorithm(Algorithm::RisaBf)
            .workload(WorkloadSpec::synthetic(120, 5))
            .build()
            .run();
        assert_eq!(report.total_vms, 120);
        assert_eq!(report.admitted + report.dropped, 120);
        assert_eq!(report.dropped, 0);
        assert_eq!(
            report.dropped,
            report.dropped_compute + report.dropped_network
        );
        assert!(report.sim_duration > 6300.0, "runs past the first lifetime");
        assert!(report.cpu_utilization > 0.0 && report.cpu_utilization < 1.0);
        assert!(report.optical_power_w > 0.0);
        assert_eq!(report.mean_cpu_ram_latency_ns, 110.0);
        assert_eq!(report.inter_rack_percent(), 0.0);
    }

    #[test]
    fn reports_are_deterministic_modulo_wall_clock() {
        let run = || {
            let mut r = SimulationBuilder::new()
                .algorithm(Algorithm::Nulb)
                .workload(WorkloadSpec::synthetic(150, 77))
                .build()
                .run();
            r.sched_seconds = 0.0; // the only wall-clock field
            r
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_algorithms_share_workload() {
        // Same seed ⇒ identical workload across algorithms, as the paper's
        // comparisons require.
        let a = SimulationBuilder::new()
            .algorithm(Algorithm::Nulb)
            .workload(WorkloadSpec::synthetic(60, 9))
            .build()
            .run();
        let b = SimulationBuilder::new()
            .algorithm(Algorithm::Risa)
            .workload(WorkloadSpec::synthetic(60, 9))
            .build()
            .run();
        assert_eq!(a.total_vms, b.total_vms);
        assert_eq!(a.workload, b.workload);
    }

    #[test]
    #[should_panic(expected = "single-box capacity")]
    fn oversized_vm_rejected_at_build() {
        use risa_workload::{VmId, VmRequest, Workload};
        let vm = VmRequest {
            id: VmId(0),
            cpu_cores: 4096,
            ram_gb: 4,
            storage_gb: 128,
            arrival: 1.0,
            lifetime: 10.0,
        };
        SimulationBuilder::new()
            .workload(WorkloadSpec::Trace(Workload::from_vms("bad", vec![vm])))
            .build();
    }
}
