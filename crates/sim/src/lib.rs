//! # risa-sim — end-to-end DDC simulation and the paper's experiments
//!
//! Drives the whole stack: a [`risa_des`] event loop delivers VM arrivals
//! and departures; a [`risa_sched::Scheduler`] places each arrival onto the
//! [`risa_topology::Cluster`] and [`risa_network::NetworkState`]; the
//! [`risa_photonics`] energy model and [`risa_metrics`] accumulators turn
//! the run into the numbers the paper reports.
//!
//! The [`experiments`] module has one entry point per figure/table of the
//! paper's evaluation (see DESIGN.md §5 for the index). Experiment
//! matrices fan out over the `rayon` thread pool (sized by `RISA_THREADS`
//! or `risa-cli --jobs`); thread count never changes a report —
//! `tests/determinism.rs` asserts 1-thread and 4-thread runs serialize
//! byte-identically.
//!
//! ```
//! use risa_sim::{Algorithm, SimulationBuilder, WorkloadSpec};
//!
//! let report = SimulationBuilder::new()
//!     .algorithm(Algorithm::Risa)
//!     .workload(WorkloadSpec::synthetic(100, 7))
//!     .build()
//!     .run();
//! assert_eq!(report.total_vms, 100);
//! assert_eq!(report.dropped, 0);
//! assert_eq!(report.inter_rack_assignments, 0);
//! ```

#![warn(missing_docs)]

mod builder;
mod checkpoint;
mod config;
pub mod experiments;
mod faults;
mod parallel;
mod report;
mod spec;
mod streaming;
mod timeline;
mod world;

pub use builder::{BuildError, DdcSimulation, SimulationBuilder};
pub use checkpoint::{Checkpoint, CHECKPOINT_VERSION};
pub use config::{LatencyConfig, SimConfig};
pub use faults::{FaultReport, FaultSpec};
pub use parallel::{ExecMode, SpeculationReport};
pub use report::{host_info, peak_rss_bytes, ExperimentReport, RunReport};
pub use spec::WorkloadSpec;
pub use streaming::ArrivalMode;
pub use timeline::{Timeline, TimelinePoint};
pub use world::{DdcWorld, SimEvent, DEFAULT_SCHED_TIMING_BATCH};

// Re-export the vocabulary types callers need alongside the builder.
pub use risa_des::{FelKind, RunOutcome};
pub use risa_sched::Algorithm;
