//! The simulated world: cluster + network + scheduler + metric streams,
//! driven by VM arrival/departure events.

use crate::config::SimConfig;
use crate::timeline::{Timeline, TimelinePoint};
use risa_des::{EventCtx, SimDuration, World};
use risa_metrics::{OnlineStats, TimeWeighted};
use risa_network::NetworkState;
use risa_photonics::{EnergyModel, SwitchPath};
use risa_sched::audit::ScheduleAuditor;
use risa_sched::{Algorithm, DropReason, ScheduleOutcome, Scheduler, VmAssignment};
use risa_topology::{Cluster, ResourceKind, TopologyConfig, ALL_RESOURCES};
use risa_workload::{StreamingShards, VmRequest, Workload};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Default scheduler-timing batch: one clock pair per 16 scheduling calls
/// (see `SchedTimer` in this module).
pub const DEFAULT_SCHED_TIMING_BATCH: u32 = 16;

/// Amortized wall-clock instrumentation for `Scheduler::schedule`.
///
/// The seed implementation read `Instant::now()` twice around *every*
/// scheduling call — two clock reads per arrival on the hottest path of the
/// whole simulation. This timer instead samples one call in every `every`
/// (calls `every−1, 2·every−1, …` — deterministic in *which* calls are
/// timed, and keeping the cold first call out of the scaled samples, see
/// [`SchedTimer::start`]) and reports `sampled_wall × calls / sampled` — an
/// unbiased estimate of total scheduler wall-clock under the paper's
/// workloads, at roughly `2/every` clock reads per arrival. `every == 1`
/// restores the seed's exact per-call measurement (used by the
/// Figure 11/12 experiments, where `sched_seconds` *is* the result).
#[derive(Debug, Clone)]
pub(crate) struct SchedTimer {
    every: u32,
    calls: u64,
    sampled: u64,
    wall: Duration,
    /// Call 0's wall time, kept out of the regular samples (it pays
    /// first-touch/cold-cache costs that `calls/sampled` scaling would
    /// inflate) but used as the fallback estimate for runs too short to
    /// reach the first regular sample point.
    cold: Duration,
}

impl SchedTimer {
    pub(crate) fn new(every: u32) -> Self {
        assert!(every >= 1, "sched timing batch must be at least 1");
        SchedTimer {
            every,
            calls: 0,
            sampled: 0,
            wall: Duration::ZERO,
            cold: Duration::ZERO,
        }
    }

    /// Start timing if this call is a sample point: the regular points
    /// are calls `every−1, 2·every−1, …` (deterministic, and skipping the
    /// cold first call), plus call 0 itself as the fallback sample (with
    /// `every == 1` call 0 *is* a regular point, so exact mode includes
    /// the cold call like the seed did).
    #[inline]
    fn start(&self) -> Option<Instant> {
        (self.calls == 0 || (self.calls + 1).is_multiple_of(u64::from(self.every)))
            .then(Instant::now)
    }

    /// Account one finished scheduling call.
    #[inline]
    fn finish(&mut self, started: Option<Instant>) {
        if let Some(t0) = started {
            let elapsed = t0.elapsed();
            if self.calls == 0 && self.every > 1 {
                self.cold = elapsed;
            } else {
                self.wall += elapsed;
                self.sampled += 1;
            }
        }
        self.calls += 1;
    }

    /// Estimated total scheduler wall-clock, in seconds. Runs shorter
    /// than one timing batch never hit a regular sample point; they fall
    /// back to scaling the always-timed first call, so a run that did
    /// real scheduling work never reports zero.
    pub(crate) fn estimate_seconds(&self) -> f64 {
        if self.sampled > 0 {
            // Scale factor first: with every call sampled it is exactly
            // 1.0, so the estimate degenerates to the measured total.
            self.wall.as_secs_f64() * (self.calls as f64 / self.sampled as f64)
        } else if self.calls > 0 {
            self.cold.as_secs_f64() * self.calls as f64
        } else {
            0.0
        }
    }
}

/// Events driving the DDC simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// VM `idx` (index into the workload) arrives and must be scheduled.
    Arrival(u32),
    /// VM `idx` departs; its resources and bandwidth are released.
    Departure(u32),
}

/// The trace's arrival schedule as engine events — walked by index, no
/// `VmRequest` clone. The one place that defines how a trace maps onto
/// the event timeline (builder and test harnesses share it).
pub(crate) fn arrival_events(workload: &Workload) -> Vec<(risa_des::SimTime, SimEvent)> {
    workload
        .vms()
        .iter()
        .map(|vm| {
            (
                risa_des::SimTime::from_units(vm.arrival),
                SimEvent::Arrival(vm.id.0),
            )
        })
        .collect()
}

/// Where the world's VM requests come from: the whole trace up front, or
/// a bounded-memory cursor yielding them in arrival (= index) order.
///
/// Arrival events are delivered strictly in VM-index order on both paths
/// (the stitched trace is sorted and the queue's static lane preserves
/// insertion order among equal times), so the streaming cursor — which
/// can only move forward — always has the VM the next `Arrival(idx)`
/// event asks for.
#[derive(Debug)]
pub(crate) enum VmSource {
    /// The full trace, indexable at random.
    Materialized(Workload),
    /// A double-buffered shard cursor: ≤ 2 shards of VMs resident.
    Streaming(StreamingShards),
}

impl VmSource {
    /// Workload label for reports.
    pub(crate) fn name(&self) -> &str {
        match self {
            VmSource::Materialized(w) => w.name(),
            VmSource::Streaming(c) => c.label(),
        }
    }

    /// Total requests in the workload.
    pub(crate) fn total(&self) -> u32 {
        match self {
            VmSource::Materialized(w) => w.len() as u32,
            VmSource::Streaming(c) => c.total_vms(),
        }
    }

    /// The request for arrival event `idx`.
    ///
    /// The materialized path validated every VM against the single-box
    /// assumption at build time; the streaming path cannot (the trace
    /// does not exist yet), so it checks each VM here as it surfaces —
    /// same panic, just deferred to the offending arrival.
    fn take(&mut self, idx: u32, cfg: &TopologyConfig) -> VmRequest {
        match self {
            VmSource::Materialized(w) => w.vms()[idx as usize],
            VmSource::Streaming(cursor) => {
                let vm = cursor
                    .next()
                    .expect("arrival event beyond the end of the streamed workload");
                debug_assert_eq!(
                    vm.id.0, idx,
                    "streamed VM out of step with the arrival event order"
                );
                if vm.demand(cfg).max_units() > cfg.box_capacity_units() {
                    panic!(
                        "VM {} exceeds single-box capacity (paper §2 assumption)",
                        vm.id
                    );
                }
                vm
            }
        }
    }
}

/// Per-VM slot storage sized to the arrival path: dense `Vec` when the
/// whole trace is materialized (O(1) indexing, one slot per VM), sparse
/// map when streaming (live entries bounded by *resident* VMs — a dense
/// vector over a 10M-VM trace would defeat the bounded-memory run).
#[derive(Debug, Clone)]
pub(crate) enum PerVmSlots<T> {
    Dense(Vec<Option<T>>),
    Sparse(HashMap<u32, T>),
}

impl<T: Clone> PerVmSlots<T> {
    fn dense(n: usize) -> Self {
        PerVmSlots::Dense(vec![None; n])
    }

    fn sparse() -> Self {
        PerVmSlots::Sparse(HashMap::new())
    }

    /// Store `value` for VM `idx` (slot must be empty).
    fn insert(&mut self, idx: u32, value: T) {
        match self {
            PerVmSlots::Dense(v) => {
                debug_assert!(v[idx as usize].is_none(), "slot {idx} already occupied");
                v[idx as usize] = Some(value);
            }
            PerVmSlots::Sparse(m) => {
                let old = m.insert(idx, value);
                debug_assert!(old.is_none(), "slot {idx} already occupied");
            }
        }
    }

    /// Remove and return VM `idx`'s value, if present.
    fn take(&mut self, idx: u32) -> Option<T> {
        match self {
            PerVmSlots::Dense(v) => v[idx as usize].take(),
            PerVmSlots::Sparse(m) => m.remove(&idx),
        }
    }

    /// Borrow VM `idx`'s value, if present.
    fn get(&self, idx: u32) -> Option<&T> {
        match self {
            PerVmSlots::Dense(v) => v[idx as usize].as_ref(),
            PerVmSlots::Sparse(m) => m.get(&idx),
        }
    }

    /// True when no VM holds a value (end-of-run: everything departed).
    pub(crate) fn all_free(&self) -> bool {
        match self {
            PerVmSlots::Dense(v) => v.iter().all(Option::is_none),
            PerVmSlots::Sparse(m) => m.is_empty(),
        }
    }

    /// Live entries (resident VMs with a value).
    pub(crate) fn occupied(&self) -> usize {
        match self {
            PerVmSlots::Dense(v) => v.iter().filter(|s| s.is_some()).count(),
            PerVmSlots::Sparse(m) => m.len(),
        }
    }
}

/// Raw per-run counters, exposed through [`crate::RunReport`].
#[derive(Debug, Clone, Default)]
pub(crate) struct Counters {
    pub admitted: u32,
    pub dropped_compute: u32,
    pub dropped_network: u32,
    pub inter_rack: u32,
    pub fallback: u32,
}

/// The [`World`] implementation: owns all mutable simulation state.
#[derive(Debug)]
pub struct DdcWorld {
    pub(crate) cluster: Cluster,
    pub(crate) net: NetworkState,
    pub(crate) scheduler: Scheduler,
    pub(crate) source: VmSource,
    energy: EnergyModel,
    cfg: SimConfig,
    pub(crate) assignments: PerVmSlots<VmAssignment>,
    pub(crate) counters: Counters,
    /// Time-weighted used units per resource kind.
    pub(crate) util: [TimeWeighted; 3],
    /// Time-weighted used Mb/s on the intra- and inter-rack layers.
    pub(crate) intra_bw: TimeWeighted,
    pub(crate) inter_bw: TimeWeighted,
    /// Per-admitted-VM CPU-RAM round-trip latency (ns).
    pub(crate) latency: OnlineStats,
    /// Total optical energy (switch trim/reconfig + transceivers), joules.
    pub(crate) optical_energy_j: f64,
    /// Amortized wall-clock of `Scheduler::schedule` (Figures 11/12).
    pub(crate) sched: SchedTimer,
    /// Latest event time seen, in paper units.
    pub(crate) end_time: f64,
    /// Currently resident VMs.
    pub(crate) resident: u32,
    /// High-water mark of `resident` — the bound the two-lane event
    /// queue's FEL length is tested against.
    pub(crate) peak_resident: u32,
    /// Optional fixed-grid series recorder.
    pub(crate) timeline: Option<Timeline>,
    /// Optional independent auditor replaying every assignment against a
    /// shadow ledger; violations fail the run loudly.
    pub(crate) auditor: Option<(ScheduleAuditor, PerVmSlots<u64>)>,
}

impl DdcWorld {
    /// Build a pristine world for `algorithm` over `workload`.
    pub fn new(cfg: SimConfig, algorithm: Algorithm, workload: Workload) -> Self {
        let n = workload.len();
        Self::with_source(
            cfg,
            algorithm,
            VmSource::Materialized(workload),
            PerVmSlots::dense(n),
        )
    }

    /// Build a world consuming VMs lazily from a streaming shard cursor
    /// (bounded memory; see [`crate::ArrivalMode::Streaming`]).
    pub(crate) fn new_streaming(
        cfg: SimConfig,
        algorithm: Algorithm,
        cursor: StreamingShards,
    ) -> Self {
        Self::with_source(
            cfg,
            algorithm,
            VmSource::Streaming(cursor),
            PerVmSlots::sparse(),
        )
    }

    fn with_source(
        cfg: SimConfig,
        algorithm: Algorithm,
        source: VmSource,
        assignments: PerVmSlots<VmAssignment>,
    ) -> Self {
        let cluster = Cluster::new(cfg.topology);
        let net = NetworkState::new(cfg.network, &cluster);
        let scheduler = Scheduler::new(algorithm, &cluster);
        let energy = EnergyModel::new(cfg.photonics);
        DdcWorld {
            cluster,
            net,
            scheduler,
            source,
            energy,
            cfg,
            assignments,
            counters: Counters::default(),
            util: [
                TimeWeighted::new(0.0, 0.0),
                TimeWeighted::new(0.0, 0.0),
                TimeWeighted::new(0.0, 0.0),
            ],
            intra_bw: TimeWeighted::new(0.0, 0.0),
            inter_bw: TimeWeighted::new(0.0, 0.0),
            latency: OnlineStats::new(),
            optical_energy_j: 0.0,
            sched: SchedTimer::new(DEFAULT_SCHED_TIMING_BATCH),
            end_time: 0.0,
            resident: 0,
            peak_resident: 0,
            timeline: None,
            auditor: None,
        }
    }

    /// Enable independent auditing of every assignment/release (shadow
    /// ledger; see `risa_sched::audit`). The driver calls
    /// `finish_audit` at end of run and panics on violations.
    pub fn enable_audit(&mut self) {
        let seqs = match &self.source {
            VmSource::Materialized(w) => PerVmSlots::dense(w.len()),
            VmSource::Streaming(_) => PerVmSlots::sparse(),
        };
        self.auditor = Some((ScheduleAuditor::new(&self.cluster), seqs));
    }

    /// Close the audit; panics with the violation list if the scheduler
    /// and the shadow ledger ever disagreed.
    pub(crate) fn finish_audit(&mut self) {
        if let Some((auditor, _)) = self.auditor.take() {
            if let Err(violations) = auditor.finish() {
                panic!("schedule audit failed: {violations:?}");
            }
        }
    }

    /// Record a utilization/occupancy series with the given sampling
    /// interval (paper time units).
    pub fn enable_timeline(&mut self, interval: f64) {
        self.timeline = Some(Timeline::new(interval));
    }

    /// The recorded series, if enabled.
    pub fn timeline(&self) -> Option<&Timeline> {
        self.timeline.as_ref()
    }

    /// Flush the current state into the timeline regardless of the grid
    /// (called once by the driver when the event queue drains).
    pub(crate) fn flush_timeline(&mut self) {
        let t = self.end_time;
        let cluster = &self.cluster;
        let used =
            |k: ResourceKind| (cluster.total_capacity(k) - cluster.total_available(k)) as f64;
        let point = TimelinePoint {
            t,
            cpu_used: used(ResourceKind::Cpu),
            ram_used: used(ResourceKind::Ram),
            sto_used: used(ResourceKind::Storage),
            intra_mbps: self.net.intra_used_mbps() as f64,
            inter_mbps: self.net.inter_used_mbps() as f64,
            resident_vms: self.resident,
        };
        if let Some(tl) = self.timeline.as_mut() {
            tl.force(point);
        }
    }

    /// The algorithm driving this world.
    pub fn algorithm(&self) -> Algorithm {
        self.scheduler.algorithm()
    }

    /// Set the scheduler-timing batch: one clock pair per `every`
    /// scheduling calls (`every = 1` ⇒ exact per-call timing); see
    /// [`crate::RunReport::sched_seconds`] for the estimator semantics.
    /// Configure before running.
    pub fn set_sched_timing_batch(&mut self, every: u32) {
        self.sched = SchedTimer::new(every);
    }

    /// Estimated wall-clock spent inside `Scheduler::schedule`, in seconds
    /// (exact when the timing batch is 1; see
    /// [`crate::RunReport::sched_seconds`] for the full semantics).
    pub fn sched_seconds(&self) -> f64 {
        self.sched.estimate_seconds()
    }

    /// Currently resident (admitted, not yet departed) VMs.
    pub fn resident(&self) -> u32 {
        self.resident
    }

    /// High-water mark of [`DdcWorld::resident`] over the run.
    pub fn peak_resident(&self) -> u32 {
        self.peak_resident
    }

    /// Assignment of VM `idx`, if admitted and still resident.
    pub fn assignment(&self, idx: u32) -> Option<&VmAssignment> {
        self.assignments.get(idx)
    }

    /// High-water mark of VMs buffered by the streaming workload cursor
    /// (current shard + outstanding prefetch); `None` on the materialized
    /// path. Bounded by 2×`risa_workload::shard::SHARD_SIZE`.
    pub fn stream_peak_buffered(&self) -> Option<usize> {
        match &self.source {
            VmSource::Materialized(_) => None,
            VmSource::Streaming(c) => Some(c.peak_buffered()),
        }
    }

    /// Shards the streaming cursor has generated so far; `None` on the
    /// materialized path.
    pub fn stream_shards_generated(&self) -> Option<u32> {
        match &self.source {
            VmSource::Materialized(_) => None,
            VmSource::Streaming(c) => Some(c.shards_generated()),
        }
    }

    fn sample_state(&mut self, t: f64) {
        for kind in ALL_RESOURCES {
            let used = self.cluster.total_capacity(kind) - self.cluster.total_available(kind);
            self.util[kind.index()].set(t, used as f64);
        }
        self.intra_bw.set(t, self.net.intra_used_mbps() as f64);
        self.inter_bw.set(t, self.net.inter_used_mbps() as f64);
        if let Some(tl) = self.timeline.as_mut() {
            let used = |k: ResourceKind| {
                (self.cluster.total_capacity(k) - self.cluster.total_available(k)) as f64
            };
            tl.offer(TimelinePoint {
                t,
                cpu_used: used(ResourceKind::Cpu),
                ram_used: used(ResourceKind::Ram),
                sto_used: used(ResourceKind::Storage),
                intra_mbps: self.net.intra_used_mbps() as f64,
                inter_mbps: self.net.inter_used_mbps() as f64,
                resident_vms: self.resident,
            });
        }
    }

    /// Energy of one flow given whether it crossed racks (Eq. 1 + the
    /// transceiver model), charged at admission for the known lifetime.
    fn flow_energy(&self, inter: bool, mbps: u64, lifetime_s: f64) -> f64 {
        let n = &self.cfg.network;
        let path = if inter {
            SwitchPath::inter_rack(
                n.box_switch_ports,
                n.rack_switch_ports,
                n.inter_rack_switch_ports,
            )
        } else {
            SwitchPath::intra_rack(n.box_switch_ports, n.rack_switch_ports)
        };
        self.energy.flow_total_energy_j(&path, mbps, lifetime_s)
    }

    fn on_arrival(&mut self, idx: u32, now: f64, ctx: &mut EventCtx<'_, SimEvent>) {
        let vm = self.source.take(idx, &self.cfg.topology);
        let demand = vm.demand(&self.cfg.topology);

        let timing = self.sched.start();
        let outcome = self
            .scheduler
            .schedule(&mut self.cluster, &mut self.net, &demand);
        self.sched.finish(timing);

        match outcome {
            ScheduleOutcome::Assigned(a) => {
                self.counters.admitted += 1;
                if !a.intra_rack {
                    self.counters.inter_rack += 1;
                }
                if a.used_fallback {
                    self.counters.fallback += 1;
                }
                // CPU-RAM round-trip latency (Figure 10): depends on
                // whether CPU and RAM share a rack.
                let cpu_rack = self
                    .cluster
                    .rack_of(a.placement.grant(ResourceKind::Cpu).box_id);
                let ram_rack = self
                    .cluster
                    .rack_of(a.placement.grant(ResourceKind::Ram).box_id);
                let lat = if cpu_rack == ram_rack {
                    self.cfg.latency.intra_rack_ns
                } else {
                    self.cfg.latency.inter_rack_ns
                };
                self.latency.record(lat);
                // Optical energy (Figure 9), 1 time unit ≡ 1 s.
                let life_s = vm.lifetime;
                self.optical_energy_j +=
                    self.flow_energy(a.network.cpu_ram.inter_rack, a.network.cpu_ram.mbps, life_s);
                self.optical_energy_j +=
                    self.flow_energy(a.network.ram_sto.inter_rack, a.network.ram_sto.mbps, life_s);
                if let Some((auditor, seqs)) = self.auditor.as_mut() {
                    seqs.insert(idx, auditor.admit(&self.cluster, &a));
                }
                self.assignments.insert(idx, a);
                self.resident += 1;
                self.peak_resident = self.peak_resident.max(self.resident);
                ctx.schedule_in(
                    SimDuration::from_units(vm.lifetime),
                    SimEvent::Departure(idx),
                );
            }
            ScheduleOutcome::Dropped(DropReason::Compute) => {
                self.counters.dropped_compute += 1;
            }
            ScheduleOutcome::Dropped(DropReason::Network) => {
                self.counters.dropped_network += 1;
            }
        }
        self.sample_state(now);
    }

    fn on_departure(&mut self, idx: u32, now: f64) {
        let a = self
            .assignments
            .take(idx)
            .expect("departure of a VM that was never admitted");
        Scheduler::release(&mut self.cluster, &mut self.net, &a);
        if let Some((auditor, seqs)) = self.auditor.as_mut() {
            let seq = seqs.take(idx).expect("audited VM has a seq");
            auditor.release(seq);
        }
        self.resident -= 1;
        self.sample_state(now);
    }
}

impl World for DdcWorld {
    type Event = SimEvent;

    fn handle(&mut self, ctx: &mut EventCtx<'_, SimEvent>, event: SimEvent) {
        let now = ctx.now().as_units();
        self.end_time = self.end_time.max(now);
        match event {
            SimEvent::Arrival(idx) => self.on_arrival(idx, now, ctx),
            SimEvent::Departure(idx) => self.on_departure(idx, now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use risa_des::Simulation;
    use risa_workload::SyntheticConfig;

    fn run_world(algo: Algorithm, n: u32, seed: u64) -> DdcWorld {
        let workload = Workload::synthetic(&SyntheticConfig::small(n, seed));
        // Arrivals are preloaded straight off the (already sorted) trace —
        // no `to_vec` clone of the VM list, and nothing enters the FEL.
        let arrivals = arrival_events(&workload);
        let mut sim = Simulation::new(DdcWorld::new(SimConfig::paper(), algo, workload));
        sim.preload_sorted(arrivals);
        sim.run_to_completion();
        sim.into_world()
    }

    #[test]
    fn small_run_admits_everything_and_releases() {
        let w = run_world(Algorithm::Risa, 50, 3);
        assert_eq!(w.counters.admitted, 50);
        assert_eq!(w.counters.dropped_compute + w.counters.dropped_network, 0);
        // Everything departed: cluster and network back to pristine.
        assert_eq!(w.cluster.total_available(ResourceKind::Cpu), 4608);
        assert_eq!(w.net.intra_used_mbps(), 0);
        assert_eq!(w.net.inter_used_mbps(), 0);
        assert!(w.assignments.all_free());
        w.cluster.check_invariants().unwrap();
    }

    /// A world fed by the streaming cursor reaches the same end state as
    /// the materialized one (the full differential lives in
    /// `tests/hot_path_differential.rs`; this is the in-module smoke).
    #[test]
    fn streaming_world_matches_materialized_end_state() {
        use crate::streaming::StreamingArrivals;
        use risa_workload::{ShardSource, SyntheticShards};
        use std::sync::Arc;

        let cfg = SyntheticConfig::small(200, 3);
        let source: Arc<dyn ShardSource> = Arc::new(SyntheticShards::new(&cfg));
        let cursor = StreamingShards::new(Arc::clone(&source));
        let mut world = DdcWorld::new_streaming(SimConfig::paper(), Algorithm::Risa, cursor);
        world.enable_audit();
        let mut sim = Simulation::new(world);
        sim.attach_arrivals(Box::new(StreamingArrivals::new(source)));
        sim.run_to_completion();
        let mut w = sim.into_world();
        w.finish_audit();

        let oracle = run_world(Algorithm::Risa, 200, 3);
        assert_eq!(w.counters.admitted, oracle.counters.admitted);
        assert_eq!(w.counters.inter_rack, oracle.counters.inter_rack);
        assert_eq!(w.optical_energy_j, oracle.optical_energy_j);
        assert_eq!(w.end_time, oracle.end_time);
        assert!(w.assignments.all_free());
        assert_eq!(w.source.name(), "synthetic");
        assert_eq!(w.source.total(), 200);
        assert!(w.stream_peak_buffered().unwrap() >= 200);
        assert_eq!(w.stream_shards_generated(), Some(1));
        assert_eq!(oracle.stream_peak_buffered(), None);
    }

    /// The sparse assignment store never holds more entries than resident
    /// VMs — the invariant that makes streaming runs bounded-memory.
    #[test]
    fn sparse_slots_track_residency() {
        let mut slots: PerVmSlots<u8> = PerVmSlots::sparse();
        assert!(slots.all_free());
        slots.insert(7, 1);
        slots.insert(1_000_000, 2); // far beyond any dense allocation
        assert_eq!(slots.occupied(), 2);
        assert_eq!(slots.get(7), Some(&1));
        assert_eq!(slots.take(1_000_000), Some(2));
        assert_eq!(slots.take(7), Some(1));
        assert!(slots.all_free());
        assert_eq!(slots.take(7), None);
    }

    #[test]
    fn latency_recorded_per_admitted_vm() {
        let w = run_world(Algorithm::RisaBf, 40, 5);
        assert_eq!(w.latency.count(), 40);
        // RISA-BF on an underloaded cluster: all intra-rack, all 110 ns.
        assert_eq!(w.latency.mean(), 110.0);
        assert_eq!(w.counters.inter_rack, 0);
    }

    #[test]
    fn energy_accumulates_only_for_admitted() {
        let w = run_world(Algorithm::Nulb, 30, 7);
        assert!(w.optical_energy_j > 0.0);
        // 30 VMs × 2 flows × (37 cells × 0.9 × 22.67 mW × ~6300 s) ≈ 280 kJ.
        assert!(w.optical_energy_j > 1e4);
        assert!(w.optical_energy_j < 1e7);
    }

    #[test]
    fn utilization_signal_rises_then_falls() {
        let w = run_world(Algorithm::Risa, 60, 9);
        let cpu = &w.util[ResourceKind::Cpu.index()];
        assert!(cpu.peak() > 0.0);
        assert_eq!(cpu.current(), 0.0, "all VMs departed");
        let mean = cpu.mean_to(w.end_time);
        assert!(mean > 0.0 && mean < cpu.peak());
    }

    #[test]
    fn deterministic_counters_across_reruns() {
        let a = run_world(Algorithm::Nalb, 80, 13);
        let b = run_world(Algorithm::Nalb, 80, 13);
        assert_eq!(a.counters.admitted, b.counters.admitted);
        assert_eq!(a.counters.inter_rack, b.counters.inter_rack);
        assert_eq!(a.optical_energy_j, b.optical_energy_j);
        assert_eq!(a.latency.mean(), b.latency.mean());
    }

    #[test]
    fn scheduler_wall_clock_is_measured() {
        let w = run_world(Algorithm::Nalb, 50, 1);
        // Default batch of 16 over 50 arrivals ⇒ calls 15/31/47 sampled
        // (the cold call 0 is deliberately skipped).
        assert_eq!(w.sched.calls, 50);
        assert_eq!(w.sched.sampled, 3);
        assert!(w.sched.wall > Duration::ZERO);
        assert!(w.sched_seconds() > 0.0);
    }

    #[test]
    fn exact_timing_batch_samples_every_call() {
        let workload = Workload::synthetic(&SyntheticConfig::small(20, 3));
        let arrivals = arrival_events(&workload);
        let mut world = DdcWorld::new(SimConfig::paper(), Algorithm::Risa, workload);
        world.set_sched_timing_batch(1);
        let mut sim = Simulation::new(world);
        sim.preload_sorted(arrivals);
        sim.run_to_completion();
        let w = sim.world();
        assert_eq!(w.sched.sampled, w.sched.calls);
        // With every call sampled the estimate *is* the measured total.
        assert_eq!(w.sched_seconds(), w.sched.wall.as_secs_f64());
    }

    /// Regression: a run shorter than one timing batch must still report
    /// nonzero scheduler time (the always-timed first call is the
    /// fallback sample).
    #[test]
    fn short_run_scheduler_time_is_nonzero() {
        let w = run_world(Algorithm::Risa, 10, 2);
        assert_eq!(w.sched.calls, 10);
        assert_eq!(w.sched.sampled, 0, "no regular sample point reached");
        assert!(w.sched.cold > Duration::ZERO);
        assert!(w.sched_seconds() > 0.0);
    }

    #[test]
    fn peak_resident_tracks_high_water_mark() {
        let w = run_world(Algorithm::Risa, 60, 9);
        assert!(w.peak_resident() > 0);
        assert!(w.peak_resident() <= 60);
        assert_eq!(w.resident(), 0, "everything departed");
    }
}
