//! The simulated world: cluster + network + scheduler + metric streams,
//! driven by VM arrival/departure events.

use crate::config::SimConfig;
use crate::faults::{
    ChainDraws, ChainSet, FaultMeters, FaultReport, FaultSpec, FaultTallies, Migration,
};
use crate::timeline::{Timeline, TimelinePoint};
use risa_des::{EventCtx, SimDuration, SimTime, World};
use risa_metrics::{OnlineStats, TimeWeighted};
use risa_network::{NetworkState, TrunkId};
use risa_photonics::{EnergyModel, SwitchPath};
use risa_sched::audit::AuditorParts;
use risa_sched::audit::ScheduleAuditor;
use risa_sched::{Algorithm, DropReason, ScheduleOutcome, Scheduler, VmAssignment};
use risa_topology::{
    BoxId, Cluster, RackId, ResourceKind, TopologyConfig, UnitDemand, ALL_RESOURCES,
};
use risa_workload::{StreamingShards, VmRequest, Workload};
use serde::{Deserialize, Serialize};
// risa-lint: allow(hash_state) — import feeds PerVmSlots::Sparse only; see the waiver there
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::{Duration, Instant};

/// Default scheduler-timing batch: one clock pair per 16 scheduling calls
/// (see `SchedTimer` in this module).
pub const DEFAULT_SCHED_TIMING_BATCH: u32 = 16;

/// Amortized wall-clock instrumentation for `Scheduler::schedule`.
///
/// The seed implementation read `Instant::now()` twice around *every*
/// scheduling call — two clock reads per arrival on the hottest path of the
/// whole simulation. This timer instead samples one call in every `every`
/// (calls `every−1, 2·every−1, …` — deterministic in *which* calls are
/// timed, and keeping the cold first call out of the scaled samples, see
/// [`SchedTimer::start`]) and reports `sampled_wall × calls / sampled` — an
/// unbiased estimate of total scheduler wall-clock under the paper's
/// workloads, at roughly `2/every` clock reads per arrival. `every == 1`
/// restores the seed's exact per-call measurement (used by the
/// Figure 11/12 experiments, where `sched_seconds` *is* the result).
#[derive(Debug, Clone)]
pub(crate) struct SchedTimer {
    every: u32,
    calls: u64,
    sampled: u64,
    wall: Duration,
    /// Call 0's wall time, kept out of the regular samples (it pays
    /// first-touch/cold-cache costs that `calls/sampled` scaling would
    /// inflate) but used as the fallback estimate for runs too short to
    /// reach the first regular sample point.
    cold: Duration,
}

impl SchedTimer {
    pub(crate) fn new(every: u32) -> Self {
        assert!(every >= 1, "sched timing batch must be at least 1");
        SchedTimer {
            every,
            calls: 0,
            sampled: 0,
            wall: Duration::ZERO,
            cold: Duration::ZERO,
        }
    }

    /// Start timing if this call is a sample point: the regular points
    /// are calls `every−1, 2·every−1, …` (deterministic, and skipping the
    /// cold first call), plus call 0 itself as the fallback sample (with
    /// `every == 1` call 0 *is* a regular point, so exact mode includes
    /// the cold call like the seed did).
    #[inline]
    fn start(&self) -> Option<Instant> {
        (self.calls == 0 || (self.calls + 1).is_multiple_of(u64::from(self.every)))
            // risa-lint: allow(wall_clock) — SchedTimer IS the sanctioned scheduler-wall instrument
            .then(Instant::now)
    }

    /// Account one finished scheduling call.
    #[inline]
    fn finish(&mut self, started: Option<Instant>) {
        if let Some(t0) = started {
            let elapsed = t0.elapsed();
            if self.calls == 0 && self.every > 1 {
                self.cold = elapsed;
            } else {
                self.wall += elapsed;
                self.sampled += 1;
            }
        }
        self.calls += 1;
    }

    /// Account one finished scheduling call whose duration was measured
    /// *elsewhere* — on a pool worker speculating the call against a
    /// cloned view. The counter logic is byte-for-byte the
    /// [`SchedTimer::start`]/[`SchedTimer::finish`] pair's: the same
    /// deterministic call indices are sampled (workers always measure, so
    /// a sample point never lacks a duration), and with `every == 1`
    /// (K=1 exact mode) `sampled == calls` and the estimate degenerates
    /// to the measured total — the sequential semantics exactly.
    #[inline]
    pub(crate) fn absorb(&mut self, elapsed: Duration) {
        if self.calls == 0 || (self.calls + 1).is_multiple_of(u64::from(self.every)) {
            if self.calls == 0 && self.every > 1 {
                self.cold = elapsed;
            } else {
                self.wall += elapsed;
                self.sampled += 1;
            }
        }
        self.calls += 1;
    }

    /// Estimated total scheduler wall-clock, in seconds. Runs shorter
    /// than one timing batch never hit a regular sample point; they fall
    /// back to scaling the always-timed first call, so a run that did
    /// real scheduling work never reports zero.
    pub(crate) fn estimate_seconds(&self) -> f64 {
        if self.sampled > 0 {
            // Scale factor first: with every call sampled it is exactly
            // 1.0, so the estimate degenerates to the measured total.
            self.wall.as_secs_f64() * (self.calls as f64 / self.sampled as f64)
        } else if self.calls > 0 {
            self.cold.as_secs_f64() * self.calls as f64
        } else {
            0.0
        }
    }
}

/// Events driving the DDC simulation. The fault variants are injected
/// only when a [`crate::FaultSpec`] is attached (see `crate::faults`);
/// faults-off runs dispatch arrivals and departures exclusively.
/// Serialized in checkpoints (the FEL's pending events are part of the
/// snapshot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimEvent {
    /// VM `idx` (index into the workload) arrives and must be scheduled.
    Arrival(u32),
    /// VM `idx` departs; its resources and bandwidth are released.
    Departure(u32),
    /// Rack `rack` fails: every box is retracted from the schedulers and
    /// resident VMs are evacuated (a [`SimEvent::Migrate`] per victim).
    RackFail(u16),
    /// Rack `rack` is repaired: its boxes rejoin every aggregate.
    RackRepair(u16),
    /// Link `link` of rack `rack`'s uplink trunk goes dark.
    TrunkDown {
        /// The degraded rack uplink.
        rack: u16,
        /// Link index within the trunk.
        link: u16,
    },
    /// Link `link` of rack `rack`'s uplink trunk is restored.
    TrunkUp {
        /// The restored rack uplink.
        rack: u16,
        /// Link index within the trunk.
        link: u16,
    },
    /// Transceiver `link` of box `box_idx`'s uplink is lost.
    XcvrDown {
        /// The box whose uplink degraded.
        box_idx: u32,
        /// Link index within the trunk.
        link: u16,
    },
    /// Transceiver `link` of box `box_idx`'s uplink is replaced.
    XcvrUp {
        /// The box whose uplink recovered.
        box_idx: u32,
        /// Link index within the trunk.
        link: u16,
    },
    /// VM `idx`, evacuated from a failed rack, finishes its migration and
    /// is re-placed through the scheduler (or dropped if nothing fits).
    Migrate(u32),
}

/// The trace's arrival schedule as engine events — walked by index, no
/// `VmRequest` clone. The one place that defines how a trace maps onto
/// the event timeline (builder and test harnesses share it).
pub(crate) fn arrival_events(workload: &Workload) -> Vec<(risa_des::SimTime, SimEvent)> {
    workload
        .vms()
        .iter()
        .map(|vm| {
            (
                risa_des::SimTime::from_units(vm.arrival),
                SimEvent::Arrival(vm.id.0),
            )
        })
        .collect()
}

/// Where the world's VM requests come from: the whole trace up front, or
/// a bounded-memory cursor yielding them in arrival (= index) order.
///
/// Arrival events are delivered strictly in VM-index order on both paths
/// (the stitched trace is sorted and the queue's static lane preserves
/// insertion order among equal times), so the streaming cursor — which
/// can only move forward — always has the VM the next `Arrival(idx)`
/// event asks for.
#[derive(Debug)]
pub(crate) enum VmSource {
    /// The full trace, indexable at random.
    Materialized(Workload),
    /// A double-buffered shard cursor: ≤ 2 shards of VMs resident.
    Streaming(StreamingShards),
}

impl VmSource {
    /// Workload label for reports.
    pub(crate) fn name(&self) -> &str {
        match self {
            VmSource::Materialized(w) => w.name(),
            VmSource::Streaming(c) => c.label(),
        }
    }

    /// Total requests in the workload.
    pub(crate) fn total(&self) -> u32 {
        match self {
            VmSource::Materialized(w) => w.len() as u32,
            VmSource::Streaming(c) => c.total_vms(),
        }
    }

    /// The request for arrival event `idx`.
    ///
    /// The materialized path validated every VM against the single-box
    /// assumption at build time; the streaming path cannot (the trace
    /// does not exist yet), so it checks each VM here as it surfaces —
    /// same panic, just deferred to the offending arrival.
    pub(crate) fn take(&mut self, idx: u32, cfg: &TopologyConfig) -> VmRequest {
        match self {
            VmSource::Materialized(w) => w.vms()[idx as usize],
            VmSource::Streaming(cursor) => {
                let vm = cursor
                    .next()
                    .expect("arrival event beyond the end of the streamed workload");
                debug_assert_eq!(
                    vm.id.0, idx,
                    "streamed VM out of step with the arrival event order"
                );
                if vm.demand(cfg).max_units() > cfg.box_capacity_units() {
                    panic!(
                        "VM {} exceeds single-box capacity (paper §2 assumption)",
                        vm.id
                    );
                }
                vm
            }
        }
    }
}

/// Per-VM slot storage sized to the arrival path: dense `Vec` when the
/// whole trace is materialized (O(1) indexing, one slot per VM), sparse
/// map when streaming (live entries bounded by *resident* VMs — a dense
/// vector over a 10M-VM trace would defeat the bounded-memory run).
#[derive(Debug, Clone)]
pub(crate) enum PerVmSlots<T> {
    Dense(Vec<Option<T>>),
    // risa-lint: allow(hash_state) — keyed access on the hot path; iterated only for the order-independent all_free/occupied counts
    Sparse(HashMap<u32, T>),
}

impl<T: Clone> PerVmSlots<T> {
    fn dense(n: usize) -> Self {
        PerVmSlots::Dense(vec![None; n])
    }

    fn sparse() -> Self {
        // risa-lint: allow(hash_state) — constructor for the waived Sparse variant above
        PerVmSlots::Sparse(HashMap::new())
    }

    /// Store `value` for VM `idx` (slot must be empty).
    fn insert(&mut self, idx: u32, value: T) {
        match self {
            PerVmSlots::Dense(v) => {
                debug_assert!(v[idx as usize].is_none(), "slot {idx} already occupied");
                v[idx as usize] = Some(value);
            }
            PerVmSlots::Sparse(m) => {
                let old = m.insert(idx, value);
                debug_assert!(old.is_none(), "slot {idx} already occupied");
            }
        }
    }

    /// Remove and return VM `idx`'s value, if present.
    fn take(&mut self, idx: u32) -> Option<T> {
        match self {
            PerVmSlots::Dense(v) => v[idx as usize].take(),
            PerVmSlots::Sparse(m) => m.remove(&idx),
        }
    }

    /// Borrow VM `idx`'s value, if present.
    fn get(&self, idx: u32) -> Option<&T> {
        match self {
            PerVmSlots::Dense(v) => v[idx as usize].as_ref(),
            PerVmSlots::Sparse(m) => m.get(&idx),
        }
    }

    /// True when no VM holds a value (end-of-run: everything departed).
    pub(crate) fn all_free(&self) -> bool {
        match self {
            PerVmSlots::Dense(v) => v.iter().all(Option::is_none),
            PerVmSlots::Sparse(m) => m.is_empty(),
        }
    }

    /// Live entries (resident VMs with a value).
    pub(crate) fn occupied(&self) -> usize {
        match self {
            PerVmSlots::Dense(v) => v.iter().filter(|s| s.is_some()).count(),
            PerVmSlots::Sparse(m) => m.len(),
        }
    }

    /// Every occupied `(vm index, value)` pair in ascending index order —
    /// the canonical (storage-kind-independent) encoding checkpoints use.
    /// Sorting makes the sparse map's iteration order irrelevant, so the
    /// serialized bytes are deterministic.
    pub(crate) fn occupied_pairs(&self) -> Vec<(u32, T)> {
        match self {
            PerVmSlots::Dense(v) => v
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.as_ref().map(|x| (i as u32, x.clone())))
                .collect(),
            PerVmSlots::Sparse(m) => {
                let mut pairs: Vec<(u32, T)> = m.iter().map(|(&k, v)| (k, v.clone())).collect();
                pairs.sort_by_key(|&(k, _)| k);
                pairs
            }
        }
    }
}

/// Raw per-run counters, exposed through [`crate::RunReport`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub(crate) struct Counters {
    pub admitted: u32,
    pub dropped_compute: u32,
    pub dropped_network: u32,
    pub inter_rack: u32,
    pub fallback: u32,
}

/// Everything a running fault scenario needs: the renewal chains, the
/// evacuation pipeline and the resilience accumulators. Lives on the
/// world only when faults are enabled, so faults-off runs pay nothing.
#[derive(Debug)]
pub(crate) struct FaultState {
    spec: FaultSpec,
    /// Workload span the scale-free rates were resolved against; failure
    /// onsets past it are not scheduled (repairs always are).
    span: f64,
    chains: ChainSet,
    pub(crate) tallies: FaultTallies,
    meters: FaultMeters,
    /// Failure time of each currently-down rack.
    rack_down_since: Vec<Option<f64>>,
    /// Resident VMs with at least one grant in each rack. A `BTreeSet`
    /// so evacuation visits victims in ascending VM index — part of the
    /// determinism contract.
    rack_residents: Vec<BTreeSet<u32>>,
    /// Evacuated VMs still in transit to their re-placement. BTreeMap:
    /// bounded by in-flight migrations (cold), and orderable if a future
    /// report ever lists them.
    pub(crate) in_transit: BTreeMap<u32, Migration>,
    /// Evacuated VMs dropped at re-placement whose original departure
    /// event is still in flight (swallowed when it fires).
    tombstones: BTreeSet<u32>,
    /// Total capacity units (all kinds) of the pristine cluster — the
    /// baseline the stranded-capacity meter measures against.
    pristine_units: u64,
}

impl FaultState {
    fn new(
        spec: FaultSpec,
        span: f64,
        cluster: &Cluster,
        net_cfg: &risa_network::NetworkConfig,
    ) -> Self {
        let racks = cluster.num_racks();
        let chains = ChainSet::new(
            &spec,
            span,
            racks,
            cluster.num_boxes() as u32,
            net_cfg.rack_uplink_width,
            net_cfg.box_uplink_width,
        );
        FaultState {
            spec,
            span,
            chains,
            tallies: FaultTallies::default(),
            meters: FaultMeters::new(),
            rack_down_since: vec![None; racks as usize],
            rack_residents: vec![BTreeSet::new(); racks as usize],
            in_transit: BTreeMap::new(),
            tombstones: BTreeSet::new(),
            pristine_units: ALL_RESOURCES
                .iter()
                .map(|&k| cluster.total_capacity(k))
                .sum(),
        }
    }

    /// Index `idx` under every rack its grants touch.
    fn note_resident(&mut self, idx: u32, a: &VmAssignment, cluster: &Cluster) {
        for g in &a.placement.grants {
            self.rack_residents[cluster.rack_of(g.box_id).0 as usize].insert(idx);
        }
    }

    /// Undo [`FaultState::note_resident`].
    fn forget_resident(&mut self, idx: u32, a: &VmAssignment, cluster: &Cluster) {
        for g in &a.placement.grants {
            self.rack_residents[cluster.rack_of(g.box_id).0 as usize].remove(&idx);
        }
    }

    /// Summarize into the report's resilience block. The evacuation
    /// pipeline must balance: every displaced VM is re-placed, dropped,
    /// departed in transit, or still travelling.
    pub(crate) fn report(&self, t_end: f64) -> FaultReport {
        let t = &self.tallies;
        debug_assert_eq!(
            t.evacuated,
            t.evac_replaced + t.dropped_churn + t.evac_departed + self.in_transit.len() as u32,
            "evacuation accounting identity"
        );
        let mean_to = |m: &TimeWeighted| if t_end > 0.0 { m.mean_to(t_end) } else { 0.0 };
        FaultReport {
            rack_failures: t.rack_failures,
            rack_repairs: t.rack_repairs,
            trunk_link_downs: t.trunk_link_downs,
            trunk_link_ups: t.trunk_link_ups,
            xcvr_downs: t.xcvr_downs,
            xcvr_ups: t.xcvr_ups,
            evacuated: t.evacuated,
            evac_replaced: t.evac_replaced,
            dropped_churn: t.dropped_churn,
            evac_departed: t.evac_departed,
            mean_evac_latency: self.meters.evac_latency.mean(),
            mean_recovery_time: self.meters.recovery.mean(),
            mean_stranded_units: mean_to(&self.meters.stranded_units),
            mean_stranded_mbps: mean_to(&self.meters.stranded_mbps),
        }
    }

    /// Capture everything a resumed run needs to continue the scenario
    /// bit-identically. `spec`, `span` and `pristine_units` are *not*
    /// captured — the restore path rebuilds them from the checkpointed
    /// run configuration, and the RNG chains re-seed from the spec and
    /// burn forward to the recorded draw counts (see `crate::faults`).
    pub(crate) fn snapshot(&self) -> FaultSnapshot {
        let bits = |s: &OnlineStats| {
            let (n, mean, m2, min, max) = s.to_raw_bits();
            [n, mean, m2, min, max]
        };
        FaultSnapshot {
            chain_draws: self.chains.draw_counts(),
            tallies: self.tallies,
            evac_latency: bits(&self.meters.evac_latency),
            recovery: bits(&self.meters.recovery),
            stranded_units: self.meters.stranded_units.clone(),
            stranded_mbps: self.meters.stranded_mbps.clone(),
            rack_down_since: self.rack_down_since.clone(),
            rack_residents: self
                .rack_residents
                .iter()
                .map(|s| s.iter().copied().collect())
                .collect(),
            in_transit: self.in_transit.iter().map(|(&k, &v)| (k, v)).collect(),
            tombstones: self.tombstones.iter().copied().collect(),
        }
    }

    /// Overwrite this (pristine, freshly-built) scenario state with a
    /// snapshot: chains burn forward to the recorded draw counts, every
    /// accumulator and ledger is swapped in.
    pub(crate) fn restore(&mut self, snap: FaultSnapshot) {
        let stats = |b: [u64; 5]| OnlineStats::from_raw_bits((b[0], b[1], b[2], b[3], b[4]));
        self.chains.burn_to(&snap.chain_draws);
        self.tallies = snap.tallies;
        self.meters.evac_latency = stats(snap.evac_latency);
        self.meters.recovery = stats(snap.recovery);
        self.meters.stranded_units = snap.stranded_units;
        self.meters.stranded_mbps = snap.stranded_mbps;
        assert_eq!(
            self.rack_down_since.len(),
            snap.rack_down_since.len(),
            "checkpoint topology does not match the rebuilt cluster"
        );
        self.rack_down_since = snap.rack_down_since;
        self.rack_residents = snap
            .rack_residents
            .into_iter()
            .map(|v| v.into_iter().collect())
            .collect();
        self.in_transit = snap.in_transit.into_iter().collect();
        self.tombstones = snap.tombstones.into_iter().collect();
    }
}

/// Serializable image of a [`FaultState`] mid-run (checkpoint payload).
/// `OnlineStats` accumulators travel as raw IEEE-754 bit patterns: their
/// empty-state ±∞ sentinels are not JSON floats, and bits round-trip
/// every state exactly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct FaultSnapshot {
    chain_draws: ChainDraws,
    tallies: FaultTallies,
    evac_latency: [u64; 5],
    recovery: [u64; 5],
    stranded_units: TimeWeighted,
    stranded_mbps: TimeWeighted,
    rack_down_since: Vec<Option<f64>>,
    rack_residents: Vec<Vec<u32>>,
    in_transit: Vec<(u32, Migration)>,
    tombstones: Vec<u32>,
}

/// The [`World`] implementation: owns all mutable simulation state.
#[derive(Debug)]
pub struct DdcWorld {
    pub(crate) cluster: Cluster,
    pub(crate) net: NetworkState,
    pub(crate) scheduler: Scheduler,
    pub(crate) source: VmSource,
    energy: EnergyModel,
    pub(crate) cfg: SimConfig,
    pub(crate) assignments: PerVmSlots<VmAssignment>,
    pub(crate) counters: Counters,
    /// Time-weighted used units per resource kind.
    pub(crate) util: [TimeWeighted; 3],
    /// Time-weighted used Mb/s on the intra- and inter-rack layers.
    pub(crate) intra_bw: TimeWeighted,
    pub(crate) inter_bw: TimeWeighted,
    /// Per-admitted-VM CPU-RAM round-trip latency (ns).
    pub(crate) latency: OnlineStats,
    /// Total optical energy (switch trim/reconfig + transceivers), joules.
    pub(crate) optical_energy_j: f64,
    /// Amortized wall-clock of `Scheduler::schedule` (Figures 11/12).
    pub(crate) sched: SchedTimer,
    /// Latest event time seen, in paper units.
    pub(crate) end_time: f64,
    /// Currently resident VMs.
    pub(crate) resident: u32,
    /// High-water mark of `resident` — the bound the two-lane event
    /// queue's FEL length is tested against.
    pub(crate) peak_resident: u32,
    /// Optional fixed-grid series recorder.
    pub(crate) timeline: Option<Timeline>,
    /// Optional independent auditor replaying every assignment against a
    /// shadow ledger; violations fail the run loudly.
    pub(crate) auditor: Option<(ScheduleAuditor, PerVmSlots<u64>)>,
    /// Fault-injection scenario state; `None` on faults-off runs.
    pub(crate) faults: Option<Box<FaultState>>,
    /// Speculative-execution counters; `Some` only under
    /// [`crate::ExecMode::Speculative`], so sequential reports stay
    /// byte-identical (the report key is omitted entirely when `None`).
    pub(crate) speculation: Option<crate::parallel::SpeculationReport>,
}

impl DdcWorld {
    /// Build a pristine world for `algorithm` over `workload`.
    pub fn new(cfg: SimConfig, algorithm: Algorithm, workload: Workload) -> Self {
        let n = workload.len();
        Self::with_source(
            cfg,
            algorithm,
            VmSource::Materialized(workload),
            PerVmSlots::dense(n),
        )
    }

    /// Build a world consuming VMs lazily from a streaming shard cursor
    /// (bounded memory; see [`crate::ArrivalMode::Streaming`]).
    pub(crate) fn new_streaming(
        cfg: SimConfig,
        algorithm: Algorithm,
        cursor: StreamingShards,
    ) -> Self {
        Self::with_source(
            cfg,
            algorithm,
            VmSource::Streaming(cursor),
            PerVmSlots::sparse(),
        )
    }

    fn with_source(
        cfg: SimConfig,
        algorithm: Algorithm,
        source: VmSource,
        assignments: PerVmSlots<VmAssignment>,
    ) -> Self {
        let cluster = Cluster::new(cfg.topology);
        let net = NetworkState::new(cfg.network, &cluster);
        let scheduler = Scheduler::new(algorithm, &cluster);
        let energy = EnergyModel::new(cfg.photonics);
        DdcWorld {
            cluster,
            net,
            scheduler,
            source,
            energy,
            cfg,
            assignments,
            counters: Counters::default(),
            util: [
                TimeWeighted::new(0.0, 0.0),
                TimeWeighted::new(0.0, 0.0),
                TimeWeighted::new(0.0, 0.0),
            ],
            intra_bw: TimeWeighted::new(0.0, 0.0),
            inter_bw: TimeWeighted::new(0.0, 0.0),
            latency: OnlineStats::new(),
            optical_energy_j: 0.0,
            sched: SchedTimer::new(DEFAULT_SCHED_TIMING_BATCH),
            end_time: 0.0,
            resident: 0,
            peak_resident: 0,
            timeline: None,
            auditor: None,
            faults: None,
            speculation: None,
        }
    }

    /// Start counting speculative-execution statistics (builder-driven;
    /// only the speculative executor increments them). The run report
    /// gains a `speculation` block.
    pub(crate) fn enable_speculation(&mut self) {
        self.speculation = Some(crate::parallel::SpeculationReport::default());
    }

    /// Attach a fault scenario resolved against the workload `span` (the
    /// last arrival time; see `crate::faults` for the determinism
    /// argument). Call before running; the driver injects the initial
    /// onsets via `DdcWorld::initial_fault_events`.
    pub fn enable_faults(&mut self, spec: FaultSpec, span: f64) {
        self.faults = Some(Box::new(FaultState::new(
            spec,
            span,
            &self.cluster,
            &self.cfg.network,
        )));
    }

    /// Draw each component chain's first failure onset and return the
    /// events to seed the queue with (onsets past the span are skipped —
    /// the chain stays quiet for the whole run). Component order is
    /// fixed — racks, trunk links, transceivers — so the event sequence
    /// numbers are identical on every arrival pipeline.
    pub(crate) fn initial_fault_events(&mut self) -> Vec<(SimTime, SimEvent)> {
        let fs = self.faults.as_mut().expect("faults enabled");
        let span = fs.span;
        let mut out = Vec::new();
        for (r, chain) in fs.chains.racks.iter_mut().enumerate() {
            let onset = chain.uptime();
            if onset < span {
                out.push((SimTime::from_units(onset), SimEvent::RackFail(r as u16)));
            }
        }
        let width = fs.chains.trunk_width as usize;
        for (i, chain) in fs.chains.trunk_links.iter_mut().enumerate() {
            let onset = chain.uptime();
            if onset < span {
                out.push((
                    SimTime::from_units(onset),
                    SimEvent::TrunkDown {
                        rack: (i / width) as u16,
                        link: (i % width) as u16,
                    },
                ));
            }
        }
        let width = fs.chains.xcvr_width as usize;
        for (i, chain) in fs.chains.xcvr_links.iter_mut().enumerate() {
            let onset = chain.uptime();
            if onset < span {
                out.push((
                    SimTime::from_units(onset),
                    SimEvent::XcvrDown {
                        box_idx: (i / width) as u32,
                        link: (i % width) as u16,
                    },
                ));
            }
        }
        out
    }

    /// The resilience metrics of the attached fault scenario, if any
    /// (normally read through [`crate::RunReport::faults`]).
    pub fn fault_report(&self) -> Option<FaultReport> {
        self.faults.as_ref().map(|fs| fs.report(self.end_time))
    }

    /// Enable independent auditing of every assignment/release (shadow
    /// ledger; see `risa_sched::audit`). The driver calls
    /// `finish_audit` at end of run and panics on violations.
    pub fn enable_audit(&mut self) {
        let seqs = match &self.source {
            VmSource::Materialized(w) => PerVmSlots::dense(w.len()),
            VmSource::Streaming(_) => PerVmSlots::sparse(),
        };
        self.auditor = Some((ScheduleAuditor::new(&self.cluster), seqs));
    }

    /// Close the audit; panics with the violation list if the scheduler
    /// and the shadow ledger ever disagreed.
    pub(crate) fn finish_audit(&mut self) {
        if let Some((auditor, _)) = self.auditor.take() {
            if let Err(violations) = auditor.finish() {
                panic!("schedule audit failed: {violations:?}");
            }
        }
    }

    /// Record a utilization/occupancy series with the given sampling
    /// interval (paper time units).
    pub fn enable_timeline(&mut self, interval: f64) {
        self.timeline = Some(Timeline::new(interval));
    }

    /// The recorded series, if enabled.
    pub fn timeline(&self) -> Option<&Timeline> {
        self.timeline.as_ref()
    }

    /// Flush the current state into the timeline regardless of the grid
    /// (called once by the driver when the event queue drains).
    pub(crate) fn flush_timeline(&mut self) {
        let t = self.end_time;
        let cluster = &self.cluster;
        let used =
            |k: ResourceKind| (cluster.total_capacity(k) - cluster.total_available(k)) as f64;
        let point = TimelinePoint {
            t,
            cpu_used: used(ResourceKind::Cpu),
            ram_used: used(ResourceKind::Ram),
            sto_used: used(ResourceKind::Storage),
            intra_mbps: self.net.intra_used_mbps() as f64,
            inter_mbps: self.net.inter_used_mbps() as f64,
            resident_vms: self.resident,
        };
        if let Some(tl) = self.timeline.as_mut() {
            tl.force(point);
        }
    }

    /// The algorithm driving this world.
    pub fn algorithm(&self) -> Algorithm {
        self.scheduler.algorithm()
    }

    /// Set the scheduler-timing batch: one clock pair per `every`
    /// scheduling calls (`every = 1` ⇒ exact per-call timing); see
    /// [`crate::RunReport::sched_seconds`] for the estimator semantics.
    /// Configure before running.
    pub fn set_sched_timing_batch(&mut self, every: u32) {
        self.sched = SchedTimer::new(every);
    }

    /// Estimated wall-clock spent inside `Scheduler::schedule`, in seconds
    /// (exact when the timing batch is 1; see
    /// [`crate::RunReport::sched_seconds`] for the full semantics).
    pub fn sched_seconds(&self) -> f64 {
        self.sched.estimate_seconds()
    }

    /// Currently resident (admitted, not yet departed) VMs.
    pub fn resident(&self) -> u32 {
        self.resident
    }

    /// High-water mark of [`DdcWorld::resident`] over the run.
    pub fn peak_resident(&self) -> u32 {
        self.peak_resident
    }

    /// Assignment of VM `idx`, if admitted and still resident.
    pub fn assignment(&self, idx: u32) -> Option<&VmAssignment> {
        self.assignments.get(idx)
    }

    /// High-water mark of VMs buffered by the streaming workload cursor
    /// (current shard + outstanding prefetch); `None` on the materialized
    /// path. Bounded by 2×`risa_workload::shard::SHARD_SIZE`.
    pub fn stream_peak_buffered(&self) -> Option<usize> {
        match &self.source {
            VmSource::Materialized(_) => None,
            VmSource::Streaming(c) => Some(c.peak_buffered()),
        }
    }

    /// Shards the streaming cursor has generated so far; `None` on the
    /// materialized path.
    pub fn stream_shards_generated(&self) -> Option<u32> {
        match &self.source {
            VmSource::Materialized(_) => None,
            VmSource::Streaming(c) => Some(c.shards_generated()),
        }
    }

    /// Capture the world's full mutable state for a checkpoint. Excluded
    /// by design: the workload source (rebuilt from the run configuration
    /// and fast-forwarded by [`DdcWorld::restore`]), the stateless energy
    /// model, the config (in the checkpoint's recipe block), and the
    /// scheduler wall-clock timer (wall time is not simulation state — a
    /// resumed run measures only its own scheduling work).
    pub(crate) fn snapshot(&self) -> WorldSnapshot {
        let (n, mean, m2, min, max) = self.latency.to_raw_bits();
        WorldSnapshot {
            cluster: self.cluster.clone(),
            net: self.net.clone(),
            scheduler: self.scheduler.clone(),
            assignments: self.assignments.occupied_pairs(),
            counters: self.counters.clone(),
            util: self.util.clone(),
            intra_bw: self.intra_bw.clone(),
            inter_bw: self.inter_bw.clone(),
            latency: [n, mean, m2, min, max],
            optical_energy_j: self.optical_energy_j,
            end_time: self.end_time,
            resident: self.resident,
            peak_resident: self.peak_resident,
            timeline: self.timeline.clone(),
            auditor: self
                .auditor
                .as_ref()
                .map(|(a, seqs)| (a.to_parts(), seqs.occupied_pairs())),
            faults: self.faults.as_ref().map(|fs| fs.snapshot()),
            speculation: self.speculation,
            stream_consumed: match &self.source {
                VmSource::Materialized(_) => 0,
                VmSource::Streaming(c) => c.total_vms() - c.remaining() as u32,
            },
        }
    }

    /// Overwrite this (pristine, freshly-built) world with a snapshot.
    ///
    /// The streaming cursor is advanced by replaying `stream_consumed`
    /// `next()` calls — re-executing the *identical* running-offset `f64`
    /// additions the original run performed, so the VMs it will yield
    /// after restore are bit-identical to the uninterrupted run's. The
    /// caller must have built `self` from the same run configuration the
    /// snapshot was taken under (same workload, algorithm, topology,
    /// audit/timeline/fault settings).
    pub(crate) fn restore(&mut self, snap: WorldSnapshot) {
        if let VmSource::Streaming(cursor) = &mut self.source {
            for _ in 0..snap.stream_consumed {
                cursor
                    .next()
                    .expect("checkpoint consumed more VMs than the workload holds");
            }
        }
        self.cluster = snap.cluster;
        self.net = snap.net;
        self.scheduler = snap.scheduler;
        debug_assert!(self.assignments.all_free(), "restore into a used world");
        for (idx, a) in snap.assignments {
            self.assignments.insert(idx, a);
        }
        self.counters = snap.counters;
        self.util = snap.util;
        self.intra_bw = snap.intra_bw;
        self.inter_bw = snap.inter_bw;
        let [n, mean, m2, min, max] = snap.latency;
        self.latency = OnlineStats::from_raw_bits((n, mean, m2, min, max));
        self.optical_energy_j = snap.optical_energy_j;
        self.end_time = snap.end_time;
        self.resident = snap.resident;
        self.peak_resident = snap.peak_resident;
        self.timeline = snap.timeline;
        match (snap.auditor, self.auditor.as_mut()) {
            (Some((parts, seqs)), Some((auditor, slots))) => {
                *auditor = ScheduleAuditor::from_parts(&self.cluster, parts);
                debug_assert!(slots.all_free(), "restore into a used audit ledger");
                for (idx, seq) in seqs {
                    slots.insert(idx, seq);
                }
            }
            (None, None) => {}
            _ => panic!("checkpoint audit setting does not match the rebuilt run"),
        }
        match (snap.faults, self.faults.as_mut()) {
            (Some(fsnap), Some(fs)) => fs.restore(fsnap),
            (None, None) => {}
            _ => panic!("checkpoint fault setting does not match the rebuilt run"),
        }
        self.speculation = snap.speculation;
    }

    fn sample_state(&mut self, t: f64) {
        for kind in ALL_RESOURCES {
            let used = self.cluster.total_capacity(kind) - self.cluster.total_available(kind);
            self.util[kind.index()].set(t, used as f64);
        }
        self.intra_bw.set(t, self.net.intra_used_mbps() as f64);
        self.inter_bw.set(t, self.net.inter_used_mbps() as f64);
        if let Some(fs) = self.faults.as_mut() {
            // Stranded capacity: retracted compute inside failed racks
            // plus free bandwidth behind dark links. Both change only at
            // event times, so per-event sampling is exact.
            let live: u64 = ALL_RESOURCES
                .iter()
                .map(|&k| self.cluster.total_capacity(k))
                .sum();
            fs.meters
                .stranded_units
                .set(t, (fs.pristine_units - live) as f64);
            fs.meters
                .stranded_mbps
                .set(t, self.net.stranded_mbps() as f64);
        }
        if let Some(tl) = self.timeline.as_mut() {
            let used = |k: ResourceKind| {
                (self.cluster.total_capacity(k) - self.cluster.total_available(k)) as f64
            };
            tl.offer(TimelinePoint {
                t,
                cpu_used: used(ResourceKind::Cpu),
                ram_used: used(ResourceKind::Ram),
                sto_used: used(ResourceKind::Storage),
                intra_mbps: self.net.intra_used_mbps() as f64,
                inter_mbps: self.net.inter_used_mbps() as f64,
                resident_vms: self.resident,
            });
        }
    }

    /// Energy of one flow given whether it crossed racks (Eq. 1 + the
    /// transceiver model), charged at admission for the known lifetime.
    fn flow_energy(&self, inter: bool, mbps: u64, lifetime_s: f64) -> f64 {
        let n = &self.cfg.network;
        let path = if inter {
            SwitchPath::inter_rack(
                n.box_switch_ports,
                n.rack_switch_ports,
                n.inter_rack_switch_ports,
            )
        } else {
            SwitchPath::intra_rack(n.box_switch_ports, n.rack_switch_ports)
        };
        self.energy.flow_total_energy_j(&path, mbps, lifetime_s)
    }

    fn on_arrival(&mut self, idx: u32, now: f64, ctx: &mut EventCtx<'_, SimEvent>) {
        let vm = self.source.take(idx, &self.cfg.topology);
        self.arrival_with_vm(idx, &vm, now, ctx);
    }

    /// Handle an arrival whose [`VmRequest`] was already pulled from the
    /// source — the sequential tail of [`DdcWorld::on_arrival`], and the
    /// serial re-execution path of the speculative executor (which
    /// prefetches requests at window-drain time; see `crate::parallel`).
    pub(crate) fn arrival_with_vm(
        &mut self,
        idx: u32,
        vm: &VmRequest,
        now: f64,
        ctx: &mut EventCtx<'_, SimEvent>,
    ) {
        let demand = vm.demand(&self.cfg.topology);

        let timing = self.sched.start();
        let outcome = self
            .scheduler
            .schedule(&mut self.cluster, &mut self.net, &demand);
        self.sched.finish(timing);

        self.finish_arrival(idx, vm, outcome, now, ctx);
    }

    /// Apply an arrival's scheduling outcome: counters, latency/energy
    /// accounting, audit, fault-residency indexing, departure scheduling,
    /// and the per-event state sample. Shared verbatim by the sequential
    /// path (after [`Scheduler::schedule`] mutated the world) and the
    /// speculative fast-path commit (after the commit layer replayed the
    /// validated placement and flows) — byte-identity of the two paths
    /// rests on this tail being the same code.
    pub(crate) fn finish_arrival(
        &mut self,
        idx: u32,
        vm: &VmRequest,
        outcome: ScheduleOutcome,
        now: f64,
        ctx: &mut EventCtx<'_, SimEvent>,
    ) {
        match outcome {
            ScheduleOutcome::Assigned(a) => {
                self.counters.admitted += 1;
                if !a.intra_rack {
                    self.counters.inter_rack += 1;
                }
                if a.used_fallback {
                    self.counters.fallback += 1;
                }
                // CPU-RAM round-trip latency (Figure 10): depends on
                // whether CPU and RAM share a rack.
                let cpu_rack = self
                    .cluster
                    .rack_of(a.placement.grant(ResourceKind::Cpu).box_id);
                let ram_rack = self
                    .cluster
                    .rack_of(a.placement.grant(ResourceKind::Ram).box_id);
                let lat = if cpu_rack == ram_rack {
                    self.cfg.latency.intra_rack_ns
                } else {
                    self.cfg.latency.inter_rack_ns
                };
                self.latency.record(lat);
                // Optical energy (Figure 9), 1 time unit ≡ 1 s.
                let life_s = vm.lifetime;
                self.optical_energy_j +=
                    self.flow_energy(a.network.cpu_ram.inter_rack, a.network.cpu_ram.mbps, life_s);
                self.optical_energy_j +=
                    self.flow_energy(a.network.ram_sto.inter_rack, a.network.ram_sto.mbps, life_s);
                if let Some((auditor, seqs)) = self.auditor.as_mut() {
                    seqs.insert(idx, auditor.admit(&self.cluster, &a));
                }
                if let Some(fs) = self.faults.as_mut() {
                    fs.note_resident(idx, &a, &self.cluster);
                }
                self.assignments.insert(idx, a);
                self.resident += 1;
                self.peak_resident = self.peak_resident.max(self.resident);
                ctx.schedule_in(
                    SimDuration::from_units(vm.lifetime),
                    SimEvent::Departure(idx),
                );
            }
            ScheduleOutcome::Dropped(DropReason::Compute) => {
                self.counters.dropped_compute += 1;
            }
            ScheduleOutcome::Dropped(DropReason::Network) => {
                self.counters.dropped_network += 1;
            }
        }
        self.sample_state(now);
    }

    fn on_departure(&mut self, idx: u32, now: f64) {
        let Some(a) = self.assignments.take(idx) else {
            // Only reachable under fault injection: the VM was displaced
            // by a rack failure after admission and holds no resources —
            // it was either dropped at re-placement (tombstoned) or is
            // still in transit (its migration is hereby cancelled).
            let fs = self
                .faults
                .as_mut()
                .expect("departure of a VM that was never admitted");
            if !fs.tombstones.remove(&idx) {
                fs.in_transit
                    .remove(&idx)
                    .expect("departure of a VM that was never admitted");
                fs.tallies.evac_departed += 1;
            }
            return;
        };
        Scheduler::release(&mut self.cluster, &mut self.net, &a);
        if let Some((auditor, seqs)) = self.auditor.as_mut() {
            let seq = seqs.take(idx).expect("audited VM has a seq");
            auditor.release(seq);
        }
        if let Some(fs) = self.faults.as_mut() {
            fs.forget_resident(idx, &a, &self.cluster);
        }
        self.resident -= 1;
        self.sample_state(now);
    }

    /// A rack fails: evacuate its residents (release now, re-place after
    /// a per-VM migration delay), retract every box, schedule the repair.
    fn on_rack_fail(&mut self, rack: u16, now: f64, ctx: &mut EventCtx<'_, SimEvent>) {
        let rid = RackId(rack);
        // Victims in ascending VM index: every resident VM with at least
        // one grant in this rack (grants on other racks evacuate too —
        // a VM is placed and released as a whole).
        let victims: Vec<u32> = self
            .faults
            .as_ref()
            .expect("fault event without a scenario")
            .rack_residents[rack as usize]
            .iter()
            .copied()
            .collect();
        for idx in victims {
            let a = self
                .assignments
                .take(idx)
                .expect("evacuating a VM that is not resident");
            Scheduler::release(&mut self.cluster, &mut self.net, &a);
            if let Some((auditor, seqs)) = self.auditor.as_mut() {
                let seq = seqs.take(idx).expect("audited VM has a seq");
                auditor.release(seq);
            }
            self.resident -= 1;
            let fs = self
                .faults
                .as_mut()
                .expect("fault event without a scenario");
            fs.forget_resident(idx, &a, &self.cluster);
            let demand = UnitDemand::new(
                a.placement.grant(ResourceKind::Cpu).units,
                a.placement.grant(ResourceKind::Ram).units,
                a.placement.grant(ResourceKind::Storage).units,
            );
            let units: u32 = ALL_RESOURCES.iter().map(|&k| demand.get(k)).sum();
            let delay = fs.spec.migration_delay_per_unit * f64::from(units);
            fs.tallies.evacuated += 1;
            fs.in_transit.insert(
                idx,
                Migration {
                    demand,
                    evacuated_at: now,
                },
            );
            ctx.schedule_in(SimDuration::from_units(delay), SimEvent::Migrate(idx));
        }
        // With every grant released, each box's availability freezes at
        // full capacity — restore returns the rack pristine.
        let boxes: Vec<BoxId> = ALL_RESOURCES
            .iter()
            .flat_map(|&k| self.cluster.boxes_in_rack(rid, k))
            .copied()
            .collect();
        for b in boxes {
            self.cluster
                .remove_box(b)
                .expect("rack chains alternate fail/repair");
        }
        let fs = self
            .faults
            .as_mut()
            .expect("fault event without a scenario");
        fs.tallies.rack_failures += 1;
        fs.rack_down_since[rack as usize] = Some(now);
        let down = fs.chains.racks[rack as usize].downtime();
        ctx.schedule_in(SimDuration::from_units(down), SimEvent::RackRepair(rack));
        self.sample_state(now);
    }

    /// A rack is repaired: its boxes rejoin every scheduler aggregate and
    /// the next failure onset is drawn (scheduled only within the span).
    fn on_rack_repair(&mut self, rack: u16, now: f64, ctx: &mut EventCtx<'_, SimEvent>) {
        let rid = RackId(rack);
        let boxes: Vec<BoxId> = ALL_RESOURCES
            .iter()
            .flat_map(|&k| self.cluster.boxes_in_rack(rid, k))
            .copied()
            .collect();
        for b in boxes {
            self.cluster
                .restore_box(b)
                .expect("repair of a rack that is down");
        }
        let fs = self
            .faults
            .as_mut()
            .expect("fault event without a scenario");
        fs.tallies.rack_repairs += 1;
        let since = fs.rack_down_since[rack as usize]
            .take()
            .expect("repair of a rack that is down");
        fs.meters.recovery.record(now - since);
        let up = fs.chains.racks[rack as usize].uptime();
        if now + up < fs.span {
            ctx.schedule_in(SimDuration::from_units(up), SimEvent::RackFail(rack));
        }
        self.sample_state(now);
    }

    /// One link of a trunk goes dark; its repair is always scheduled.
    fn on_link_down(&mut self, id: TrunkId, link: u16, now: f64, ctx: &mut EventCtx<'_, SimEvent>) {
        self.net
            .fail_link(id, link as usize)
            .expect("link chains alternate down/up");
        let fs = self
            .faults
            .as_mut()
            .expect("fault event without a scenario");
        let (chain, up_event) = match id {
            TrunkId::RackUplink(rack) => {
                fs.tallies.trunk_link_downs += 1;
                (
                    fs.chains.trunk_chain(rack, link),
                    SimEvent::TrunkUp { rack, link },
                )
            }
            TrunkId::BoxUplink(box_idx) => {
                fs.tallies.xcvr_downs += 1;
                (
                    fs.chains.xcvr_chain(box_idx, link),
                    SimEvent::XcvrUp { box_idx, link },
                )
            }
        };
        let down = chain.downtime();
        ctx.schedule_in(SimDuration::from_units(down), up_event);
        self.sample_state(now);
    }

    /// A dark link is restored; the next outage is drawn and scheduled
    /// only if its onset lands within the span.
    fn on_link_up(&mut self, id: TrunkId, link: u16, now: f64, ctx: &mut EventCtx<'_, SimEvent>) {
        self.net
            .restore_link(id, link as usize)
            .expect("link chains alternate down/up");
        let fs = self
            .faults
            .as_mut()
            .expect("fault event without a scenario");
        let (chain, down_event) = match id {
            TrunkId::RackUplink(rack) => {
                fs.tallies.trunk_link_ups += 1;
                (
                    fs.chains.trunk_chain(rack, link),
                    SimEvent::TrunkDown { rack, link },
                )
            }
            TrunkId::BoxUplink(box_idx) => {
                fs.tallies.xcvr_ups += 1;
                (
                    fs.chains.xcvr_chain(box_idx, link),
                    SimEvent::XcvrDown { box_idx, link },
                )
            }
        };
        let up = chain.uptime();
        if now + up < fs.span {
            ctx.schedule_in(SimDuration::from_units(up), down_event);
        }
        self.sample_state(now);
    }

    /// An evacuated VM completes its migration: re-place it through the
    /// active scheduler (the search is charged to the work counters like
    /// any arrival) or drop it if nothing fits. A no-op if the VM's
    /// lifetime already ended in transit.
    fn on_migrate(&mut self, idx: u32, now: f64) {
        let Some(m) = self
            .faults
            .as_mut()
            .expect("fault event without a scenario")
            .in_transit
            .remove(&idx)
        else {
            return; // departed while in transit — already accounted
        };
        let timing = self.sched.start();
        let outcome = self
            .scheduler
            .schedule(&mut self.cluster, &mut self.net, &m.demand);
        self.sched.finish(timing);
        match outcome {
            ScheduleOutcome::Assigned(a) => {
                if let Some((auditor, seqs)) = self.auditor.as_mut() {
                    seqs.insert(idx, auditor.admit(&self.cluster, &a));
                }
                let fs = self
                    .faults
                    .as_mut()
                    .expect("fault event without a scenario");
                fs.tallies.evac_replaced += 1;
                fs.meters.evac_latency.record(now - m.evacuated_at);
                fs.note_resident(idx, &a, &self.cluster);
                self.assignments.insert(idx, a);
                self.resident += 1;
                self.peak_resident = self.peak_resident.max(self.resident);
                // The original departure event is still pending and will
                // release this re-placement; energy/latency stay the
                // admission-time estimates.
            }
            ScheduleOutcome::Dropped(_) => {
                let fs = self
                    .faults
                    .as_mut()
                    .expect("fault event without a scenario");
                fs.tallies.dropped_churn += 1;
                fs.tombstones.insert(idx);
            }
        }
        self.sample_state(now);
    }
}

impl World for DdcWorld {
    type Event = SimEvent;

    fn handle(&mut self, ctx: &mut EventCtx<'_, SimEvent>, event: SimEvent) {
        let now = ctx.now().as_units();
        self.end_time = self.end_time.max(now);
        match event {
            SimEvent::Arrival(idx) => self.on_arrival(idx, now, ctx),
            SimEvent::Departure(idx) => self.on_departure(idx, now),
            SimEvent::RackFail(rack) => self.on_rack_fail(rack, now, ctx),
            SimEvent::RackRepair(rack) => self.on_rack_repair(rack, now, ctx),
            SimEvent::TrunkDown { rack, link } => {
                self.on_link_down(TrunkId::RackUplink(rack), link, now, ctx)
            }
            SimEvent::TrunkUp { rack, link } => {
                self.on_link_up(TrunkId::RackUplink(rack), link, now, ctx)
            }
            SimEvent::XcvrDown { box_idx, link } => {
                self.on_link_down(TrunkId::BoxUplink(box_idx), link, now, ctx)
            }
            SimEvent::XcvrUp { box_idx, link } => {
                self.on_link_up(TrunkId::BoxUplink(box_idx), link, now, ctx)
            }
            SimEvent::Migrate(idx) => self.on_migrate(idx, now),
        }
    }
}

/// Serializable image of a [`DdcWorld`] mid-run — the `world` block of a
/// checkpoint (see `crate::checkpoint`). Cluster, network and scheduler
/// reuse their existing (validated, derived-state-rebuilding) serde
/// implementations; per-VM slot stores flatten to sorted pairs so the
/// encoding is independent of the dense/sparse storage choice; the
/// latency accumulator travels as raw bits (±∞ empty-state sentinels).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct WorldSnapshot {
    cluster: Cluster,
    net: NetworkState,
    scheduler: Scheduler,
    assignments: Vec<(u32, VmAssignment)>,
    counters: Counters,
    util: [TimeWeighted; 3],
    intra_bw: TimeWeighted,
    inter_bw: TimeWeighted,
    latency: [u64; 5],
    optical_energy_j: f64,
    end_time: f64,
    resident: u32,
    peak_resident: u32,
    timeline: Option<Timeline>,
    auditor: Option<(AuditorParts, Vec<(u32, u64)>)>,
    faults: Option<FaultSnapshot>,
    /// Speculative-executor counters (`None` under sequential execution),
    /// carried so a resumed speculative run reports cumulative stats.
    speculation: Option<crate::parallel::SpeculationReport>,
    /// VMs the streaming cursor had yielded at snapshot time (0 on the
    /// materialized path); restore replays this many `next()` calls.
    stream_consumed: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use risa_des::Simulation;
    use risa_workload::SyntheticConfig;

    fn run_world(algo: Algorithm, n: u32, seed: u64) -> DdcWorld {
        let workload = Workload::synthetic(&SyntheticConfig::small(n, seed));
        // Arrivals are preloaded straight off the (already sorted) trace —
        // no `to_vec` clone of the VM list, and nothing enters the FEL.
        let arrivals = arrival_events(&workload);
        let mut sim = Simulation::new(DdcWorld::new(SimConfig::paper(), algo, workload));
        sim.preload_sorted(arrivals);
        sim.run_to_completion();
        sim.into_world()
    }

    #[test]
    fn small_run_admits_everything_and_releases() {
        let w = run_world(Algorithm::Risa, 50, 3);
        assert_eq!(w.counters.admitted, 50);
        assert_eq!(w.counters.dropped_compute + w.counters.dropped_network, 0);
        // Everything departed: cluster and network back to pristine.
        assert_eq!(w.cluster.total_available(ResourceKind::Cpu), 4608);
        assert_eq!(w.net.intra_used_mbps(), 0);
        assert_eq!(w.net.inter_used_mbps(), 0);
        assert!(w.assignments.all_free());
        w.cluster.check_invariants().unwrap();
    }

    /// A world fed by the streaming cursor reaches the same end state as
    /// the materialized one (the full differential lives in
    /// `tests/hot_path_differential.rs`; this is the in-module smoke).
    #[test]
    fn streaming_world_matches_materialized_end_state() {
        use crate::streaming::StreamingArrivals;
        use risa_workload::{ShardSource, SyntheticShards};
        use std::sync::Arc;

        let cfg = SyntheticConfig::small(200, 3);
        let source: Arc<dyn ShardSource> = Arc::new(SyntheticShards::new(&cfg));
        let cursor = StreamingShards::new(Arc::clone(&source));
        let mut world = DdcWorld::new_streaming(SimConfig::paper(), Algorithm::Risa, cursor);
        world.enable_audit();
        let mut sim = Simulation::new(world);
        sim.attach_arrivals(Box::new(StreamingArrivals::new(source)));
        sim.run_to_completion();
        let mut w = sim.into_world();
        w.finish_audit();

        let oracle = run_world(Algorithm::Risa, 200, 3);
        assert_eq!(w.counters.admitted, oracle.counters.admitted);
        assert_eq!(w.counters.inter_rack, oracle.counters.inter_rack);
        assert_eq!(w.optical_energy_j, oracle.optical_energy_j);
        assert_eq!(w.end_time, oracle.end_time);
        assert!(w.assignments.all_free());
        assert_eq!(w.source.name(), "synthetic");
        assert_eq!(w.source.total(), 200);
        assert!(w.stream_peak_buffered().unwrap() >= 200);
        assert_eq!(w.stream_shards_generated(), Some(1));
        assert_eq!(oracle.stream_peak_buffered(), None);
    }

    /// The sparse assignment store never holds more entries than resident
    /// VMs — the invariant that makes streaming runs bounded-memory.
    #[test]
    fn sparse_slots_track_residency() {
        let mut slots: PerVmSlots<u8> = PerVmSlots::sparse();
        assert!(slots.all_free());
        slots.insert(7, 1);
        slots.insert(1_000_000, 2); // far beyond any dense allocation
        assert_eq!(slots.occupied(), 2);
        assert_eq!(slots.get(7), Some(&1));
        assert_eq!(slots.take(1_000_000), Some(2));
        assert_eq!(slots.take(7), Some(1));
        assert!(slots.all_free());
        assert_eq!(slots.take(7), None);
    }

    #[test]
    fn latency_recorded_per_admitted_vm() {
        let w = run_world(Algorithm::RisaBf, 40, 5);
        assert_eq!(w.latency.count(), 40);
        // RISA-BF on an underloaded cluster: all intra-rack, all 110 ns.
        assert_eq!(w.latency.mean(), 110.0);
        assert_eq!(w.counters.inter_rack, 0);
    }

    #[test]
    fn energy_accumulates_only_for_admitted() {
        let w = run_world(Algorithm::Nulb, 30, 7);
        assert!(w.optical_energy_j > 0.0);
        // 30 VMs × 2 flows × (37 cells × 0.9 × 22.67 mW × ~6300 s) ≈ 280 kJ.
        assert!(w.optical_energy_j > 1e4);
        assert!(w.optical_energy_j < 1e7);
    }

    #[test]
    fn utilization_signal_rises_then_falls() {
        let w = run_world(Algorithm::Risa, 60, 9);
        let cpu = &w.util[ResourceKind::Cpu.index()];
        assert!(cpu.peak() > 0.0);
        assert_eq!(cpu.current(), 0.0, "all VMs departed");
        let mean = cpu.mean_to(w.end_time);
        assert!(mean > 0.0 && mean < cpu.peak());
    }

    #[test]
    fn deterministic_counters_across_reruns() {
        let a = run_world(Algorithm::Nalb, 80, 13);
        let b = run_world(Algorithm::Nalb, 80, 13);
        assert_eq!(a.counters.admitted, b.counters.admitted);
        assert_eq!(a.counters.inter_rack, b.counters.inter_rack);
        assert_eq!(a.optical_energy_j, b.optical_energy_j);
        assert_eq!(a.latency.mean(), b.latency.mean());
    }

    #[test]
    fn scheduler_wall_clock_is_measured() {
        let w = run_world(Algorithm::Nalb, 50, 1);
        // Default batch of 16 over 50 arrivals ⇒ calls 15/31/47 sampled
        // (the cold call 0 is deliberately skipped).
        assert_eq!(w.sched.calls, 50);
        assert_eq!(w.sched.sampled, 3);
        assert!(w.sched.wall > Duration::ZERO);
        assert!(w.sched_seconds() > 0.0);
    }

    #[test]
    fn exact_timing_batch_samples_every_call() {
        let workload = Workload::synthetic(&SyntheticConfig::small(20, 3));
        let arrivals = arrival_events(&workload);
        let mut world = DdcWorld::new(SimConfig::paper(), Algorithm::Risa, workload);
        world.set_sched_timing_batch(1);
        let mut sim = Simulation::new(world);
        sim.preload_sorted(arrivals);
        sim.run_to_completion();
        let w = sim.world();
        assert_eq!(w.sched.sampled, w.sched.calls);
        // With every call sampled the estimate *is* the measured total.
        assert_eq!(w.sched_seconds(), w.sched.wall.as_secs_f64());
    }

    /// `SchedTimer::absorb` (the speculative executor's path, where the
    /// duration is measured on a pool worker and handed in) must mirror
    /// the sequential `start`/`finish` counter logic exactly: same sample
    /// indices, same cold-call handling, and with K=1 the estimate
    /// degenerates to the measured total — the seed's exact semantics.
    #[test]
    fn absorb_mirrors_sequential_sampling_semantics() {
        let ms = |i: u64| Duration::from_millis(i + 1);
        for every in [1u32, 4, 16] {
            let mut t = SchedTimer::new(every);
            for i in 0..50u64 {
                t.absorb(ms(i));
            }
            assert_eq!(t.calls, 50);
            // Expected counters, computed the way `start` selects sample
            // points: call 0 (cold unless every == 1), then calls where
            // (calls + 1) % every == 0.
            let mut wall = Duration::ZERO;
            let mut sampled = 0u64;
            let mut cold = Duration::ZERO;
            for i in 0..50u64 {
                if i == 0 && every > 1 {
                    cold = ms(i);
                } else if i == 0 || (i + 1).is_multiple_of(u64::from(every)) {
                    wall += ms(i);
                    sampled += 1;
                }
            }
            assert_eq!(t.sampled, sampled, "every={every}");
            assert_eq!(t.wall, wall, "every={every}");
            assert_eq!(t.cold, cold, "every={every}");
        }
        // K=1 exact mode: every call sampled, estimate == measured total.
        let mut exact = SchedTimer::new(1);
        let mut total = Duration::ZERO;
        for i in 0..50u64 {
            exact.absorb(ms(i));
            total += ms(i);
        }
        assert_eq!(exact.sampled, exact.calls);
        assert_eq!(exact.estimate_seconds(), total.as_secs_f64());
    }

    /// Regression: a run shorter than one timing batch must still report
    /// nonzero scheduler time (the always-timed first call is the
    /// fallback sample).
    #[test]
    fn short_run_scheduler_time_is_nonzero() {
        let w = run_world(Algorithm::Risa, 10, 2);
        assert_eq!(w.sched.calls, 10);
        assert_eq!(w.sched.sampled, 0, "no regular sample point reached");
        assert!(w.sched.cold > Duration::ZERO);
        assert!(w.sched_seconds() > 0.0);
    }

    #[test]
    fn peak_resident_tracks_high_water_mark() {
        let w = run_world(Algorithm::Risa, 60, 9);
        assert!(w.peak_resident() > 0);
        assert!(w.peak_resident() <= 60);
        assert_eq!(w.resident(), 0, "everything departed");
    }
}
