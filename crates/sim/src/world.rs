//! The simulated world: cluster + network + scheduler + metric streams,
//! driven by VM arrival/departure events.

use crate::config::SimConfig;
use crate::timeline::{Timeline, TimelinePoint};
use risa_des::{EventCtx, SimDuration, World};
use risa_metrics::{OnlineStats, TimeWeighted};
use risa_network::NetworkState;
use risa_photonics::{EnergyModel, SwitchPath};
use risa_sched::audit::ScheduleAuditor;
use risa_sched::{Algorithm, DropReason, ScheduleOutcome, Scheduler, VmAssignment};
use risa_topology::{Cluster, ResourceKind, ALL_RESOURCES};
use risa_workload::Workload;
use std::time::Duration;

/// Events driving the DDC simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// VM `idx` (index into the workload) arrives and must be scheduled.
    Arrival(u32),
    /// VM `idx` departs; its resources and bandwidth are released.
    Departure(u32),
}

/// Raw per-run counters, exposed through [`crate::RunReport`].
#[derive(Debug, Clone, Default)]
pub(crate) struct Counters {
    pub admitted: u32,
    pub dropped_compute: u32,
    pub dropped_network: u32,
    pub inter_rack: u32,
    pub fallback: u32,
}

/// The [`World`] implementation: owns all mutable simulation state.
#[derive(Debug)]
pub struct DdcWorld {
    pub(crate) cluster: Cluster,
    pub(crate) net: NetworkState,
    pub(crate) scheduler: Scheduler,
    pub(crate) workload: Workload,
    energy: EnergyModel,
    cfg: SimConfig,
    assignments: Vec<Option<VmAssignment>>,
    pub(crate) counters: Counters,
    /// Time-weighted used units per resource kind.
    pub(crate) util: [TimeWeighted; 3],
    /// Time-weighted used Mb/s on the intra- and inter-rack layers.
    pub(crate) intra_bw: TimeWeighted,
    pub(crate) inter_bw: TimeWeighted,
    /// Per-admitted-VM CPU-RAM round-trip latency (ns).
    pub(crate) latency: OnlineStats,
    /// Total optical energy (switch trim/reconfig + transceivers), joules.
    pub(crate) optical_energy_j: f64,
    /// Wall-clock spent inside `Scheduler::schedule` (Figures 11/12).
    pub(crate) sched_wall: Duration,
    /// Latest event time seen, in paper units.
    pub(crate) end_time: f64,
    /// Currently resident VMs.
    pub(crate) resident: u32,
    /// Optional fixed-grid series recorder.
    pub(crate) timeline: Option<Timeline>,
    /// Optional independent auditor replaying every assignment against a
    /// shadow ledger; violations fail the run loudly.
    pub(crate) auditor: Option<(ScheduleAuditor, Vec<Option<u64>>)>,
}

impl DdcWorld {
    /// Build a pristine world for `algorithm` over `workload`.
    pub fn new(cfg: SimConfig, algorithm: Algorithm, workload: Workload) -> Self {
        let cluster = Cluster::new(cfg.topology);
        let net = NetworkState::new(cfg.network, &cluster);
        let scheduler = Scheduler::new(algorithm, &cluster);
        let energy = EnergyModel::new(cfg.photonics);
        let n = workload.len();
        DdcWorld {
            cluster,
            net,
            scheduler,
            workload,
            energy,
            cfg,
            assignments: vec![None; n],
            counters: Counters::default(),
            util: [
                TimeWeighted::new(0.0, 0.0),
                TimeWeighted::new(0.0, 0.0),
                TimeWeighted::new(0.0, 0.0),
            ],
            intra_bw: TimeWeighted::new(0.0, 0.0),
            inter_bw: TimeWeighted::new(0.0, 0.0),
            latency: OnlineStats::new(),
            optical_energy_j: 0.0,
            sched_wall: Duration::ZERO,
            end_time: 0.0,
            resident: 0,
            timeline: None,
            auditor: None,
        }
    }

    /// Enable independent auditing of every assignment/release (shadow
    /// ledger; see `risa_sched::audit`). The driver calls
    /// `finish_audit` at end of run and panics on violations.
    pub fn enable_audit(&mut self) {
        let n = self.workload.len();
        self.auditor = Some((ScheduleAuditor::new(&self.cluster), vec![None; n]));
    }

    /// Close the audit; panics with the violation list if the scheduler
    /// and the shadow ledger ever disagreed.
    pub(crate) fn finish_audit(&mut self) {
        if let Some((auditor, _)) = self.auditor.take() {
            if let Err(violations) = auditor.finish() {
                panic!("schedule audit failed: {violations:?}");
            }
        }
    }

    /// Record a utilization/occupancy series with the given sampling
    /// interval (paper time units).
    pub fn enable_timeline(&mut self, interval: f64) {
        self.timeline = Some(Timeline::new(interval));
    }

    /// The recorded series, if enabled.
    pub fn timeline(&self) -> Option<&Timeline> {
        self.timeline.as_ref()
    }

    /// Flush the current state into the timeline regardless of the grid
    /// (called once by the driver when the event queue drains).
    pub(crate) fn flush_timeline(&mut self) {
        let t = self.end_time;
        let cluster = &self.cluster;
        let used =
            |k: ResourceKind| (cluster.total_capacity(k) - cluster.total_available(k)) as f64;
        let point = TimelinePoint {
            t,
            cpu_used: used(ResourceKind::Cpu),
            ram_used: used(ResourceKind::Ram),
            sto_used: used(ResourceKind::Storage),
            intra_mbps: self.net.intra_used_mbps() as f64,
            inter_mbps: self.net.inter_used_mbps() as f64,
            resident_vms: self.resident,
        };
        if let Some(tl) = self.timeline.as_mut() {
            tl.force(point);
        }
    }

    /// The algorithm driving this world.
    pub fn algorithm(&self) -> Algorithm {
        self.scheduler.algorithm()
    }

    /// Assignment of VM `idx`, if admitted and still resident.
    pub fn assignment(&self, idx: u32) -> Option<&VmAssignment> {
        self.assignments[idx as usize].as_ref()
    }

    fn sample_state(&mut self, t: f64) {
        for kind in ALL_RESOURCES {
            let used = self.cluster.total_capacity(kind) - self.cluster.total_available(kind);
            self.util[kind.index()].set(t, used as f64);
        }
        self.intra_bw.set(t, self.net.intra_used_mbps() as f64);
        self.inter_bw.set(t, self.net.inter_used_mbps() as f64);
        if let Some(tl) = self.timeline.as_mut() {
            let used = |k: ResourceKind| {
                (self.cluster.total_capacity(k) - self.cluster.total_available(k)) as f64
            };
            tl.offer(TimelinePoint {
                t,
                cpu_used: used(ResourceKind::Cpu),
                ram_used: used(ResourceKind::Ram),
                sto_used: used(ResourceKind::Storage),
                intra_mbps: self.net.intra_used_mbps() as f64,
                inter_mbps: self.net.inter_used_mbps() as f64,
                resident_vms: self.resident,
            });
        }
    }

    /// Energy of one flow given whether it crossed racks (Eq. 1 + the
    /// transceiver model), charged at admission for the known lifetime.
    fn flow_energy(&self, inter: bool, mbps: u64, lifetime_s: f64) -> f64 {
        let n = &self.cfg.network;
        let path = if inter {
            SwitchPath::inter_rack(
                n.box_switch_ports,
                n.rack_switch_ports,
                n.inter_rack_switch_ports,
            )
        } else {
            SwitchPath::intra_rack(n.box_switch_ports, n.rack_switch_ports)
        };
        self.energy.flow_total_energy_j(&path, mbps, lifetime_s)
    }

    fn on_arrival(&mut self, idx: u32, now: f64, ctx: &mut EventCtx<'_, SimEvent>) {
        let vm = self.workload.vms()[idx as usize];
        let demand = vm.demand(&self.cfg.topology);

        let t0 = std::time::Instant::now();
        let outcome = self
            .scheduler
            .schedule(&mut self.cluster, &mut self.net, &demand);
        self.sched_wall += t0.elapsed();

        match outcome {
            ScheduleOutcome::Assigned(a) => {
                self.counters.admitted += 1;
                if !a.intra_rack {
                    self.counters.inter_rack += 1;
                }
                if a.used_fallback {
                    self.counters.fallback += 1;
                }
                // CPU-RAM round-trip latency (Figure 10): depends on
                // whether CPU and RAM share a rack.
                let cpu_rack = self
                    .cluster
                    .rack_of(a.placement.grant(ResourceKind::Cpu).box_id);
                let ram_rack = self
                    .cluster
                    .rack_of(a.placement.grant(ResourceKind::Ram).box_id);
                let lat = if cpu_rack == ram_rack {
                    self.cfg.latency.intra_rack_ns
                } else {
                    self.cfg.latency.inter_rack_ns
                };
                self.latency.record(lat);
                // Optical energy (Figure 9), 1 time unit ≡ 1 s.
                let life_s = vm.lifetime;
                self.optical_energy_j +=
                    self.flow_energy(a.network.cpu_ram.inter_rack, a.network.cpu_ram.mbps, life_s);
                self.optical_energy_j +=
                    self.flow_energy(a.network.ram_sto.inter_rack, a.network.ram_sto.mbps, life_s);
                if let Some((auditor, seqs)) = self.auditor.as_mut() {
                    seqs[idx as usize] = Some(auditor.admit(&self.cluster, &a));
                }
                self.assignments[idx as usize] = Some(a);
                self.resident += 1;
                ctx.schedule_in(
                    SimDuration::from_units(vm.lifetime),
                    SimEvent::Departure(idx),
                );
            }
            ScheduleOutcome::Dropped(DropReason::Compute) => {
                self.counters.dropped_compute += 1;
            }
            ScheduleOutcome::Dropped(DropReason::Network) => {
                self.counters.dropped_network += 1;
            }
        }
        self.sample_state(now);
    }

    fn on_departure(&mut self, idx: u32, now: f64) {
        let a = self.assignments[idx as usize]
            .take()
            .expect("departure of a VM that was never admitted");
        Scheduler::release(&mut self.cluster, &mut self.net, &a);
        if let Some((auditor, seqs)) = self.auditor.as_mut() {
            let seq = seqs[idx as usize].take().expect("audited VM has a seq");
            auditor.release(seq);
        }
        self.resident -= 1;
        self.sample_state(now);
    }
}

impl World for DdcWorld {
    type Event = SimEvent;

    fn handle(&mut self, ctx: &mut EventCtx<'_, SimEvent>, event: SimEvent) {
        let now = ctx.now().as_units();
        self.end_time = self.end_time.max(now);
        match event {
            SimEvent::Arrival(idx) => self.on_arrival(idx, now, ctx),
            SimEvent::Departure(idx) => self.on_departure(idx, now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use risa_des::{SimTime, Simulation};
    use risa_workload::SyntheticConfig;

    fn run_world(algo: Algorithm, n: u32, seed: u64) -> DdcWorld {
        let workload = Workload::synthetic(&SyntheticConfig::small(n, seed));
        let mut sim = Simulation::new(DdcWorld::new(SimConfig::paper(), algo, workload));
        for vm in sim.world().workload.vms().to_vec() {
            sim.schedule(SimTime::from_units(vm.arrival), SimEvent::Arrival(vm.id.0));
        }
        sim.run_to_completion();
        sim.into_world()
    }

    #[test]
    fn small_run_admits_everything_and_releases() {
        let w = run_world(Algorithm::Risa, 50, 3);
        assert_eq!(w.counters.admitted, 50);
        assert_eq!(w.counters.dropped_compute + w.counters.dropped_network, 0);
        // Everything departed: cluster and network back to pristine.
        assert_eq!(w.cluster.total_available(ResourceKind::Cpu), 4608);
        assert_eq!(w.net.intra_used_mbps(), 0);
        assert_eq!(w.net.inter_used_mbps(), 0);
        assert!(w.assignments.iter().all(Option::is_none));
        w.cluster.check_invariants().unwrap();
    }

    #[test]
    fn latency_recorded_per_admitted_vm() {
        let w = run_world(Algorithm::RisaBf, 40, 5);
        assert_eq!(w.latency.count(), 40);
        // RISA-BF on an underloaded cluster: all intra-rack, all 110 ns.
        assert_eq!(w.latency.mean(), 110.0);
        assert_eq!(w.counters.inter_rack, 0);
    }

    #[test]
    fn energy_accumulates_only_for_admitted() {
        let w = run_world(Algorithm::Nulb, 30, 7);
        assert!(w.optical_energy_j > 0.0);
        // 30 VMs × 2 flows × (37 cells × 0.9 × 22.67 mW × ~6300 s) ≈ 280 kJ.
        assert!(w.optical_energy_j > 1e4);
        assert!(w.optical_energy_j < 1e7);
    }

    #[test]
    fn utilization_signal_rises_then_falls() {
        let w = run_world(Algorithm::Risa, 60, 9);
        let cpu = &w.util[ResourceKind::Cpu.index()];
        assert!(cpu.peak() > 0.0);
        assert_eq!(cpu.current(), 0.0, "all VMs departed");
        let mean = cpu.mean_to(w.end_time);
        assert!(mean > 0.0 && mean < cpu.peak());
    }

    #[test]
    fn deterministic_counters_across_reruns() {
        let a = run_world(Algorithm::Nalb, 80, 13);
        let b = run_world(Algorithm::Nalb, 80, 13);
        assert_eq!(a.counters.admitted, b.counters.admitted);
        assert_eq!(a.counters.inter_rack, b.counters.inter_rack);
        assert_eq!(a.optical_energy_j, b.optical_energy_j);
        assert_eq!(a.latency.mean(), b.latency.mean());
    }

    #[test]
    fn scheduler_wall_clock_is_measured() {
        let w = run_world(Algorithm::Nalb, 50, 1);
        assert!(w.sched_wall > Duration::ZERO);
    }
}
