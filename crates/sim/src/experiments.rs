//! One entry point per figure/table of the paper's evaluation (§5).
//!
//! Each function runs the required simulations and renders a paper-style
//! table. The (algorithm × workload) matrices run concurrently on the
//! **resident** `rayon` pool (work-stealing per-worker deques; workers
//! spawn once on first use and park between drives; sized by
//! `RISA_THREADS` / `risa-cli --jobs`), **except** the execution-time
//! experiments (Figures 11/12), which run sequentially so the wall-clock
//! measurement is uncontended. Within each trial, workload generation is
//! itself sharded over the pool (`risa_workload::shard`), which makes a
//! matrix a *nested* drive: the per-cell generation work subdivides onto
//! the same workers the matrix occupies instead of serializing behind
//! them — safe even for the sequentially-run Figures 11/12, because
//! generation happens in `SimulationBuilder::build` while the reported
//! scheduler wall-clock accrues only during `run`. Parallelism never
//! changes results: the pool preserves input order at every nesting
//! level, every run is independently seeded, and `tests/determinism.rs`
//! asserts byte-identical reports across thread counts, including nested
//! and oversubscribed drives. A panicking run (e.g. an oversized VM
//! rejected by the builder) propagates its panic out of the matrix, as
//! the sequential loop would. The returned [`ExperimentReport`] carries
//! both the rendering and the raw [`RunReport`]s for programmatic
//! assertions.

use crate::config::SimConfig;
use crate::report::{ExperimentReport, RunReport};
use crate::spec::WorkloadSpec;
use crate::SimulationBuilder;
use rayon::prelude::*;
use risa_metrics::{Align, BarChart, BinnedHistogram, OnlineStats, Table};
use risa_sched::Algorithm;
use risa_workload::{AzureSubset, Workload, WorkloadStats};

/// Run every (algorithm × workload) combination.
///
/// `parallel = true` fans the jobs out over the `rayon` pool; results come
/// back in job order regardless of thread count, and a panic in any job
/// propagates to the caller. `parallel = false` runs sequentially on the
/// calling thread, required when the experiment reports scheduler
/// wall-clock times (Figures 11/12) — sequential mode therefore also
/// switches the scheduler timer to exact per-call measurement
/// (`sched_timing_batch(1)`) instead of the default amortized sampling,
/// so the figures report undiluted per-call wall-clock.
pub fn run_matrix(
    cfg: &SimConfig,
    specs: &[WorkloadSpec],
    algos: &[Algorithm],
    parallel: bool,
) -> Vec<RunReport> {
    let jobs: Vec<(Algorithm, WorkloadSpec)> = specs
        .iter()
        .flat_map(|w| algos.iter().map(move |&a| (a, w.clone())))
        .collect();
    let run_one = |(a, w): &(Algorithm, WorkloadSpec)| {
        // Paper figures reproduce fault-free runs; pin churn off so the
        // `RISA_FAULTS` toggle can never skew a reproduction.
        let builder = SimulationBuilder::new()
            .config(*cfg)
            .algorithm(*a)
            .workload(w.clone())
            .faults_off();
        let builder = if parallel {
            builder
        } else {
            builder.sched_timing_batch(1)
        };
        builder.build().run()
    };
    if parallel {
        jobs.par_iter().map(run_one).collect()
    } else {
        jobs.iter().map(run_one).collect()
    }
}

fn azure_specs(seed: u64) -> Vec<WorkloadSpec> {
    AzureSubset::ALL
        .iter()
        .map(|&s| WorkloadSpec::azure(s, seed))
        .collect()
}

/// Figure 5: number of inter-rack VM assignments on the synthetic random
/// workload (paper: NULB 255, NALB 255, RISA 7, RISA-BF 2), plus the §5.1
/// average utilizations (paper: CPU 64.66 %, RAM 65.11 %, storage 31.72 %).
pub fn fig5(seed: u64) -> ExperimentReport {
    fig5_with(seed, &WorkloadSpec::synthetic_paper(seed))
}

/// Figure 5 on an arbitrary synthetic spec (scaled-down test hook).
pub fn fig5_with(_seed: u64, spec: &WorkloadSpec) -> ExperimentReport {
    let cfg = SimConfig::paper();
    let runs = run_matrix(&cfg, std::slice::from_ref(spec), &Algorithm::ALL, true);
    let mut t = Table::new(
        "Figure 5: inter-rack VM assignments (synthetic workload)",
        &[
            "algorithm",
            "inter-rack assignments",
            "dropped",
            "cpu%",
            "ram%",
            "sto%",
        ],
    )
    .align(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for r in &runs {
        t.row(&[
            r.algorithm.to_string(),
            r.inter_rack_assignments.to_string(),
            r.dropped.to_string(),
            format!("{:.2}", r.cpu_utilization * 100.0),
            format!("{:.2}", r.ram_utilization * 100.0),
            format!("{:.2}", r.storage_utilization * 100.0),
        ]);
    }
    let mut chart = BarChart::new("(bars mirror the paper's Figure 5)", "VMs");
    for r in &runs {
        chart.bar(r.algorithm.label(), r.inter_rack_assignments as f64);
    }
    ExperimentReport {
        id: "fig5".into(),
        title: "Inter-rack VM assignments, synthetic workload".into(),
        rendered: format!("{}\n{}", t.render(), chart.render()),
        runs,
    }
}

/// Figure 6: CPU and RAM histograms of the Azure-like workloads
/// (10 matplotlib-style bins; the counts must match the paper exactly).
pub fn fig6(seed: u64) -> ExperimentReport {
    let mut out = String::new();
    for subset in AzureSubset::ALL {
        let w = Workload::azure(subset, seed);
        let stats = WorkloadStats::of(&w);
        let cpu: Vec<f64> = w.vms().iter().map(|v| v.cpu_cores as f64).collect();
        let ram: Vec<f64> = w.vms().iter().map(|v| v.ram_gb as f64).collect();
        let hc = BinnedHistogram::of_data(&cpu, 10);
        let hr = BinnedHistogram::of_data(&ram, 10);
        out.push_str(&format!(
            "--- {} ({} VMs, {:.1}% small) ---\nCPU cores:\n{}RAM GB:\n{}\n",
            subset.label(),
            w.len(),
            stats.small_vm_fraction * 100.0,
            hc.render(),
            hr.render(),
        ));
    }
    ExperimentReport {
        id: "fig6".into(),
        title: "Azure workload characterization (CPU/RAM histograms)".into(),
        rendered: out,
        runs: vec![],
    }
}

fn azure_table<F>(title: &str, runs: &[RunReport], cell: F) -> String
where
    F: Fn(&RunReport) -> String,
{
    let mut t = Table::new(title, &["workload", "NULB", "NALB", "RISA", "RISA-BF"]).align(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for subset in AzureSubset::ALL {
        let mut row = vec![subset.label().to_string()];
        for algo in Algorithm::ALL {
            let r = runs
                .iter()
                .find(|r| r.algorithm == algo && r.workload == subset.label())
                .expect("matrix is complete");
            row.push(cell(r));
        }
        t.row(&row);
    }
    t.render()
}

fn azure_experiment<F>(
    id: &str,
    title: &str,
    seed: u64,
    parallel: bool,
    cell: F,
) -> ExperimentReport
where
    F: Fn(&RunReport) -> String,
{
    let cfg = SimConfig::paper();
    let runs = run_matrix(&cfg, &azure_specs(seed), &Algorithm::ALL, parallel);
    let rendered = azure_table(title, &runs, cell);
    ExperimentReport {
        id: id.into(),
        title: title.into(),
        rendered,
        runs,
    }
}

/// Figure 7: percentage of inter-rack VM assignments on the Azure-like
/// workloads (paper: up to 52 % NULB / 48 % NALB; 0 % for RISA, RISA-BF).
pub fn fig7(seed: u64) -> ExperimentReport {
    azure_experiment(
        "fig7",
        "Figure 7: % inter-rack VM assignments (Azure workloads)",
        seed,
        true,
        |r| format!("{:.1}", r.inter_rack_percent()),
    )
}

/// Figure 8: intra- and inter-rack network utilization (paper: intra equal
/// across algorithms — 30.4 / 35.4 / 42.6 % — and inter 0 for RISA/RISA-BF).
pub fn fig8(seed: u64) -> ExperimentReport {
    let cfg = SimConfig::paper();
    let runs = run_matrix(&cfg, &azure_specs(seed), &Algorithm::ALL, true);
    let intra = azure_table(
        "Figure 8a: intra-rack network utilization (%)",
        &runs,
        |r| format!("{:.1}", r.intra_net_utilization * 100.0),
    );
    let inter = azure_table(
        "Figure 8b: inter-rack network utilization (%)",
        &runs,
        |r| format!("{:.2}", r.inter_net_utilization * 100.0),
    );
    ExperimentReport {
        id: "fig8".into(),
        title: "Network utilization, Azure workloads".into(),
        rendered: format!("{intra}\n{inter}"),
        runs,
    }
}

/// Figure 9: average power consumption of the optical components, kW
/// (paper: 3.36 kW RISA vs 5.22 kW NULB on Azure-3000 — a 33 % reduction).
pub fn fig9(seed: u64) -> ExperimentReport {
    azure_experiment(
        "fig9",
        "Figure 9: optical component power (kW)",
        seed,
        true,
        |r| format!("{:.2}", r.optical_power_w / 1000.0),
    )
}

/// Figure 10: average CPU-RAM round-trip latency, ns (paper: 110 ns for
/// RISA/RISA-BF, 226/216 ns for NULB/NALB on Azure-3000).
pub fn fig10(seed: u64) -> ExperimentReport {
    azure_experiment(
        "fig10",
        "Figure 10: average CPU-RAM round-trip latency (ns)",
        seed,
        true,
        |r| format!("{:.0}", r.mean_cpu_ram_latency_ns),
    )
}

/// Figure 11: scheduler execution time on the synthetic workload (paper
/// ordering: NALB ≫ NULB > RISA-BF ≥ RISA). Sequential for clean timing.
pub fn fig11(seed: u64) -> ExperimentReport {
    let cfg = SimConfig::paper();
    let spec = WorkloadSpec::synthetic_paper(seed);
    let runs = run_matrix(&cfg, &[spec], &Algorithm::ALL, false);
    let mut t = Table::new(
        "Figure 11: scheduler execution time, synthetic workload",
        &[
            "algorithm",
            "sched time (ms)",
            "vs RISA",
            "ops/VM",
            "ops vs RISA",
        ],
    )
    .align(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    let risa = runs
        .iter()
        .find(|r| r.algorithm == Algorithm::Risa)
        .expect("matrix is complete");
    let (risa_s, risa_ops) = (risa.sched_seconds, risa.work.ops_per_call().max(1e-9));
    for r in &runs {
        t.row(&[
            r.algorithm.to_string(),
            format!("{:.2}", r.sched_seconds * 1e3),
            format!("{:.2}x", r.sched_seconds / risa_s),
            format!("{:.0}", r.work.ops_per_call()),
            format!("{:.2}x", r.work.ops_per_call() / risa_ops),
        ]);
    }
    ExperimentReport {
        id: "fig11".into(),
        title: "Execution time, synthetic workload".into(),
        rendered: t.render(),
        runs,
    }
}

/// Figure 12: scheduler execution time on the Azure workloads (paper:
/// RISA 2.81× faster than NULB, 4.33× than NALB on Azure-7500). Reported
/// both as wall-clock and as deterministic operation counts.
pub fn fig12(seed: u64) -> ExperimentReport {
    let cfg = SimConfig::paper();
    let runs = run_matrix(&cfg, &azure_specs(seed), &Algorithm::ALL, false);
    let times = azure_table(
        "Figure 12a: scheduler execution time (ms, wall clock)",
        &runs,
        |r| format!("{:.2}", r.sched_seconds * 1e3),
    );
    let ops = azure_table(
        "Figure 12b: scheduler work (deterministic ops per VM)",
        &runs,
        |r| format!("{:.0}", r.work.ops_per_call()),
    );
    ExperimentReport {
        id: "fig12".into(),
        title: "Execution time, Azure workloads".into(),
        rendered: format!("{times}\n{ops}"),
        runs,
    }
}

/// Ablation: sweep the box-uplink trunk width and report drop counts and
/// inter-rack assignments (our DESIGN.md "trunk width" calibration study).
pub fn ablation_trunk_width(seed: u64, widths: &[u16]) -> ExperimentReport {
    let mut t = Table::new(
        "Ablation: box-uplink trunk width (synthetic, 1000 VMs)",
        &["width", "algorithm", "admitted", "dropped", "inter-rack"],
    )
    .align(&[
        Align::Right,
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    let mut runs = vec![];
    for &width in widths {
        let mut cfg = SimConfig::paper();
        cfg.network.box_uplink_width = width;
        let spec = WorkloadSpec::Synthetic(risa_workload::SyntheticConfig::small(1000, seed));
        for r in run_matrix(&cfg, &[spec], &Algorithm::ALL, true) {
            t.row(&[
                width.to_string(),
                r.algorithm.to_string(),
                r.admitted.to_string(),
                r.dropped.to_string(),
                r.inter_rack_assignments.to_string(),
            ]);
            runs.push(r);
        }
    }
    ExperimentReport {
        id: "ablation-trunk".into(),
        title: "Trunk width ablation".into(),
        rendered: t.render(),
        runs,
    }
}

/// Ablation: the cell-sharing factor α of Eq. (1) scales switch trim power
/// linearly; sweep the paper's admissible range [0.5, 1.0].
pub fn ablation_alpha(seed: u64, alphas: &[f64]) -> ExperimentReport {
    let mut t = Table::new(
        "Ablation: Eq. (1) cell-sharing factor α (Azure-3000)",
        &["alpha", "algorithm", "power (kW)"],
    )
    .align(&[Align::Right, Align::Left, Align::Right]);
    let mut runs = vec![];
    for &alpha in alphas {
        let mut cfg = SimConfig::paper();
        cfg.photonics.alpha = alpha;
        let spec = WorkloadSpec::azure(AzureSubset::N3000, seed);
        for r in run_matrix(&cfg, &[spec], &[Algorithm::Nulb, Algorithm::Risa], true) {
            t.row(&[
                format!("{alpha:.2}"),
                r.algorithm.to_string(),
                format!("{:.2}", r.optical_power_w / 1000.0),
            ]);
            runs.push(r);
        }
    }
    ExperimentReport {
        id: "ablation-alpha".into(),
        title: "α sweep".into(),
        rendered: t.render(),
        runs,
    }
}

/// Figure 5 with statistical confidence: run the synthetic workload over
/// many seeds and report mean ± std of the inter-rack counts per
/// algorithm (the paper reports a single run; this shows the gap is not a
/// seed artifact).
pub fn fig5_seed_sweep(seeds: &[u64], n: u32) -> ExperimentReport {
    let cfg = SimConfig::paper();
    let runs: Vec<RunReport> = seeds
        .par_iter()
        .flat_map(|&seed| {
            let spec = WorkloadSpec::Synthetic(risa_workload::SyntheticConfig::small(n, seed));
            run_matrix(&cfg, &[spec], &Algorithm::ALL, false)
        })
        .collect();
    let mut t = Table::new(
        format!(
            "Figure 5 over {} seeds ({} VMs): inter-rack assignments",
            seeds.len(),
            n
        ),
        &["algorithm", "mean", "std", "min", "max"],
    )
    .align(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for algo in Algorithm::ALL {
        let mut s = OnlineStats::new();
        for r in runs.iter().filter(|r| r.algorithm == algo) {
            s.record(r.inter_rack_assignments as f64);
        }
        t.row(&[
            algo.to_string(),
            format!("{:.1}", s.mean()),
            format!("{:.1}", s.std_dev()),
            format!("{:.0}", s.min().unwrap_or(0.0)),
            format!("{:.0}", s.max().unwrap_or(0.0)),
        ]);
    }
    ExperimentReport {
        id: "fig5-seeds".into(),
        title: "Figure 5 seed sweep".into(),
        rendered: t.render(),
        runs,
    }
}

/// Ablation: swap the paper's staircase lifetimes for exponential/fixed
/// models — RISA's inter-rack advantage must survive the change (it is a
/// property of the placement policy, not of the lifetime process).
pub fn ablation_lifetimes(seed: u64, n: u32) -> ExperimentReport {
    use risa_workload::{LifetimeModel, SyntheticConfig};
    let models: [(&str, LifetimeModel); 3] = [
        ("staircase (paper)", LifetimeModel::Staircase),
        (
            "exponential(6300)",
            LifetimeModel::Exponential { mean: 6300.0 },
        ),
        ("fixed(6300)", LifetimeModel::Fixed { value: 6300.0 }),
    ];
    let mut t = Table::new(
        "Ablation: lifetime model vs inter-rack assignments (synthetic)",
        &["lifetime model", "NULB", "NALB", "RISA", "RISA-BF"],
    )
    .align(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    let cfg = SimConfig::paper();
    let mut runs = vec![];
    for (label, model) in models {
        let spec = WorkloadSpec::Synthetic(SyntheticConfig {
            lifetime_model: model,
            ..SyntheticConfig::small(n, seed)
        });
        let rs = run_matrix(&cfg, &[spec], &Algorithm::ALL, true);
        let mut row = vec![label.to_string()];
        for algo in Algorithm::ALL {
            let r = rs.iter().find(|r| r.algorithm == algo).unwrap();
            row.push(r.inter_rack_assignments.to_string());
        }
        t.row(&row);
        runs.extend(rs);
    }
    ExperimentReport {
        id: "ablation-lifetimes".into(),
        title: "Lifetime model ablation".into(),
        rendered: t.render(),
        runs,
    }
}

/// Ablation: disable RISA's round-robin by comparing RISA against RISA-BF
/// across seeds, reporting rack-utilization spread (load-balance quality).
pub fn ablation_seeds(seeds: &[u64], n: u32) -> ExperimentReport {
    let mut t = Table::new(
        "Seed sensitivity: inter-rack assignments (synthetic)",
        &["seed", "NULB", "NALB", "RISA", "RISA-BF"],
    )
    .align(&[
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    let cfg = SimConfig::paper();
    let mut runs = vec![];
    for &seed in seeds {
        let spec = WorkloadSpec::Synthetic(risa_workload::SyntheticConfig::small(n, seed));
        let rs = run_matrix(&cfg, &[spec], &Algorithm::ALL, true);
        let mut row = vec![seed.to_string()];
        for algo in Algorithm::ALL {
            let r = rs.iter().find(|r| r.algorithm == algo).unwrap();
            row.push(r.inter_rack_assignments.to_string());
        }
        t.row(&row);
        runs.extend(rs);
    }
    ExperimentReport {
        id: "ablation-seeds".into(),
        title: "Seed sensitivity".into(),
        rendered: t.render(),
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down Figure 5 (1200 VMs so departures create the churn
    /// that fragments NULB): the shape must hold — RISA and RISA-BF make
    /// far fewer inter-rack assignments than NULB/NALB.
    #[test]
    fn fig5_shape_small() {
        let spec = WorkloadSpec::Synthetic(risa_workload::SyntheticConfig::small(1200, 42));
        let rep = fig5_with(42, &spec);
        let by = |a: Algorithm| rep.run(a, "synthetic").unwrap();
        let (nulb, nalb, risa, bf) = (
            by(Algorithm::Nulb).inter_rack_assignments,
            by(Algorithm::Nalb).inter_rack_assignments,
            by(Algorithm::Risa).inter_rack_assignments,
            by(Algorithm::RisaBf).inter_rack_assignments,
        );
        assert!(
            risa < nulb && bf < nulb && risa < nalb && bf < nalb,
            "RISA({risa})/RISA-BF({bf}) must beat NULB({nulb})/NALB({nalb})"
        );
        assert!(
            nulb >= 50,
            "NULB should fragment substantially at this load, got {nulb}"
        );
        assert!(rep.rendered.contains("Figure 5"));
        // No drops at this load (the paper reports none either).
        assert!(rep.runs.iter().all(|r| r.dropped == 0));
        // §5.1: the utilizations agree across algorithms when nothing drops.
        let u0 = by(Algorithm::Nulb).cpu_utilization;
        for a in Algorithm::ALL {
            assert!((by(a).cpu_utilization - u0).abs() < 1e-9);
        }
    }

    #[test]
    fn fig6_counts_match_paper_bins() {
        let rep = fig6(3);
        // Azure-3000 CPU histogram: the four paper counts appear verbatim.
        for count in ["1326", "1269", "316", "89"] {
            assert!(rep.rendered.contains(count), "missing bin count {count}");
        }
        assert!(rep.rendered.contains("Azure-7500"));
    }

    #[test]
    fn run_matrix_is_complete_and_labelled() {
        let cfg = SimConfig::paper();
        let specs = [WorkloadSpec::synthetic(50, 1)];
        let runs = run_matrix(&cfg, &specs, &Algorithm::ALL, true);
        assert_eq!(runs.len(), 4);
        let mut algos: Vec<Algorithm> = runs.iter().map(|r| r.algorithm).collect();
        algos.sort_by_key(|a| a.label());
        algos.dedup();
        assert_eq!(algos.len(), 4);
    }

    #[test]
    fn seed_sweep_preserves_ordering() {
        let rep = fig5_seed_sweep(&[1, 2, 3], 800);
        assert_eq!(rep.runs.len(), 12);
        let mean = |a: Algorithm| {
            let rs: Vec<f64> = rep
                .runs
                .iter()
                .filter(|r| r.algorithm == a)
                .map(|r| r.inter_rack_assignments as f64)
                .collect();
            rs.iter().sum::<f64>() / rs.len() as f64
        };
        assert!(mean(Algorithm::Risa) < mean(Algorithm::Nulb));
        assert!(mean(Algorithm::RisaBf) < mean(Algorithm::Nalb));
        assert!(rep.rendered.contains("mean"));
    }

    #[test]
    fn ablation_alpha_scales_power() {
        let rep = ablation_alpha(5, &[0.5, 1.0]);
        let p = |alpha: f64| {
            rep.runs
                .iter()
                .find(|r| {
                    r.algorithm == Algorithm::Risa
                        && (r.optical_power_w > 0.0)
                        && ((alpha - 0.5).abs() < 1e-9)
                })
                .map(|r| r.optical_power_w)
        };
        // Power under α=1.0 strictly exceeds α=0.5 for the same runs.
        let risa: Vec<f64> = rep
            .runs
            .iter()
            .filter(|r| r.algorithm == Algorithm::Risa)
            .map(|r| r.optical_power_w)
            .collect();
        assert_eq!(risa.len(), 2);
        assert!(risa[1] > risa[0], "α=1.0 power must exceed α=0.5");
        let _ = p(0.5);
    }
}
