//! Time-series recording: utilization and occupancy sampled on a fixed
//! grid over the run — the raw series behind the paper's time-averaged
//! figures, exportable as CSV for plotting.

use serde::{Deserialize, Serialize};

/// One sample of the simulated system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelinePoint {
    /// Sample time, paper time units.
    pub t: f64,
    /// CPU units in use.
    pub cpu_used: f64,
    /// RAM units in use.
    pub ram_used: f64,
    /// Storage units in use.
    pub sto_used: f64,
    /// Intra-rack bandwidth in use, Mb/s.
    pub intra_mbps: f64,
    /// Inter-rack bandwidth in use, Mb/s.
    pub inter_mbps: f64,
    /// Resident (admitted, not yet departed) VMs.
    pub resident_vms: u32,
}

/// A fixed-interval sampler. The simulation driver offers it every event;
/// it keeps at most one sample per grid point (the state as of the first
/// event at-or-after the grid time).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Timeline {
    interval: f64,
    next_sample: f64,
    points: Vec<TimelinePoint>,
}

impl Timeline {
    /// Sample every `interval` time units (must be positive).
    pub fn new(interval: f64) -> Self {
        assert!(interval > 0.0, "sampling interval must be positive");
        Timeline {
            interval,
            next_sample: 0.0,
            points: Vec::new(),
        }
    }

    /// Offer the state at time `t`; records if a grid point has passed.
    pub fn offer(&mut self, point: TimelinePoint) {
        if point.t + 1e-12 >= self.next_sample {
            self.points.push(point);
            // Skip grid points the simulation jumped over (the tolerance
            // must match the acceptance test above, or a point recorded
            // just before its grid time would leave the grid unadvanced).
            while self.next_sample <= point.t + 1e-12 {
                self.next_sample += self.interval;
            }
        }
    }

    /// Record `point` unconditionally (used to flush the final state at
    /// the end of a run, which may fall between grid points).
    pub fn force(&mut self, point: TimelinePoint) {
        if self.points.last().map(|p| p.t) != Some(point.t) {
            self.points.push(point);
        }
        while self.next_sample <= point.t {
            self.next_sample += self.interval;
        }
    }

    /// The recorded samples.
    pub fn points(&self) -> &[TimelinePoint] {
        &self.points
    }

    /// Sampling interval.
    pub fn interval(&self) -> f64 {
        self.interval
    }

    /// Render as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("t,cpu_used,ram_used,sto_used,intra_mbps,inter_mbps,resident_vms\n");
        for p in &self.points {
            out.push_str(&format!(
                "{:.3},{:.0},{:.0},{:.0},{:.0},{:.0},{}\n",
                p.t, p.cpu_used, p.ram_used, p.sto_used, p.intra_mbps, p.inter_mbps, p.resident_vms
            ));
        }
        out
    }

    /// Peak resident VM count over the run.
    pub fn peak_resident(&self) -> u32 {
        self.points
            .iter()
            .map(|p| p.resident_vms)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(t: f64, vms: u32) -> TimelinePoint {
        TimelinePoint {
            t,
            cpu_used: vms as f64 * 2.0,
            ram_used: vms as f64 * 4.0,
            sto_used: vms as f64 * 2.0,
            intra_mbps: vms as f64 * 24_000.0,
            inter_mbps: 0.0,
            resident_vms: vms,
        }
    }

    #[test]
    fn samples_on_grid_only() {
        let mut tl = Timeline::new(10.0);
        tl.offer(pt(0.0, 1)); // grid 0
        tl.offer(pt(3.0, 2)); // skipped (next grid 10)
        tl.offer(pt(9.9, 3)); // skipped
        tl.offer(pt(10.0, 4)); // grid 10
        tl.offer(pt(35.0, 5)); // grid 20 and 30 jumped; records once
        tl.offer(pt(39.0, 6)); // next grid is 40 → skipped
        tl.offer(pt(40.0, 7)); // grid 40
        let vms: Vec<u32> = tl.points().iter().map(|p| p.resident_vms).collect();
        assert_eq!(vms, vec![1, 4, 5, 7]);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut tl = Timeline::new(1.0);
        tl.offer(pt(0.0, 2));
        tl.offer(pt(1.0, 3));
        let csv = tl.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("t,cpu_used"));
        assert!(lines[1].starts_with("0.000,4,8,4,48000,0,2"));
    }

    #[test]
    fn peak_resident() {
        let mut tl = Timeline::new(1.0);
        assert_eq!(tl.peak_resident(), 0);
        tl.offer(pt(0.0, 2));
        tl.offer(pt(1.0, 9));
        tl.offer(pt(2.0, 4));
        assert_eq!(tl.peak_resident(), 9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        Timeline::new(0.0);
    }
}
