//! Fault injection: failure/repair processes as first-class events.
//!
//! A fault scenario runs three families of independent alternating-renewal
//! chains through the engine's future-event list, alongside the ordinary
//! arrival/departure traffic:
//!
//! * **Rack failure / repair** — every box of the rack is retracted from
//!   the schedulers ([`risa_topology::Cluster::remove_box`]); resident VMs
//!   are evacuated and re-placed through the active scheduler after a
//!   per-VM migration delay (dropped if nothing fits).
//! * **Trunk degradation / restore** — one link of a rack uplink trunk
//!   goes dark ([`risa_network::NetworkState::fail_link`]); its free
//!   bandwidth is *stranded* until restore, and in-flight grants stay
//!   charged so releases remain coherent.
//! * **Transceiver loss / replace** — the same, on a box uplink link.
//!
//! # Determinism
//!
//! Each chain owns an RNG seeded from `(spec.seed, component, family)`
//! with the same SplitMix64 derivation the workload shards use
//! ([`risa_workload::shard::stream_seed`]): the component index is spread
//! by an odd per-family constant, avalanched, folded into the scenario
//! seed, and avalanched again. Chains therefore never share state, draw
//! nothing from global RNGs, and advance only inside event handlers — a
//! fault scenario is a pure function of `(spec, workload span)`, so runs
//! are byte-identical at any thread count, under either FEL backend, and
//! on both arrival pipelines (pinned by `tests/hot_path_differential.rs`).
//!
//! Failure onsets are gated on the workload *span* (the last arrival
//! time): a chain whose next onset lands past the span goes quiet. Repairs
//! are never gated — every failure is eventually repaired, so a drained
//! run always ends with the pristine topology (which keeps the faults-off
//! and faults-on report denominators comparable).

use rand::{SeedableRng, StdRng};
use risa_metrics::{OnlineStats, TimeWeighted};
use serde::{Deserialize, Serialize};

/// One fault scenario: per-component failure rates, repair times and the
/// evacuation cost model. Rates are **scale-free** — expressed per
/// workload span — so the same spec produces comparable churn on a
/// 100-VM smoke test and a 10M-VM bench run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Scenario seed: all chain RNGs derive from it.
    pub seed: u64,
    /// Expected failures of each rack per workload span.
    pub rack_failures_per_span: f64,
    /// Mean rack repair time as a fraction of the span.
    pub rack_downtime_frac: f64,
    /// Expected outages of each rack-uplink link per span.
    pub trunk_downs_per_span: f64,
    /// Mean trunk-link repair time as a fraction of the span.
    pub trunk_downtime_frac: f64,
    /// Expected losses of each box-uplink transceiver per span.
    pub xcvr_downs_per_span: f64,
    /// Mean transceiver replacement time as a fraction of the span.
    pub xcvr_downtime_frac: f64,
    /// Migration delay charged per unit of an evacuated VM's demand
    /// (paper time units): a 24-unit VM displaced by a rack failure is
    /// re-placed `24 × this` after the failure.
    pub migration_delay_per_unit: f64,
}

impl FaultSpec {
    /// The canonical churn scenario used by the differential tests, the
    /// `--faults` CLI flag and the `RISA_FAULTS=1` environment default.
    pub fn canonical() -> Self {
        FaultSpec::canonical_seeded(0x5EED_FA17)
    }

    /// [`FaultSpec::canonical`] with an explicit scenario seed.
    pub fn canonical_seeded(seed: u64) -> Self {
        FaultSpec {
            seed,
            rack_failures_per_span: 0.35,
            rack_downtime_frac: 0.02,
            trunk_downs_per_span: 0.08,
            trunk_downtime_frac: 0.03,
            xcvr_downs_per_span: 0.02,
            xcvr_downtime_frac: 0.04,
            migration_delay_per_unit: 0.05,
        }
    }

    /// The scenario selected by the `RISA_FAULTS` environment variable:
    /// unset/`0`/`off` → `None`; `1`/`on`/`canonical` → the canonical
    /// scenario; any other integer → canonical with that seed.
    pub fn from_env() -> Option<Self> {
        // risa-lint: allow(env_read) — selects the fault scenario under test; the spec itself is fully seed-derived
        match std::env::var("RISA_FAULTS") {
            Err(_) => None,
            Ok(v) => match v.trim() {
                "" | "0" | "off" | "false" => None,
                "1" | "on" | "true" | "canonical" => Some(FaultSpec::canonical()),
                other => other.parse::<u64>().ok().map(FaultSpec::canonical_seeded),
            },
        }
    }
}

/// Resilience metrics of one run under fault injection; `None` in
/// [`crate::RunReport::faults`] when the run had no fault scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Rack failures injected.
    pub rack_failures: u32,
    /// Rack repairs completed (== failures on a drained run).
    pub rack_repairs: u32,
    /// Rack-uplink link outages injected.
    pub trunk_link_downs: u32,
    /// Rack-uplink link restores completed.
    pub trunk_link_ups: u32,
    /// Box-uplink transceiver losses injected.
    pub xcvr_downs: u32,
    /// Box-uplink transceiver replacements completed.
    pub xcvr_ups: u32,
    /// VMs displaced by rack failures (a VM evacuated twice counts twice).
    pub evacuated: u32,
    /// Evacuated VMs successfully re-placed by the scheduler.
    pub evac_replaced: u32,
    /// Evacuated VMs dropped because nothing fit — the headline
    /// drops-under-churn number.
    pub dropped_churn: u32,
    /// Evacuated VMs whose lifetime ended while still in transit.
    pub evac_departed: u32,
    /// Mean failure→re-placement latency over re-placed VMs (time units).
    pub mean_evac_latency: f64,
    /// Mean rack failure→repair duration (time units).
    pub mean_recovery_time: f64,
    /// Time-weighted mean compute capacity (units, all kinds) stranded
    /// inside failed racks.
    pub mean_stranded_units: f64,
    /// Time-weighted mean bandwidth (Mb/s) stranded behind dark links:
    /// free capacity the schedulers cannot reach.
    pub mean_stranded_mbps: f64,
}

/// Which alternating-renewal family a chain belongs to; the per-family
/// odd constants domain-separate the RNG streams exactly like
/// [`risa_workload::shard::Stream`] separates arrival and resource draws.
#[derive(Debug, Clone, Copy)]
enum Family {
    Rack,
    TrunkLink,
    XcvrLink,
}

impl Family {
    const fn salt(self) -> u64 {
        match self {
            Family::Rack => 0xB5C0_FBCF_EC24_7A2F,
            Family::TrunkLink => 0x9E6C_63D0_876A_339B,
            Family::XcvrLink => 0xD6E8_FEB8_6659_FD93,
        }
    }
}

/// SplitMix64 finalizer (same avalanche as `risa_workload::shard`).
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn chain_seed(seed: u64, component: u64, family: Family) -> u64 {
    mix(seed ^ mix((component + 1).wrapping_mul(family.salt())))
}

/// Exponential draw with the given mean (inverse CDF on `1 − [0,1)`, so
/// the argument of `ln` is strictly positive).
fn exp_draw(rng: &mut StdRng, mean: f64) -> f64 {
    let u = 1.0 - rand::next_f64(rng);
    if mean.is_finite() {
        -mean * u.ln()
    } else {
        // Still consume a draw so a quiet family leaves every other
        // chain's stream untouched.
        f64::INFINITY
    }
}

/// One component's alternating failure/repair process.
#[derive(Debug)]
pub(crate) struct Chain {
    rng: StdRng,
    up_mean: f64,
    down_mean: f64,
    /// Draws consumed so far. Every [`Chain::uptime`]/[`Chain::downtime`]
    /// call costs exactly one RNG output (see [`exp_draw`]), so this count
    /// is the chain's complete position for checkpoint/restore.
    draws: u64,
}

impl Chain {
    fn new(spec_seed: u64, component: u64, family: Family, up_mean: f64, down_mean: f64) -> Self {
        Chain {
            rng: StdRng::seed_from_u64(chain_seed(spec_seed, component, family)),
            up_mean,
            down_mean,
            draws: 0,
        }
    }

    /// Next healthy interval (time to the next failure onset).
    pub(crate) fn uptime(&mut self) -> f64 {
        self.draws += 1;
        exp_draw(&mut self.rng, self.up_mean)
    }

    /// Next repair duration.
    pub(crate) fn downtime(&mut self) -> f64 {
        self.draws += 1;
        exp_draw(&mut self.rng, self.down_mean)
    }

    /// Draws consumed so far (checkpoint capture).
    pub(crate) fn draws(&self) -> u64 {
        self.draws
    }

    /// Advance the chain to `draws` consumed outputs by burning RNG
    /// values, restoring the exact stream position a checkpointed run
    /// recorded. The chain must not already be past that position.
    pub(crate) fn burn_to(&mut self, draws: u64) {
        assert!(
            self.draws <= draws,
            "chain already at draw {} > checkpointed {draws}",
            self.draws
        );
        while self.draws < draws {
            let _ = rand::next_f64(&mut self.rng);
            self.draws += 1;
        }
    }
}

/// Builds the per-family chain vectors for a scenario over a topology of
/// `racks` racks, `boxes` boxes, `trunk_width` links per rack uplink and
/// `xcvr_width` links per box uplink. `span` is the workload span the
/// scale-free rates are resolved against.
#[derive(Debug)]
pub(crate) struct ChainSet {
    pub(crate) racks: Vec<Chain>,
    /// Rack-major: chain of link `l` of rack `r` is at `r * width + l`.
    pub(crate) trunk_links: Vec<Chain>,
    pub(crate) trunk_width: u16,
    /// Box-major: chain of link `l` of box `b` is at `b * width + l`.
    pub(crate) xcvr_links: Vec<Chain>,
    pub(crate) xcvr_width: u16,
}

impl ChainSet {
    pub(crate) fn new(
        spec: &FaultSpec,
        span: f64,
        racks: u16,
        boxes: u32,
        trunk_width: u16,
        xcvr_width: u16,
    ) -> Self {
        // A rate of zero (or a zero span) means "this family never
        // fails": encode it as an infinite mean uptime, which exp_draw
        // maps to an onset past any horizon.
        let up_mean = |per_span: f64| {
            if per_span > 0.0 && span > 0.0 {
                span / per_span
            } else {
                f64::INFINITY
            }
        };
        let chains = |n: u64, family: Family, per_span: f64, down_frac: f64| {
            (0..n)
                .map(|c| Chain::new(spec.seed, c, family, up_mean(per_span), span * down_frac))
                .collect()
        };
        ChainSet {
            racks: chains(
                u64::from(racks),
                Family::Rack,
                spec.rack_failures_per_span,
                spec.rack_downtime_frac,
            ),
            trunk_links: chains(
                u64::from(racks) * u64::from(trunk_width),
                Family::TrunkLink,
                spec.trunk_downs_per_span,
                spec.trunk_downtime_frac,
            ),
            trunk_width,
            xcvr_links: chains(
                u64::from(boxes) * u64::from(xcvr_width),
                Family::XcvrLink,
                spec.xcvr_downs_per_span,
                spec.xcvr_downtime_frac,
            ),
            xcvr_width,
        }
    }

    /// Chain of link `link` of rack `rack`'s uplink trunk.
    pub(crate) fn trunk_chain(&mut self, rack: u16, link: u16) -> &mut Chain {
        &mut self.trunk_links[rack as usize * self.trunk_width as usize + link as usize]
    }

    /// Chain of transceiver `link` of box `box_idx`'s uplink trunk.
    pub(crate) fn xcvr_chain(&mut self, box_idx: u32, link: u16) -> &mut Chain {
        &mut self.xcvr_links[box_idx as usize * self.xcvr_width as usize + link as usize]
    }

    /// Per-family draw counts, in chain order (checkpoint capture).
    pub(crate) fn draw_counts(&self) -> ChainDraws {
        let counts = |chains: &[Chain]| chains.iter().map(Chain::draws).collect();
        ChainDraws {
            racks: counts(&self.racks),
            trunk_links: counts(&self.trunk_links),
            xcvr_links: counts(&self.xcvr_links),
        }
    }

    /// Fast-forward every chain to the checkpointed draw counts (see
    /// [`Chain::burn_to`]).
    ///
    /// # Panics
    /// If the counts do not match this set's chain layout.
    pub(crate) fn burn_to(&mut self, draws: &ChainDraws) {
        let burn = |chains: &mut [Chain], counts: &[u64]| {
            assert_eq!(chains.len(), counts.len(), "chain layout mismatch");
            for (chain, &n) in chains.iter_mut().zip(counts) {
                chain.burn_to(n);
            }
        };
        burn(&mut self.racks, &draws.racks);
        burn(&mut self.trunk_links, &draws.trunk_links);
        burn(&mut self.xcvr_links, &draws.xcvr_links);
    }
}

/// RNG stream positions of every chain in a [`ChainSet`], the complete
/// checkpoint representation of a fault scenario's randomness: restoring
/// rebuilds the chains from `(spec, span)` and burns each stream to its
/// recorded position.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct ChainDraws {
    /// Draws per rack chain.
    pub(crate) racks: Vec<u64>,
    /// Draws per trunk-link chain (rack-major).
    pub(crate) trunk_links: Vec<u64>,
    /// Draws per transceiver chain (box-major).
    pub(crate) xcvr_links: Vec<u64>,
}

/// A VM displaced by a rack failure, travelling to its re-placement.
/// Serialized in checkpoints (in-transit migrations outlive a snapshot).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub(crate) struct Migration {
    /// The demand to re-place (recovered from the released grants).
    pub(crate) demand: risa_topology::UnitDemand,
    /// When the rack failed (for the evacuation-latency metric).
    pub(crate) evacuated_at: f64,
}

/// Per-run fault bookkeeping carried by the world.
#[derive(Debug, Default, Clone, Copy, Serialize, Deserialize)]
pub(crate) struct FaultTallies {
    pub(crate) rack_failures: u32,
    pub(crate) rack_repairs: u32,
    pub(crate) trunk_link_downs: u32,
    pub(crate) trunk_link_ups: u32,
    pub(crate) xcvr_downs: u32,
    pub(crate) xcvr_ups: u32,
    pub(crate) evacuated: u32,
    pub(crate) evac_replaced: u32,
    pub(crate) dropped_churn: u32,
    pub(crate) evac_departed: u32,
}

/// Aggregated resilience accumulators (the [`FaultReport`] inputs that
/// need more than a counter).
#[derive(Debug)]
pub(crate) struct FaultMeters {
    pub(crate) evac_latency: OnlineStats,
    pub(crate) recovery: OnlineStats,
    pub(crate) stranded_units: TimeWeighted,
    pub(crate) stranded_mbps: TimeWeighted,
}

impl FaultMeters {
    pub(crate) fn new() -> Self {
        FaultMeters {
            evac_latency: OnlineStats::new(),
            recovery: OnlineStats::new(),
            stranded_units: TimeWeighted::new(0.0, 0.0),
            stranded_mbps: TimeWeighted::new(0.0, 0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_streams_are_deterministic_and_independent() {
        let mut a = Chain::new(7, 3, Family::Rack, 100.0, 10.0);
        let mut b = Chain::new(7, 3, Family::Rack, 100.0, 10.0);
        let draws_a: Vec<f64> = (0..8).map(|_| a.uptime()).collect();
        let draws_b: Vec<f64> = (0..8).map(|_| b.uptime()).collect();
        assert_eq!(draws_a, draws_b, "same (seed, component, family)");

        let mut other_component = Chain::new(7, 4, Family::Rack, 100.0, 10.0);
        let mut other_family = Chain::new(7, 3, Family::TrunkLink, 100.0, 10.0);
        assert_ne!(draws_a[0], other_component.uptime());
        assert_ne!(draws_a[0], other_family.uptime());
        assert!(draws_a.iter().all(|&d| d.is_finite() && d >= 0.0));
    }

    #[test]
    fn burned_chain_continues_identically() {
        let mut live = Chain::new(7, 3, Family::Rack, 100.0, 10.0);
        for _ in 0..5 {
            live.uptime();
            live.downtime();
        }
        let mut restored = Chain::new(7, 3, Family::Rack, 100.0, 10.0);
        restored.burn_to(live.draws());
        assert_eq!(restored.draws(), live.draws());
        let a: Vec<f64> = (0..4).map(|_| live.uptime()).collect();
        let b: Vec<f64> = (0..4).map(|_| restored.uptime()).collect();
        assert_eq!(a, b, "restored chain diverged after burn");
    }

    #[test]
    fn chain_set_draw_counts_round_trip() {
        let spec = FaultSpec::canonical();
        let mut live = ChainSet::new(&spec, 500.0, 3, 9, 2, 2);
        live.racks[1].uptime();
        live.trunk_chain(2, 1).uptime();
        live.trunk_chain(2, 1).downtime();
        live.xcvr_chain(8, 0).uptime();
        let counts = live.draw_counts();
        let mut restored = ChainSet::new(&spec, 500.0, 3, 9, 2, 2);
        restored.burn_to(&counts);
        assert_eq!(restored.draw_counts(), counts);
        assert_eq!(restored.racks[1].uptime(), live.racks[1].uptime());
        assert_eq!(
            restored.trunk_chain(2, 1).downtime(),
            live.trunk_chain(2, 1).downtime()
        );
    }

    #[test]
    fn zero_rate_or_zero_span_never_fires() {
        let spec = FaultSpec {
            rack_failures_per_span: 0.0,
            ..FaultSpec::canonical()
        };
        let mut set = ChainSet::new(&spec, 1000.0, 2, 4, 2, 2);
        assert_eq!(set.racks[0].uptime(), f64::INFINITY);
        // Zero span: every family quiet.
        let mut set = ChainSet::new(&FaultSpec::canonical(), 0.0, 2, 4, 2, 2);
        assert_eq!(set.racks[0].uptime(), f64::INFINITY);
        assert_eq!(set.trunk_links[0].uptime(), f64::INFINITY);
        assert_eq!(set.xcvr_links[0].uptime(), f64::INFINITY);
    }

    #[test]
    fn chain_set_covers_every_component() {
        let set = ChainSet::new(&FaultSpec::canonical(), 500.0, 18, 108, 16, 8);
        assert_eq!(set.racks.len(), 18);
        assert_eq!(set.trunk_links.len(), 18 * 16);
        assert_eq!(set.xcvr_links.len(), 108 * 8);
    }

    #[test]
    fn env_parsing() {
        // from_env reads the live environment; exercise the match arms
        // through a helper-free round trip instead of mutating env vars
        // (tests run multi-threaded).
        assert_eq!(FaultSpec::canonical().seed, 0x5EED_FA17);
        assert_eq!(FaultSpec::canonical_seeded(9).seed, 9);
        assert_eq!(
            FaultSpec::canonical_seeded(9),
            FaultSpec {
                seed: 9,
                ..FaultSpec::canonical()
            }
        );
    }

    #[test]
    fn spec_serde_roundtrip() {
        let spec = FaultSpec::canonical_seeded(42);
        let back = FaultSpec::from_value(&spec.to_value()).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn report_serde_roundtrip() {
        let r = FaultReport {
            rack_failures: 3,
            rack_repairs: 3,
            trunk_link_downs: 5,
            trunk_link_ups: 5,
            xcvr_downs: 1,
            xcvr_ups: 1,
            evacuated: 12,
            evac_replaced: 10,
            dropped_churn: 1,
            evac_departed: 1,
            mean_evac_latency: 1.25,
            mean_recovery_time: 80.0,
            mean_stranded_units: 12.5,
            mean_stranded_mbps: 1e5,
        };
        let back = FaultReport::from_value(&r.to_value()).unwrap();
        assert_eq!(r, back);
    }
}
