//! Run reports (one simulation) and experiment reports (one paper figure).

use crate::faults::FaultReport;
use risa_sched::{Algorithm, WorkCounters};
use serde::{Deserialize, Serialize};

/// Everything measured over one simulation run — the raw material for each
/// paper figure.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Scheduling algorithm used.
    pub algorithm: Algorithm,
    /// Workload label ("synthetic", "Azure-3000", …).
    pub workload: String,
    /// Requests in the workload.
    pub total_vms: u32,
    /// Admitted VMs.
    pub admitted: u32,
    /// Dropped VMs (compute + network).
    pub dropped: u32,
    /// Drops in the compute phase.
    pub dropped_compute: u32,
    /// Drops in the network phase.
    pub dropped_network: u32,
    /// Admitted VMs whose three grants span racks (Figures 5 and 7).
    pub inter_rack_assignments: u32,
    /// RISA/RISA-BF assignments that used the SUPER_RACK fallback.
    pub fallback_assignments: u32,
    /// Time-weighted mean CPU utilization, fraction (§5.1 text).
    pub cpu_utilization: f64,
    /// Time-weighted mean RAM utilization, fraction.
    pub ram_utilization: f64,
    /// Time-weighted mean storage utilization, fraction.
    pub storage_utilization: f64,
    /// Time-weighted mean intra-rack network utilization (Figure 8 left).
    pub intra_net_utilization: f64,
    /// Time-weighted mean inter-rack network utilization (Figure 8 right).
    pub inter_net_utilization: f64,
    /// Total optical energy over the run, joules.
    pub optical_energy_j: f64,
    /// Mean optical power = energy / duration, watts (Figure 9).
    pub optical_power_w: f64,
    /// Mean CPU-RAM round-trip latency over admitted VMs, ns (Figure 10).
    pub mean_cpu_ram_latency_ns: f64,
    /// Wall-clock seconds spent inside the scheduler (Figures 11/12).
    ///
    /// Measured **amortized** by default: one clock pair around every
    /// K-th `Scheduler::schedule` call (K =
    /// [`crate::DEFAULT_SCHED_TIMING_BATCH`]), scaled by `calls/sampled` —
    /// an unbiased estimate at a fraction of the clock-read cost on the
    /// per-arrival hot path. `SimulationBuilder::sched_timing_batch(1)`
    /// restores the exact per-call measurement; the Figure 11/12
    /// experiments (sequential `run_matrix`) always use it. This is the
    /// report's only wall-clock field — everything else is deterministic.
    pub sched_seconds: f64,
    /// Deterministic scheduler operation counters — the machine-independent
    /// complement to `sched_seconds` (Figures 11/12).
    pub work: WorkCounters,
    /// Simulated duration, paper time units (≡ seconds).
    pub sim_duration: f64,
    /// Resilience metrics when the run carried a fault-injection scenario
    /// ([`crate::SimulationBuilder::faults`]); `None` on faults-off runs.
    ///
    /// Serialization omits the field entirely when `None`, so faults-off
    /// reports stay byte-identical to the pre-fault engine's output (and
    /// old report JSON still deserializes).
    pub faults: Option<FaultReport>,
    /// Speculative-executor counters when the run used
    /// [`crate::ExecMode::Speculative`]; `None` on sequential runs.
    ///
    /// Omitted from serialization when `None` (same contract as `faults`),
    /// so sequential reports are byte-identical to the pre-parallel
    /// engine's output. Differential tests strip this block (and zero
    /// `sched_seconds`) before comparing modes.
    pub speculation: Option<crate::parallel::SpeculationReport>,
}

// Hand-written (not derived) so a `None` faults block serializes to *no*
// field rather than `null` — the byte-identity contract above.
impl Serialize for RunReport {
    fn to_value(&self) -> serde::Value {
        let mut fields: Vec<(String, serde::Value)> = vec![
            ("algorithm".into(), self.algorithm.to_value()),
            ("workload".into(), self.workload.to_value()),
            ("total_vms".into(), self.total_vms.to_value()),
            ("admitted".into(), self.admitted.to_value()),
            ("dropped".into(), self.dropped.to_value()),
            ("dropped_compute".into(), self.dropped_compute.to_value()),
            ("dropped_network".into(), self.dropped_network.to_value()),
            (
                "inter_rack_assignments".into(),
                self.inter_rack_assignments.to_value(),
            ),
            (
                "fallback_assignments".into(),
                self.fallback_assignments.to_value(),
            ),
            ("cpu_utilization".into(), self.cpu_utilization.to_value()),
            ("ram_utilization".into(), self.ram_utilization.to_value()),
            (
                "storage_utilization".into(),
                self.storage_utilization.to_value(),
            ),
            (
                "intra_net_utilization".into(),
                self.intra_net_utilization.to_value(),
            ),
            (
                "inter_net_utilization".into(),
                self.inter_net_utilization.to_value(),
            ),
            ("optical_energy_j".into(), self.optical_energy_j.to_value()),
            ("optical_power_w".into(), self.optical_power_w.to_value()),
            (
                "mean_cpu_ram_latency_ns".into(),
                self.mean_cpu_ram_latency_ns.to_value(),
            ),
            ("sched_seconds".into(), self.sched_seconds.to_value()),
            ("work".into(), self.work.to_value()),
            ("sim_duration".into(), self.sim_duration.to_value()),
        ];
        if let Some(f) = &self.faults {
            fields.push(("faults".into(), f.to_value()));
        }
        if let Some(s) = &self.speculation {
            fields.push(("speculation".into(), s.to_value()));
        }
        serde::Value::Map(fields)
    }
}

impl Deserialize for RunReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        use serde::value::field;
        Ok(RunReport {
            algorithm: Algorithm::from_value(field(v, "algorithm")?)?,
            workload: String::from_value(field(v, "workload")?)?,
            total_vms: u32::from_value(field(v, "total_vms")?)?,
            admitted: u32::from_value(field(v, "admitted")?)?,
            dropped: u32::from_value(field(v, "dropped")?)?,
            dropped_compute: u32::from_value(field(v, "dropped_compute")?)?,
            dropped_network: u32::from_value(field(v, "dropped_network")?)?,
            inter_rack_assignments: u32::from_value(field(v, "inter_rack_assignments")?)?,
            fallback_assignments: u32::from_value(field(v, "fallback_assignments")?)?,
            cpu_utilization: f64::from_value(field(v, "cpu_utilization")?)?,
            ram_utilization: f64::from_value(field(v, "ram_utilization")?)?,
            storage_utilization: f64::from_value(field(v, "storage_utilization")?)?,
            intra_net_utilization: f64::from_value(field(v, "intra_net_utilization")?)?,
            inter_net_utilization: f64::from_value(field(v, "inter_net_utilization")?)?,
            optical_energy_j: f64::from_value(field(v, "optical_energy_j")?)?,
            optical_power_w: f64::from_value(field(v, "optical_power_w")?)?,
            mean_cpu_ram_latency_ns: f64::from_value(field(v, "mean_cpu_ram_latency_ns")?)?,
            sched_seconds: f64::from_value(field(v, "sched_seconds")?)?,
            work: WorkCounters::from_value(field(v, "work")?)?,
            sim_duration: f64::from_value(field(v, "sim_duration")?)?,
            faults: match v.get("faults") {
                Some(fv) => Some(FaultReport::from_value(fv)?),
                None => None,
            },
            speculation: match v.get("speculation") {
                Some(sv) => Some(crate::parallel::SpeculationReport::from_value(sv)?),
                None => None,
            },
        })
    }
}

impl RunReport {
    /// Admitted VMs fully contained in one rack.
    pub fn intra_rack_assignments(&self) -> u32 {
        self.admitted - self.inter_rack_assignments
    }

    /// Inter-rack assignments as a percentage of all requests (Figure 7's
    /// y-axis: "percentage of inter-rack VM assignments out of the total
    /// number of VMs").
    pub fn inter_rack_percent(&self) -> f64 {
        if self.total_vms == 0 {
            0.0
        } else {
            100.0 * self.inter_rack_assignments as f64 / self.total_vms as f64
        }
    }
}

/// A rendered experiment: identifies the paper artifact it regenerates and
/// carries both the formatted table and the raw rows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Paper artifact id ("fig5", "table4", …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Rendered monospace table (what benches print).
    pub rendered: String,
    /// The underlying runs.
    pub runs: Vec<RunReport>,
}

impl ExperimentReport {
    /// The run for `algorithm` on `workload`, if present.
    pub fn run(&self, algorithm: Algorithm, workload: &str) -> Option<&RunReport> {
        self.runs
            .iter()
            .find(|r| r.algorithm == algorithm && r.workload == workload)
    }

    /// All runs for one workload, in [`Algorithm::ALL`] order.
    pub fn runs_for_workload(&self, workload: &str) -> Vec<&RunReport> {
        Algorithm::ALL
            .iter()
            .filter_map(|&a| self.run(a, workload))
            .collect()
    }
}

impl std::fmt::Display for ExperimentReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.rendered)
    }
}

/// Host description for the Table 5 analogue printed in bench preambles.
pub fn host_info() -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    format!(
        "host: {} logical cores, {} {}, rustc (paper Table 5 used an AMD Ryzen 7 2700X, 32 GB DDR4)",
        cores,
        std::env::consts::OS,
        std::env::consts::ARCH,
    )
}

/// Peak resident-set size of this process so far, in bytes (`VmHWM` from
/// `/proc/self/status`); `None` where procfs is unavailable. The
/// instrumentation hook behind the streaming pipeline's bounded-memory
/// claim: a 10M-VM streaming run's RSS stays flat where a materialized
/// one grows with the trace (see `risa-bench --bench des_streaming`).
///
/// This is a *high-water mark* — it never decreases, and it covers the
/// whole process (allocator slack included), so compare runs in separate
/// processes, not phases of one.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(algorithm: Algorithm, workload: &str, inter: u32) -> RunReport {
        RunReport {
            algorithm,
            workload: workload.into(),
            total_vms: 100,
            admitted: 100,
            dropped: 0,
            dropped_compute: 0,
            dropped_network: 0,
            inter_rack_assignments: inter,
            fallback_assignments: 0,
            cpu_utilization: 0.5,
            ram_utilization: 0.5,
            storage_utilization: 0.3,
            intra_net_utilization: 0.3,
            inter_net_utilization: 0.0,
            optical_energy_j: 1.0,
            optical_power_w: 1.0,
            mean_cpu_ram_latency_ns: 110.0,
            sched_seconds: 0.1,
            work: WorkCounters::new(),
            sim_duration: 1000.0,
            faults: None,
            speculation: None,
        }
    }

    #[test]
    fn derived_percentages() {
        let r = dummy(Algorithm::Nulb, "w", 52);
        assert_eq!(r.intra_rack_assignments(), 48);
        assert!((r.inter_rack_percent() - 52.0).abs() < 1e-12);
    }

    #[test]
    fn zero_vms_is_safe() {
        let mut r = dummy(Algorithm::Risa, "w", 0);
        r.total_vms = 0;
        r.admitted = 0;
        assert_eq!(r.inter_rack_percent(), 0.0);
    }

    #[test]
    fn experiment_lookup() {
        let rep = ExperimentReport {
            id: "fig5".into(),
            title: "t".into(),
            rendered: "r".into(),
            runs: vec![
                dummy(Algorithm::Nulb, "synthetic", 255),
                dummy(Algorithm::Risa, "synthetic", 7),
            ],
        };
        assert_eq!(
            rep.run(Algorithm::Risa, "synthetic")
                .unwrap()
                .inter_rack_assignments,
            7
        );
        assert!(rep.run(Algorithm::Nalb, "synthetic").is_none());
        assert_eq!(rep.runs_for_workload("synthetic").len(), 2);
        assert_eq!(format!("{rep}"), "r");
    }

    #[test]
    fn host_info_mentions_cores() {
        assert!(host_info().contains("cores"));
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_is_positive_and_monotone() {
        let a = peak_rss_bytes().expect("procfs available on linux");
        assert!(a > 0);
        let hog = vec![1u8; 1 << 20];
        let b = peak_rss_bytes().unwrap();
        assert!(b >= a, "high-water mark never decreases");
        drop(hog);
        assert!(peak_rss_bytes().unwrap() >= b);
    }

    #[test]
    fn report_serde_roundtrip() {
        let r = dummy(Algorithm::RisaBf, "Azure-3000", 3);
        let json = serde_json::to_string(&r).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    /// A faults-off report serializes with no `faults` key at all (the
    /// byte-identity contract with the pre-fault engine), while a
    /// faults-on report appends the block and round-trips.
    #[test]
    fn faults_block_is_omitted_when_absent() {
        let off = dummy(Algorithm::Risa, "w", 0);
        let json = serde_json::to_string(&off).unwrap();
        assert!(!json.contains("faults"));
        assert_eq!(serde_json::from_str::<RunReport>(&json).unwrap(), off);

        let mut on = off.clone();
        on.faults = Some(FaultReport {
            rack_failures: 2,
            rack_repairs: 2,
            trunk_link_downs: 1,
            trunk_link_ups: 1,
            xcvr_downs: 0,
            xcvr_ups: 0,
            evacuated: 5,
            evac_replaced: 4,
            dropped_churn: 1,
            evac_departed: 0,
            mean_evac_latency: 0.6,
            mean_recovery_time: 21.0,
            mean_stranded_units: 3.5,
            mean_stranded_mbps: 2e5,
        });
        let json = serde_json::to_string(&on).unwrap();
        assert!(json.contains("\"faults\""));
        assert!(json.ends_with('}'), "faults is the last field");
        assert_eq!(serde_json::from_str::<RunReport>(&json).unwrap(), on);
    }

    /// Same omission contract for the speculative-executor block: absent
    /// key on sequential runs, trailing block that round-trips otherwise.
    #[test]
    fn speculation_block_is_omitted_when_absent() {
        let seq = dummy(Algorithm::Risa, "w", 0);
        let json = serde_json::to_string(&seq).unwrap();
        assert!(!json.contains("speculation"));

        let mut spec = seq.clone();
        spec.speculation = Some(crate::parallel::SpeculationReport {
            windows: 4,
            window_events: 1000,
            speculated: 900,
            fast_commits: 700,
            rollbacks: 200,
            serial_events: 120,
        });
        let json = serde_json::to_string(&spec).unwrap();
        assert!(json.contains("\"speculation\""));
        assert_eq!(serde_json::from_str::<RunReport>(&json).unwrap(), spec);
    }
}
