//! Differential verification: the index-backed schedulers must make the
//! *identical* decisions the seed's naive scan-based implementations made
//! — same box grants, same link choices, same drop reasons, and the same
//! deterministic work counters (the Figure 11/12 cost model) — over
//! randomized schedule/release/rack-churn histories (failures evacuate
//! and re-place residents, exactly like the simulator's fault pipeline),
//! on the paper topology and on a
//! 10× cluster, **and** over replayed canonical v2 traces from
//! `risa_workload::shard` (synthetic + Azure-7500), so the differential
//! spec covers exactly the arrival/departure histories the simulator
//! feeds the schedulers, not just hand-built ones.

use proptest::prelude::*;
use risa_network::{NetworkConfig, NetworkState};
use risa_sched::oracle::OracleScheduler;
use risa_sched::{Algorithm, ScheduleOutcome, Scheduler, VmAssignment};
use risa_topology::{Cluster, RackId, ResourceKind, TopologyConfig, UnitDemand, ALL_RESOURCES};
use risa_workload::{AzureSubset, SyntheticConfig, Workload};

/// One step of a history: schedule a fresh VM, release the n-th oldest
/// still-resident one, or churn a rack — fail it (evacuating and
/// re-placing every resident VM that touched it, exactly as the
/// simulator's fault pipeline does) or repair it.
#[derive(Debug, Clone)]
enum Step {
    Schedule(UnitDemand),
    Release(usize),
    FailRack(u16),
    RepairRack(u16),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        // Paper-realistic single-box demands (synthetic ≤ 8/8/2 units,
        // Azure RAM up to 14); occasional zero components stress edge
        // handling.
        4 => (0u32..=8, 0u32..=14, 0u32..=2)
            .prop_map(|(c, r, s)| Step::Schedule(UnitDemand::new(c, r, s))),
        2 => (0usize..32).prop_map(Step::Release),
        // Rack churn keeps the failed-capacity paths in the differential:
        // both sides must agree while boxes are dark and after restores.
        1 => (0u16..512).prop_map(Step::FailRack),
        1 => (0u16..512).prop_map(Step::RepairRack),
    ]
}

/// Fail or restore every box in `rack` on one cluster.
fn flip_rack(cluster: &mut Cluster, rack: RackId, fail: bool) {
    let boxes: Vec<_> = ALL_RESOURCES
        .iter()
        .flat_map(|&k| cluster.boxes_in_rack(rack, k))
        .copied()
        .collect();
    for b in boxes {
        if fail {
            cluster.remove_box(b).expect("rack not already failed");
        } else {
            cluster.restore_box(b).expect("rack was failed");
        }
    }
}

/// Reconstruct the unit demand a placement was granted for.
fn demand_of(a: &VmAssignment) -> UnitDemand {
    UnitDemand::new(
        a.placement.grant(ResourceKind::Cpu).units,
        a.placement.grant(ResourceKind::Ram).units,
        a.placement.grant(ResourceKind::Storage).units,
    )
}

fn scaled(racks: u16) -> TopologyConfig {
    TopologyConfig {
        racks,
        ..TopologyConfig::paper()
    }
}

/// Drive the same history through the production scheduler and the oracle
/// on independent state, asserting lock-step equality.
fn run_differential(
    cfg: TopologyConfig,
    algo: Algorithm,
    steps: &[Step],
) -> Result<(), TestCaseError> {
    let mut cluster = Cluster::new(cfg);
    let mut net = NetworkState::new(NetworkConfig::paper(), &cluster);
    let mut sched = Scheduler::new(algo, &cluster);

    let mut cluster_o = Cluster::new(cfg);
    let mut net_o = NetworkState::new(NetworkConfig::paper(), &cluster_o);
    let mut oracle = OracleScheduler::new(algo, &cluster_o);

    let racks = cfg.racks;
    let mut down = vec![false; racks as usize];
    let mut held = Vec::new();
    for (i, step) in steps.iter().enumerate() {
        match step {
            Step::Schedule(demand) => {
                let ours = sched.schedule(&mut cluster, &mut net, demand);
                let theirs = oracle.schedule(&mut cluster_o, &mut net_o, demand);
                prop_assert_eq!(
                    &ours,
                    &theirs,
                    "step {} ({}, {:?}): index and oracle diverged",
                    i,
                    algo,
                    demand
                );
                if let ScheduleOutcome::Assigned(a) = ours {
                    held.push(a);
                }
            }
            Step::Release(n) => {
                if held.is_empty() {
                    continue;
                }
                let a = held.remove(n % held.len());
                Scheduler::release(&mut cluster, &mut net, &a);
                Scheduler::release(&mut cluster_o, &mut net_o, &a);
            }
            Step::FailRack(r) => {
                let rid = RackId(r % racks);
                if down[rid.0 as usize] {
                    continue;
                }
                // Evacuate exactly as the simulator does: release every
                // resident touching the rack (in admission order), dark
                // the boxes, then re-place each victim through the
                // scheduler under test — both sides must keep agreeing.
                let mut victims = Vec::new();
                held.retain(|a| {
                    if a.placement.racks(&cluster).contains(&rid) {
                        victims.push(a.clone());
                        false
                    } else {
                        true
                    }
                });
                for a in &victims {
                    Scheduler::release(&mut cluster, &mut net, a);
                    Scheduler::release(&mut cluster_o, &mut net_o, a);
                }
                flip_rack(&mut cluster, rid, true);
                flip_rack(&mut cluster_o, rid, true);
                down[rid.0 as usize] = true;
                for a in &victims {
                    let demand = demand_of(a);
                    let ours = sched.schedule(&mut cluster, &mut net, &demand);
                    let theirs = oracle.schedule(&mut cluster_o, &mut net_o, &demand);
                    prop_assert_eq!(
                        &ours,
                        &theirs,
                        "step {} ({}, {:?}): evacuation re-placement diverged",
                        i,
                        algo,
                        demand
                    );
                    if let ScheduleOutcome::Assigned(a) = ours {
                        held.push(a);
                    }
                }
            }
            Step::RepairRack(r) => {
                let rid = RackId(r % racks);
                if !down[rid.0 as usize] {
                    continue;
                }
                flip_rack(&mut cluster, rid, false);
                flip_rack(&mut cluster_o, rid, false);
                down[rid.0 as usize] = false;
            }
        }
        prop_assert_eq!(
            sched.work(),
            oracle.work(),
            "step {} ({}): work-counter cost models diverged",
            i,
            algo
        );
    }
    // Restore any still-dark racks so the pristine-capacity invariants
    // apply, then check both ledgers.
    for r in 0..racks {
        if down[r as usize] {
            flip_rack(&mut cluster, RackId(r), false);
            flip_rack(&mut cluster_o, RackId(r), false);
        }
    }
    cluster.check_invariants().map_err(TestCaseError::fail)?;
    net.check_invariants().map_err(TestCaseError::fail)?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Paper topology (18 racks), all four algorithms.
    #[test]
    fn index_matches_oracle_on_paper_topology(
        steps in prop::collection::vec(step_strategy(), 1..120),
        algo_idx in 0usize..4,
    ) {
        run_differential(TopologyConfig::paper(), Algorithm::ALL[algo_idx], &steps)?;
    }

    /// 10× topology (180 racks): the same lock-step equality must hold at
    /// the scale the index exists for.
    #[test]
    fn index_matches_oracle_on_10x_topology(
        steps in prop::collection::vec(step_strategy(), 1..80),
        algo_idx in 0usize..4,
    ) {
        run_differential(scaled(180), Algorithm::ALL[algo_idx], &steps)?;
    }
}

/// Replay a generated trace as the schedule/release history the
/// simulator would produce — arrivals and departures merged in event-time
/// order (departures first on ties, so capacity frees before the
/// simultaneous arrival is placed; the *same* deterministic order feeds
/// both sides) — asserting lock-step outcome and work-counter equality.
fn run_trace_differential(algo: Algorithm, trace: &Workload, expect_drops: bool) {
    let cfg = TopologyConfig::paper();
    let mut cluster = Cluster::new(cfg);
    let mut net = NetworkState::new(NetworkConfig::paper(), &cluster);
    let mut sched = Scheduler::new(algo, &cluster);

    let mut cluster_o = Cluster::new(cfg);
    let mut net_o = NetworkState::new(NetworkConfig::paper(), &cluster_o);
    let mut oracle = OracleScheduler::new(algo, &cluster_o);

    const DEPART: u8 = 0;
    const ARRIVE: u8 = 1;
    let vms = trace.vms();
    let mut events: Vec<(f64, u8, u32)> = Vec::with_capacity(vms.len() * 2);
    for (i, vm) in vms.iter().enumerate() {
        events.push((vm.arrival, ARRIVE, i as u32));
        events.push((vm.departure(), DEPART, i as u32));
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

    let mut held: Vec<Option<VmAssignment>> = vec![None; vms.len()];
    let mut drops = 0u32;
    for &(_, kind, idx) in &events {
        let idx = idx as usize;
        if kind == ARRIVE {
            let demand = vms[idx].demand(&cfg);
            let ours = sched.schedule(&mut cluster, &mut net, &demand);
            let theirs = oracle.schedule(&mut cluster_o, &mut net_o, &demand);
            assert_eq!(
                ours,
                theirs,
                "{algo} diverged on {} at VM {idx}",
                trace.name()
            );
            match ours {
                ScheduleOutcome::Assigned(a) => held[idx] = Some(a),
                ScheduleOutcome::Dropped(_) => drops += 1,
            }
        } else if let Some(a) = held[idx].take() {
            Scheduler::release(&mut cluster, &mut net, &a);
            Scheduler::release(&mut cluster_o, &mut net_o, &a);
        }
    }
    assert_eq!(
        sched.work(),
        oracle.work(),
        "{algo}: cost models diverged on {}",
        trace.name()
    );
    if expect_drops {
        assert!(
            drops > 0,
            "{algo}: the paper cluster should saturate under {} ({} VMs)",
            trace.name(),
            vms.len()
        );
    }
    cluster
        .check_invariants()
        .expect("index cluster invariants");
    net.check_invariants().expect("index network invariants");
}

/// Canonical sharded synthetic trace (v2 stream, > 1 shard so the
/// multi-stream stitching is exercised), all four algorithms.
#[test]
fn sharded_synthetic_trace_matches_oracle() {
    let trace = Workload::synthetic(&SyntheticConfig::small(6000, 9));
    assert!(
        trace.len() as u32 > risa_workload::shard::SHARD_SIZE,
        "trace must span multiple generation shards"
    );
    for algo in Algorithm::ALL {
        // 6000 synthetic VMs overload the paper cluster: the drop and
        // fallback paths must agree too.
        run_trace_differential(algo, &trace, true);
    }
}

/// Canonical sharded Azure-7500 trace (the paper's largest subset, two
/// generation shards), all four algorithms. Like the paper's runs, this
/// workload fits the cluster (no drops) — the differential here covers
/// the steady churn of realistic demands.
#[test]
fn sharded_azure_7500_trace_matches_oracle() {
    let trace = Workload::azure(AzureSubset::N7500, 2023);
    assert!(trace.len() as u32 > risa_workload::shard::SHARD_SIZE);
    for algo in Algorithm::ALL {
        run_trace_differential(algo, &trace, false);
    }
}

/// A deterministic overload run: drive the paper cluster into saturation
/// (forcing drops and fallbacks) and compare the full outcome streams.
#[test]
fn saturation_histories_stay_identical() {
    for algo in Algorithm::ALL {
        let cfg = TopologyConfig::paper();
        let mut cluster = Cluster::new(cfg);
        let mut net = NetworkState::new(NetworkConfig::paper(), &cluster);
        let mut sched = Scheduler::new(algo, &cluster);
        let mut cluster_o = Cluster::new(cfg);
        let mut net_o = NetworkState::new(NetworkConfig::paper(), &cluster_o);
        let mut oracle = OracleScheduler::new(algo, &cluster_o);

        let mut drops = 0;
        for i in 0..1500u32 {
            let d = risa_sched::cycle::paper_mix_demand(i);
            let ours = sched.schedule(&mut cluster, &mut net, &d);
            let theirs = oracle.schedule(&mut cluster_o, &mut net_o, &d);
            assert_eq!(ours, theirs, "{algo} diverged at VM {i}");
            if !ours.is_assigned() {
                drops += 1;
            }
        }
        assert_eq!(sched.work(), oracle.work(), "{algo}: cost models diverged");
        assert!(drops > 0, "{algo}: saturation run should drop some VMs");
    }
}
