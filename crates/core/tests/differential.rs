//! Differential verification: the index-backed schedulers must make the
//! *identical* decisions the seed's naive scan-based implementations made
//! — same box grants, same link choices, same drop reasons, and the same
//! deterministic work counters (the Figure 11/12 cost model) — over
//! randomized schedule/release histories, on the paper topology and on a
//! 10× cluster.

use proptest::prelude::*;
use risa_network::{NetworkConfig, NetworkState};
use risa_sched::oracle::OracleScheduler;
use risa_sched::{Algorithm, ScheduleOutcome, Scheduler};
use risa_topology::{Cluster, TopologyConfig, UnitDemand};

/// One step of a history: schedule a fresh VM, or release the n-th oldest
/// still-resident one.
#[derive(Debug, Clone)]
enum Step {
    Schedule(UnitDemand),
    Release(usize),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        // Paper-realistic single-box demands (synthetic ≤ 8/8/2 units,
        // Azure RAM up to 14); occasional zero components stress edge
        // handling.
        (0u32..=8, 0u32..=14, 0u32..=2)
            .prop_map(|(c, r, s)| Step::Schedule(UnitDemand::new(c, r, s))),
        (0usize..32).prop_map(Step::Release),
    ]
}

fn scaled(racks: u16) -> TopologyConfig {
    TopologyConfig {
        racks,
        ..TopologyConfig::paper()
    }
}

/// Drive the same history through the production scheduler and the oracle
/// on independent state, asserting lock-step equality.
fn run_differential(
    cfg: TopologyConfig,
    algo: Algorithm,
    steps: &[Step],
) -> Result<(), TestCaseError> {
    let mut cluster = Cluster::new(cfg);
    let mut net = NetworkState::new(NetworkConfig::paper(), &cluster);
    let mut sched = Scheduler::new(algo, &cluster);

    let mut cluster_o = Cluster::new(cfg);
    let mut net_o = NetworkState::new(NetworkConfig::paper(), &cluster_o);
    let mut oracle = OracleScheduler::new(algo, &cluster_o);

    let mut held = Vec::new();
    for (i, step) in steps.iter().enumerate() {
        match step {
            Step::Schedule(demand) => {
                let ours = sched.schedule(&mut cluster, &mut net, demand);
                let theirs = oracle.schedule(&mut cluster_o, &mut net_o, demand);
                prop_assert_eq!(
                    &ours,
                    &theirs,
                    "step {} ({}, {:?}): index and oracle diverged",
                    i,
                    algo,
                    demand
                );
                if let ScheduleOutcome::Assigned(a) = ours {
                    held.push(a);
                }
            }
            Step::Release(n) => {
                if held.is_empty() {
                    continue;
                }
                let a = held.remove(n % held.len());
                Scheduler::release(&mut cluster, &mut net, &a);
                Scheduler::release(&mut cluster_o, &mut net_o, &a);
            }
        }
        prop_assert_eq!(
            sched.work(),
            oracle.work(),
            "step {} ({}): work-counter cost models diverged",
            i,
            algo
        );
    }
    cluster.check_invariants().map_err(TestCaseError::fail)?;
    net.check_invariants().map_err(TestCaseError::fail)?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Paper topology (18 racks), all four algorithms.
    #[test]
    fn index_matches_oracle_on_paper_topology(
        steps in prop::collection::vec(step_strategy(), 1..120),
        algo_idx in 0usize..4,
    ) {
        run_differential(TopologyConfig::paper(), Algorithm::ALL[algo_idx], &steps)?;
    }

    /// 10× topology (180 racks): the same lock-step equality must hold at
    /// the scale the index exists for.
    #[test]
    fn index_matches_oracle_on_10x_topology(
        steps in prop::collection::vec(step_strategy(), 1..80),
        algo_idx in 0usize..4,
    ) {
        run_differential(scaled(180), Algorithm::ALL[algo_idx], &steps)?;
    }
}

/// A deterministic overload run: drive the paper cluster into saturation
/// (forcing drops and fallbacks) and compare the full outcome streams.
#[test]
fn saturation_histories_stay_identical() {
    for algo in Algorithm::ALL {
        let cfg = TopologyConfig::paper();
        let mut cluster = Cluster::new(cfg);
        let mut net = NetworkState::new(NetworkConfig::paper(), &cluster);
        let mut sched = Scheduler::new(algo, &cluster);
        let mut cluster_o = Cluster::new(cfg);
        let mut net_o = NetworkState::new(NetworkConfig::paper(), &cluster_o);
        let mut oracle = OracleScheduler::new(algo, &cluster_o);

        let mut drops = 0;
        for i in 0..1500u32 {
            let d = risa_sched::cycle::paper_mix_demand(i);
            let ours = sched.schedule(&mut cluster, &mut net, &d);
            let theirs = oracle.schedule(&mut cluster_o, &mut net_o, &d);
            assert_eq!(ours, theirs, "{algo} diverged at VM {i}");
            if !ours.is_assigned() {
                drops += 1;
            }
        }
        assert_eq!(sched.work(), oracle.work(), "{algo}: cost models diverged");
        assert!(drops > 0, "{algo}: saturation run should drop some VMs");
    }
}
