//! Send/Sync audit for the scheduling types that parallel experiment
//! matrices move across worker threads.
//!
//! The `rayon` pool runs whole simulation jobs on scoped threads:
//! `ScheduleCycle` treadmills are built and warmed concurrently by the
//! benches, and every scheduler/cluster/network value lives inside a job
//! that may be produced on one thread and consumed on another. These
//! assertions are compile-time (auto-trait) checks; if a future refactor
//! introduces `Rc`, `RefCell`, or a raw pointer into any of these types,
//! this test stops compiling rather than the benches failing at a distance.

use risa_network::NetworkState;
use risa_sched::cycle::ScheduleCycle;
use risa_sched::{Algorithm, DropReason, ScheduleOutcome, Scheduler, VmAssignment, WorkCounters};
use risa_topology::Cluster;

fn assert_send<T: Send>() {}
fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn scheduling_state_crosses_threads() {
    assert_send_sync::<Algorithm>();
    assert_send_sync::<Scheduler>();
    assert_send_sync::<Cluster>();
    assert_send_sync::<NetworkState>();
    assert_send_sync::<WorkCounters>();
    assert_send_sync::<VmAssignment>();
    assert_send_sync::<ScheduleOutcome>();
    assert_send_sync::<DropReason>();
    // The bench treadmill only needs to *move* to a worker, not be shared.
    assert_send::<ScheduleCycle>();
}

#[test]
fn a_schedule_cycle_built_on_one_thread_steps_on_another() {
    let mut cycle = std::thread::spawn(|| {
        let mut cycle = ScheduleCycle::new(12, Algorithm::Risa);
        for _ in 0..32 {
            cycle.step();
        }
        cycle
    })
    .join()
    .expect("builder thread");
    for _ in 0..32 {
        cycle.step();
    }
}
