//! An independent auditor for schedule histories.
//!
//! The schedulers mutate the cluster and network directly; the auditor
//! replays the resulting [`VmAssignment`]s against its own **shadow
//! ledger** built only from the configuration, catching any divergence
//! between what a scheduler *claims* and what the shared state allows:
//! over-capacity grants, wrong-kind boxes, mislabelled intra-rack flags,
//! double releases, leaks at end of run. The simulation test-suite runs
//! every workload through it.

use crate::algorithm::VmAssignment;
use risa_topology::{Cluster, ResourceKind, TopologyConfig, ALL_RESOURCES};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A violation detected by the auditor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AuditViolation {
    /// A grant names a box of the wrong resource kind.
    WrongKind {
        /// Offending VM (auditor-assigned sequence number).
        vm: u64,
        /// Expected kind.
        expected: ResourceKind,
    },
    /// A box's cumulative grants exceed its capacity.
    OverCapacity {
        /// Offending VM.
        vm: u64,
        /// The box.
        box_id: u32,
        /// Units in use after this grant.
        used: u64,
        /// Box capacity.
        capacity: u64,
    },
    /// The `intra_rack` flag disagrees with the placement's racks.
    WrongIntraRackFlag {
        /// Offending VM.
        vm: u64,
    },
    /// The network allocation claims intra-rack flows for an inter-rack
    /// placement (or vice versa) on the CPU-RAM pair.
    FlowRackMismatch {
        /// Offending VM.
        vm: u64,
    },
    /// Release of a VM the auditor never saw admitted (or saw released).
    UnknownRelease {
        /// The release sequence number.
        vm: u64,
    },
    /// Resources still held at [`ScheduleAuditor::finish`].
    Leak {
        /// VMs still resident.
        resident: usize,
    },
}

impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditViolation::WrongKind { vm, expected } => {
                write!(
                    f,
                    "vm{vm}: grant for {expected} names a box of another kind"
                )
            }
            AuditViolation::OverCapacity {
                vm,
                box_id,
                used,
                capacity,
            } => write!(f, "vm{vm}: box{box_id} used {used}u of {capacity}u"),
            AuditViolation::WrongIntraRackFlag { vm } => {
                write!(f, "vm{vm}: intra_rack flag contradicts placement")
            }
            AuditViolation::FlowRackMismatch { vm } => {
                write!(f, "vm{vm}: flow inter-rack flags contradict placement")
            }
            AuditViolation::UnknownRelease { vm } => {
                write!(f, "release #{vm}: VM not resident")
            }
            AuditViolation::Leak { resident } => {
                write!(f, "{resident} VMs still resident at finish")
            }
        }
    }
}

/// Replays assignments/releases against a shadow ledger.
#[derive(Debug, Clone)]
pub struct ScheduleAuditor {
    cfg: TopologyConfig,
    /// Shadow used-units per box.
    used: Vec<u64>,
    /// Resident assignments by admission sequence number. BTreeMap so a
    /// future "list the leaked VMs" diagnostic can never depend on hash
    /// order (risa-lint `hash_state`).
    resident: BTreeMap<u64, VmAssignment>,
    next_vm: u64,
    violations: Vec<AuditViolation>,
    admitted: u64,
    released: u64,
}

impl ScheduleAuditor {
    /// Auditor for a cluster of `cluster`'s shape (capacities are taken
    /// from the live cluster so fixture overrides are respected).
    pub fn new(cluster: &Cluster) -> Self {
        ScheduleAuditor {
            cfg: *cluster.config(),
            used: vec![0; cluster.num_boxes()],
            resident: BTreeMap::new(),
            next_vm: 0,
            violations: Vec::new(),
            admitted: 0,
            released: 0,
        }
    }

    /// Record an admission; returns the auditor's sequence number for the
    /// VM (pass it back to [`ScheduleAuditor::release`]).
    pub fn admit(&mut self, cluster: &Cluster, a: &VmAssignment) -> u64 {
        let vm = self.next_vm;
        self.next_vm += 1;
        self.admitted += 1;

        for kind in ALL_RESOURCES {
            let g = a.placement.grant(kind);
            if cluster.kind_of(g.box_id) != kind {
                self.violations
                    .push(AuditViolation::WrongKind { vm, expected: kind });
            }
            let slot = &mut self.used[g.box_id.0 as usize];
            *slot += g.units as u64;
            let capacity = cluster.box_state(g.box_id).capacity as u64;
            if *slot > capacity {
                self.violations.push(AuditViolation::OverCapacity {
                    vm,
                    box_id: g.box_id.0,
                    used: *slot,
                    capacity,
                });
            }
        }
        if a.intra_rack != a.placement.is_intra_rack(cluster) {
            self.violations
                .push(AuditViolation::WrongIntraRackFlag { vm });
        }
        let cpu_rack = cluster.rack_of(a.placement.grant(ResourceKind::Cpu).box_id);
        let ram_rack = cluster.rack_of(a.placement.grant(ResourceKind::Ram).box_id);
        if a.network.cpu_ram.inter_rack != (cpu_rack != ram_rack) {
            self.violations
                .push(AuditViolation::FlowRackMismatch { vm });
        }
        self.resident.insert(vm, a.clone());
        vm
    }

    /// Record a release by sequence number.
    pub fn release(&mut self, vm: u64) {
        match self.resident.remove(&vm) {
            None => self.violations.push(AuditViolation::UnknownRelease { vm }),
            Some(a) => {
                self.released += 1;
                for kind in ALL_RESOURCES {
                    let g = a.placement.grant(kind);
                    self.used[g.box_id.0 as usize] =
                        self.used[g.box_id.0 as usize].saturating_sub(g.units as u64);
                }
            }
        }
    }

    /// Number of admissions seen.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Number of releases seen.
    pub fn released(&self) -> u64 {
        self.released
    }

    /// Close the audit: everything must have been released.
    pub fn finish(mut self) -> Result<AuditSummary, Vec<AuditViolation>> {
        if !self.resident.is_empty() {
            self.violations.push(AuditViolation::Leak {
                resident: self.resident.len(),
            });
        }
        if self.used.iter().any(|&u| u != 0) && self.resident.is_empty() {
            // Can only happen through an auditor bug; surface loudly.
            self.violations.push(AuditViolation::Leak { resident: 0 });
        }
        if self.violations.is_empty() {
            Ok(AuditSummary {
                admitted: self.admitted,
                released: self.released,
            })
        } else {
            Err(self.violations)
        }
    }

    /// The topology the auditor checks against.
    pub fn config(&self) -> &TopologyConfig {
        &self.cfg
    }

    /// Checkpoint capture: the auditor's dynamic ledger, with the resident
    /// map flattened to sorted `(vm, assignment)` pairs.
    pub fn to_parts(&self) -> AuditorParts {
        AuditorParts {
            used: self.used.clone(),
            resident: self
                .resident
                .iter()
                .map(|(vm, a)| (*vm, a.clone()))
                .collect(),
            next_vm: self.next_vm,
            violations: self.violations.clone(),
            admitted: self.admitted,
            released: self.released,
        }
    }

    /// Rebuild an auditor from [`ScheduleAuditor::to_parts`] output; the
    /// topology is re-taken from the (restored) live cluster.
    pub fn from_parts(cluster: &Cluster, parts: AuditorParts) -> Self {
        ScheduleAuditor {
            cfg: *cluster.config(),
            used: parts.used,
            resident: parts.resident.into_iter().collect(),
            next_vm: parts.next_vm,
            violations: parts.violations,
            admitted: parts.admitted,
            released: parts.released,
        }
    }
}

/// Checkpointable state of a [`ScheduleAuditor`] (see
/// [`ScheduleAuditor::to_parts`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuditorParts {
    /// Shadow used-units per box.
    pub used: Vec<u64>,
    /// Resident assignments as `(vm, assignment)` pairs, ascending by vm.
    pub resident: Vec<(u64, VmAssignment)>,
    /// Next admission sequence number.
    pub next_vm: u64,
    /// Violations recorded so far.
    pub violations: Vec<AuditViolation>,
    /// Admissions seen.
    pub admitted: u64,
    /// Releases seen.
    pub released: u64,
}

/// A clean audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditSummary {
    /// Admissions replayed.
    pub admitted: u64,
    /// Releases replayed.
    pub released: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{Algorithm, ScheduleOutcome};
    use crate::scheduler::Scheduler;
    use risa_network::{NetworkConfig, NetworkState};
    use risa_topology::UnitDemand;

    fn run_audited(
        algo: Algorithm,
        demands: &[UnitDemand],
    ) -> Result<AuditSummary, Vec<AuditViolation>> {
        let mut cluster = Cluster::new(TopologyConfig::paper());
        let mut net = NetworkState::new(NetworkConfig::paper(), &cluster);
        let mut sched = Scheduler::new(algo, &cluster);
        let mut auditor = ScheduleAuditor::new(&cluster);
        let mut resident = Vec::new();
        for d in demands {
            if let ScheduleOutcome::Assigned(a) = sched.schedule(&mut cluster, &mut net, d) {
                resident.push((auditor.admit(&cluster, &a), a));
            }
        }
        for (vm, a) in resident {
            Scheduler::release(&mut cluster, &mut net, &a);
            auditor.release(vm);
        }
        auditor.finish()
    }

    #[test]
    fn clean_runs_audit_clean() {
        let demands: Vec<UnitDemand> = (0..200)
            .map(|i| UnitDemand::new(1 + i % 8, 1 + (i * 3) % 8, 2))
            .collect();
        for algo in Algorithm::ALL {
            let summary = run_audited(algo, &demands).unwrap_or_else(|v| {
                panic!("{algo} failed audit: {v:?}");
            });
            assert_eq!(summary.admitted, summary.released);
            assert_eq!(summary.admitted, 200);
        }
    }

    #[test]
    fn detects_leaks() {
        let mut cluster = Cluster::new(TopologyConfig::paper());
        let mut net = NetworkState::new(NetworkConfig::paper(), &cluster);
        let mut sched = Scheduler::new(Algorithm::Risa, &cluster);
        let mut auditor = ScheduleAuditor::new(&cluster);
        let d = UnitDemand::new(2, 4, 2);
        if let ScheduleOutcome::Assigned(a) = sched.schedule(&mut cluster, &mut net, &d) {
            auditor.admit(&cluster, &a);
            // Never released.
        }
        let errs = auditor.finish().unwrap_err();
        assert!(matches!(errs[0], AuditViolation::Leak { resident: 1 }));
    }

    #[test]
    fn detects_double_release() {
        let mut cluster = Cluster::new(TopologyConfig::paper());
        let mut net = NetworkState::new(NetworkConfig::paper(), &cluster);
        let mut sched = Scheduler::new(Algorithm::Nulb, &cluster);
        let mut auditor = ScheduleAuditor::new(&cluster);
        let d = UnitDemand::new(1, 1, 1);
        let ScheduleOutcome::Assigned(a) = sched.schedule(&mut cluster, &mut net, &d) else {
            panic!()
        };
        let vm = auditor.admit(&cluster, &a);
        auditor.release(vm);
        auditor.release(vm); // double
        let errs = auditor.finish().unwrap_err();
        assert_eq!(errs, vec![AuditViolation::UnknownRelease { vm }]);
    }

    #[test]
    fn detects_fabricated_over_capacity() {
        use risa_network::{FlowDemands, LinkPolicy, VmNetAllocation};
        use risa_topology::{BoxAllocation, BoxId, VmPlacement};
        let cluster = Cluster::new(TopologyConfig::paper());
        let mut net = NetworkState::new(NetworkConfig::paper(), &cluster);
        let mut auditor = ScheduleAuditor::new(&cluster);
        // Fabricate an assignment that claims 129 units of a 128-unit box.
        let network = VmNetAllocation {
            cpu_ram: net
                .alloc_flow(&cluster, BoxId(0), BoxId(2), 0, LinkPolicy::FirstFit)
                .unwrap(),
            ram_sto: net
                .alloc_flow(&cluster, BoxId(2), BoxId(4), 0, LinkPolicy::FirstFit)
                .unwrap(),
        };
        let fake = VmAssignment {
            placement: VmPlacement {
                grants: [
                    BoxAllocation {
                        box_id: BoxId(0),
                        units: 129,
                    },
                    BoxAllocation {
                        box_id: BoxId(2),
                        units: 1,
                    },
                    BoxAllocation {
                        box_id: BoxId(4),
                        units: 1,
                    },
                ],
            },
            network,
            intra_rack: true,
            used_fallback: false,
        };
        let vm = auditor.admit(&cluster, &fake);
        auditor.release(vm);
        let errs = auditor.finish().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, AuditViolation::OverCapacity { box_id: 0, .. })));
        let _ = FlowDemands {
            cpu_ram_mbps: 0,
            ram_sto_mbps: 0,
        };
    }

    #[test]
    fn detects_wrong_kind_and_flag() {
        use risa_network::LinkPolicy;
        use risa_topology::{BoxAllocation, BoxId, VmPlacement};
        let cluster = Cluster::new(TopologyConfig::paper());
        let mut net = NetworkState::new(NetworkConfig::paper(), &cluster);
        let mut auditor = ScheduleAuditor::new(&cluster);
        let network = risa_network::VmNetAllocation {
            cpu_ram: net
                .alloc_flow(&cluster, BoxId(0), BoxId(8), 0, LinkPolicy::FirstFit)
                .unwrap(),
            ram_sto: net
                .alloc_flow(&cluster, BoxId(8), BoxId(4), 0, LinkPolicy::FirstFit)
                .unwrap(),
        };
        let fake = VmAssignment {
            placement: VmPlacement {
                grants: [
                    // "CPU" grant pointing at a RAM box (box 2).
                    BoxAllocation {
                        box_id: BoxId(2),
                        units: 1,
                    },
                    // RAM grant in another rack while claiming intra_rack.
                    BoxAllocation {
                        box_id: BoxId(8),
                        units: 1,
                    },
                    BoxAllocation {
                        box_id: BoxId(4),
                        units: 1,
                    },
                ],
            },
            network,
            intra_rack: true,
            used_fallback: false,
        };
        let vm = auditor.admit(&cluster, &fake);
        auditor.release(vm);
        let errs = auditor.finish().unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            AuditViolation::WrongKind {
                expected: ResourceKind::Cpu,
                ..
            }
        )));
        assert!(errs
            .iter()
            .any(|e| matches!(e, AuditViolation::WrongIntraRackFlag { .. })));
    }
}
