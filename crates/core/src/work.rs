//! Machine-independent work accounting.
//!
//! Figures 11/12 of the paper compare scheduler *execution times*, which
//! are host-dependent. To make the comparison reproducible we also count
//! the elementary operations each algorithm performs — box-availability
//! reads, rack-level checks, link-bandwidth reads, and neighbour
//! re-sorts. The counters are deterministic for a given workload/seed, so
//! the NALB ≫ NULB > RISA ordering can be asserted in tests rather than
//! merely observed on a quiet machine.

use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Elementary-operation counters accumulated across scheduling calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkCounters {
    /// Box-availability reads in search loops (CR scans, first-fit scans,
    /// BFS probes, best-fit minima).
    pub boxes_scanned: u64,
    /// Rack-level membership/feasibility checks (pool construction,
    /// SUPER_RACK build, BFS rack iteration).
    pub racks_scanned: u64,
    /// Link free-bandwidth reads (NALB's neighbour ordering and feasibility
    /// pre-checks).
    pub links_scanned: u64,
    /// Neighbour-list sorts performed (NALB's modified BFS).
    pub sorts: u64,
    /// Scheduling attempts (one per VM).
    pub calls: u64,
}

impl WorkCounters {
    /// Zeroed counters.
    pub fn new() -> Self {
        WorkCounters::default()
    }

    /// Sum of all scan counters — the scalar "operations" column printed
    /// by the Figure 11/12 experiments.
    pub fn total_ops(&self) -> u64 {
        self.boxes_scanned + self.racks_scanned + self.links_scanned + self.sorts
    }

    /// Mean operations per scheduling call (0 when no calls).
    pub fn ops_per_call(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_ops() as f64 / self.calls as f64
        }
    }
}

impl AddAssign for WorkCounters {
    fn add_assign(&mut self, rhs: WorkCounters) {
        self.boxes_scanned += rhs.boxes_scanned;
        self.racks_scanned += rhs.racks_scanned;
        self.links_scanned += rhs.links_scanned;
        self.sorts += rhs.sorts;
        self.calls += rhs.calls;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_means() {
        let mut w = WorkCounters::new();
        assert_eq!(w.total_ops(), 0);
        assert_eq!(w.ops_per_call(), 0.0);
        w.boxes_scanned = 10;
        w.racks_scanned = 5;
        w.links_scanned = 3;
        w.sorts = 2;
        w.calls = 4;
        assert_eq!(w.total_ops(), 20);
        assert_eq!(w.ops_per_call(), 5.0);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = WorkCounters {
            boxes_scanned: 1,
            racks_scanned: 2,
            links_scanned: 3,
            sorts: 4,
            calls: 5,
        };
        a += a;
        assert_eq!(a.boxes_scanned, 2);
        assert_eq!(a.calls, 10);
        assert_eq!(a.total_ops(), 20);
    }
}
