//! The scan-based reference schedulers — the differential oracle.
//!
//! This module preserves the *seed* implementations of all four
//! algorithms, which compute every decision with naive linear scans over
//! the box table (per-VM contention sums, whole-cluster first-fit walks,
//! rack re-sorts, pool rebuilds). The production schedulers answer the
//! same questions through the incremental
//! [`risa_topology::PlacementIndex`]; the differential test suite runs
//! both side by side over randomized schedule/release histories and
//! asserts **identical** assignments, drop reasons, and
//! [`WorkCounters`] — so the index can never silently change a placement
//! the paper's figures depend on.
//!
//! Nothing here is on a hot path; clarity and faithfulness to the seed
//! win over speed.

use crate::algorithm::{Algorithm, DropReason, ScheduleOutcome, VmAssignment};
use crate::nulb::{NeighborOrder, NulbParams, SuperRack};
use crate::work::WorkCounters;
use risa_network::{FlowDemands, LinkPolicy, NetworkState};
use risa_topology::{
    BoxAllocation, BoxId, Cluster, RackId, ResourceKind, UnitDemand, VmPlacement, ALL_RESOURCES,
};

/// Naive contention ratios: availability summed by scanning the box table,
/// exactly as the seed (and Algorithm 2's pseudocode) did.
fn contention_ratios_naive(
    cluster: &Cluster,
    demand: &UnitDemand,
    restrict: Option<&SuperRack>,
    work: &mut WorkCounters,
) -> [f64; 3] {
    let mut crs = [0.0f64; 3];
    for kind in ALL_RESOURCES {
        let req = demand.get(kind) as f64;
        let avail = match restrict {
            None => {
                // Failed boxes are still visited (and charged) by the
                // scan but contribute no availability, matching the
                // production totals which retract them.
                let mut n = 0u64;
                let sum = cluster
                    .boxes_of_kind(kind)
                    .map(|b| {
                        n += 1;
                        if cluster.is_failed(b.id) {
                            0
                        } else {
                            b.available as u64
                        }
                    })
                    .sum::<u64>() as f64;
                work.boxes_scanned += n;
                sum
            }
            Some(sr) => {
                work.racks_scanned += sr.racks_for(kind).len() as u64;
                sr.racks_for(kind)
                    .iter()
                    .map(|&r| {
                        cluster
                            .boxes_in_rack(r, kind)
                            .iter()
                            .map(|&b| {
                                if cluster.is_failed(b) {
                                    0
                                } else {
                                    cluster.available(b) as u64
                                }
                            })
                            .sum::<u64>()
                    })
                    .sum::<u64>() as f64
            }
        };
        crs[kind.index()] = if req == 0.0 {
            0.0
        } else if avail == 0.0 {
            f64::INFINITY
        } else {
            req / avail
        };
    }
    crs
}

fn most_contended_naive(
    cluster: &Cluster,
    demand: &UnitDemand,
    restrict: Option<&SuperRack>,
    work: &mut WorkCounters,
) -> ResourceKind {
    let crs = contention_ratios_naive(cluster, demand, restrict, work);
    let mut best = ResourceKind::Cpu;
    for kind in ALL_RESOURCES {
        if crs[kind.index()] > crs[best.index()] {
            best = kind;
        }
    }
    best
}

/// Seed first-box scan: every box of `kind` in global id order.
fn first_box_of_kind_naive(
    cluster: &Cluster,
    kind: ResourceKind,
    units: u32,
    restrict: Option<&SuperRack>,
    work: &mut WorkCounters,
) -> Option<BoxId> {
    cluster
        .boxes_of_kind(kind)
        .find(|b| {
            work.boxes_scanned += 1;
            !cluster.is_failed(b.id)
                && b.available >= units
                && restrict.is_none_or(|sr| sr.allows(b.rack, kind))
        })
        .map(|b| b.id)
}

/// Seed BFS: home rack first, then every other rack, re-sorting per probe
/// under NALB's modified order.
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
fn bfs_find_naive(
    cluster: &Cluster,
    net: &NetworkState,
    kind: ResourceKind,
    units: u32,
    home: RackId,
    restrict: Option<&SuperRack>,
    order: NeighborOrder,
    work: &mut WorkCounters,
) -> Option<BoxId> {
    let box_in_rack = |rack: RackId, work: &mut WorkCounters| -> Option<BoxId> {
        work.racks_scanned += 1;
        if let Some(sr) = restrict {
            if !sr.allows(rack, kind) {
                return None;
            }
        }
        let boxes = cluster.boxes_in_rack(rack, kind);
        match order {
            NeighborOrder::ById => boxes.iter().copied().find(|&b| {
                work.boxes_scanned += 1;
                !cluster.is_failed(b) && cluster.available(b) >= units
            }),
            NeighborOrder::ByBandwidthDesc => {
                work.sorts += 1;
                work.links_scanned += boxes.len() as u64;
                let mut sorted: Vec<BoxId> = boxes.to_vec();
                sorted.sort_by(|&a, &b| {
                    net.box_uplink_free_mbps(b)
                        .cmp(&net.box_uplink_free_mbps(a))
                        .then(a.cmp(&b))
                });
                sorted.into_iter().find(|&b| {
                    work.boxes_scanned += 1;
                    !cluster.is_failed(b) && cluster.available(b) >= units
                })
            }
        }
    };

    if let Some(b) = box_in_rack(home, work) {
        return Some(b);
    }
    let mut others: Vec<RackId> = (0..cluster.num_racks())
        .map(RackId)
        .filter(|&r| r != home)
        .collect();
    if order == NeighborOrder::ByBandwidthDesc {
        work.sorts += 1;
        work.links_scanned += others.len() as u64;
        others.sort_by(|&a, &b| {
            net.rack_uplink_free_mbps(b)
                .cmp(&net.rack_uplink_free_mbps(a))
                .then(a.cmp(&b))
        });
    }
    others.into_iter().find_map(|r| box_in_rack(r, work))
}

/// Seed Algorithm 2 (NULB/NALB, and RISA's restricted fallback).
fn nulb_schedule_naive(
    cluster: &mut Cluster,
    net: &mut NetworkState,
    demand: &UnitDemand,
    flows: &FlowDemands,
    restrict: Option<&SuperRack>,
    params: NulbParams,
    work: &mut WorkCounters,
) -> Result<VmAssignment, DropReason> {
    let scarce = most_contended_naive(cluster, demand, restrict, work);
    let Some(primary) =
        first_box_of_kind_naive(cluster, scarce, demand.get(scarce), restrict, work)
    else {
        return Err(DropReason::Compute);
    };
    let home = cluster.rack_of(primary);

    let mut grants = [BoxAllocation {
        box_id: primary,
        units: demand.get(scarce),
    }; 3];
    grants[scarce.index()] = BoxAllocation {
        box_id: primary,
        units: demand.get(scarce),
    };
    for kind in ALL_RESOURCES {
        if kind == scarce {
            continue;
        }
        let Some(b) = bfs_find_naive(
            cluster,
            net,
            kind,
            demand.get(kind),
            home,
            restrict,
            params.neighbor_order,
            work,
        ) else {
            return Err(DropReason::Compute);
        };
        grants[kind.index()] = BoxAllocation {
            box_id: b,
            units: demand.get(kind),
        };
    }
    let placement = VmPlacement { grants };

    if cluster.take_placement(&placement).is_err() {
        return Err(DropReason::Compute);
    }
    let cpu_box = placement.grant(ResourceKind::Cpu).box_id;
    let ram_box = placement.grant(ResourceKind::Ram).box_id;
    let sto_box = placement.grant(ResourceKind::Storage).box_id;
    match net.alloc_vm(
        cluster,
        cpu_box,
        ram_box,
        sto_box,
        flows,
        params.link_policy,
    ) {
        Ok(network) => {
            let intra_rack = placement.is_intra_rack(cluster);
            Ok(VmAssignment {
                placement,
                network,
                intra_rack,
                used_fallback: false,
            })
        }
        Err(_) => {
            cluster
                .give_placement(&placement)
                .expect("rollback of held placement");
            Err(DropReason::Network)
        }
    }
}

/// Seed RISA/RISA-BF state: identical cursors, naive pool rebuilds and
/// full-rack best-fit scans.
#[derive(Debug, Clone)]
struct RisaStateNaive {
    rr_cursor: u16,
    box_cursor: Vec<[usize; 3]>,
    best_fit: bool,
}

impl RisaStateNaive {
    fn new(cluster: &Cluster, best_fit: bool) -> Self {
        RisaStateNaive {
            rr_cursor: 0,
            box_cursor: vec![[0; 3]; cluster.num_racks() as usize],
            best_fit,
        }
    }

    fn pick_box(
        &self,
        cluster: &Cluster,
        rack: RackId,
        kind: ResourceKind,
        units: u32,
        work: &mut WorkCounters,
    ) -> Option<(BoxId, usize)> {
        let boxes = cluster.boxes_in_rack(rack, kind);
        if self.best_fit {
            work.boxes_scanned += boxes.len() as u64;
            boxes
                .iter()
                .enumerate()
                .filter(|(_, &b)| !cluster.is_failed(b) && cluster.available(b) >= units)
                .min_by_key(|(_, &b)| cluster.available(b))
                .map(|(pos, &b)| (b, pos))
        } else {
            let start = self.box_cursor[rack.0 as usize][kind.index()].min(boxes.len() - 1);
            (0..boxes.len())
                .map(|i| (start + i) % boxes.len())
                .find(|&pos| {
                    work.boxes_scanned += 1;
                    !cluster.is_failed(boxes[pos]) && cluster.available(boxes[pos]) >= units
                })
                .map(|pos| (boxes[pos], pos))
        }
    }

    fn try_rack(
        &mut self,
        cluster: &mut Cluster,
        net: &mut NetworkState,
        rack: RackId,
        demand: &UnitDemand,
        flows: &FlowDemands,
        work: &mut WorkCounters,
    ) -> Option<VmAssignment> {
        for kind in ALL_RESOURCES {
            work.links_scanned += cluster.boxes_in_rack(rack, kind).len() as u64;
        }
        if !net.rack_intra_feasible(cluster, rack, flows) {
            return None;
        }
        let mut grants = [BoxAllocation {
            box_id: BoxId(0),
            units: 0,
        }; 3];
        let mut positions = [0usize; 3];
        for kind in ALL_RESOURCES {
            let (b, pos) = self.pick_box(cluster, rack, kind, demand.get(kind), work)?;
            grants[kind.index()] = BoxAllocation {
                box_id: b,
                units: demand.get(kind),
            };
            positions[kind.index()] = pos;
        }
        let placement = VmPlacement { grants };
        cluster
            .take_placement(&placement)
            .expect("pick_box verified availability");
        match net.alloc_vm(
            cluster,
            placement.grant(ResourceKind::Cpu).box_id,
            placement.grant(ResourceKind::Ram).box_id,
            placement.grant(ResourceKind::Storage).box_id,
            flows,
            LinkPolicy::FirstFit,
        ) {
            Ok(network) => {
                if !self.best_fit {
                    for kind in ALL_RESOURCES {
                        self.box_cursor[rack.0 as usize][kind.index()] = positions[kind.index()];
                    }
                }
                Some(VmAssignment {
                    placement,
                    network,
                    intra_rack: true,
                    used_fallback: false,
                })
            }
            Err(_) => {
                cluster
                    .give_placement(&placement)
                    .expect("rollback of held placement");
                None
            }
        }
    }

    fn schedule(
        &mut self,
        cluster: &mut Cluster,
        net: &mut NetworkState,
        demand: &UnitDemand,
        flows: &FlowDemands,
        work: &mut WorkCounters,
    ) -> Result<VmAssignment, DropReason> {
        work.racks_scanned += cluster.num_racks() as u64;
        let pool: Vec<RackId> = (0..cluster.num_racks())
            .map(RackId)
            .filter(|&r| cluster.rack_fits(r, demand))
            .collect();
        if !pool.is_empty() {
            let start = pool.iter().position(|r| r.0 >= self.rr_cursor).unwrap_or(0);
            for i in 0..pool.len() {
                let rack = pool[(start + i) % pool.len()];
                if let Some(a) = self.try_rack(cluster, net, rack, demand, flows, work) {
                    self.rr_cursor = (rack.0 + 1) % cluster.num_racks();
                    return Ok(a);
                }
            }
        }
        work.racks_scanned += cluster.num_racks() as u64;
        let sr = SuperRack::build(cluster, demand);
        if sr.infeasible() {
            return Err(DropReason::Compute);
        }
        nulb_schedule_naive(
            cluster,
            net,
            demand,
            flows,
            Some(&sr),
            NulbParams::nulb(),
            work,
        )
        .map(|mut a| {
            a.used_fallback = true;
            a
        })
    }
}

/// A scheduler running the seed's scan-based algorithms verbatim. Same
/// public contract as [`crate::Scheduler`], usable drop-in for
/// differential comparison.
#[derive(Debug, Clone)]
pub struct OracleScheduler {
    algo: Algorithm,
    risa: RisaStateNaive,
    work: WorkCounters,
}

impl OracleScheduler {
    /// Create an oracle for `algo` sized to `cluster`.
    pub fn new(algo: Algorithm, cluster: &Cluster) -> Self {
        OracleScheduler {
            algo,
            risa: RisaStateNaive::new(cluster, algo == Algorithm::RisaBf),
            work: WorkCounters::new(),
        }
    }

    /// The accumulated work counters (the seed's cost model, measured by
    /// actually performing the scans).
    pub fn work(&self) -> &WorkCounters {
        &self.work
    }

    /// Schedule one VM, mutating `cluster`/`net` only on success.
    pub fn schedule(
        &mut self,
        cluster: &mut Cluster,
        net: &mut NetworkState,
        demand: &UnitDemand,
    ) -> ScheduleOutcome {
        let flows = FlowDemands::for_vm(net.config(), demand);
        self.work.calls += 1;
        let result = match self.algo {
            Algorithm::Nulb => nulb_schedule_naive(
                cluster,
                net,
                demand,
                &flows,
                None,
                NulbParams::nulb(),
                &mut self.work,
            ),
            Algorithm::Nalb => nulb_schedule_naive(
                cluster,
                net,
                demand,
                &flows,
                None,
                NulbParams::nalb(),
                &mut self.work,
            ),
            Algorithm::Risa | Algorithm::RisaBf => {
                self.risa
                    .schedule(cluster, net, demand, &flows, &mut self.work)
            }
        };
        match result {
            Ok(a) => ScheduleOutcome::Assigned(a),
            Err(reason) => ScheduleOutcome::Dropped(reason),
        }
    }
}
